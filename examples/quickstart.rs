//! Quickstart: load a provenance-annotated document into the engine,
//! prepare a query once, and evaluate it under several semantics —
//! reading the provenance of every answer along the way.
//!
//! Run with: `cargo run --example quickstart`

use annotated_xml::semiring::{Valuation, Var};
use annotated_xml::uxml::hom::specialize_forest;
use annotated_xml::uxml::{print::pretty, Value};
use axml::{Engine, EvalOptions, Route, SemiringKind};

fn main() {
    // 1. Load a document. Annotations in `{…}` are ℕ[X] provenance
    //    polynomials; absent annotations mean the neutral 1. The
    //    engine parses once and shares the forest from then on.
    //    This is Figure 1 of the paper.
    let engine = Engine::new();
    engine
        .load_document(
            "S",
            "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .expect("document parses");
    println!("source:\n{}", pretty(&engine.document("S").unwrap()));

    // 2. Prepare a query: all grandchildren of the root. Parsing,
    //    typing, and compilation happen here, exactly once.
    let grandchildren = engine
        .prepare(
            "element p { for $t in $S return \
               for $x in ($t)/child::* return ($x)/child::* }",
        )
        .expect("query compiles");

    // 3. Evaluate symbolically (the default: ℕ[X], direct route).
    //    Each answer item carries a provenance polynomial: a sum over
    //    derivations of the product of the source annotations used.
    let answer = grandchildren
        .eval(&engine, EvalOptions::new())
        .expect("query runs");
    println!("answer: {answer}");
    let Value::Tree(tree) = answer.as_natpoly().unwrap() else {
        unreachable!()
    };
    for (child, provenance) in tree.children().iter_document() {
        println!("  {child}  ⇐  {provenance}");
    }

    // 4. Universality: the SAME prepared query runs in any semiring —
    //    the engine dispatches to the right evaluator per call
    //    (Corollary 1 guarantees it matches specializing the symbolic
    //    answer). Bag semantics — how many derivations?
    let as_bags = grandchildren
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    println!("multiplicities (all tokens ↦ 1): {as_bags}");

    //    The provenance-first mode makes the other direction explicit:
    //    evaluate once over ℕ[X], specialize the result afterwards.
    let bags_again = grandchildren
        .eval(
            &engine,
            EvalOptions::new()
                .semiring(SemiringKind::Nat)
                .provenance_first(),
        )
        .unwrap();
    assert_eq!(as_bags, bags_again, "Corollary 1, as an API property");

    // 5. What survives if source item x1 is deleted? Specialize the
    //    symbolic answer under a valuation sending x1 ↦ false.
    let mut deleted = Valuation::<bool>::new();
    deleted.set(Var::new("x1"), false);
    let after_delete = specialize_forest(tree.children(), &deleted);
    println!("after deleting x1: {after_delete}");

    // 6. Paranoid? Run the independent evaluation routes (direct
    //    big-step and the NRC_K compilation semantics) and assert they
    //    agree before trusting the answer.
    let checked = grandchildren
        .eval(&engine, EvalOptions::new().route(Route::Differential))
        .unwrap();
    assert_eq!(checked.as_natpoly(), answer.as_natpoly());
    println!("differential check passed (direct ≡ via-NRC)");
}
