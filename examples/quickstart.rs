//! Quickstart: annotate a document with provenance tokens, query it,
//! and read the provenance of every answer.
//!
//! Run with: `cargo run --example quickstart`

use annotated_xml::prelude::*;
use annotated_xml::uxml::hom::specialize_forest;
use axml_core::run_query;
use axml_uxml::{parse_forest, Value};

fn main() {
    // 1. Parse a document. Annotations in `{…}` are ℕ[X] provenance
    //    polynomials; absent annotations mean the neutral 1.
    //    This is Figure 1 of the paper.
    let source =
        parse_forest::<NatPoly>("<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>")
            .expect("document parses");
    println!("source:\n{}", annotated_xml::uxml::print::pretty(&source));

    // 2. Run a query: all grandchildren of the root.
    let answer = run_query::<NatPoly>(
        "element p { for $t in $S return \
           for $x in ($t)/child::* return ($x)/child::* }",
        &[("S", Value::Set(source))],
    )
    .expect("query runs");
    println!("answer: {answer}");

    // 3. Each answer item carries a provenance polynomial: a sum over
    //    derivations of the product of the source annotations used.
    let Value::Tree(tree) = &answer else {
        unreachable!()
    };
    for (child, provenance) in tree.children().iter_document() {
        println!("  {child}  ⇐  {provenance}");
    }

    // 4. Universality: specialize the SAME symbolic answer into any
    //    semiring with a valuation (Corollary 1 guarantees this equals
    //    re-running the query there).
    //    Bag semantics — how many derivations?
    let val = Valuation::<Nat>::new();
    let as_bags = specialize_forest(tree.children(), &val);
    println!("multiplicities (all tokens ↦ 1): {as_bags}");

    //    What survives if source item x1 is deleted?
    let mut deleted = Valuation::<bool>::new();
    deleted.set(Var::new("x1"), false);
    let after_delete = specialize_forest(tree.children(), &deleted);
    println!("after deleting x1: {after_delete}");
}
