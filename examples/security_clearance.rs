//! The §4 security application, end to end: a database manually
//! annotated with clearance levels, a view defined in UXQuery, and the
//! automatically computed clearance of every item in the view —
//! reproducing Figures 6 and 7 of the paper.
//!
//! Run with: `cargo run --example security_clearance`

use annotated_xml::semiring::clearance::ClearanceLevel;
use annotated_xml::semiring::{Clearance, Valuation, Var};
use annotated_xml::uxml::hom::specialize_forest;
use annotated_xml::uxml::Value;
use axml::{Engine, EvalOptions};

fn main() {
    // The Fig 6 source: a relational database encoded as UXML, with
    // provenance tokens everywhere annotations are allowed — on the
    // relation (w1), tuples (x1..x5), attributes (y1..y6) and values
    // (z1..z7).
    let engine = Engine::new();
    engine
        .load_document(
            "d",
            r#"<D>
                 <R {w1}>
                   <t {x1}> <A {y1}> a </A> <B {y2}> b {z1} </B> <C {y3}> c </C> </t>
                   <t {x2}> <A {y1}> d </A> <B {y2}> b {z2} </B> <C {y3}> e {z3} </C> </t>
                   <t {x3}> <A {y1}> f </A> <B {y2}> g {z4} </B> <C {y3}> e {z5} </C> </t>
                 </R>
                 <S>
                   <t {x4}> <B {y5}> b {z6} </B> <C {y6}> c </C> </t>
                   <t {x5}> <B {y5}> g {z7} </B> <C {y6}> c </C> </t>
                 </S>
               </D>"#,
        )
        .unwrap();

    // The Fig 5 view: Q = π_AC(π_AB(R) ⋈ (π_BC(R) ∪ S)) in UXQuery,
    // compiled once.
    let view = engine
        .prepare(
            r#"let $r := $d/R/*,
                   $rAB := for $t in $r return <t> { $t/A, $t/B } </t>,
                   $rBC := for $t in $r return <t> { $t/B, $t/C } </t>,
                   $s := $d/S/*
               return
                 <Q> { for $x in $rAB, $y in ($rBC, $s)
                       where $x/B = $y/B
                       return <t> { $x/A, $y/C } </t> } </Q>"#,
        )
        .unwrap();

    // Evaluate once, symbolically.
    let sym = view.eval(&engine, EvalOptions::new()).unwrap();
    let Value::Tree(q) = sym.as_natpoly().unwrap() else {
        unreachable!()
    };
    println!("symbolic view (Fig 6): 8 tuples");
    for (t, provenance) in q.children().iter_document() {
        println!("  {t}\n    ⇐ {provenance}");
    }

    // The security policy (§4): relation R is confidential, tuple x2 is
    // secret, attribute B of S is top-secret, everything else public.
    let policy = Valuation::<Clearance>::from_pairs([
        (Var::new("w1"), Clearance::C),
        (Var::new("x2"), Clearance::S),
        (Var::new("y5"), Clearance::T),
    ]);

    // Corollary 1: evaluating the provenance polynomials under the
    // policy gives the clearance of each view item.
    let cleared = specialize_forest(q.children(), &policy);
    println!("\nview clearances (Fig 7):");
    for (t, clearance) in cleared.iter_document() {
        println!("  [{clearance}] {t}");
    }

    // What each principal sees:
    for level in [
        ClearanceLevel::Public,
        ClearanceLevel::Confidential,
        ClearanceLevel::Secret,
        ClearanceLevel::TopSecret,
    ] {
        let visible = cleared.iter().filter(|(_, c)| c.visible_at(level)).count();
        println!("principal with {level} clearance sees {visible}/6 tuples");
    }

    // Note how the top-secret annotation on S.B affects only three
    // tuples, and two of those remain visible at lower clearances
    // because they can also be derived from R alone — the min/max
    // semiring arithmetic working exactly as §4 describes.
}
