//! Probabilistic XML for "hidden web" data (§5, after
//! Senellart–Abiteboul): a crawler probes query forms and records
//! uncertain facts as event-annotated XML. Tree-pattern queries are
//! answered with exact probabilities computed from the symbolic
//! (provenance-polynomial) answer — the query runs once, not once per
//! world.
//!
//! Run with: `cargo run --example probabilistic_hidden_web`

use annotated_xml::semiring::{NatPoly, Var};
use annotated_xml::uxml::{parse_tree, Value};
use annotated_xml::worlds::{
    answer_distribution, estimate_marginal, marginal_prob, mod_bool, ProbSpace, TreePattern,
};
use axml::{Engine, EvalOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Facts extracted by probing a directory service. Each subtree is
    // guarded by an independent Bernoulli event variable.
    let engine = Engine::new();
    engine
        .load_document(
            "doc",
            r#"<directory>
                 <person {e1}>
                   <name> alice </name>
                   <phone {e2}> p5551 </phone>
                   <email {e3}> al </email>
                 </person>
                 <person {e4}>
                   <name> bob </name>
                   <phone {e5}> p5551 </phone>
                 </person>
               </directory>"#,
        )
        .unwrap();
    let extracted = engine.document("doc").unwrap();

    // How many distinct worlds does this represent?
    let worlds = mod_bool(&extracted);
    println!("the representation has {} possible worlds", worlds.len());

    // Query: all phone subtrees, via XPath. Evaluated once,
    // symbolically — every downstream probability comes from this one
    // answer (Corollary 1).
    let sym = engine
        .prepare("element phones { $doc//phone }")
        .unwrap()
        .eval(&engine, EvalOptions::new())
        .unwrap();
    let Value::Tree(answer) = sym.as_natpoly().unwrap() else {
        unreachable!()
    };
    println!("\nsymbolic answer: {answer}");

    // Event probabilities from the extractor's confidence scores.
    let space = ProbSpace::from_pairs([
        (Var::new("e1"), 0.9),
        (Var::new("e2"), 0.7),
        (Var::new("e3"), 0.6),
        (Var::new("e4"), 0.8),
        (Var::new("e5"), 0.5),
    ]);

    // Exact world distribution of the answer (Corollary 1 lets us
    // specialize the symbolic answer instead of re-querying per world).
    let dist = answer_distribution(&answer.children().clone(), &space);
    println!("\nanswer distribution ({} distinct worlds):", dist.len());
    for (world, p) in &dist {
        println!("  {p:.4}  {world}");
    }

    // Marginal: is the number p5551 listed (for anyone)?
    let phone_tree = parse_tree::<bool>("<phone> p5551 </phone>").unwrap();
    let exact = marginal_prob(&answer.children().clone(), &phone_tree, &space);
    println!("\nPr[<phone>p5551</phone> in answer] = {exact:.4} (exact)");
    // = Pr[e1·e2 ∨ e4·e5] = 0.63 + 0.4 − 0.63·0.4 = 0.778

    let mut rng = StdRng::seed_from_u64(2008);
    let mc = estimate_marginal(
        &answer.children().clone(),
        &phone_tree,
        &space,
        10_000,
        &mut rng,
    );
    println!("Pr[…] ≈ {mc:.4} (Monte-Carlo, 10k samples)");

    // Tree-pattern query (the [27] special case): person[phone][email].
    // The pattern compiles to UXQuery surface syntax; the engine
    // prepares and runs it like any other query.
    let pattern = TreePattern::label("person")
        .child(TreePattern::label("phone"))
        .child(TreePattern::label("email"));
    let out = engine
        .prepare(&pattern.to_query::<NatPoly>().to_string())
        .unwrap()
        .eval(&engine, EvalOptions::new())
        .unwrap();
    let matches = out.as_natpoly().unwrap().as_set().unwrap();
    println!("\npattern person[phone][email]:");
    for (m, evidence) in matches.iter_document() {
        let cond = annotated_xml::semiring::trio::collapse::natpoly_to_posbool(evidence);
        let p = space.prob_of_condition(&cond);
        println!("  Pr = {p:.4} under condition {cond} at {}", m.label());
    }
}
