//! Scientific data sharing with provenance (the paper's motivating
//! scenario, §1): combine two heterogeneous sources into one view,
//! track ℕ\[X\] provenance through the query, then use the polynomials
//! to answer "which sources does this result depend on?", "what
//! happens if a source retracts a record?", and "how trustworthy is
//! each result?" — all without re-running the query.
//!
//! Run with: `cargo run --example curated_provenance`

use annotated_xml::semiring::trio::collapse::natpoly_to_lineage;
use annotated_xml::semiring::{Prob, Valuation, Var};
use annotated_xml::uxml::hom::specialize_forest;
use axml::{Engine, EvalOptions, SemiringKind};

fn main() {
    // Two curated protein databases, each record tagged with a token.
    let engine = Engine::new();
    engine
        .load_document(
            "genbank",
            r#"<db>
                 <protein {g1}> <id> P01 </id> <organism> yeast </organism> </protein>
                 <protein {g2}> <id> P02 </id> <organism> human </organism> </protein>
               </db>"#,
        )
        .unwrap();
    engine
        .load_document(
            "swissprot",
            r#"<db>
                 <entry {s1}> <id> P01 </id> <function> kinase </function> </entry>
                 <entry {s2}> <id> P03 </id> <function> ligase </function> </entry>
               </db>"#,
        )
        .unwrap();

    // Integration view: join the two sources on the id value. Prepared
    // once; the free variables bind the documents by name.
    let view = engine
        .prepare(
            r#"for $p in $genbank/protein, $e in $swissprot/entry
               where $p/id = $e/id
               return <merged> { $p/organism, $e/function, $p/id } </merged>"#,
        )
        .expect("view compiles");

    let out = view
        .eval(&engine, EvalOptions::new())
        .expect("view evaluates");
    let result = out.as_natpoly().unwrap().as_set().unwrap();

    println!("integrated view with provenance:");
    for (tree, provenance) in result.iter_document() {
        println!("  {tree}");
        println!("    provenance: {provenance}");
        // lineage: the flat set of contributing source records
        println!("    lineage:    {}", natpoly_to_lineage(provenance));
    }

    // The same prepared view, interpreted as why-provenance — witness
    // bases instead of polynomials — by flipping one runtime option.
    let why = view
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Why))
        .unwrap();
    println!("\nwhy-provenance view: {why}");

    // Deletion propagation: SwissProt retracts s1. Setting s1 ↦ false
    // in the Boolean semiring deletes every result that *requires* it.
    let mut retraction = Valuation::<bool>::new();
    retraction.set(Var::new("s1"), false);
    let after = specialize_forest(result, &retraction);
    println!(
        "\nafter SwissProt retracts s1: {} result(s) remain",
        after.len()
    );

    // Trust scoring with the Viterbi semiring: each source record has a
    // confidence; a result's score is the best-derivation product.
    let trust = Valuation::<Prob>::from_pairs([
        (Var::new("g1"), Prob::new(0.9)),
        (Var::new("g2"), Prob::new(0.8)),
        (Var::new("s1"), Prob::new(0.6)),
        (Var::new("s2"), Prob::new(0.95)),
    ]);
    let scored = specialize_forest(result, &trust);
    println!("\ntrust scores (Viterbi semiring):");
    for (tree, score) in scored.iter_document() {
        println!("  {score}  {tree}");
    }
}
