//! The §7 pipeline: shred annotated XML into an edge relation, compile
//! XPath to Datalog with Skolem functions, evaluate relationally, and
//! decode — the proof-of-concept for pushing annotated-XML queries into
//! an RDBMS.
//!
//! Run with: `cargo run --example shredding_pipeline`

use annotated_xml::prelude::*;
use annotated_xml::relational::{decode, garbage_collect, shred, shredded_eval, xpath_to_datalog};
use axml_core::ast::{Axis, NodeTest, Step};
use axml_uxml::{parse_forest, Label};

fn main() {
    // The Fig 4 source tree.
    let source = parse_forest::<NatPoly>(
        "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
    )
    .unwrap();

    // φ: one E(pid, nid, label) tuple per node, same annotation.
    let edges = shred(&source);
    println!("φ(source) — the edge relation E:\n{edges}");

    // ψ: the //c query as a Datalog program with Skolem function f.
    let steps = [Step {
        axis: Axis::Descendant,
        test: NodeTest::Label(Label::new("c")),
    }];
    let program = xpath_to_datalog(&steps);
    println!("ψ(//c) — the Datalog program:\n{program}");

    // Evaluate: E′ contains the result roots plus copied structure —
    // including the "garbage" tuples the paper points out.
    let raw = shredded_eval(&source, &steps).expect("fixpoint converges on trees");
    println!("raw E′ ({} tuples, garbage included):\n{raw}", raw.len());

    let clean = garbage_collect(&raw);
    println!(
        "after garbage collection: {} tuples (removed {})",
        clean.len(),
        raw.len() - clean.len()
    );

    // Decode back to K-UXML and compare with the direct semantics —
    // Theorem 2 in action.
    let via_relations = decode(&clean).expect("forest-shaped");
    let direct = axml_core::eval_step(&source, steps[0]);
    assert_eq!(via_relations, direct, "Theorem 2");
    println!("\ndecoded result (= direct evaluation):\n{via_relations}");
    println!(
        "leaf c provenance: {}  (Fig 4's q1 = x1·y3 + y1·y2)",
        via_relations.get(&axml_uxml::leaf("c"))
    );
}
