//! The §7 pipeline: shred annotated XML into an edge relation, compile
//! XPath to Datalog with Skolem functions, evaluate relationally, and
//! decode — the proof-of-concept for pushing annotated-XML queries into
//! an RDBMS. The engine exposes the whole pipeline as
//! `Route::Shredded`, and `Route::Differential` checks it against the
//! other evaluators (Theorem 2, on demand).
//!
//! Run with: `cargo run --example shredding_pipeline`

use annotated_xml::relational::{garbage_collect, shred, shredded_eval, xpath_to_datalog};
use annotated_xml::uxml::leaf;
use axml::{Engine, EvalOptions, Route};
use axml_core::ast::{Axis, NodeTest, Step};
use axml_uxml::Label;

fn main() {
    // The Fig 4 source tree.
    let engine = Engine::new();
    engine
        .load_document(
            "T",
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap();
    let source = engine.document("T").unwrap();

    // φ: one E(pid, nid, label) tuple per node, same annotation.
    let edges = shred(&source);
    println!("φ(source) — the edge relation E:\n{edges}");

    // ψ: the //c query as a Datalog program with Skolem function f.
    let steps = [Step {
        axis: Axis::Descendant,
        test: NodeTest::Label(Label::new("c")),
    }];
    let program = xpath_to_datalog(&steps);
    println!("ψ(//c) — the Datalog program:\n{program}");

    // Evaluate: E′ contains the result roots plus copied structure —
    // including the "garbage" tuples the paper points out.
    let raw = shredded_eval(&source, &steps).expect("fixpoint converges on trees");
    println!("raw E′ ({} tuples, garbage included):\n{raw}", raw.len());

    let clean = garbage_collect(&raw);
    println!(
        "after garbage collection: {} tuples (removed {})",
        clean.len(),
        raw.len() - clean.len()
    );

    // The engine runs the same pipeline as a route. `$T//c` is a
    // navigation chain, so the relational translation applies.
    let q = engine.prepare("$T//c").unwrap();
    assert!(q.is_step_chain());
    let via_relations = q
        .eval(&engine, EvalOptions::new().route(Route::Shredded))
        .unwrap();
    println!("\nshredded-route result:\n{via_relations}");

    // Theorem 2 in action: the differential route evaluates direct,
    // via-NRC *and* shredded, and asserts all three agree.
    let checked = q
        .eval(&engine, EvalOptions::new().route(Route::Differential))
        .unwrap();
    assert_eq!(checked, via_relations, "Theorem 2");
    let result = checked.as_natpoly().unwrap().as_set().unwrap();
    println!(
        "leaf c provenance: {}  (Fig 4's q1 = x1·y3 + y1·y2)",
        result.get(&leaf("c"))
    );
}
