//! ℕ-UXML: unordered XML with repetitions (bag semantics), and §6.4's
//! practical corollary — duplicate elimination can be *deferred*: the
//! homomorphism † : ℕ → 𝔹 lifted over values factors set-semantics
//! evaluation through bag-semantics evaluation, exactly the way an
//! RDBMS applies DISTINCT at the end of a pipeline.
//!
//! Run with: `cargo run --example bag_semantics`

use annotated_xml::semiring::{FnHom, Nat, PosBool, Semiring};
use annotated_xml::uxml::hom::map_value;
use axml::{Engine, EvalOptions, SemiringKind};

fn main() {
    // An inventory where annotations are multiplicities: three crates
    // of apples on shelf 1, two on shelf 2, one box of pears. The
    // engine stores the document symbolically; `SemiringKind::Nat`
    // reads the constants back as counts.
    let engine = Engine::new();
    engine
        .load_document(
            "W",
            r#"<warehouse>
                 <shelf> <crate {3}> apples </crate> <box> pears </box> </shelf>
                 <shelf> <crate {2}> apples </crate> </shelf>
               </warehouse>"#,
        )
        .unwrap();

    // How many crates of apples in total? The query collects every
    // crate; value-identical crates merge and their multiplicities add.
    let q = engine.prepare("for $c in $W//crate return ($c)/*").unwrap();
    let bags = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    let bag_result = bags.as_nat().unwrap().as_set().unwrap();
    println!("bag answer: {bag_result}");
    for (item, count) in bag_result.iter_document() {
        println!("  {count} × {item}");
    }

    // Set semantics, two ways that Corollary 1 says must agree:
    // (1) evaluate under set semantics from the start (PosBool over a
    //     variable-free document degenerates to plain 𝔹);
    let direct = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::PosBool))
        .unwrap();

    // (2) evaluate in ℕ and duplicate-eliminate afterwards — † : ℕ → 𝔹
    //     lifted over the finished bag answer.
    let dagger = FnHom::new(|n: &Nat| {
        if n.is_zero() {
            PosBool::zero()
        } else {
            PosBool::one()
        }
    });
    let deferred = map_value(&dagger, bags.as_nat().unwrap());

    assert_eq!(
        direct.as_posbool().unwrap(),
        &deferred,
        "†(p_ℕ(v)) = p_𝔹(†(v))  (Corollary 1)"
    );
    println!("\nset answer (either route): {deferred}");

    // Repetition-aware queries: a join counts *pairs*, so multiplicities
    // multiply — 5 apple-crates joined with themselves give 25 pairs.
    let self_join = engine
        .prepare(
            "for $a in $W//crate/*, $b in $W//crate/* \
               where name($a) = name($b) return ($a)",
        )
        .unwrap()
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    let pairs = self_join.as_nat().unwrap().as_set().unwrap();
    println!("\nself-join multiplicities: {pairs}");
}
