//! ℕ-UXML: unordered XML with repetitions (bag semantics), and §6.4's
//! practical corollary — duplicate elimination can be *deferred*: the
//! homomorphism † : ℕ → 𝔹 lifted over values factors set-semantics
//! evaluation through bag-semantics evaluation, exactly the way an
//! RDBMS applies DISTINCT at the end of a pipeline.
//!
//! Run with: `cargo run --example bag_semantics`

use annotated_xml::prelude::*;
use annotated_xml::uxml::hom::map_forest;
use axml_core::run_query;
use axml_semiring::{dup_elim, FnHom};
use axml_uxml::{parse_forest, Value};

fn main() {
    // An inventory where annotations are multiplicities: three crates
    // of apples on shelf 1, two on shelf 2, one box of pears.
    let inventory = parse_forest::<Nat>(
        r#"<warehouse>
             <shelf> <crate {3}> apples </crate> <box> pears </box> </shelf>
             <shelf> <crate {2}> apples </crate> </shelf>
           </warehouse>"#,
    )
    .unwrap();

    // How many crates of apples in total? The query collects every
    // crate; value-identical crates merge and their multiplicities add.
    let q = "for $c in $W//crate return ($c)/*";
    let bags = run_query::<Nat>(q, &[("W", Value::Set(inventory.clone()))]).unwrap();
    let Value::Set(bag_result) = &bags else {
        unreachable!()
    };
    println!("bag answer: {bag_result}");
    for (item, count) in bag_result.iter_document() {
        println!("  {count} × {item}");
    }

    // Set semantics, two ways that Corollary 1 says must agree:
    // (1) evaluate in 𝔹 from the start;
    let as_sets = map_forest(&FnHom::new(dup_elim), &inventory);
    let direct = run_query::<bool>(q, &[("W", Value::Set(as_sets))]).unwrap();

    // (2) evaluate in ℕ and duplicate-eliminate afterwards.
    let deferred = Value::Set(map_forest(&FnHom::new(dup_elim), bag_result));

    assert_eq!(direct, deferred, "†(p_ℕ(v)) = p_𝔹(†(v))  (Corollary 1)");
    println!("\nset answer (either route): {deferred}");

    // Repetition-aware queries: a join counts *pairs*, so multiplicities
    // multiply — 5 apple-crates joined with themselves give 25 pairs.
    let self_join = run_query::<Nat>(
        "for $a in $W//crate/*, $b in $W//crate/* \
           where name($a) = name($b) return ($a)",
        &[("W", Value::Set(inventory))],
    )
    .unwrap();
    let Value::Set(pairs) = self_join else {
        unreachable!()
    };
    println!("\nself-join multiplicities: {pairs}");
}
