//! `axml` — command-line runner for K-UXQuery over annotated documents.
//!
//! ```console
//! axml query  --semiring natpoly --route differential --doc data.axml 'element r { $S//c }'
//! axml parse  --semiring nat     --doc data.axml
//! axml shred  --doc data.axml    '//c'
//! axml worlds --doc data.axml
//! ```
//!
//! Documents use the annotated text format (`<a {x1}> b {y} </a>`);
//! the document is bound to `$S` (and also to `$T`, `$d`, `$doc` for
//! convenience with the paper's variable names). Queries run through
//! the [`axml::Engine`] facade: any of its semirings, any evaluation
//! route, and optionally provenance-first evaluation.

use annotated_xml::prelude::*;
use annotated_xml::uxml::print::pretty;
use axml::json::{result_json, value_json, Json};
use axml::{Engine, EvalOptions, Route, SemiringKind};
use axml_uxml::{parse_forest, ParseAnnotation};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("axml: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  axml query  [--semiring S] [--route R] [--provenance-first] \\
              [--format text|json] [--stream] [--stats] \\
              [--memory-budget NODES] (--doc FILE | --text DOC) QUERY
  axml edit   (--doc FILE | --text DOC) (--script FILE | --ops TEXT) \\
              [--semiring S] [--route R] [--provenance-first] \\
              [--format text|json] [QUERY]
  axml parse  [--semiring S] (--doc FILE | --text DOC)
  axml shred  (--doc FILE | --text DOC) PATH     # //c or /a/b style
  axml worlds (--doc FILE | --text DOC)          # possible worlds (ℕ[X] docs)
  axml serve  [--addr HOST:PORT] [--pool N] [--max-inflight M] \\
              [--max-prepared Q] [--doc FILE | --text DOC]  # HTTP/1.1 query server

query semirings: natpoly (default) | nat | posbool | tropical | why | trio | prob
                 (also bool | clearance, direct route only)
parse semirings: natpoly (default) | nat | bool | clearance | posbool
routes:          direct (default) | via-nrc | shredded | differential
formats:         text (default) | json — machine-consumable query results
streaming:       --stream prints result pieces as they are produced
                 (requires --format json; bytes identical to one-shot);
                 --memory-budget caps evaluation memory in nodes
stats:           --stats appends one scheduler-counters line after the
                 result (the global pool's lane queues and execution
                 counters; a JSON object with --format json)
edit:            applies a line-based edit script (splice | relabel |
                 insert | delete | reannotate, child-index paths, one op
                 per line) through the engine's incremental edit path,
                 prints the edited document and edit stats; with a QUERY
                 it then evaluates against the edited engine, so the
                 delta-propagated / memoized re-evaluation paths engage
serve:           --addr default 127.0.0.1:8787; --pool 0 = one worker per
                 core; --max-inflight default 64 (further connections get
                 503); --max-prepared default 1024 (LRU-evicted beyond);
                 a --doc/--text document preloads as $S/$T/$d/$doc";

struct Opts {
    semiring: String,
    route: String,
    provenance_first: bool,
    format: OutputFormat,
    stream: bool,
    stats: bool,
    memory_budget: Option<usize>,
    doc: Option<String>,
    script: Option<String>,
    addr: String,
    pool: usize,
    max_inflight: usize,
    max_prepared: usize,
    rest: Vec<String>,
}

impl Opts {
    /// The document text, for the commands that require one.
    fn doc(&self) -> Result<&str, String> {
        self.doc
            .as_deref()
            .ok_or_else(|| "a document is required (--doc FILE or --text DOC)".into())
    }
}

#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Text,
    Json,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut semiring = "natpoly".to_owned();
    let mut route = "direct".to_owned();
    let mut provenance_first = false;
    let mut format = OutputFormat::Text;
    let mut stream = false;
    let mut stats = false;
    let mut memory_budget: Option<usize> = None;
    let mut doc: Option<String> = None;
    let mut script: Option<String> = None;
    let mut addr = "127.0.0.1:8787".to_owned();
    let mut pool = 0usize;
    let mut max_inflight = 64usize;
    let mut max_prepared = axml::REGISTRY_DEFAULT_CAPACITY;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--semiring" => {
                semiring = args.get(i + 1).ok_or("--semiring needs a value")?.clone();
                i += 2;
            }
            "--route" => {
                route = args.get(i + 1).ok_or("--route needs a value")?.clone();
                i += 2;
            }
            "--provenance-first" => {
                provenance_first = true;
                i += 1;
            }
            "--stream" => {
                stream = true;
                i += 1;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            "--memory-budget" => {
                memory_budget = Some(
                    args.get(i + 1)
                        .ok_or("--memory-budget needs a node count")?
                        .parse()
                        .map_err(|e| format!("bad --memory-budget value: {e}"))?,
                );
                i += 2;
            }
            "--format" => {
                format = match args.get(i + 1).map(String::as_str) {
                    Some("text") => OutputFormat::Text,
                    Some("json") => OutputFormat::Json,
                    Some(other) => return Err(format!("unknown format {other:?} (text | json)")),
                    None => return Err("--format needs a value (text | json)".into()),
                };
                i += 2;
            }
            "--doc" => {
                let path = args.get(i + 1).ok_or("--doc needs a file path")?;
                doc = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
                i += 2;
            }
            "--text" => {
                doc = Some(args.get(i + 1).ok_or("--text needs a document")?.clone());
                i += 2;
            }
            "--script" => {
                let path = args.get(i + 1).ok_or("--script needs a file path")?;
                script = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
                i += 2;
            }
            "--ops" => {
                script = Some(
                    args.get(i + 1)
                        .ok_or("--ops needs edit-script text")?
                        .clone(),
                );
                i += 2;
            }
            "--addr" => {
                addr = args.get(i + 1).ok_or("--addr needs HOST:PORT")?.clone();
                i += 2;
            }
            "--pool" => {
                pool = args
                    .get(i + 1)
                    .ok_or("--pool needs a worker count")?
                    .parse()
                    .map_err(|e| format!("bad --pool value: {e}"))?;
                i += 2;
            }
            "--max-inflight" => {
                max_inflight = args
                    .get(i + 1)
                    .ok_or("--max-inflight needs a connection count")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight value: {e}"))?;
                i += 2;
            }
            "--max-prepared" => {
                max_prepared = args
                    .get(i + 1)
                    .ok_or("--max-prepared needs a query count")?
                    .parse()
                    .map_err(|e| format!("bad --max-prepared value: {e}"))?;
                i += 2;
            }
            other => {
                rest.push(other.to_owned());
                i += 1;
            }
        }
    }
    Ok(Opts {
        semiring,
        route,
        provenance_first,
        format,
        stream,
        stats,
        memory_budget,
        doc,
        script,
        addr,
        pool,
        max_inflight,
        max_prepared,
        rest,
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, tail)) = args.split_first() else {
        return Err("no command given".into());
    };
    match cmd.as_str() {
        "query" => {
            let opts = parse_opts(tail)?;
            let q = opts.rest.join(" ");
            if q.is_empty() {
                return Err("query text required".into());
            }
            query_cmd(&opts, &q)
        }
        "edit" => {
            let opts = parse_opts(tail)?;
            edit_cmd(&opts)
        }
        "parse" => {
            let opts = text_only(parse_opts(tail)?, "parse")?;
            dispatch_semiring(&opts.semiring, opts.doc()?, ParseCmd)
        }
        "shred" => {
            let opts = text_only(parse_opts(tail)?, "shred")?;
            let path = opts.rest.join("");
            shred_cmd(opts.doc()?, &path)
        }
        "worlds" => {
            let opts = text_only(parse_opts(tail)?, "worlds")?;
            worlds_cmd(opts.doc()?)
        }
        "serve" => serve_cmd(&text_only(parse_opts(tail)?, "serve")?),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Commands that only have a text rendering must say so instead of
/// silently ignoring `--format json`.
fn text_only(opts: Opts, cmd: &str) -> Result<Opts, String> {
    if opts.format != OutputFormat::Text {
        return Err(format!(
            "--format json is only supported by `query` (`{cmd}` output is text-only)"
        ));
    }
    Ok(opts)
}

fn dispatch_semiring(name: &str, doc: &str, f: impl SemiringDispatch) -> Result<(), String> {
    match name {
        "natpoly" => f.call::<NatPoly>(doc),
        "nat" => f.call::<Nat>(doc),
        "bool" => f.call::<bool>(doc),
        "clearance" => f.call::<Clearance>(doc),
        "posbool" => f.call::<PosBool>(doc),
        other => Err(format!("unknown semiring {other:?} (see usage)")),
    }
}

/// Closure-with-generic-method pattern: the command body runs at the
/// semiring chosen at runtime.
trait SemiringDispatch {
    fn call<K: Semiring + ParseAnnotation>(self, doc: &str) -> Result<(), String>;
}

/// Run a query through the engine facade: one symbolic document load,
/// runtime semiring + route selection. Semirings whose documents are
/// not ℕ\[X\]-representable (`bool`, `clearance`, and PosBool documents
/// written in DNF syntax) keep the pre-facade static path.
fn query_cmd(opts: &Opts, query: &str) -> Result<(), String> {
    query_result(opts, query)?;
    if opts.stats {
        print_scheduler_stats(opts.format);
    }
    Ok(())
}

/// `query --stats`: one scheduler-counters line after the result — the
/// global pool's lane queues and execution counters, all zero when the
/// evaluation never touched the pool (sequential mode, tiny inputs).
/// A separate line so the result bytes stay identical with and without
/// the flag.
fn print_scheduler_stats(format: OutputFormat) {
    let s = axml::scheduler_stats();
    match format {
        OutputFormat::Text => println!(
            "scheduler: workers={} lanes={} queued(cheap/normal/expensive)={}/{}/{} \
             executed(owned/helped/stolen/injected)={}/{}/{}/{} max_queue_residency_ns={}",
            s.workers,
            s.lanes,
            s.queued_cheap,
            s.queued_normal,
            s.queued_expensive,
            s.owned,
            s.helped,
            s.stolen,
            s.injected,
            s.max_queue_residency_ns
        ),
        OutputFormat::Json => {
            let mut j = Json::new();
            j.begin_obj();
            j.key("scheduler");
            axml::json::scheduler_json(&mut j, &s);
            j.end_obj();
            println!("{}", j.finish());
        }
    }
}

fn query_result(opts: &Opts, query: &str) -> Result<(), String> {
    match opts.semiring.as_str() {
        "bool" => return static_query::<bool>(opts, query),
        "clearance" => return static_query::<Clearance>(opts, query),
        _ => {}
    }
    let semiring: SemiringKind = opts.semiring.parse()?;
    let route: Route = opts.route.parse()?;
    let forest = match parse_forest::<NatPoly>(opts.doc()?) {
        Ok(f) => f,
        // A PosBool document using `{x | y&z}` / `{true}` annotations
        // isn't an ℕ[X] document; query it in PosBool directly.
        Err(_) if semiring == SemiringKind::PosBool => return static_query::<PosBool>(opts, query),
        Err(e) => return Err(e.to_string()),
    };
    let engine = Engine::new();
    // Bind the document under all the variable names the paper uses.
    for name in ["S", "T", "d", "doc"] {
        engine.insert_forest(name, forest.clone());
    }
    let mut eval_opts = EvalOptions::new().semiring(semiring).route(route);
    if opts.provenance_first {
        eval_opts = eval_opts.provenance_first();
    }
    if let Some(nodes) = opts.memory_budget {
        eval_opts = eval_opts.memory_budget(nodes);
    }
    if opts.stream {
        return stream_query(&engine, query, eval_opts, opts.format);
    }
    let out = engine.run(query, eval_opts).map_err(|e| e.to_string())?;
    match opts.format {
        OutputFormat::Text => println!("{out}"),
        OutputFormat::Json => println!("{}", result_json(query, &eval_opts, &out)),
    }
    Ok(())
}

/// `axml edit`: load the document, apply the edit script through
/// [`axml::Engine::edit_document_text`] — the same incremental path
/// `PATCH /documents/{name}` uses — and print the edited document plus
/// the edit stats. With a trailing QUERY the command then evaluates it
/// against the edited engine, so the evaluation takes the
/// delta-propagated (shredded) or fingerprint-memoized (direct/via-NRC)
/// re-evaluation paths rather than starting from scratch.
fn edit_cmd(opts: &Opts) -> Result<(), String> {
    let script = opts
        .script
        .as_deref()
        .ok_or("an edit script is required (--script FILE or --ops TEXT)")?;
    let forest = parse_forest::<NatPoly>(opts.doc()?).map_err(|e| e.to_string())?;
    let engine = Engine::new();
    engine.insert_forest("S", forest);
    let stats = engine
        .edit_document_text("S", script)
        .map_err(|e| e.to_string())?;
    let edited = engine.document("S").expect("document was just edited");
    // The other paper aliases bind the *edited* content, so a query
    // over $T/$d/$doc sees the same document as $S.
    for name in ["T", "d", "doc"] {
        engine.insert_forest(name, (*edited).clone());
    }

    let query = opts.rest.join(" ");
    match opts.format {
        OutputFormat::Text => {
            print!("{}", pretty(&edited));
            println!(
                "edit: version {} | {} op(s) | {} spine node(s) interned | {} fact(s) retired | {} fact(s) added",
                stats.version,
                stats.ops_applied,
                stats.spine_nodes_interned,
                stats.facts_retired,
                stats.facts_added
            );
        }
        OutputFormat::Json => {
            let mut j = Json::new();
            j.begin_obj();
            j.key("document");
            j.str(&edited.to_string());
            j.key("version");
            j.int(stats.version);
            j.key("ops_applied");
            j.int(stats.ops_applied as u64);
            j.key("spine_nodes_interned");
            j.int(stats.spine_nodes_interned as u64);
            j.key("facts_retired");
            j.int(stats.facts_retired);
            j.key("facts_added");
            j.int(stats.facts_added);
            j.end_obj();
            println!("{}", j.finish());
        }
    }
    if query.is_empty() {
        return Ok(());
    }

    let semiring: SemiringKind = opts.semiring.parse()?;
    let route: Route = opts.route.parse()?;
    let mut eval_opts = EvalOptions::new().semiring(semiring).route(route);
    if opts.provenance_first {
        eval_opts = eval_opts.provenance_first();
    }
    if let Some(nodes) = opts.memory_budget {
        eval_opts = eval_opts.memory_budget(nodes);
    }
    let out = engine.run(&query, eval_opts).map_err(|e| e.to_string())?;
    match opts.format {
        OutputFormat::Text => println!("{out}"),
        OutputFormat::Json => println!("{}", result_json(&query, &eval_opts, &out)),
    }
    Ok(())
}

/// `query --stream`: pull the result through
/// [`axml::PreparedQuery::eval_stream`] and print each top-level piece
/// the moment it is produced, flushing as we go — on the incremental
/// route/mode combinations the first piece appears before the
/// evaluation has finished. The concatenated output is byte-identical
/// to the one-shot `--format json` rendering; a mid-stream error
/// (tripped deadline or memory budget) leaves the JSON unterminated
/// and exits nonzero, so truncation is always detectable.
fn stream_query(
    engine: &Engine,
    query: &str,
    eval_opts: EvalOptions,
    format: OutputFormat,
) -> Result<(), String> {
    use std::io::Write as _;
    if format != OutputFormat::Json {
        return Err("--stream requires --format json (text output is one-shot)".into());
    }
    let prepared = engine.prepare(query).map_err(|e| e.to_string())?;
    let cursor = prepared
        .eval_stream(engine, eval_opts)
        .map_err(|e| e.to_string())?;
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let emit = |w: &mut std::io::StdoutLock<'_>, s: &str| {
        w.write_all(s.as_bytes())
            .and_then(|()| w.flush())
            .map_err(|e| format!("cannot write to stdout: {e}"))
    };
    emit(&mut w, &axml::json::result_header(query, &eval_opts))?;
    let mut open_set = false;
    let mut scalar = false;
    for item in cursor {
        match item.map_err(|e| e.to_string())? {
            axml::StreamItem::Piece(p) => {
                emit(&mut w, if open_set { "," } else { "[" })?;
                open_set = true;
                emit(&mut w, &p.json())?;
            }
            axml::StreamItem::Scalar(out) => {
                scalar = true;
                let mut j = Json::new();
                axml::json::result_value_json(&mut j, &out);
                emit(&mut w, &j.finish())?;
            }
        }
    }
    if open_set {
        emit(&mut w, "]")?;
    } else if !scalar {
        // A set with no pieces yields no items at all (a scalar always
        // yields exactly one), so an exhausted-but-empty cursor is `[]`.
        emit(&mut w, "[]")?;
    }
    emit(&mut w, "}\n")
}

/// Run the HTTP server (see `axml-server`): bind, optionally preload
/// one document under all the paper's variable names, serve until the
/// process is killed.
fn serve_cmd(opts: &Opts) -> Result<(), String> {
    let engine = Arc::new(Engine::new());
    if let Some(doc) = &opts.doc {
        let forest = parse_forest::<NatPoly>(doc).map_err(|e| e.to_string())?;
        for name in ["S", "T", "d", "doc"] {
            engine.insert_forest(name, forest.clone());
        }
    }
    let config = axml_server::ServerConfig {
        addr: opts.addr.clone(),
        pool_workers: opts.pool,
        max_inflight: opts.max_inflight,
        max_prepared: opts.max_prepared,
        ..Default::default()
    };
    let server = axml_server::start(config, engine).map_err(|e| e.to_string())?;
    println!("axml-server listening on http://{}", server.addr());
    // No in-process signal handling in std: serve until killed. The
    // handle must stay alive (dropping it would shut the server down).
    loop {
        std::thread::park();
    }
}

/// The compile-time-`K` path: direct evaluation only, for document
/// formats the ℕ\[X\] engine store cannot hold.
fn static_query<K: Semiring + ParseAnnotation + std::fmt::Display>(
    opts: &Opts,
    query: &str,
) -> Result<(), String> {
    if opts.route != "direct" || opts.provenance_first {
        return Err(format!(
            "--route/--provenance-first need an ℕ[X]-annotated document; \
             --semiring {} with this document supports the direct route only",
            opts.semiring
        ));
    }
    let forest = parse_forest::<K>(opts.doc()?).map_err(|e| e.to_string())?;
    let bindings: Vec<(&str, Value<K>)> = ["S", "T", "d", "doc"]
        .iter()
        .map(|n| (*n, Value::Set(forest.clone())))
        .collect();
    let out = run_query::<K>(query, &bindings).map_err(|e| e.to_string())?;
    match opts.format {
        OutputFormat::Text => println!("{out}"),
        OutputFormat::Json => {
            let mut j = Json::new();
            j.begin_obj();
            j.key("query");
            j.str(query);
            j.key("semiring");
            j.str(&opts.semiring);
            j.key("route");
            j.str("direct");
            j.key("mode");
            j.str("in-semiring"); // the static path rejects --provenance-first
            j.key("result");
            value_json(&mut j, &out);
            j.end_obj();
            println!("{}", j.finish());
        }
    }
    Ok(())
}

struct ParseCmd;
impl SemiringDispatch for ParseCmd {
    fn call<K: Semiring + ParseAnnotation>(self, doc: &str) -> Result<(), String> {
        let forest = parse_forest::<K>(doc).map_err(|e| e.to_string())?;
        print!("{}", pretty(&forest));
        Ok(())
    }
}

fn shred_cmd(doc: &str, path: &str) -> Result<(), String> {
    let forest = parse_forest::<NatPoly>(doc).map_err(|e| e.to_string())?;
    let steps = parse_path_steps(path)?;
    let raw =
        annotated_xml::relational::shredded_eval(&forest, &steps).map_err(|e| e.to_string())?;
    println!("E' (raw, with garbage):\n{raw}");
    let clean = annotated_xml::relational::garbage_collect(&raw);
    let decoded = annotated_xml::relational::decode(&clean).ok_or("result is not forest-shaped")?;
    println!("decoded:\n{}", pretty(&decoded));
    Ok(())
}

fn worlds_cmd(doc: &str) -> Result<(), String> {
    let forest = parse_forest::<NatPoly>(doc).map_err(|e| e.to_string())?;
    let mut worlds: Vec<_> = annotated_xml::worlds::mod_bool(&forest)
        .into_iter()
        .collect();
    // deterministic display order (the set's internal order is
    // process-dependent); one render per world, reused for sorting
    worlds.sort_by_cached_key(|w| w.to_string());
    println!("{} possible world(s):", worlds.len());
    for (i, w) in worlds.iter().enumerate() {
        println!("--- world {} ---", i + 1);
        print!("{}", pretty(w));
    }
    Ok(())
}

/// Parse an XPath-ish step chain: `//c`, `/a/b`, `/descendant::x/...`.
fn parse_path_steps(src: &str) -> Result<Vec<axml_core::Step>, String> {
    use axml_core::{Axis, NodeTest, Step};
    let mut steps = Vec::new();
    let mut rest = src.trim();
    while !rest.is_empty() {
        let (axis_default, after) = if let Some(r) = rest.strip_prefix("//") {
            (Axis::Descendant, r)
        } else if let Some(r) = rest.strip_prefix('/') {
            (Axis::Child, r)
        } else {
            return Err(format!("expected '/' or '//' at {rest:?}"));
        };
        let end = after.find('/').unwrap_or(after.len());
        let (token, next) = after.split_at(end);
        let (axis, test_txt) = match token.split_once("::") {
            Some(("self", t)) => (Axis::SelfAxis, t),
            Some(("child", t)) => (Axis::Child, t),
            Some(("descendant", t)) => (Axis::Descendant, t),
            Some(("strict-descendant", t)) => (Axis::StrictDescendant, t),
            Some((ax, _)) => return Err(format!("unknown axis {ax:?}")),
            None => (axis_default, token),
        };
        let test = if test_txt == "*" {
            NodeTest::Wildcard
        } else if !test_txt.is_empty() {
            NodeTest::Label(axml_uxml::Label::new(test_txt))
        } else {
            return Err("empty node test".into());
        };
        steps.push(Step { axis, test });
        rest = next;
    }
    if steps.is_empty() {
        return Err("empty path".into());
    }
    Ok(steps)
}
