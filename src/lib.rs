//! # annotated-xml
//!
//! A comprehensive Rust reproduction of Foster, Green & Tannen,
//! *Annotated XML: Queries and Provenance* (PODS 2008): unordered XML
//! annotated with commutative-semiring elements, the UXQuery language,
//! its semantics via `NRC_K + srt` and via relational shredding, and the
//! provenance / security / incomplete-data applications.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! - [`engine`] — the **`Engine` API** (`axml`): named document store,
//!   prepared queries, runtime semiring selection, pluggable
//!   evaluation routes. **Start here.**
//! - [`semiring`] — commutative semirings, homomorphisms, ℕ\[X\]
//!   provenance polynomials, free semimodules (`axml-semiring`).
//! - [`uxml`] — the K-UXML data model (`axml-uxml`).
//! - [`nrc`] — `NRC_K + srt` complex-value calculus (`axml-nrc`).
//! - [`uxquery`] — K-UXQuery: parsing, typing, compilation, evaluation
//!   (`axml-core`, the paper's primary contribution).
//! - [`relational`] — K-relations, RA⁺, Datalog, shredding
//!   (`axml-relational`).
//! - [`worlds`] — incomplete and probabilistic K-UXML (`axml-worlds`).
//!
//! ## Quickstart
//!
//! ```
//! use annotated_xml::engine::{Engine, EvalOptions, SemiringKind};
//!
//! // Load a document whose annotations are ℕ[X] provenance tokens
//! // (parsed once), and compile the paper's Figure 1 query (once).
//! let engine = Engine::new();
//! engine
//!     .load_document("S", "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>")
//!     .unwrap();
//! let q = engine
//!     .prepare(
//!         "element p { for $t in $S return \
//!            for $x in ($t)/child::* return ($x)/child::* }",
//!     )
//!     .unwrap();
//!
//! // Evaluate symbolically: p[ d^{z·x1·y1 + z·x2·y2}, e^{z·x2·y3} ].
//! let provenance = q.eval(&engine, EvalOptions::new()).unwrap();
//! assert!(provenance.to_string().contains("x2*y2*z + x1*y1*z"));
//!
//! // The same prepared query under bag semantics — semirings are a
//! // per-call choice (Prop. 2 / Corollary 1 make this sound).
//! let bags = q
//!     .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
//!     .unwrap();
//! assert_eq!(bags.to_string(), "<p> d {2} e </p>");
//! ```
//!
//! The statically-generic layers below the engine remain public for
//! compile-time-`K` callers; see [`uxquery`] for the pipeline.

pub use axml as engine;
pub use axml_core as uxquery;
pub use axml_nrc as nrc;
pub use axml_relational as relational;
pub use axml_semiring as semiring;
pub use axml_uxml as uxml;
pub use axml_worlds as worlds;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use axml::prelude::*;
    pub use axml_core::prelude::*;
    pub use axml_semiring::{
        Clearance, KSet, Lineage, Nat, NatPoly, PosBool, Prob, Product, Semiring, SemiringHom,
        Tropical, Valuation, Var, Why,
    };
    pub use axml_uxml::prelude::*;
}
