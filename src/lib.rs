//! # annotated-xml
//!
//! A comprehensive Rust reproduction of Foster, Green & Tannen,
//! *Annotated XML: Queries and Provenance* (PODS 2008): unordered XML
//! annotated with commutative-semiring elements, the UXQuery language,
//! its semantics via `NRC_K + srt` and via relational shredding, and the
//! provenance / security / incomplete-data applications.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! - [`semiring`] — commutative semirings, homomorphisms, ℕ\[X\]
//!   provenance polynomials, free semimodules (`axml-semiring`).
//! - [`uxml`] — the K-UXML data model (`axml-uxml`).
//! - [`nrc`] — `NRC_K + srt` complex-value calculus (`axml-nrc`).
//! - [`uxquery`] — K-UXQuery: parsing, typing, compilation, evaluation
//!   (`axml-core`, the paper's primary contribution).
//! - [`relational`] — K-relations, RA⁺, Datalog, shredding
//!   (`axml-relational`).
//! - [`worlds`] — incomplete and probabilistic K-UXML (`axml-worlds`).
//!
//! ## Quickstart
//!
//! ```
//! use annotated_xml::prelude::*;
//!
//! // Parse a document whose annotations are ℕ\[X\] provenance tokens.
//! let doc: Forest<NatPoly> = parse_forest(
//!     "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
//! ).unwrap();
//!
//! // The paper's Figure 1 query: all grandchildren.
//! let q = parse_query(
//!     "element p { for $t in $S return \
//!        for $x in ($t)/child::* return ($x)/child::* }",
//! ).unwrap();
//!
//! let out = eval_query(&q, &[("S", Value::Set(doc))]).unwrap();
//! // Answer: p[ d^{z·x1·y1 + z·x2·y2}, e^{z·x2·y3} ]
//! println!("{out}");
//! ```

pub use axml_core as uxquery;
pub use axml_nrc as nrc;
pub use axml_relational as relational;
pub use axml_semiring as semiring;
pub use axml_uxml as uxml;
pub use axml_worlds as worlds;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use axml_core::prelude::*;
    pub use axml_semiring::{
        Clearance, KSet, Lineage, Nat, NatPoly, PosBool, Prob, Product, Semiring, SemiringHom,
        Tropical, Valuation, Var, Why,
    };
    pub use axml_uxml::prelude::*;
}
