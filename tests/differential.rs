//! Differential and robustness tests across the whole pipeline:
//! parser ↔ printer round-trips, the three semantics against each
//! other (with and without the equational optimizer), and boundary
//! conditions (deep trees, empty inputs, degenerate annotations).

use axml_core::{compile, elaborate, eval_query, eval_query_nrc, parse_query};
use axml_semiring::{Nat, NatPoly, Semiring};
use axml_uxml::{parse_forest, Forest, Tree, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------

fn arb_annotation() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        2 => proptest::sample::select(&["da", "db", "dc"][..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..4).prop_map(NatPoly::from),
    ]
}

const DLABELS: [&str; 5] = ["alpha", "beta", "g-x", "d_1", "e.ext"];

fn arb_tree(depth: u32) -> BoxedStrategy<Tree<NatPoly>> {
    if depth == 0 {
        proptest::sample::select(&DLABELS[..])
            .prop_map(Tree::leaf)
            .boxed()
    } else {
        (
            proptest::sample::select(&DLABELS[..]),
            proptest::collection::vec((arb_tree(depth - 1), arb_annotation()), 0..3),
        )
            .prop_map(|(l, kids)| Tree::new(l, Forest::from_pairs(kids)))
            .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse is the identity on forests.
    #[test]
    fn uxml_print_parse_roundtrip(
        trees in proptest::collection::vec((arb_tree(3), arb_annotation()), 1..4)
    ) {
        let f = Forest::from_pairs(trees);
        let printed = f.to_string();
        let inner = &printed[1..printed.len() - 1]; // strip forest parens
        // empty forests print as "()" → inner is empty, which parses
        let reparsed = parse_forest::<NatPoly>(inner).expect("reparses");
        prop_assert_eq!(reparsed, f);
    }

    /// Compiled queries survive the NRC printer/parser.
    #[test]
    fn compiled_query_nrc_text_roundtrip(steps in 1usize..3) {
        let mut q = String::from("$S");
        for _ in 0..steps {
            q.push_str("/descendant::c");
        }
        let core = elaborate(&parse_query::<NatPoly>(&q).unwrap()).unwrap();
        let e = compile(&core);
        let reparsed = axml_nrc::parse_expr::<NatPoly>(&e.to_string())
            .expect("compiled query reparses");
        prop_assert_eq!(reparsed, e);
    }
}

#[test]
fn compiled_paper_queries_roundtrip_through_nrc_text() {
    for q in [
        "element r { $T//c }",
        "$S/*/*",
        "for $x in $R, $y in $S where $x/B = $y/B return <t> { $x/A } </t>",
        "annot {2*w + 1} ($S/self::a)",
    ] {
        let core = elaborate(&parse_query::<NatPoly>(q).unwrap()).unwrap();
        let e = compile(&core);
        let printed = e.to_string();
        let reparsed = axml_nrc::parse_expr::<NatPoly>(&printed)
            .unwrap_or_else(|err| panic!("reparse of compiled {q:?} failed: {err}\n{printed}"));
        assert_eq!(reparsed, e);
    }
}

// ---------------------------------------------------------------------
// Optimizer differential: simplify ∘ compile ≡ compile
// ---------------------------------------------------------------------

#[test]
fn optimizer_preserves_all_paper_queries() {
    let doc =
        parse_forest::<NatPoly>("<a {z}> <b {x1}> d {y1} c </b> <c {x2}> d {y2} e {y3} </c> </a>")
            .unwrap();
    for q in [
        "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
        "element r { $S//c }",
        "$S/strict-descendant::d",
        "for $x in $S, $y in $S where $x/B = $y/B return ($x)",
        "annot {7} ($S/*), $S/self::a",
    ] {
        let core = elaborate(&parse_query::<NatPoly>(q).unwrap()).unwrap();
        let e = compile(&core);
        let s = axml_nrc::axioms::simplify(&e);
        let mut env1 =
            axml_nrc::Env::from_bindings([("S".to_owned(), axml_nrc::CValue::from_forest(&doc))]);
        let mut env2 = env1.clone();
        assert_eq!(
            axml_nrc::eval(&e, &mut env1).unwrap(),
            axml_nrc::eval(&s, &mut env2).unwrap(),
            "optimizer changed semantics of {q}"
        );
        assert!(
            s.size() <= e.size(),
            "optimizer must not grow the term: {q} ({} → {})",
            e.size(),
            s.size()
        );
    }
}

// ---------------------------------------------------------------------
// Boundary conditions
// ---------------------------------------------------------------------

#[test]
fn empty_input_forest() {
    let q = parse_query::<Nat>("element out { $S//x }").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(Forest::new()))]).unwrap();
    let Value::Tree(t) = out else { panic!() };
    assert!(t.children().is_empty());
    let out2 = eval_query_nrc(&q, &[("S", Value::Set(Forest::new()))]).unwrap();
    let Value::Tree(t2) = out2 else { panic!() };
    assert_eq!(t.children(), t2.children());
}

#[test]
fn deep_chain_tree() {
    // a 300-deep chain exercises recursion in eval, srt, and shredding
    let mut t: Tree<Nat> = Tree::leaf("end");
    for i in 0..300 {
        t = Tree::new(
            axml_uxml::Label::new(if i % 2 == 0 { "even" } else { "odd" }),
            Forest::unit(t),
        );
    }
    let f = Forest::unit(t);
    let q = parse_query::<Nat>("$S//end").unwrap();
    let direct = eval_query(&q, &[("S", Value::Set(f.clone()))]).unwrap();
    let via_nrc = eval_query_nrc(&q, &[("S", Value::Set(f.clone()))]).unwrap();
    assert_eq!(direct, via_nrc);
    let Value::Set(result) = direct else { panic!() };
    assert_eq!(result.len(), 1);
    assert_eq!(result.get(&axml_uxml::leaf("end")), Nat(1));

    // shredding route on a (shallower) chain — Datalog iterations scale
    // with depth, keep it moderate
    let mut t2: Tree<Nat> = Tree::leaf("end");
    for _ in 0..40 {
        t2 = Tree::new(axml_uxml::Label::new("n"), Forest::unit(t2));
    }
    let f2 = Forest::unit(t2);
    let steps = [axml_core::ast::Step {
        axis: axml_core::ast::Axis::Descendant,
        test: axml_core::ast::NodeTest::Label(axml_uxml::Label::new("end")),
    }];
    let shredded = axml_relational::eval_steps_via_shredding(&f2, &steps).unwrap();
    assert_eq!(shredded.len(), 1);
}

#[test]
fn wide_flat_tree() {
    let mut kids: Forest<Nat> = Forest::new();
    for i in 0..2_000 {
        kids.insert(Tree::leaf(axml_uxml::Label::new(&format!("w{i}"))), Nat(1));
    }
    let f = Forest::unit(Tree::new("root", kids));
    let q = parse_query::<Nat>("$S/*").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(f))]).unwrap();
    let Value::Set(r) = out else { panic!() };
    assert_eq!(r.len(), 2_000);
}

#[test]
fn all_zero_annotations_vanish_everywhere() {
    let f = parse_forest::<Nat>("<a {0}> b </a> c {0}").unwrap();
    assert!(f.is_empty(), "zero-annotated roots are absent");
    let q = parse_query::<Nat>("$S//b").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(f))]).unwrap();
    assert!(out.as_set().unwrap().is_empty());
}

#[test]
fn huge_multiplicities_stay_exact() {
    // u128 headroom: 10^18 squared through a join-like query
    let big = Nat(1_000_000_000_000_000_000u128);
    let f = Forest::from_pairs([(Tree::<Nat>::leaf("x"), big)]);
    let q = parse_query::<Nat>("for $a in $S return for $b in $S return ($a)").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(f))]).unwrap();
    let Value::Set(r) = out else { panic!() };
    assert_eq!(
        r.get(&axml_uxml::leaf("x")),
        Nat(big.0.checked_mul(big.0).unwrap())
    );
}

#[test]
fn shadowing_across_nested_fors() {
    // $x rebound in the inner for must shadow the outer binding
    let f = parse_forest::<Nat>("<a> <b> c </b> </a>").unwrap();
    let q = parse_query::<Nat>("for $x in $S return for $x in ($x)/child::* return ($x)").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(f))]).unwrap();
    let Value::Set(r) = out else { panic!() };
    assert_eq!(r.len(), 1);
    assert_eq!(r.trees().next().unwrap().label().name(), "b");
}

#[test]
fn annotations_inside_constructed_elements_are_preserved() {
    // element construction must not disturb inner annotations
    let f = parse_forest::<NatPoly>("<r> <a {p}> v {q} </a> </r>").unwrap();
    let q = parse_query::<NatPoly>("element wrap { $S/a }").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(f))]).unwrap();
    let Value::Tree(t) = out else { panic!() };
    let a = t.children().trees().next().unwrap();
    assert_eq!(
        a.children().get(&axml_uxml::leaf("v")),
        "q".parse::<NatPoly>().unwrap()
    );
}

#[test]
fn semiring_generic_query_paths() {
    // the same query text runs in five semirings
    use axml_semiring::{Clearance, PosBool, Tropical};
    fn run<K: Semiring + axml_uxml::ParseAnnotation>(doc: &str) -> usize {
        let f = parse_forest::<K>(doc).unwrap();
        let q = parse_query::<K>("$S//leaf").unwrap();
        let out = eval_query(&q, &[("S", Value::Set(f))]).unwrap();
        out.as_set().unwrap().len()
    }
    assert_eq!(run::<Nat>("<a> <b {3}> leaf {2} </b> </a>"), 1);
    assert_eq!(run::<bool>("<a> <b {true}> leaf {true} </b> </a>"), 1);
    assert_eq!(run::<NatPoly>("<a> <b {x}> leaf {y} </b> </a>"), 1);
    assert_eq!(run::<Clearance>("<a> <b {S}> leaf {C} </b> </a>"), 1);
    assert_eq!(run::<PosBool>("<a> <b {u}> leaf {v} </b> </a>"), 1);
    let _ = Tropical::cost(0);
}

#[test]
fn product_semiring_tracks_jointly() {
    // §9: "recording jointly provenance, security, and uncertainty
    // (the product of several semirings is also a semiring!)" — run one
    // query with ℕ (multiplicity) × Clearance annotations and check
    // both components equal their separately-computed values.
    use axml_semiring::{Clearance, Product};
    type K = Product<Nat, Clearance>;

    let joint: Forest<K> = Forest::from_pairs([(
        Tree::new(
            "r",
            Forest::from_pairs([
                (Tree::leaf("x"), Product::new(Nat(2), Clearance::S)),
                (Tree::leaf("x2"), Product::new(Nat(1), Clearance::P)),
            ]),
        ),
        Product::new(Nat(1), Clearance::C),
    )]);
    let q = parse_query::<K>("$S/*").unwrap();
    let out = eval_query(&q, &[("S", Value::Set(joint.clone()))]).unwrap();
    let Value::Set(f) = out else { panic!() };
    // x: multiplicity 1·2 = 2; clearance max(C, S) = S
    let x_ann = f.get(&Tree::leaf("x"));
    assert_eq!(*x_ann.fst(), Nat(2));
    assert_eq!(*x_ann.snd(), Clearance::S);

    // each projection agrees with running the query in that component
    use axml_semiring::FnHom;
    let h1 = FnHom::new(|p: &K| *p.fst());
    let h2 = FnHom::new(|p: &K| *p.snd());
    let nat_only = eval_query(
        &axml_core::hom::map_surface(&h1, &q),
        &[("S", Value::Set(axml_uxml::hom::map_forest(&h1, &joint)))],
    )
    .unwrap();
    let clr_only = eval_query(
        &axml_core::hom::map_surface(&h2, &q),
        &[("S", Value::Set(axml_uxml::hom::map_forest(&h2, &joint)))],
    )
    .unwrap();
    let Value::Set(fn_) = nat_only else { panic!() };
    let Value::Set(fc) = clr_only else { panic!() };
    assert_eq!(fn_.get(&Tree::leaf("x")), *x_ann.fst());
    assert_eq!(fc.get(&Tree::leaf("x")), *x_ann.snd());
}
