//! Property-based verification of the paper's theorems and
//! propositions on randomized inputs.
//!
//! | Result | Property tested here |
//! |--------|----------------------|
//! | Thm 1 / Cor 1 | `H(p(v)) = H(p)(H(v))` for random queries, forests and homomorphisms |
//! | Thm 2 | shredded (Datalog) evaluation = direct evaluation for random step chains |
//! | Prop 1 | RA⁺ on K-relations = UXQuery on the encoding, random algebra terms |
//! | Prop 2 | provenance sizes within the `O(|v|^{|p|})` bound |
//! | Prop 3 | UXML-equivalent queries agree on distributive lattices (and *dis*agree on ℕ — pinning why the lattice hypothesis matters) |
//! | Prop 4 | NRC(RA⁺) on complex values = RA⁺ on K-relations |
//! | Prop 5 | the equational rewriter preserves semantics |

use axml_core::ast::{Axis, NodeTest, Step, SurfaceExpr};
use axml_core::{eval_query, eval_query_nrc, parse_query};
use axml_semiring::trio::collapse;
use axml_semiring::{Clearance, FnHom, Nat, NatPoly, PosBool, Semiring, Trio, Valuation, Var, Why};
use axml_uxml::hom::{map_forest, map_value};
use axml_uxml::{Forest, Label, Tree, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

const LABELS: [&str; 5] = ["a", "b", "c", "d", "e"];
const VARS: [&str; 4] = ["v1", "v2", "v3", "v4"];

fn arb_annotation() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        3 => proptest::sample::select(&VARS[..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..3).prop_map(NatPoly::from),
        1 => (proptest::sample::select(&VARS[..]), proptest::sample::select(&VARS[..]))
            .prop_map(|(x, y)| NatPoly::var_named(x).plus(&NatPoly::var_named(y))),
    ]
}

fn arb_tree(depth: u32) -> BoxedStrategy<Tree<NatPoly>> {
    if depth == 0 {
        proptest::sample::select(&LABELS[..])
            .prop_map(Tree::leaf)
            .boxed()
    } else {
        (
            proptest::sample::select(&LABELS[..]),
            proptest::collection::vec((arb_tree(depth - 1), arb_annotation()), 0..3),
        )
            .prop_map(|(l, kids)| Tree::new(l, Forest::from_pairs(kids)))
            .boxed()
    }
}

fn arb_forest() -> impl Strategy<Value = Forest<NatPoly>> {
    proptest::collection::vec((arb_tree(3), arb_annotation()), 1..3).prop_map(Forest::from_pairs)
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        prop_oneof![
            Just(Axis::SelfAxis),
            Just(Axis::Child),
            Just(Axis::Descendant),
            Just(Axis::StrictDescendant),
        ],
        prop_oneof![
            2 => proptest::sample::select(&LABELS[..])
                .prop_map(|l| NodeTest::Label(Label::new(l))),
            1 => Just(NodeTest::Wildcard),
        ],
    )
        .prop_map(|(axis, test)| Step { axis, test })
}

/// Random well-typed surface queries over the input `$S : {tree}`.
fn arb_query(depth: u32) -> BoxedStrategy<SurfaceExpr<NatPoly>> {
    let leaf = prop_oneof![
        3 => Just(SurfaceExpr::Var("S".into())),
        1 => Just(SurfaceExpr::Empty),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            // path step
            3 => (inner.clone(), arb_step())
                .prop_map(|(q, s)| SurfaceExpr::Path(Box::new(q), s)),
            // union
            1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                SurfaceExpr::Seq(Box::new(a), Box::new(b))
            }),
            // element wrap
            1 => (proptest::sample::select(&LABELS[..]), inner.clone()).prop_map(
                |(l, q)| SurfaceExpr::Element {
                    name: axml_core::ElementName::Static(Label::new(l)),
                    content: Box::new(q),
                }
            ),
            // annot
            1 => (arb_annotation(), inner.clone()).prop_map(|(k, q)| {
                SurfaceExpr::Annot(k, Box::new(q))
            }),
            // for $x in q return ($x)/step — iteration with reuse
            2 => (inner.clone(), arb_step()).prop_map(|(q, s)| SurfaceExpr::For {
                binders: vec![("x".into(), q)],
                where_eq: None,
                body: Box::new(SurfaceExpr::Path(
                    Box::new(SurfaceExpr::Paren(Box::new(SurfaceExpr::Var("x".into())))),
                    s,
                )),
            }),
            // conditional on the name of iterated trees
            1 => (inner.clone(), proptest::sample::select(&LABELS[..])).prop_map(
                |(q, l)| SurfaceExpr::For {
                    binders: vec![("y".into(), q)],
                    where_eq: None,
                    body: Box::new(SurfaceExpr::If {
                        l: Box::new(SurfaceExpr::Name(Box::new(SurfaceExpr::Var(
                            "y".into()
                        )))),
                        r: Box::new(SurfaceExpr::LabelLit(Label::new(l))),
                        then: Box::new(SurfaceExpr::Paren(Box::new(SurfaceExpr::Var(
                            "y".into()
                        )))),
                        els: Box::new(SurfaceExpr::Empty),
                    }),
                }
            ),
        ]
    })
    .boxed()
}

fn run_nat_poly(q: &SurfaceExpr<NatPoly>, v: &Forest<NatPoly>) -> Value<NatPoly> {
    eval_query(q, &[("S", Value::Set(v.clone()))]).expect("evaluates")
}

// ---------------------------------------------------------------------
// Theorem 1 / Corollary 1: commutation with homomorphisms
// ---------------------------------------------------------------------

fn check_cor1<K2, H>(q: &SurfaceExpr<NatPoly>, v: &Forest<NatPoly>, h: &H)
where
    K2: Semiring,
    H: axml_semiring::SemiringHom<NatPoly, K2>,
{
    // H(p(v))
    let lhs = map_value(h, &run_nat_poly(q, v));
    // H(p)(H(v))
    let hq = axml_core::hom::map_surface(h, q);
    let hv = map_forest(h, v);
    let rhs = eval_query(&hq, &[("S", Value::Set(hv))]).expect("evaluates");
    assert_eq!(lhs, rhs, "Corollary 1 violated for query {q:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cor1_valuation_into_nat(q in arb_query(3), v in arb_forest(),
                               k1 in 0u64..3, k2 in 0u64..3) {
        let val = Valuation::<Nat>::from_pairs([
            (Var::new("v1"), Nat::from(k1)),
            (Var::new("v2"), Nat::from(k2)),
            (Var::new("v3"), Nat::from(0u64)),
        ]);
        check_cor1(&q, &v, &FnHom::new(move |p: &NatPoly| p.eval(&val)));
    }

    #[test]
    fn cor1_valuation_into_bool(q in arb_query(3), v in arb_forest(),
                                bits in 0u8..16) {
        let val = Valuation::<bool>::from_pairs(
            VARS.iter()
                .enumerate()
                .map(|(i, name)| (Var::new(name), bits & (1 << i) != 0)),
        );
        check_cor1(&q, &v, &FnHom::new(move |p: &NatPoly| p.eval(&val)));
    }

    #[test]
    fn cor1_valuation_into_clearance(q in arb_query(3), v in arb_forest(),
                                     picks in proptest::collection::vec(0usize..5, 4)) {
        let levels = [
            Clearance::P,
            Clearance::C,
            Clearance::S,
            Clearance::T,
            Clearance::NEVER,
        ];
        let val = Valuation::<Clearance>::from_pairs(
            VARS.iter()
                .zip(picks.iter())
                .map(|(name, &i)| (Var::new(name), levels[i])),
        );
        check_cor1(&q, &v, &FnHom::new(move |p: &NatPoly| p.eval(&val)));
    }

    #[test]
    fn cor1_hierarchy_collapses(q in arb_query(3), v in arb_forest()) {
        check_cor1::<PosBool, _>(&q, &v, &FnHom::new(collapse::natpoly_to_posbool));
        check_cor1::<Why, _>(&q, &v, &FnHom::new(collapse::natpoly_to_why));
        check_cor1::<Trio, _>(&q, &v, &FnHom::new(collapse::natpoly_to_trio));
    }

    // -------------------------------------------------------------
    // Differential testing: the two semantics routes agree
    // -------------------------------------------------------------

    #[test]
    fn direct_and_nrc_semantics_agree(q in arb_query(3), v in arb_forest()) {
        let inputs = [("S", Value::Set(v))];
        let d = eval_query(&q, &inputs).expect("direct");
        let n = eval_query_nrc(&q, &inputs).expect("nrc");
        prop_assert_eq!(d, n);
    }

    // -------------------------------------------------------------
    // Theorem 2: shredding
    // -------------------------------------------------------------

    #[test]
    fn thm2_shredding_agrees(v in arb_forest(),
                             steps in proptest::collection::vec(arb_step(), 1..4)) {
        let shredded = axml_relational::eval_steps_via_shredding(&v, &steps)
            .expect("datalog converges on trees");
        let mut direct = v.clone();
        for s in &steps {
            direct = axml_core::eval_step(&direct, *s);
        }
        prop_assert_eq!(shredded, direct);
    }

    // -------------------------------------------------------------
    // Prop 2: size bound (empirical check of the O(|v|^{|p|}) claim)
    // -------------------------------------------------------------

    #[test]
    fn prop2_polynomial_sizes_bounded(v in arb_forest(),
                                      steps in proptest::collection::vec(arb_step(), 1..3)) {
        let mut q = SurfaceExpr::Var("S".into());
        for s in &steps {
            q = SurfaceExpr::Path(Box::new(q), *s);
        }
        let core = axml_core::elaborate(&q).expect("types");
        let p_size = core.size();
        let v_size: usize = v.size() + 1;
        let out = run_nat_poly(&q, &v);
        if let Value::Set(f) = out {
            let bound = (v_size as u64).pow(p_size as u32 + 1);
            for (_, k) in f.iter() {
                prop_assert!(
                    (k.size() as u64) <= bound,
                    "polynomial of size {} exceeds |v|^(|p|+1) = {}",
                    k.size(),
                    bound
                );
            }
        }
    }

    // -------------------------------------------------------------
    // Prop 3: distributive lattices
    // -------------------------------------------------------------

    #[test]
    fn prop3_equivalent_queries_agree_on_lattices(v in arb_forest(),
                                                  picks in proptest::collection::vec(0usize..5, 4)) {
        let levels = [
            Clearance::P,
            Clearance::C,
            Clearance::S,
            Clearance::T,
            Clearance::NEVER,
        ];
        let val = Valuation::<Clearance>::from_pairs(
            VARS.iter()
                .zip(picks.iter())
                .map(|(name, &i)| (Var::new(name), levels[i])),
        );
        let vc = map_forest(
            &FnHom::new(|p: &NatPoly| p.eval(&val)),
            &v,
        );
        // UXML-equivalent query pairs (equivalent over sets):
        let pairs = [
            // idempotence of union — NOT an ℕ-equivalence
            ("$S, $S", "$S"),
            // the paper's Fig 1 note: for-for ≡ /*/*
            (
                "for $t in $S return for $x in ($t)/child::* return ($x)/child::*",
                "$S/*/*",
            ),
            // self::* is the identity
            ("$S/self::*", "$S"),
            // filter then wildcard-descend ≡ direct label-descend
            ("$S/descendant::*/self::a", "$S/descendant::a"),
        ];
        for (lhs, rhs) in pairs {
            let ql = parse_query::<Clearance>(lhs).unwrap();
            let qr = parse_query::<Clearance>(rhs).unwrap();
            let ol = eval_query(&ql, &[("S", Value::Set(vc.clone()))]).unwrap();
            let or = eval_query(&qr, &[("S", Value::Set(vc.clone()))]).unwrap();
            prop_assert_eq!(ol, or, "Prop 3 violated for {} vs {}", lhs, rhs);
        }
    }
}

#[test]
fn prop3_fails_without_the_lattice_hypothesis() {
    // Union idempotence is a UXML equivalence but NOT an ℕ-equivalence:
    // this is exactly why Prop 3 requires a distributive lattice.
    let v = axml_uxml::parse_forest::<Nat>("a {1}").unwrap();
    let q1 = parse_query::<Nat>("$S, $S").unwrap();
    let q2 = parse_query::<Nat>("$S").unwrap();
    let o1 = eval_query(&q1, &[("S", Value::Set(v.clone()))]).unwrap();
    let o2 = eval_query(&q2, &[("S", Value::Set(v))]).unwrap();
    assert_ne!(o1, o2, "ℕ distinguishes $S,$S from $S (bag semantics)");
}

// ---------------------------------------------------------------------
// Prop 1 & Prop 4 on random relational instances
// ---------------------------------------------------------------------

fn arb_krelation(
    attrs: &'static [&'static str],
) -> impl Strategy<Value = axml_relational::KRelation<NatPoly>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::sample::select(&LABELS[..]), attrs.len()),
            arb_annotation(),
        ),
        0..4,
    )
    .prop_map(move |rows| {
        let mut rel =
            axml_relational::KRelation::new(axml_relational::Schema::new(attrs.iter().copied()));
        for (cols, k) in rows {
            rel.insert(
                cols.iter()
                    .map(|c| axml_relational::RelValue::label(c))
                    .collect(),
                k,
            );
        }
        rel
    })
}

fn arb_ra_query() -> impl Strategy<Value = axml_relational::RaExpr> {
    use axml_relational::RaExpr;
    prop_oneof![
        Just(RaExpr::rel("R").project(["A", "B"])),
        Just(RaExpr::rel("R").project(["B"])),
        Just(RaExpr::rel("R").select_label("B", "b")),
        Just(RaExpr::rel("R").project(["B", "C"]).union(RaExpr::rel("S"))),
        Just(
            RaExpr::rel("R")
                .project(["A", "B"])
                .join(RaExpr::rel("S"))
                .project(["A", "C"])
        ),
        Just(axml_relational::ra::fig5_query()),
        Just(RaExpr::rel("S").rename("B", "X")),
        Just(RaExpr::rel("R").select_eq("A", "B")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop1_ra_agrees_with_uxquery_on_encoding(
        r in arb_krelation(&["A", "B", "C"]),
        s in arb_krelation(&["B", "C"]),
        q in arb_ra_query(),
    ) {
        let db = axml_relational::Database::new().with("R", r).with("S", s);
        let expected = axml_relational::eval_ra(&q, &db).expect("RA+ evaluates");
        let v = axml_relational::encode_database(&db);
        let uxq = axml_relational::ra_to_uxquery(&q, &db).expect("translates");
        let out = eval_query(&uxq, &[("d", Value::Set(v))]).expect("evaluates");
        let Value::Set(forest) = out else { panic!("expected set") };
        let attrs: Vec<&str> = expected
            .schema()
            .attrs()
            .iter()
            .map(|s| s.as_str())
            .collect();
        let decoded = axml_relational::encode::decode_relation(&forest, &attrs)
            .expect("decodes");
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn prop4_nrc_encoding_agrees_with_ra(
        r in arb_krelation(&["A", "B", "C"]),
        s in arb_krelation(&["B", "C"]),
    ) {
        use axml_nrc::ra as nra;
        // Q = π_AC(π_AB(R) ⋈ (π_BC(R) ∪ S)) on both sides.
        let db = axml_relational::Database::new()
            .with("R", r.clone())
            .with("S", s.clone());
        let expected = axml_relational::eval_ra(&axml_relational::ra::fig5_query(), &db)
            .expect("RA+");

        let enc = |rel: &axml_relational::KRelation<NatPoly>| {
            let rows: Vec<(Vec<&str>, NatPoly)> = rel
                .iter()
                .map(|(t, k)| {
                    (
                        t.iter()
                            .map(|v| v.as_label().expect("labels").name())
                            .collect(),
                        k.clone(),
                    )
                })
                .collect();
            nra::encode_relation(&rows)
        };
        let pi_ab = nra::project(axml_nrc::expr::var("R"), &[0, 1], 3);
        let pi_bc = nra::project(axml_nrc::expr::var("R"), &[1, 2], 3);
        let right = nra::union(pi_bc, axml_nrc::expr::var("S"));
        let prod = nra::product(pi_ab, 2, right, 2);
        let joined = nra::select(prod, &nra::Pred::EqCols(1, 2), 4);
        let q = nra::project(joined, &[0, 3], 4);

        let mut env = axml_nrc::Env::from_bindings([
            ("R".to_owned(), enc(&r)),
            ("S".to_owned(), enc(&s)),
        ]);
        let out = axml_nrc::eval(&q, &mut env).expect("NRC evaluates");
        let rows = nra::decode_relation(&out, 2).expect("decodes");
        for (cols, k) in &rows {
            let strs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
            prop_assert_eq!(
                expected.get_labels(&strs),
                k.clone(),
                "Prop 4: annotation mismatch on {:?}", cols
            );
        }
        prop_assert_eq!(rows.len(), expected.len());
    }

    // -------------------------------------------------------------
    // Prop 5: the rewriter preserves semantics on compiled queries
    // -------------------------------------------------------------

    #[test]
    fn prop5_simplifier_preserves_query_semantics(q in arb_query(3), v in arb_forest()) {
        let core = axml_core::elaborate(&q).expect("types");
        let e = axml_core::compile(&core);
        let simplified = axml_nrc::axioms::simplify(&e);
        let mut env1 = axml_nrc::Env::from_bindings([(
            "S".to_owned(),
            axml_nrc::CValue::from_forest(&v),
        )]);
        let mut env2 = env1.clone();
        let o1 = axml_nrc::eval(&e, &mut env1).expect("original evaluates");
        let o2 = axml_nrc::eval(&simplified, &mut env2).expect("simplified evaluates");
        prop_assert_eq!(o1, o2);
    }
}

// ---------------------------------------------------------------------
// §5 for K = ℕ (repetitions) and compiled-query well-typedness
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Strong representation for ℕ over any *fixed family* of
    /// valuations (Cor 1 holds per valuation, so it holds for the
    /// family): worlds of the symbolic answer = answers of the worlds.
    #[test]
    fn strong_representation_for_nat_worlds(v in arb_forest(), max in 0u64..3) {
        let q = parse_query::<NatPoly>("element r { $S//c }").unwrap();
        let sym = eval_query(&q, &[("S", Value::Set(v.clone()))]).unwrap();
        let Value::Tree(t) = sym else { panic!() };
        let answer = Forest::unit(t);

        let vars = axml_worlds::forest_vars(&v);
        prop_assume!(vars.len() <= 4);
        let vals = axml_worlds::nat_valuations(&vars, max);

        // worlds of the symbolic answer
        let rhs: std::collections::BTreeSet<Forest<Nat>> =
            axml_worlds::mod_k(&answer, vals.clone());

        // answers of the worlds (the query carries no annot constants,
        // so it reads unchanged in ℕ)
        let qn = parse_query::<Nat>("element r { $S//c }").unwrap();
        let mut lhs = std::collections::BTreeSet::new();
        for val in vals {
            let world = axml_uxml::hom::specialize_forest(&v, &val);
            let out = eval_query(&qn, &[("S", Value::Set(world))]).unwrap();
            let Value::Tree(t) = out else { panic!() };
            lhs.insert(Forest::unit(t));
        }
        prop_assert_eq!(lhs, rhs);
    }

    /// Every compiled query typechecks in NRC at the type its UXQuery
    /// elaboration promised (Fig 3 ↔ §6.1 agreement).
    #[test]
    fn compiled_queries_typecheck(q in arb_query(3)) {
        use axml_nrc::typecheck::{typecheck, TypeContext};
        use axml_nrc::types::Type;
        let core = axml_core::elaborate(&q).expect("elaborates");
        let e = axml_core::compile(&core);
        let mut ctx = TypeContext::from_bindings(
            e.free_vars().into_iter().map(|v| (v, Type::tree_set())),
        );
        let got = typecheck(&e, &mut ctx)
            .unwrap_or_else(|err| panic!("compiled query ill-typed: {err}"));
        let expected = match core.ty {
            axml_core::QType::Label => Type::Label,
            axml_core::QType::Tree => Type::Tree,
            axml_core::QType::TreeSet => Type::tree_set(),
        };
        prop_assert_eq!(&got, &expected);

        // and the optimized form preserves the type
        let opt = axml_core::compile_optimized(&core);
        let mut ctx2 = TypeContext::from_bindings(
            opt.free_vars().into_iter().map(|v| (v, Type::tree_set())),
        );
        prop_assert_eq!(typecheck(&opt, &mut ctx2).unwrap(), expected);
    }
}
