//! `axml query --format json` end-to-end: the output must be one line
//! of well-formed JSON with the documented shape, across the engine
//! path and the static-semiring fallbacks.

use std::process::Command;

fn run_axml(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_axml"))
        .args(args)
        .output()
        .expect("axml binary runs");
    assert!(
        out.status.success(),
        "axml {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// A whole-value JSON well-formedness check: brackets balance outside
/// strings, strings terminate, no trailing garbage. (No serde in this
/// environment; this is the same hand-rolled level of validation the
/// bench-regression parser applies.)
fn assert_well_formed_json(text: &str) {
    let line = text.trim();
    let bytes = line.as_bytes();
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    let mut closed_at = None;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close at byte {i} in {line}");
                if depth == 0 {
                    closed_at = Some(i);
                }
            }
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string in {line}");
    assert_eq!(depth, 0, "unbalanced brackets in {line}");
    assert_eq!(
        closed_at,
        Some(bytes.len() - 1),
        "trailing garbage in {line}"
    );
}

#[test]
fn engine_route_emits_json() {
    let out = run_axml(&[
        "query",
        "--format",
        "json",
        "--semiring",
        "nat",
        "--route",
        "differential",
        "--text",
        "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
        "element p { $S/*/* }",
    ]);
    assert_well_formed_json(&out);
    for needle in [
        "\"query\":",
        "\"semiring\":\"nat\"",
        "\"route\":\"differential\"",
        "\"result\":",
        "\"label\":\"d\",\"annotation\":\"2\"",
    ] {
        assert!(out.contains(needle), "missing {needle} in {out}");
    }
}

#[test]
fn symbolic_annotations_are_strings() {
    let out = run_axml(&[
        "query",
        "--format",
        "json",
        "--text",
        "<a> b {2*x + y} </a>",
        "$S/b",
    ]);
    assert_well_formed_json(&out);
    assert!(out.contains("\"annotation\":\"y + 2*x\""), "{out}");
}

#[test]
fn static_semiring_fallbacks_emit_json() {
    // PosBool DNF documents and the bool/clearance semirings bypass
    // the ℕ[X] engine store; `--format json` must cover them too.
    for (semiring, doc) in [
        ("posbool", "<a> b {x | y&z} </a>"),
        ("bool", "<a> b </a>"),
        ("clearance", "<a> b {C} </a>"),
    ] {
        let out = run_axml(&[
            "query",
            "--format",
            "json",
            "--semiring",
            semiring,
            "--text",
            doc,
            "$S/b",
        ]);
        assert_well_formed_json(&out);
        assert!(out.contains("\"label\":\"b\""), "{semiring}: {out}");
    }
}

#[test]
fn text_only_commands_reject_json() {
    // parse/shred/worlds have no JSON rendering; asking for one must
    // error, not silently emit text into a JSON consumer.
    for cmd in ["parse", "shred", "worlds"] {
        let mut args = vec![cmd, "--format", "json", "--text", "<a> b {x} </a>"];
        if cmd == "shred" {
            args.push("//b");
        }
        let out = Command::new(env!("CARGO_BIN_EXE_axml"))
            .args(&args)
            .output()
            .expect("axml binary runs");
        assert!(!out.status.success(), "{cmd} --format json must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("text-only"),
            "{cmd} error names the limitation"
        );
    }
}

#[test]
fn unknown_format_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_axml"))
        .args(["query", "--format", "yaml", "--text", "a", "$S"])
        .output()
        .expect("axml binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown format"));
}

#[test]
fn stats_flag_appends_a_scheduler_line() {
    // `--stats` appends a separate scheduler-counters line; the result
    // line itself must stay byte-identical to a run without the flag.
    let base = run_axml(&[
        "query",
        "--format",
        "json",
        "--semiring",
        "nat",
        "--text",
        "<a {z}> b {x} c {y} </a>",
        "$S/*",
    ]);
    let out = run_axml(&[
        "query",
        "--format",
        "json",
        "--stats",
        "--semiring",
        "nat",
        "--text",
        "<a {z}> b {x} c {y} </a>",
        "$S/*",
    ]);
    let mut lines = out.lines();
    let result = lines.next().expect("result line");
    let stats = lines.next().expect("stats line");
    assert_eq!(result, base.trim_end(), "--stats must not alter the result");
    assert_well_formed_json(stats);
    for needle in [
        "\"scheduler\":",
        "\"workers\":",
        "\"lanes\":",
        "\"queued_cheap\":",
        "\"queued_normal\":",
        "\"queued_expensive\":",
        "\"queued_deques\":",
        "\"executed_owned\":",
        "\"executed_helped\":",
        "\"executed_stolen\":",
        "\"executed_injected\":",
        "\"max_queue_residency_ns\":",
    ] {
        assert!(stats.contains(needle), "missing {needle} in {stats}");
    }

    // Text mode gets a human-readable line with the same counters.
    let out = run_axml(&[
        "query",
        "--stats",
        "--semiring",
        "nat",
        "--text",
        "<a {z}> b {x} </a>",
        "$S/b",
    ]);
    assert!(out.contains("scheduler: workers="), "{out}");
}

#[test]
fn edit_applies_scripts_and_reports_stats() {
    // Text mode: edited document + a stats line + the query result.
    let out = run_axml(&[
        "edit",
        "--text",
        "<a {z}> <b {x1}> d {y1} </b> </a>",
        "--ops",
        "insert /0 c {w}\nreannotate /0/0/0 3",
        "--semiring",
        "nat",
        "$S//c",
    ]);
    assert!(out.contains("c {w}"), "{out}");
    assert!(out.contains("edit: version 1 | 2 op(s)"), "{out}");
    assert!(out.trim_end().ends_with("(c)"), "{out}");

    // JSON mode: one stats object, then the standard result object.
    let out = run_axml(&[
        "edit",
        "--format",
        "json",
        "--text",
        "<a {z}> <b {x1}> d {y1} </b> </a>",
        "--ops",
        "delete /0/0",
        "--semiring",
        "nat",
        "--route",
        "shredded",
        "$S//d",
    ]);
    let mut lines = out.lines();
    let stats = lines.next().expect("stats line");
    let result = lines.next().expect("result line");
    assert_well_formed_json(stats);
    assert_well_formed_json(result);
    assert!(stats.contains("\"version\":1"), "{stats}");
    assert!(stats.contains("\"ops_applied\":1"), "{stats}");
    assert!(result.contains("\"route\":\"shredded\""), "{result}");

    // A bad script is a clean error, not a panic.
    let out = Command::new(env!("CARGO_BIN_EXE_axml"))
        .args(["edit", "--text", "<a> b </a>", "--ops", "delete /7"])
        .output()
        .expect("axml binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("out of range"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
