//! Exact reproduction of every worked figure/example in the paper.
//!
//! Each test builds the figure's source data, runs the figure's query
//! through our semantics, and compares the *symbolic provenance
//! polynomials* (not just shapes) against the values printed in the
//! paper. Where the two semantics routes differ in cost (direct vs
//! NRC-compiled), both are exercised.

use annotated_xml::prelude::*;
use axml_core::{eval_query, eval_query_nrc, parse_query, run_query};
use axml_relational::encode::{decode_relation, encode_database, ra_to_uxquery};
use axml_relational::ra::{eval_ra, fig5_query, Database};
use axml_relational::{KRelation, Schema};
use axml_uxml::{leaf, parse_forest, Forest, Value};

fn np(s: &str) -> NatPoly {
    s.parse().unwrap()
}

// ---------------------------------------------------------------------
// Figure 1: the simple `for` example
// ---------------------------------------------------------------------

fn fig1_source() -> Forest<NatPoly> {
    parse_forest("<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>").unwrap()
}

const FIG1_QUERY: &str =
    "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }";

#[test]
fn fig1_simple_for_example() {
    let out = run_query::<NatPoly>(FIG1_QUERY, &[("S", Value::Set(fig1_source()))]).unwrap();
    let Value::Tree(t) = out else {
        panic!("expected tree")
    };
    assert_eq!(t.label().name(), "p");
    assert_eq!(t.children().len(), 2);
    // d^{z·x1·y1 + z·x2·y2}, e^{z·x2·y3}
    assert_eq!(t.children().get(&leaf("d")), np("z*x1*y1 + z*x2*y2"));
    assert_eq!(t.children().get(&leaf("e")), np("z*x2*y3"));
}

#[test]
fn fig1_both_semantics_agree() {
    let q = parse_query::<NatPoly>(FIG1_QUERY).unwrap();
    let inputs = [("S", Value::Set(fig1_source()))];
    assert_eq!(
        eval_query(&q, &inputs).unwrap(),
        eval_query_nrc(&q, &inputs).unwrap()
    );
}

// ---------------------------------------------------------------------
// §3: annot / union examples
// ---------------------------------------------------------------------

#[test]
fn section3_singleton_and_annot() {
    // (p1) gives annotation 1; annot k1 (p1) gives k1·1 = k1
    let out = run_query::<NatPoly>("(element a1 {()})", &[]).unwrap();
    let Value::Set(f) = out else { panic!() };
    assert_eq!(f.get(&leaf("a1")), NatPoly::one());

    let out = run_query::<NatPoly>("annot {k1} (element a1 {()})", &[]).unwrap();
    let Value::Set(f) = out else { panic!() };
    assert_eq!(f.get(&leaf("a1")), np("k1"));
}

#[test]
fn section3_union_same_and_different_labels() {
    // same label: b[a^{k1+k2}]; different: b[a1^{k1}, a2^{k2}]
    let same = run_query::<NatPoly>(
        "element b { annot {k1} (element a {()}), annot {k2} (element a {()}) }",
        &[],
    )
    .unwrap();
    let Value::Tree(t) = same else { panic!() };
    assert_eq!(t.children().len(), 1);
    assert_eq!(t.children().get(&leaf("a")), np("k1 + k2"));

    let diff = run_query::<NatPoly>(
        "element b { annot {k1} (element a1 {()}), annot {k2} (element a2 {()}) }",
        &[],
    )
    .unwrap();
    let Value::Tree(t) = diff else { panic!() };
    assert_eq!(t.children().len(), 2);
    assert_eq!(t.children().get(&leaf("a1")), np("k1"));
    assert_eq!(t.children().get(&leaf("a2")), np("k2"));
}

// ---------------------------------------------------------------------
// Figure 4: XPath //c
// ---------------------------------------------------------------------

fn fig4_source() -> Forest<NatPoly> {
    parse_forest(
        "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
    )
    .unwrap()
}

#[test]
fn fig4_xpath_example() {
    let out =
        run_query::<NatPoly>("element r { $T//c }", &[("T", Value::Set(fig4_source()))]).unwrap();
    let Value::Tree(t) = out else { panic!() };
    assert_eq!(t.children().len(), 2);
    // q1 = x1·y3 + y1·y2 on the leaf c
    assert_eq!(t.children().get(&leaf("c")), np("x1*y3 + y1*y2"));
    // the c{y1}-subtree, annotated y1, with its structure intact
    let c_subtree = parse_forest::<NatPoly>("<c> <d> <a> c {y2} b {x2} </a> </d> </c>")
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone();
    assert_eq!(t.children().get(&c_subtree), np("y1"));
}

#[test]
fn fig4_via_nrc_srt() {
    let q = parse_query::<NatPoly>("element r { $T//c }").unwrap();
    let inputs = [("T", Value::Set(fig4_source()))];
    assert_eq!(
        eval_query(&q, &inputs).unwrap(),
        eval_query_nrc(&q, &inputs).unwrap()
    );
}

// ---------------------------------------------------------------------
// Figure 5: the relational example, on both sides of Prop 1
// ---------------------------------------------------------------------

fn fig5_db() -> Database<NatPoly> {
    let r = KRelation::from_label_rows(
        Schema::new(["A", "B", "C"]),
        [
            (vec!["a", "b", "c"], np("x1")),
            (vec!["d", "b", "e"], np("x2")),
            (vec!["f", "g", "e"], np("x3")),
        ],
    );
    let s = KRelation::from_label_rows(
        Schema::new(["B", "C"]),
        [(vec!["b", "c"], np("x4")), (vec!["g", "c"], np("x5"))],
    );
    Database::new().with("R", r).with("S", s)
}

/// The Fig 5 view as written in the paper.
const FIG5_UXQUERY: &str = r#"
    let $r := $d/R/*,
        $rAB := for $t in $r return <t> { $t/A, $t/B } </t>,
        $rBC := for $t in $r return <t> { $t/B, $t/C } </t>,
        $s := $d/S/*
    return
      <Q> { for $x in $rAB, $y in ($rBC, $s)
            where $x/B = $y/B
            return <t> { $x/A, $y/C } </t> } </Q>"#;

#[test]
fn fig5_relational_side() {
    let out = eval_ra(&fig5_query(), &fig5_db()).unwrap();
    assert_eq!(out.len(), 6);
    assert_eq!(out.get_labels(&["a", "c"]), np("x1^2 + x1*x4"));
    assert_eq!(out.get_labels(&["a", "e"]), np("x1*x2"));
    assert_eq!(out.get_labels(&["d", "c"]), np("x1*x2 + x2*x4"));
    assert_eq!(out.get_labels(&["d", "e"]), np("x2^2"));
    assert_eq!(out.get_labels(&["f", "c"]), np("x3*x5"));
    assert_eq!(out.get_labels(&["f", "e"]), np("x3^2"));
}

#[test]
fn fig5_uxquery_side_matches_paper_and_prop1() {
    // run the paper's hand-written UXQuery over the encoded database
    let v = encode_database(&fig5_db());
    let out = run_query::<NatPoly>(FIG5_UXQUERY, &[("d", Value::Set(v.clone()))]).unwrap();
    let Value::Tree(q) = out else { panic!() };
    assert_eq!(q.label().name(), "Q");
    let decoded = decode_relation(q.children(), &["A", "C"]).unwrap();
    let expected = eval_ra(&fig5_query(), &fig5_db()).unwrap();
    assert_eq!(decoded, expected, "Prop 1 on Fig 5");

    // and the mechanical RA⁺→UXQuery translation agrees too
    let auto = ra_to_uxquery(&fig5_query(), &fig5_db()).unwrap();
    let out2 = eval_query(&auto, &[("d", Value::Set(v))]).unwrap();
    let Value::Set(f2) = out2 else { panic!() };
    assert_eq!(decode_relation(&f2, &["A", "C"]).unwrap(), expected);
}

// ---------------------------------------------------------------------
// Figure 6: extended annotations
// ---------------------------------------------------------------------

fn fig6_source() -> Forest<NatPoly> {
    parse_forest(
        r#"<D>
             <R {w1}>
               <t {x1}> <A {y1}> a </A> <B {y2}> b {z1} </B> <C {y3}> c </C> </t>
               <t {x2}> <A {y1}> d </A> <B {y2}> b {z2} </B> <C {y3}> e {z3} </C> </t>
               <t {x3}> <A {y1}> f </A> <B {y2}> g {z4} </B> <C {y3}> e {z5} </C> </t>
             </R>
             <S>
               <t {x4}> <B {y5}> b {z6} </B> <C {y6}> c </C> </t>
               <t {x5}> <B {y5}> g {z7} </B> <C {y6}> c </C> </t>
             </S>
           </D>"#,
    )
    .unwrap()
}

/// Build the expected Fig 6 answer tuple `<t>{<A{y1}>α</A>, <C{yc}>γ</C>}</t>`.
fn fig6_tuple(a: &str, c_ann: &str, c_val: &str, c_val_ann: &str) -> axml_uxml::Tree<NatPoly> {
    let src = format!("<t> <A {{y1}}> {a} </A> <C {{{c_ann}}}> {c_val} {{{c_val_ann}}} </C> </t>");
    parse_forest::<NatPoly>(&src)
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone()
}

#[test]
fn fig6_extended_annotations() {
    let out = run_query::<NatPoly>(FIG5_UXQUERY, &[("d", Value::Set(fig6_source()))]).unwrap();
    let Value::Tree(q) = out else { panic!() };
    assert_eq!(q.label().name(), "Q");
    let answers = q.children();
    assert_eq!(answers.len(), 8, "Fig 6 has 8 distinguishable tuples");

    // q1..q8 exactly as printed in the paper
    let cases = [
        // (tuple, expected polynomial)
        (fig6_tuple("a", "y6", "c", "1"), "w1*x1*x4*y2*y5*z1*z6"), // q1
        (fig6_tuple("a", "y3", "c", "1"), "w1^2*x1^2*y2^2*z1^2"),  // q2
        (fig6_tuple("a", "y3", "e", "z3"), "w1^2*x1*x2*y2^2*z1*z2"), // q3
        (fig6_tuple("d", "y6", "c", "1"), "w1*x2*x4*y2*y5*z2*z6"), // q4
        (fig6_tuple("d", "y3", "c", "1"), "w1^2*x1*x2*y2^2*z1*z2"), // q5
        (fig6_tuple("d", "y3", "e", "z3"), "w1^2*x2^2*y2^2*z2^2"), // q6
        (fig6_tuple("f", "y6", "c", "1"), "w1*x3*x5*y2*y5*z4*z7"), // q7
        (fig6_tuple("f", "y3", "e", "z5"), "w1^2*x3^2*y2^2*z4^2"), // q8
    ];
    for (i, (tuple, expected)) in cases.iter().enumerate() {
        assert_eq!(
            answers.get(tuple),
            np(expected),
            "q{} mismatch for tuple {tuple}",
            i + 1
        );
    }
}

#[test]
fn fig6_collapses_to_fig5_when_extra_annotations_are_one() {
    // "we can obtain the answer shown in Figure 5 simply by setting all
    // the indeterminates except for x1..x5 to 1"
    let out = run_query::<NatPoly>(FIG5_UXQUERY, &[("d", Value::Set(fig6_source()))]).unwrap();
    let Value::Tree(q) = out else { panic!() };
    let keep = ["x1", "x2", "x3", "x4", "x5"];
    let subst: std::collections::BTreeMap<Var, NatPoly> = axml_worlds::forest_vars(q.children())
        .into_iter()
        .filter(|v| !keep.contains(&v.name()))
        .map(|v| (v, NatPoly::one()))
        .collect();
    let collapsed = axml_uxml::hom::substitute_forest(q.children(), &subst);
    let decoded = decode_relation(&collapsed, &["A", "C"]).unwrap();
    let expected = eval_ra(&fig5_query(), &fig5_db()).unwrap();
    assert_eq!(decoded, expected);
}

// ---------------------------------------------------------------------
// Figure 7: security clearances
// ---------------------------------------------------------------------

#[test]
fn fig7_security_clearances() {
    // Valuation w1 := C, x2 := S, y5 := T, rest P (= 1).
    let val = Valuation::<Clearance>::from_pairs([
        (Var::new("w1"), Clearance::C),
        (Var::new("x2"), Clearance::S),
        (Var::new("y5"), Clearance::T),
    ]);
    // Route 1 (Corollary 1): evaluate symbolically, then specialize.
    let sym = run_query::<NatPoly>(FIG5_UXQUERY, &[("d", Value::Set(fig6_source()))]).unwrap();
    let Value::Tree(q) = sym else { panic!() };
    let specialized = axml_uxml::hom::specialize_forest(q.children(), &val);

    // Route 2: specialize the source, evaluate in the clearance semiring.
    let source_c = axml_uxml::hom::specialize_forest(&fig6_source(), &val);
    let direct = run_query::<Clearance>(FIG5_UXQUERY, &[("d", Value::Set(source_c))]).unwrap();
    let Value::Tree(qc) = direct else { panic!() };
    assert_eq!(specialized, qc.children().clone(), "Corollary 1 (Fig 7)");

    // The paper's table. With all inner annotations P = 1 the trees
    // collapse to plain tuples; 6 remain.
    let answers = qc.children();
    assert_eq!(answers.len(), 6);
    let tuple = |a: &str, c: &str| {
        parse_forest::<Clearance>(&format!("<t> <A> {a} </A> <C> {c} </C> </t>"))
            .unwrap()
            .trees()
            .next()
            .unwrap()
            .clone()
    };
    assert_eq!(answers.get(&tuple("a", "c")), Clearance::C);
    assert_eq!(answers.get(&tuple("a", "e")), Clearance::S);
    assert_eq!(answers.get(&tuple("d", "c")), Clearance::S);
    assert_eq!(answers.get(&tuple("d", "e")), Clearance::S);
    assert_eq!(answers.get(&tuple("f", "c")), Clearance::T);
    assert_eq!(answers.get(&tuple("f", "e")), Clearance::C);
}

#[test]
fn fig7_visibility_consequences() {
    // "confidential clearance gives access to the first and last tuple,
    // secret clearance to all but the fifth tuple"
    use axml_semiring::clearance::ClearanceLevel;
    let clearances = [
        Clearance::C, // (a,c)
        Clearance::S, // (a,e)
        Clearance::S, // (d,c)
        Clearance::S, // (d,e)
        Clearance::T, // (f,c)
        Clearance::C, // (f,e)
    ];
    let visible_at = |lvl: ClearanceLevel| clearances.iter().filter(|c| c.visible_at(lvl)).count();
    assert_eq!(visible_at(ClearanceLevel::Confidential), 2);
    assert_eq!(visible_at(ClearanceLevel::Secret), 5);
    assert_eq!(visible_at(ClearanceLevel::TopSecret), 6);
    assert_eq!(visible_at(ClearanceLevel::Public), 0);
}

// ---------------------------------------------------------------------
// §5: possible worlds (see axml-worlds unit tests for the full set) and
// §7: shredding (see axml-relational) — cross-checked here end-to-end.
// ---------------------------------------------------------------------

#[test]
fn section7_shredding_agrees_with_fig4() {
    use axml_core::ast::{Axis, NodeTest, Step};
    let steps = [Step {
        axis: Axis::Descendant,
        test: NodeTest::Label(axml_uxml::Label::new("c")),
    }];
    let via_shred = axml_relational::eval_steps_via_shredding(&fig4_source(), &steps).unwrap();
    let direct = axml_core::eval_step(&fig4_source(), steps[0]);
    assert_eq!(via_shred, direct);
    assert_eq!(via_shred.get(&leaf("c")), np("x1*y3 + y1*y2"));
}

#[test]
fn section5_worlds_roundtrip_through_query() {
    // The §5 pipeline at integration level: representation → symbolic
    // answer → worlds of the answer = answers of the worlds.
    let repr = parse_forest::<NatPoly>(
        "<a> <b> <a> c {fy3} d </a> </b> <c {fy1}> <d> <a> c {fy2} b </a> </d> </c> </a>",
    )
    .unwrap();
    let sym =
        run_query::<NatPoly>("element r { $T//c }", &[("T", Value::Set(repr.clone()))]).unwrap();
    let Value::Tree(t) = sym else { panic!() };
    let rhs = axml_worlds::mod_bool(&Forest::unit(t));
    let mut lhs = std::collections::BTreeSet::new();
    for w in axml_worlds::mod_bool(&repr) {
        let o = run_query::<bool>("element r { $T//c }", &[("T", Value::Set(w))]).unwrap();
        let Value::Tree(t) = o else { panic!() };
        lhs.insert(Forest::unit(t));
    }
    assert_eq!(lhs, rhs);
}
