//! A minimal scoped worker pool — the workspace's only parallelism
//! substrate.
//!
//! The build environment has no crates.io access, so this crate
//! provides the rayon-shaped subset the evaluation stack needs, on
//! `std` alone:
//!
//! - [`Pool::scope`] / [`Scope::spawn`]: structured fork-join over
//!   **borrowed** data. A scope does not return until every task it
//!   spawned has finished, so tasks may capture references to the
//!   caller's stack frame (the same guarantee as `std::thread::scope`,
//!   without spawning a thread per task).
//! - [`Pool::join`]: the two-way special case; runs one closure inline
//!   on the calling thread while the other is up for grabs.
//! - [`Pool::map_slice`] / [`Pool::map_chunks`] / [`Pool::reduce`]:
//!   order-preserving data-parallel helpers built on `scope`.
//! - [`Parallelism`]: the runtime knob every evaluation entry point
//!   takes. `Parallelism::sequential()` (the default everywhere) means
//!   the pool is never touched — single-threaded callers pay nothing.
//!
//! # Scheduling
//!
//! Each worker owns a deque behind its own mutex: the owner pushes and
//! pops at the back (LIFO keeps the working set warm), thieves and the
//! external injector are FIFO at the front — mutex-per-deque
//! work-stealing rather than a lock-free Chase–Lev deque, which keeps
//! the implementation small and obviously correct at the cost of an
//! uncontended lock per queue operation (µs-scale tasks; fine for the
//! chunk sizes the evaluators use).
//!
//! **Scope affinity.** Every scope gets a process-unique id and
//! carries its full ancestry path (root scope first); every spawned
//! task is tagged with the spawning scope's path. Worker threads in
//! their main loop run *anything* — that is the throughput path. But a
//! thread *waiting* on a scope (inside [`Pool::scope`] or
//! [`Pool::join`]) helps only with tasks whose path contains its own
//! scope id: its own tasks, or tasks of scopes transitively nested
//! inside it. It never executes a foreign request's work, so a cheap
//! request's critical path can no longer be captured by a stranger's
//! multi-millisecond task. Helping stays deadlock-free by induction:
//! every pending task of the waiter's subtree is either queued — and
//! therefore claimable by the waiter itself — or already running on
//! some thread, whose own nested waits only ever involve deeper
//! subtrees of the same scope.
//!
//! **Priority lanes.** The injector is not one global FIFO but a set
//! of per-root-scope FIFO lanes, each classified [`Lane::Cheap`],
//! [`Lane::Normal`] or [`Lane::Expensive`]. Unrestricted consumers
//! (worker main loops) drain cheap-class lanes first, then normal,
//! then expensive, round-robin *within* a class so concurrent requests
//! of the same class share fairly. An **aging tick** bounds starvation:
//! every eighth injector pop (`AGING_TICK`) ignores class priority and
//! serves the lane whose front task has waited longest, so an
//! expensive lane always makes progress under sustained cheap load.
//! Empty lanes are removed eagerly; an idle pool holds no lane state.
//!
//! **Steal order.** A waiting thread looks for affine work in this
//! order: its own deque (newest first), then its root scope's injector
//! lanes, then other workers' deques (oldest first). Checking the
//! injector *before* foreign deques is deliberate — a waiter whose own
//! scope has runnable work queued must take that work rather than
//! scanning other deques first.
//!
//! Lane classification is inherited: a nested scope adopts its parent
//! scope's lane; a scope opened outside any task adopts the thread's
//! [`with_lane`] hint, defaulting to [`Lane::Normal`].
//! [`Pool::scope_in`] overrides explicitly. [`Pool::stats`] snapshots
//! scheduling counters ([`PoolStats`]): queue depths per lane class,
//! owned vs helped vs stolen vs injected executions, and the maximum
//! queue residency ever observed.
//!
//! # Panics
//!
//! A panicking task does not poison the pool: the payload is captured,
//! every sibling task still runs, and the first payload is re-raised
//! on the scope-owning thread once the scope is drained (mirroring
//! `std::thread::scope`).
//!
//! # Safety
//!
//! The single `unsafe` block erases the scope lifetime of a spawned
//! closure (`Box<dyn FnOnce + 'scope>` → `'static`) so it can sit in
//! the shared queues. Soundness rests on the structured-concurrency
//! invariant, which `scope` enforces even when the scope body panics:
//! no closure outlives the `scope` call that spawned it.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// A queued unit of work. Lifetime-erased; see the module docs.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle thread sleeps per condvar wait. Wakeups are
/// delivered by notification (pushes, completions and shutdown all
/// notify under the `idle` mutex), so this is a safety bound against
/// unforeseen missed-wakeup bugs — not a polling period; an idle pool
/// wakes each worker only ~10×/sec.
const IDLE_WAIT: Duration = Duration::from_millis(100);

/// Every `AGING_TICK`-th unrestricted injector pop ignores lane class
/// priority and serves the lane whose front task has waited longest —
/// the starvation bound for expensive lanes under sustained cheap
/// load (an expensive task is delayed by at most `AGING_TICK - 1`
/// higher-priority pops per consumer).
const AGING_TICK: u64 = 8;

/// Priority class of a scope's injector lane. Order matters: lower
/// classes are drained first by unrestricted consumers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// Latency-sensitive work: drained before everything else.
    Cheap,
    /// The default class for work with no hint.
    #[default]
    Normal,
    /// Long-running/throughput work: drained last (but never starved —
    /// see the aging tick in the module docs).
    Expensive,
}

impl Lane {
    /// Stable lower-case name (`"cheap"` / `"normal"` / `"expensive"`),
    /// used by stats surfaces.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Cheap => "cheap",
            Lane::Normal => "normal",
            Lane::Expensive => "expensive",
        }
    }
}

/// Process-wide scope id allocator (never 0; ids are unique across
/// pools so nested scopes compose even when they span pools).
static NEXT_SCOPE_ID: AtomicU64 = AtomicU64::new(1);

/// One queued task: the erased job plus its scheduling tag.
struct Task {
    job: Job,
    /// Root-first ancestry path of the spawning scope. A waiter with
    /// scope id `s` may run this task iff `path` contains `s`.
    path: Arc<[u64]>,
    /// Lane class inherited from the spawning scope.
    lane: Lane,
    /// When the task entered a queue — measures queue residency.
    enqueued: Instant,
}

impl Task {
    fn affine_to(&self, scope: u64) -> bool {
        self.path.contains(&scope)
    }
}

/// One FIFO lane of the injector: all external submissions of one root
/// scope in one lane class.
struct LaneQueue {
    root: u64,
    class: Lane,
    queue: VecDeque<Task>,
}

/// The external submission queue: per-root-scope lanes with class
/// priority, round-robin within a class, and an aging tick. All state
/// lives behind one mutex (uncontended in the common case — workers
/// mostly trade through their deques).
struct Injector {
    lanes: Vec<LaneQueue>,
    /// Round-robin cursor across lanes of the class being drained.
    rr: usize,
    /// Unrestricted pop counter driving the aging tick.
    pops: u64,
}

impl Injector {
    fn new() -> Self {
        Injector {
            lanes: Vec::new(),
            rr: 0,
            pops: 0,
        }
    }

    fn push(&mut self, task: Task) {
        let (root, class) = (task.path[0], task.lane);
        if let Some(l) = self
            .lanes
            .iter_mut()
            .find(|l| l.root == root && l.class == class)
        {
            l.queue.push_back(task);
        } else {
            let mut queue = VecDeque::new();
            queue.push_back(task);
            self.lanes.push(LaneQueue { root, class, queue });
        }
    }

    fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    fn has_affine(&self, root: u64, scope: u64) -> bool {
        self.lanes
            .iter()
            .any(|l| l.root == root && l.queue.iter().any(|t| t.affine_to(scope)))
    }

    fn take_front(&mut self, idx: usize) -> Option<Task> {
        let t = self.lanes[idx].queue.pop_front();
        if self.lanes[idx].queue.is_empty() {
            self.lanes.remove(idx);
        }
        t
    }

    /// Unrestricted pop: aging tick, then class priority with
    /// round-robin within the class.
    fn pop_any(&mut self) -> Option<Task> {
        if self.lanes.is_empty() {
            return None;
        }
        self.pops = self.pops.wrapping_add(1);
        if self.pops.is_multiple_of(AGING_TICK) {
            if let Some(idx) = self
                .lanes
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.queue.is_empty())
                .min_by_key(|(_, l)| l.queue.front().map(|t| t.enqueued))
                .map(|(i, _)| i)
            {
                return self.take_front(idx);
            }
            return None;
        }
        for class in [Lane::Cheap, Lane::Normal, Lane::Expensive] {
            let candidates: Vec<usize> = self
                .lanes
                .iter()
                .enumerate()
                .filter(|(_, l)| l.class == class && !l.queue.is_empty())
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = candidates[self.rr % candidates.len()];
            self.rr = self.rr.wrapping_add(1);
            return self.take_front(pick);
        }
        None
    }

    /// Restricted pop for a waiter: oldest queued task of the waiter's
    /// own scope subtree, looking only at its root scope's lanes.
    fn pop_affine(&mut self, root: u64, scope: u64) -> Option<Task> {
        for idx in 0..self.lanes.len() {
            if self.lanes[idx].root != root {
                continue;
            }
            if let Some(pos) = self.lanes[idx]
                .queue
                .iter()
                .position(|t| t.affine_to(scope))
            {
                let t = self.lanes[idx].queue.remove(pos);
                if self.lanes[idx].queue.is_empty() {
                    self.lanes.remove(idx);
                }
                return t;
            }
        }
        None
    }
}

/// Execution counters (monotone since pool creation). Relaxed atomics:
/// these are observability, not synchronization.
#[derive(Default)]
struct Counters {
    owned: AtomicU64,
    helped: AtomicU64,
    stolen: AtomicU64,
    injected: AtomicU64,
    max_residency_ns: AtomicU64,
}

/// A point-in-time snapshot of a pool's scheduling state, from
/// [`Pool::stats`]. Queue depths are instantaneous; execution counters
/// are monotone since pool creation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Injector lanes currently live (empty lanes are removed eagerly).
    pub lanes: usize,
    /// Tasks queued in cheap-class injector lanes.
    pub queued_cheap: usize,
    /// Tasks queued in normal-class injector lanes.
    pub queued_normal: usize,
    /// Tasks queued in expensive-class injector lanes.
    pub queued_expensive: usize,
    /// Tasks queued across the workers' own deques.
    pub queued_deques: usize,
    /// Tasks a worker popped from its own deque.
    pub owned: u64,
    /// Tasks executed by a thread waiting on a scope (affine help).
    pub helped: u64,
    /// Tasks a worker stole from another worker's deque.
    pub stolen: u64,
    /// Tasks a worker took from the injector lanes.
    pub injected: u64,
    /// The longest any task has sat queued before being popped, in
    /// nanoseconds.
    pub max_queue_residency_ns: u64,
}

/// State shared between the pool handle, its workers, and in-flight
/// completion callbacks (which may outlive a `Scope` but never the
/// `Arc`).
struct Shared {
    /// Per-root-scope priority lanes for work submitted from
    /// non-worker threads.
    injector: Mutex<Injector>,
    /// One deque per worker: owner end is the back, steal end the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Sleep/wake rendezvous. Pushers and completions notify under the
    /// mutex so a sleeper can never miss a wakeup between its re-check
    /// and its wait.
    idle: Mutex<()>,
    wake: Condvar,
    /// Number of threads currently inside a condvar wait (or committed
    /// to entering one — incremented under `idle` before the final
    /// queue re-check). Lets the push/completion hot path skip the
    /// mutex + notify entirely when nobody is asleep: with `SeqCst` on
    /// both sides, a pusher that reads 0 is ordered before the
    /// sleeper's increment, whose subsequent re-check then sees the
    /// already-pushed job.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    counters: Counters,
}

/// The waiter's identity for restricted (affine) scheduling:
/// `(root scope id, own scope id)`.
type Affinity = (u64, u64);

impl Shared {
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return; // nobody to wake: skip the mutex on the hot path
        }
        let _g = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.wake.notify_all();
    }

    fn lock_idle(&self) -> MutexGuard<'_, ()> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note_pop(&self, t: &Task) {
        let ns = t.enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.counters
            .max_residency_ns
            .fetch_max(ns, Ordering::Relaxed);
    }

    /// Is there anything this consumer could run? Affinity-aware so a
    /// restricted waiter sleeps instead of spinning on foreign work.
    fn any_queued(&self, aff: Option<Affinity>) -> bool {
        match aff {
            None => {
                !self
                    .injector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty()
                    || self
                        .deques
                        .iter()
                        .any(|d| !d.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
            }
            Some((root, scope)) => {
                self.injector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .has_affine(root, scope)
                    || self.deques.iter().any(|d| {
                        d.lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .iter()
                            .any(|t| t.affine_to(scope))
                    })
            }
        }
    }

    /// Pop one task. `aff: None` (worker main loop) runs anything:
    /// own deque LIFO, then injector lanes by class priority, then
    /// steal FIFO from other deques. `aff: Some` (a waiter inside a
    /// scope) only ever takes tasks of its own scope subtree — own
    /// deque first, then its root's injector lanes, then (last) other
    /// workers' deques.
    fn find_job(&self, me: Option<usize>, aff: Option<Affinity>) -> Option<Task> {
        match aff {
            None => self.find_any(me),
            Some((root, scope)) => self.find_affine(me, root, scope),
        }
    }

    fn find_any(&self, me: Option<usize>) -> Option<Task> {
        if let Some(i) = me {
            if let Some(t) = self.deques[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                self.note_pop(&t);
                self.counters.owned.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        if let Some(t) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_any()
        {
            self.note_pop(&t);
            self.counters.injected.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let i = (start + off) % n;
            if Some(i) == me {
                continue;
            }
            if let Some(t) = self.deques[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                self.note_pop(&t);
                self.counters.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn find_affine(&self, me: Option<usize>, root: u64, scope: u64) -> Option<Task> {
        if let Some(i) = me {
            let mut q = self.deques[i].lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = q.iter().rposition(|t| t.affine_to(scope)) {
                if let Some(t) = q.remove(pos) {
                    drop(q);
                    self.note_pop(&t);
                    self.counters.helped.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
        }
        // Own-scope injector lanes come BEFORE any foreign-deque scan:
        // a waiter whose scope has runnable work queued must take it
        // rather than go hunting in other workers' deques first.
        if let Some(t) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_affine(root, scope)
        {
            self.note_pop(&t);
            self.counters.helped.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let i = (start + off) % n;
            if Some(i) == me {
                continue;
            }
            let mut q = self.deques[i].lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = q.iter().position(|t| t.affine_to(scope)) {
                if let Some(t) = q.remove(pos) {
                    drop(q);
                    self.note_pop(&t);
                    self.counters.helped.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
        }
        None
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the pool this thread works
    /// for, if any — lets `spawn` from inside a task push to the
    /// worker's own deque instead of the injector.
    static CURRENT_WORKER: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
    /// The scope this thread is currently executing inside (the scope
    /// body, or a task's spawning scope while the task runs) — makes
    /// nested scopes children of the right parent and inherits lanes.
    static CURRENT_SCOPE: RefCell<Option<(Arc<[u64]>, Lane)>> = const { RefCell::new(None) };
    /// Thread-level lane hint for root scopes, set by [`with_lane`].
    static LANE_HINT: Cell<Option<Lane>> = const { Cell::new(None) };
}

/// Run `f` with `lane` as this thread's lane hint: every *root* scope
/// opened inside (directly or via the free [`scope`]/[`join`]) adopts
/// it, and nested scopes inherit it from their parents. This is how a
/// request handler classifies all pool work of one evaluation without
/// threading a lane through every call site. The previous hint is
/// restored on exit (also on panic).
pub fn with_lane<R>(lane: Lane, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Lane>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LANE_HINT.with(|c| c.set(self.0));
        }
    }
    let prev = LANE_HINT.with(|c| c.replace(Some(lane)));
    let _restore = Restore(prev);
    f()
}

/// Execute a task with `CURRENT_SCOPE` set to its spawning scope, so
/// scopes the task opens become children (affinity + lane inheritance).
fn run_task(task: Task) {
    struct Restore(Option<(Arc<[u64]>, Lane)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SCOPE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT_SCOPE.with(|c| c.borrow_mut().replace((Arc::clone(&task.path), task.lane)));
    let _restore = Restore(prev);
    (task.job)();
}

/// A fixed-size worker pool. See the module docs for the scheduling
/// model. Dropping a pool shuts its workers down (after they drain any
/// queued work — scopes guarantee there is none left by then).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl Pool {
    /// A pool with `workers` OS threads (at least one). Workers beyond
    /// the machine's core count are legal — they time-share, which is
    /// exactly what the oversubscription stress tests want.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("axml-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads (the thread driving a scope adds one
    /// more execution stream on top).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Snapshot the scheduling state: instantaneous queue depths per
    /// lane class plus monotone execution counters.
    pub fn stats(&self) -> PoolStats {
        let (lanes, queued_cheap, queued_normal, queued_expensive) = {
            let inj = self
                .shared
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let mut by_class = [0usize; 3];
            for l in &inj.lanes {
                by_class[l.class as usize] += l.queue.len();
            }
            (inj.lanes.len(), by_class[0], by_class[1], by_class[2])
        };
        let queued_deques = self
            .shared
            .deques
            .iter()
            .map(|d| d.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        let c = &self.shared.counters;
        PoolStats {
            workers: self.handles.len(),
            lanes,
            queued_cheap,
            queued_normal,
            queued_expensive,
            queued_deques,
            owned: c.owned.load(Ordering::Relaxed),
            helped: c.helped.load(Ordering::Relaxed),
            stolen: c.stolen.load(Ordering::Relaxed),
            injected: c.injected.load(Ordering::Relaxed),
            max_queue_residency_ns: c.max_residency_ns.load(Ordering::Relaxed),
        }
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    fn push(&self, task: Task) {
        let (pool_id, idx) = CURRENT_WORKER.with(|c| c.get());
        if pool_id == self.identity() && idx < self.shared.deques.len() {
            self.shared.deques[idx]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        } else {
            self.shared
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(task);
        }
        self.shared.notify();
    }

    /// Structured fork-join: run `f` with a [`Scope`] on which tasks
    /// borrowing from the enclosing frame can be spawned; returns only
    /// after every spawned task has finished. The calling thread
    /// executes queued work *of this scope's subtree only* while it
    /// waits (see the module docs). The first task panic (or a panic
    /// in `f` itself) is re-raised here once the scope is drained.
    ///
    /// The scope's lane is inherited: its parent scope's lane when
    /// opened inside one, otherwise the thread's [`with_lane`] hint,
    /// otherwise [`Lane::Normal`]. Use [`Pool::scope_in`] to override.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        self.scope_impl(None, f)
    }

    /// [`Pool::scope`] with an explicit lane class for this scope (and,
    /// by inheritance, every scope nested inside it).
    pub fn scope_in<'env, R>(&self, lane: Lane, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        self.scope_impl(Some(lane), f)
    }

    fn scope_impl<'env, R>(&self, lane: Option<Lane>, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let id = NEXT_SCOPE_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT_SCOPE.with(|c| c.borrow().clone());
        let lane = lane
            .or(parent.as_ref().map(|(_, l)| *l))
            .or(LANE_HINT.with(|c| c.get()))
            .unwrap_or_default();
        let path: Arc<[u64]> = match &parent {
            Some((p, _)) => {
                let mut v = Vec::with_capacity(p.len() + 1);
                v.extend_from_slice(p);
                v.push(id);
                Arc::from(v)
            }
            None => Arc::from(vec![id]),
        };
        let s = Scope {
            pool: self,
            core: Arc::new(ScopeCore {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            path: Arc::clone(&path),
            lane,
            _marker: PhantomData,
        };
        // Even if `f` panics we must drain the scope before unwinding
        // this frame: spawned jobs hold (erased) borrows into it. The
        // body runs with CURRENT_SCOPE set so nested scopes become
        // children of this one.
        let body = {
            struct Restore(Option<(Arc<[u64]>, Lane)>);
            impl Drop for Restore {
                fn drop(&mut self) {
                    CURRENT_SCOPE.with(|c| *c.borrow_mut() = self.0.take());
                }
            }
            let prev = CURRENT_SCOPE.with(|c| c.borrow_mut().replace((path, lane)));
            let _restore = Restore(prev);
            panic::catch_unwind(AssertUnwindSafe(|| f(&s)))
        };
        let me = {
            let (pool_id, idx) = CURRENT_WORKER.with(|c| c.get());
            (pool_id == self.identity()).then_some(idx)
        };
        // Affine help: only tasks whose path contains this scope's id
        // — our own tasks and those of scopes nested inside us.
        let aff = Some((s.path[0], id));
        while s.core.pending.load(Ordering::Acquire) != 0 {
            if let Some(task) = self.shared.find_job(me, aff) {
                run_task(task);
                continue;
            }
            let guard = self.shared.lock_idle();
            self.shared.sleepers.fetch_add(1, Ordering::SeqCst);
            // Re-check *after* registering as a sleeper (see the
            // `sleepers` field docs): pushes and completions that
            // raced ahead are visible here; later ones will see the
            // sleeper count and notify. The long timeout is a
            // belt-and-braces bound, not a polling interval.
            if s.core.pending.load(Ordering::Acquire) != 0 && !self.shared.any_queued(aff) {
                drop(self.shared.wake.wait_timeout(guard, IDLE_WAIT));
            }
            self.shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
        let task_panic = s
            .core
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match body {
            Err(p) => panic::resume_unwind(p),
            Ok(r) => {
                if let Some(p) = task_panic {
                    panic::resume_unwind(p);
                }
                r
            }
        }
    }

    /// Run `a` and `b`, potentially in parallel: `b` is offered to the
    /// pool, `a` runs inline on the calling thread, and the call
    /// returns both results (helping with queued work of this scope's
    /// subtree while waiting for `b`).
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join: spawned half completed"))
    }

    /// Apply `f` to every element, in parallel, preserving order.
    /// `f` receives the element index alongside the element.
    pub fn map_slice<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        self.scope(|s| {
            for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
                let f = &f;
                s.spawn(move || *slot = Some(f(i, item)));
            }
        });
        out.into_iter()
            .map(|r| r.expect("map_slice: task completed"))
            .collect()
    }

    /// Split `items` into at most `chunks` contiguous runs and apply
    /// `f` to each run in parallel, preserving order.
    pub fn map_chunks<T: Sync, R: Send>(
        &self,
        items: &[T],
        chunks: usize,
        f: impl Fn(&[T]) -> R + Sync,
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let per = items.len().div_ceil(chunks.max(1));
        let runs: Vec<&[T]> = items.chunks(per.max(1)).collect();
        self.map_slice(&runs, |_, run| f(run))
    }

    /// Parallel tree-reduce: fold `items` down to one value with an
    /// associative `merge`, splitting the work across up to `degree`
    /// parallel folds. Returns `None` for an empty input.
    pub fn reduce<T: Send>(
        &self,
        items: Vec<T>,
        degree: usize,
        merge: impl Fn(T, T) -> T + Sync,
    ) -> Option<T> {
        fn fold<T>(items: Vec<T>, merge: &impl Fn(T, T) -> T) -> Option<T> {
            items.into_iter().reduce(merge)
        }
        if items.len() <= 2 || degree <= 1 {
            return fold(items, &merge);
        }
        let per = items.len().div_ceil(degree);
        let mut batches: Vec<Vec<T>> = Vec::new();
        let mut items = items.into_iter();
        loop {
            let batch: Vec<T> = items.by_ref().take(per).collect();
            if batch.is_empty() {
                break;
            }
            batches.push(batch);
        }
        let folded: Vec<Option<T>> = {
            let merge = &merge;
            let mut out: Vec<Option<T>> = (0..batches.len()).map(|_| None).collect();
            self.scope(|s| {
                for (batch, slot) in batches.into_iter().zip(out.iter_mut()) {
                    s.spawn(move || *slot = fold(batch, merge));
                }
            });
            out
        };
        fold(folded.into_iter().flatten().collect(), &merge)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unconditional notify: a worker between its sleeper re-check
        // and its wait must still be woken (store is SeqCst-ordered
        // before the sleeper's re-check or the notify reaches it).
        {
            let _g = self.shared.lock_idle();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    CURRENT_WORKER.with(|c| c.set((Arc::as_ptr(&shared) as usize, index)));
    loop {
        // The unrestricted throughput path: a worker outside any scope
        // runs whatever the lane priorities hand it.
        if let Some(task) = shared.find_job(Some(index), None) {
            run_task(task);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.lock_idle();
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        // Same handshake as the scope wait: register as a sleeper,
        // then re-check, then sleep; pushes and shutdown notify when
        // sleepers are present (the timeout only bounds unforeseen
        // bugs).
        if !shared.any_queued(None) && !shared.shutdown.load(Ordering::SeqCst) {
            drop(shared.wake.wait_timeout(guard, IDLE_WAIT));
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Completion state of one scope, owned jointly by the scope owner
/// and every in-flight task (so a task never dereferences the owner's
/// stack frame to signal completion).
struct ScopeCore {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fork-join scope handed to the closure of [`Pool::scope`]. Tasks
/// spawned here may borrow anything that outlives `'env` (mirroring
/// `std::thread::scope`'s two-lifetime shape).
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    core: Arc<ScopeCore>,
    /// Root-first ancestry path; the last element is this scope's id.
    path: Arc<[u64]>,
    lane: Lane,
    /// Invariant in `'env` (mirrors rayon/std): stops the borrow
    /// checker from shortening the environment lifetime out from under
    /// the spawned closures.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// The lane class this scope's tasks are queued in.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Queue a task. It may run on any worker (or on the thread
    /// waiting for the scope) and is guaranteed to finish before the
    /// enclosing [`Pool::scope`] call returns. A panic inside the task
    /// is captured and re-raised by the scope owner.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.core.pending.fetch_add(1, Ordering::AcqRel);
        let core = Arc::clone(&self.core);
        let shared = Arc::clone(&self.pool.shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = core.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            core.pending.fetch_sub(1, Ordering::AcqRel);
            let _g = shared.idle.lock().unwrap_or_else(|e| e.into_inner());
            shared.wake.notify_all();
        });
        // SAFETY: only the lifetime is erased; the fat-pointer layout
        // of `Box<dyn FnOnce() + Send>` does not depend on it. The
        // closure (and everything it borrows, all `'env`) is
        // guaranteed to run before `Pool::scope` returns — the owner
        // drains `pending` to zero before unwinding or returning, even
        // when the scope body panics — so the erased borrows never
        // outlive their referents. Completion signalling goes through
        // the `Arc`s the job owns, never through the owner's frame.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push(Task {
            job,
            path: Arc::clone(&self.path),
            lane: self.lane,
            enqueued: Instant::now(),
        });
    }
}

/// The process-wide default pool handle.
static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide default pool, created on first use with one worker
/// per available core (`AXML_POOL_THREADS` overrides the count).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let workers = std::env::var("AXML_POOL_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Pool::new(workers)
    })
}

/// The global pool if it has already been created — stats surfaces use
/// this so observing a process never spawns its worker threads.
pub fn try_global() -> Option<&'static Pool> {
    GLOBAL.get()
}

/// [`Pool::stats`] for the [`global`] pool, all-zero when it has never
/// been used (without spawning it).
pub fn global_stats() -> PoolStats {
    try_global().map(Pool::stats).unwrap_or_default()
}

/// [`Pool::scope`] on the [`global`] pool.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    global().scope(f)
}

/// [`Pool::join`] on the [`global`] pool.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    global().join(a, b)
}

/// How much parallelism an evaluation entry point may use.
///
/// This is a *fan-out bound*, not a thread count: work is split into
/// about this many independent units and offered to a [`Pool`]; the
/// pool's worker count (plus the calling thread) bounds how many
/// actually run at once. [`Parallelism::sequential`] — the default on
/// every API that takes one — never touches a pool at all, so
/// single-threaded callers keep exactly the pre-parallelism code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// 0 = auto (resolve against the global pool), n ≥ 1 = explicit.
    threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl Parallelism {
    /// No parallelism: the sequential code path, untouched (default).
    pub const fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// Size the fan-out to the global pool (one unit per worker plus
    /// the calling thread).
    pub const fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Explicit fan-out bound. `0` means [`Parallelism::auto`]; `1` is
    /// [`Parallelism::sequential`].
    pub const fn threads(n: usize) -> Self {
        Parallelism { threads: n }
    }

    /// The resolved fan-out degree (≥ 1), sized against the global
    /// pool when auto. Prefer [`Parallelism::degree_on`] (or
    /// [`ExecCtx::degree`]) when the work runs on an explicit pool —
    /// this method spawns the global pool to size an auto request.
    pub fn degree(self) -> usize {
        match self.threads {
            0 => global().workers() + 1,
            n => n,
        }
    }

    /// The fan-out degree resolved against the pool the work will
    /// actually run on: auto sizes to that pool's workers (plus the
    /// driving thread) and never touches the global pool.
    pub fn degree_on(self, pool: &Pool) -> usize {
        match self.threads {
            0 => pool.workers() + 1,
            n => n,
        }
    }

    /// Does this request the pure sequential path?
    pub fn is_sequential(self) -> bool {
        self.threads == 1
    }
}

/// A pool plus a fan-out bound: the execution context parallel
/// evaluation entry points thread through their recursion. Evaluators
/// take `Option<&ExecCtx>` — `None` is the untouched sequential path.
#[derive(Clone, Copy, Debug)]
pub struct ExecCtx<'p> {
    /// Where fanned-out work is scheduled.
    pub pool: &'p Pool,
    /// How far to fan out (see [`Parallelism`]).
    pub par: Parallelism,
}

impl<'p> ExecCtx<'p> {
    /// Context on an explicit pool.
    pub fn new(pool: &'p Pool, par: Parallelism) -> Self {
        ExecCtx { pool, par }
    }

    /// Does this context request the pure sequential path?
    pub fn is_sequential(&self) -> bool {
        self.par.is_sequential()
    }

    /// The fan-out degree, resolved against **this context's pool**
    /// (auto = its workers + 1; an explicit pool never borrows the
    /// global pool's sizing).
    pub fn degree(&self) -> usize {
        self.par.degree_on(self.pool)
    }
}

/// Context on the [`global`] pool.
impl ExecCtx<'static> {
    /// An [`ExecCtx`] scheduling onto the global pool.
    pub fn global(par: Parallelism) -> Self {
        ExecCtx {
            pool: global(),
            par,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn scope_borrows_stack_data() {
        let pool = Pool::new(4);
        let data: Vec<u64> = (1..=8).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn join_returns_both() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "b".to_owned());
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn map_slice_preserves_order() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map_slice(&items, |i, x| i * 1000 + x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 1000 + i * 2);
        }
    }

    #[test]
    fn map_chunks_covers_everything() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (1..=1000).collect();
        let sums = pool.map_chunks(&items, 7, |run| run.iter().sum::<u64>());
        assert!(sums.len() <= 7);
        assert_eq!(sums.iter().sum::<u64>(), 500_500);
    }

    #[test]
    fn reduce_merges_all() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (1..=257).collect();
        assert_eq!(pool.reduce(items, 8, |a, b| a + b), Some(33_153));
        assert_eq!(pool.reduce(Vec::<u64>::new(), 8, |a, b| a + b), None);
        assert_eq!(pool.reduce([7u64].to_vec(), 8, |a, b| a + b), Some(7));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                s.spawn(move || {
                    // A task that itself forks: the worker must help,
                    // not block, while its inner scope drains.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let pool = Pool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the scope owner");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            8,
            "siblings run to completion"
        );
        // The pool survives a panicking scope.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn many_small_tasks_stress() {
        let pool = Pool::new(8); // oversubscribed on small machines — intended
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..100 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn parallelism_resolution() {
        assert!(Parallelism::sequential().is_sequential());
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::threads(4).degree(), 4);
        assert!(!Parallelism::threads(4).is_sequential());
        assert!(Parallelism::auto().degree() >= 2);
        assert_eq!(Parallelism::threads(0), Parallelism::auto());
    }

    #[test]
    fn global_pool_is_usable() {
        let items: Vec<u32> = (0..64).collect();
        let out = global().map_slice(&items, |_, x| x + 1);
        assert_eq!(out.iter().sum::<u32>(), (1..=64).sum::<u32>());
    }

    // ---- scheduling (PR 10) ----

    fn dummy_task(root: u64, lane: Lane) -> Task {
        Task {
            job: Box::new(|| {}),
            path: Arc::from(vec![root]),
            lane,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn injector_class_priority_with_round_robin_within_class() {
        let mut inj = Injector::new();
        inj.push(dummy_task(4, Lane::Expensive));
        inj.push(dummy_task(3, Lane::Normal));
        inj.push(dummy_task(1, Lane::Cheap));
        inj.push(dummy_task(1, Lane::Cheap));
        inj.push(dummy_task(2, Lane::Cheap));
        let order: Vec<(u64, Lane)> =
            std::iter::from_fn(|| inj.pop_any().map(|t| (t.path[0], t.lane))).collect();
        // All cheap before normal before expensive; the two cheap
        // roots alternate (round-robin), not drain-one-then-the-other.
        assert_eq!(
            order,
            vec![
                (1, Lane::Cheap),
                (2, Lane::Cheap),
                (1, Lane::Cheap),
                (3, Lane::Normal),
                (4, Lane::Expensive),
            ]
        );
        assert!(inj.is_empty(), "drained lanes are removed");
    }

    #[test]
    fn aging_tick_serves_the_oldest_lane_despite_priority() {
        let mut inj = Injector::new();
        inj.push(dummy_task(9, Lane::Expensive)); // enqueued first = oldest
        for _ in 0..16 {
            inj.push(dummy_task(1, Lane::Cheap));
        }
        let mut expensive_served_at = None;
        for i in 1..=17 {
            let t = inj.pop_any().expect("17 tasks queued");
            if t.lane == Lane::Expensive {
                expensive_served_at = Some(i);
                break;
            }
        }
        // Pops 1–7 serve the cheap lane; the 8th pop is the aging tick
        // and must serve the starving expensive lane.
        assert_eq!(expensive_served_at, Some(AGING_TICK as usize));
    }

    #[test]
    fn affine_pop_only_takes_own_subtree() {
        let mut inj = Injector::new();
        inj.push(dummy_task(7, Lane::Normal));
        // A nested task of root 5 (path [5, 6]) and a root task of 5.
        inj.push(Task {
            job: Box::new(|| {}),
            path: Arc::from(vec![5u64, 6]),
            lane: Lane::Normal,
            enqueued: Instant::now(),
        });
        inj.push(dummy_task(5, Lane::Normal));
        // Waiter of scope 6 (root 5): only the nested task matches.
        let t = inj.pop_affine(5, 6).expect("nested task is affine");
        assert_eq!(&t.path[..], &[5, 6]);
        assert!(
            inj.pop_affine(5, 6).is_none(),
            "root-only task is not in 6's subtree"
        );
        // Waiter of scope 5 (the root): the remaining root task matches.
        let t = inj
            .pop_affine(5, 5)
            .expect("root task is affine to the root waiter");
        assert_eq!(&t.path[..], &[5]);
        assert!(inj.pop_affine(7, 7).is_some());
        assert!(inj.is_empty());
    }

    #[test]
    fn scope_lane_inheritance_and_override() {
        let pool = Pool::new(1);
        pool.scope(|s| assert_eq!(s.lane(), Lane::Normal));
        pool.scope_in(Lane::Expensive, |s| {
            assert_eq!(s.lane(), Lane::Expensive);
            // A nested scope inherits its parent's lane.
            pool.scope(|inner| assert_eq!(inner.lane(), Lane::Expensive));
            // Unless overridden explicitly.
            pool.scope_in(Lane::Cheap, |inner| assert_eq!(inner.lane(), Lane::Cheap));
        });
        with_lane(Lane::Cheap, || {
            pool.scope(|s| assert_eq!(s.lane(), Lane::Cheap));
        });
        pool.scope(|s| assert_eq!(s.lane(), Lane::Normal));
    }

    /// The PR's fairness pin: a thread waiting on its own scope must
    /// (1) take its own scope's queued work from the injector before
    /// looking at foreign deques, and (2) never execute another
    /// scope's task at all.
    #[test]
    fn waiter_runs_own_scope_work_and_never_foreign() {
        let pool = Arc::new(Pool::new(1));
        let foreign_ran_early = Arc::new(AtomicBool::new(false));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (rel_a_tx, rel_a_rx) = mpsc::channel::<()>();
        let (rel_b_tx, rel_b_rx) = mpsc::channel::<()>();
        let (body_tx, body_rx) = mpsc::channel::<()>();

        let fpool = Arc::clone(&pool);
        let fran = Arc::clone(&foreign_ran_early);
        let foreign = std::thread::spawn(move || {
            let pool2 = Arc::clone(&fpool);
            fpool.scope(|s| {
                let pool2 = &pool2;
                let fran = &fran;
                let started_tx = started_tx.clone();
                s.spawn(move || {
                    // Runs on the only worker. The nested scope puts
                    // two tasks in the worker's own deque; the worker
                    // pops the newer one (LIFO) and blocks in it,
                    // leaving the older at the steal end of its deque.
                    pool2.scope(|inner| {
                        inner.spawn(move || {
                            fran.store(true, Ordering::SeqCst);
                            let _ = rel_a_rx.recv();
                        });
                        inner.spawn(move || {
                            started_tx.send(()).unwrap();
                            let _ = rel_b_rx.recv();
                        });
                    });
                });
                // Park the foreign scope's own waiter so it cannot
                // claim its stranded deque task during the probe.
                body_rx.recv().unwrap();
            });
        });

        // Worker is now blocked inside the foreign task, with another
        // foreign task stranded at the front of its deque.
        started_rx.recv().unwrap();

        // Our own scope: the task goes to the injector (we are not a
        // worker). The worker is blocked, so the only thread that can
        // run it is us — the waiter — and we must pick it over the
        // foreign deque task.
        let ran_on = Arc::new(Mutex::new(None::<std::thread::ThreadId>));
        let ran_on2 = Arc::clone(&ran_on);
        pool.scope(|s| {
            s.spawn(move || {
                *ran_on2.lock().unwrap() = Some(std::thread::current().id());
            });
        });
        assert_eq!(
            *ran_on.lock().unwrap(),
            Some(std::thread::current().id()),
            "the waiter itself must run its own scope's injector task"
        );
        assert!(
            !foreign_ran_early.load(Ordering::SeqCst),
            "the waiter must never execute a foreign scope's task"
        );

        // Unblock everything and drain.
        body_tx.send(()).unwrap();
        rel_b_tx.send(()).unwrap();
        rel_a_tx.send(()).unwrap();
        foreign.join().unwrap();
        assert!(
            foreign_ran_early.load(Ordering::SeqCst),
            "stranded task eventually ran"
        );
    }

    #[test]
    fn stats_count_executions_and_residency() {
        let pool = Pool::new(2);
        let n = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                let n = &n;
                s.spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 64);
        let st = pool.stats();
        assert_eq!(st.workers, 2);
        assert_eq!(
            st.owned + st.helped + st.stolen + st.injected,
            64,
            "every execution is classified exactly once: {st:?}"
        );
        assert!(st.max_queue_residency_ns > 0);
        // Idle pool: no queued work, no lanes.
        assert_eq!(st.lanes, 0);
        assert_eq!(
            st.queued_cheap + st.queued_normal + st.queued_expensive + st.queued_deques,
            0
        );
    }
}
