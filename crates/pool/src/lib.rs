//! A minimal scoped worker pool — the workspace's only parallelism
//! substrate.
//!
//! The build environment has no crates.io access, so this crate
//! provides the rayon-shaped subset the evaluation stack needs, on
//! `std` alone:
//!
//! - [`Pool::scope`] / [`Scope::spawn`]: structured fork-join over
//!   **borrowed** data. A scope does not return until every task it
//!   spawned has finished, so tasks may capture references to the
//!   caller's stack frame (the same guarantee as `std::thread::scope`,
//!   without spawning a thread per task).
//! - [`Pool::join`]: the two-way special case; runs one closure inline
//!   on the calling thread while the other is up for grabs.
//! - [`Pool::map_slice`] / [`Pool::map_chunks`] / [`Pool::reduce`]:
//!   order-preserving data-parallel helpers built on `scope`.
//! - [`Parallelism`]: the runtime knob every evaluation entry point
//!   takes. `Parallelism::sequential()` (the default everywhere) means
//!   the pool is never touched — single-threaded callers pay nothing.
//!
//! # Scheduling model
//!
//! Each worker owns a deque behind its own mutex: the owner pushes and
//! pops at the back (LIFO keeps the working set warm), thieves and the
//! external injector are FIFO at the front — mutex-per-deque
//! work-stealing rather than a lock-free Chase–Lev deque, which keeps
//! the implementation small and obviously correct at the cost of an
//! uncontended lock per queue operation (µs-scale tasks; fine for the
//! chunk sizes the evaluators use).
//!
//! A thread that waits on a scope **helps**: while its tasks are
//! outstanding it pops and runs pool work (its own tasks or anyone
//! else's) instead of blocking. This makes nested scopes
//! deadlock-free — a worker that opens a scope inside a task keeps
//! executing queued tasks until its own are done — and means a pool of
//! `n` workers gives `n + 1` execution streams to the thread driving a
//! scope.
//!
//! # Panics
//!
//! A panicking task does not poison the pool: the payload is captured,
//! every sibling task still runs, and the first payload is re-raised
//! on the scope-owning thread once the scope is drained (mirroring
//! `std::thread::scope`).
//!
//! # Safety
//!
//! The single `unsafe` block erases the scope lifetime of a spawned
//! closure (`Box<dyn FnOnce + 'scope>` → `'static`) so it can sit in
//! the shared queues. Soundness rests on the structured-concurrency
//! invariant, which `scope` enforces even when the scope body panics:
//! no closure outlives the `scope` call that spawned it.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// A queued unit of work. Lifetime-erased; see the module docs.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle thread sleeps per condvar wait. Wakeups are
/// delivered by notification (pushes, completions and shutdown all
/// notify under the `idle` mutex), so this is a safety bound against
/// unforeseen missed-wakeup bugs — not a polling period; an idle pool
/// wakes each worker only ~10×/sec.
const IDLE_WAIT: Duration = Duration::from_millis(100);

/// State shared between the pool handle, its workers, and in-flight
/// completion callbacks (which may outlive a `Scope` but never the
/// `Arc`).
struct Shared {
    /// FIFO queue for work submitted from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: owner end is the back, steal end the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake rendezvous. Pushers and completions notify under the
    /// mutex so a sleeper can never miss a wakeup between its re-check
    /// and its wait.
    idle: Mutex<()>,
    wake: Condvar,
    /// Number of threads currently inside a condvar wait (or committed
    /// to entering one — incremented under `idle` before the final
    /// queue re-check). Lets the push/completion hot path skip the
    /// mutex + notify entirely when nobody is asleep: with `SeqCst` on
    /// both sides, a pusher that reads 0 is ordered before the
    /// sleeper's increment, whose subsequent re-check then sees the
    /// already-pushed job.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return; // nobody to wake: skip the mutex on the hot path
        }
        let _g = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.wake.notify_all();
    }

    fn lock_idle(&self) -> MutexGuard<'_, ()> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn any_queued(&self) -> bool {
        if !self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
        {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
    }

    /// Pop one job: own deque (LIFO) if `me` is a worker, then the
    /// injector, then steal FIFO from the other deques.
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(j) = self.deques[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                return Some(j);
            }
        }
        if let Some(j) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(j);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let i = (start + off) % n;
            if Some(i) == me {
                continue;
            }
            if let Some(j) = self.deques[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                return Some(j);
            }
        }
        None
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the pool this thread works
    /// for, if any — lets `spawn` from inside a task push to the
    /// worker's own deque instead of the injector.
    static CURRENT_WORKER: std::cell::Cell<(usize, usize)> =
        const { std::cell::Cell::new((0, usize::MAX)) };
}

/// A fixed-size worker pool. See the module docs for the scheduling
/// model. Dropping a pool shuts its workers down (after they drain any
/// queued work — scopes guarantee there is none left by then).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl Pool {
    /// A pool with `workers` OS threads (at least one). Workers beyond
    /// the machine's core count are legal — they time-share, which is
    /// exactly what the oversubscription stress tests want.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("axml-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads (the thread driving a scope adds one
    /// more execution stream on top).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    fn push(&self, job: Job) {
        let (pool_id, idx) = CURRENT_WORKER.with(|c| c.get());
        if pool_id == self.identity() && idx < self.shared.deques.len() {
            self.shared.deques[idx]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(job);
        } else {
            self.shared
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(job);
        }
        self.shared.notify();
    }

    /// Structured fork-join: run `f` with a [`Scope`] on which tasks
    /// borrowing from the enclosing frame can be spawned; returns only
    /// after every spawned task has finished. The calling thread
    /// executes pool work while it waits. The first task panic (or a
    /// panic in `f` itself) is re-raised here once the scope is
    /// drained.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let s = Scope {
            pool: self,
            core: Arc::new(ScopeCore {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _marker: PhantomData,
        };
        // Even if `f` panics we must drain the scope before unwinding
        // this frame: spawned jobs hold (erased) borrows into it.
        let body = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
        let me = {
            let (pool_id, idx) = CURRENT_WORKER.with(|c| c.get());
            (pool_id == self.identity()).then_some(idx)
        };
        while s.core.pending.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.shared.find_job(me) {
                job();
                continue;
            }
            let guard = self.shared.lock_idle();
            self.shared.sleepers.fetch_add(1, Ordering::SeqCst);
            // Re-check *after* registering as a sleeper (see the
            // `sleepers` field docs): pushes and completions that
            // raced ahead are visible here; later ones will see the
            // sleeper count and notify. The long timeout is a
            // belt-and-braces bound, not a polling interval.
            if s.core.pending.load(Ordering::Acquire) != 0 && !self.shared.any_queued() {
                drop(self.shared.wake.wait_timeout(guard, IDLE_WAIT));
            }
            self.shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
        let task_panic = s
            .core
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match body {
            Err(p) => panic::resume_unwind(p),
            Ok(r) => {
                if let Some(p) = task_panic {
                    panic::resume_unwind(p);
                }
                r
            }
        }
    }

    /// Run `a` and `b`, potentially in parallel: `b` is offered to the
    /// pool, `a` runs inline on the calling thread, and the call
    /// returns both results (helping with queued work while waiting
    /// for `b`).
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join: spawned half completed"))
    }

    /// Apply `f` to every element, in parallel, preserving order.
    /// `f` receives the element index alongside the element.
    pub fn map_slice<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        self.scope(|s| {
            for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
                let f = &f;
                s.spawn(move || *slot = Some(f(i, item)));
            }
        });
        out.into_iter()
            .map(|r| r.expect("map_slice: task completed"))
            .collect()
    }

    /// Split `items` into at most `chunks` contiguous runs and apply
    /// `f` to each run in parallel, preserving order.
    pub fn map_chunks<T: Sync, R: Send>(
        &self,
        items: &[T],
        chunks: usize,
        f: impl Fn(&[T]) -> R + Sync,
    ) -> Vec<R> {
        if items.is_empty() {
            return Vec::new();
        }
        let per = items.len().div_ceil(chunks.max(1));
        let runs: Vec<&[T]> = items.chunks(per.max(1)).collect();
        self.map_slice(&runs, |_, run| f(run))
    }

    /// Parallel tree-reduce: fold `items` down to one value with an
    /// associative `merge`, splitting the work across up to `degree`
    /// parallel folds. Returns `None` for an empty input.
    pub fn reduce<T: Send>(
        &self,
        items: Vec<T>,
        degree: usize,
        merge: impl Fn(T, T) -> T + Sync,
    ) -> Option<T> {
        fn fold<T>(items: Vec<T>, merge: &impl Fn(T, T) -> T) -> Option<T> {
            items.into_iter().reduce(merge)
        }
        if items.len() <= 2 || degree <= 1 {
            return fold(items, &merge);
        }
        let per = items.len().div_ceil(degree);
        let mut batches: Vec<Vec<T>> = Vec::new();
        let mut items = items.into_iter();
        loop {
            let batch: Vec<T> = items.by_ref().take(per).collect();
            if batch.is_empty() {
                break;
            }
            batches.push(batch);
        }
        let folded: Vec<Option<T>> = {
            let merge = &merge;
            let mut out: Vec<Option<T>> = (0..batches.len()).map(|_| None).collect();
            self.scope(|s| {
                for (batch, slot) in batches.into_iter().zip(out.iter_mut()) {
                    s.spawn(move || *slot = fold(batch, merge));
                }
            });
            out
        };
        fold(folded.into_iter().flatten().collect(), &merge)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unconditional notify: a worker between its sleeper re-check
        // and its wait must still be woken (store is SeqCst-ordered
        // before the sleeper's re-check or the notify reaches it).
        {
            let _g = self.shared.lock_idle();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    CURRENT_WORKER.with(|c| c.set((Arc::as_ptr(&shared) as usize, index)));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.lock_idle();
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        // Same handshake as the scope wait: register as a sleeper,
        // then re-check, then sleep; pushes and shutdown notify when
        // sleepers are present (the timeout only bounds unforeseen
        // bugs).
        if !shared.any_queued() && !shared.shutdown.load(Ordering::SeqCst) {
            drop(shared.wake.wait_timeout(guard, IDLE_WAIT));
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Completion state of one scope, owned jointly by the scope owner
/// and every in-flight task (so a task never dereferences the owner's
/// stack frame to signal completion).
struct ScopeCore {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fork-join scope handed to the closure of [`Pool::scope`]. Tasks
/// spawned here may borrow anything that outlives `'env` (mirroring
/// `std::thread::scope`'s two-lifetime shape).
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    core: Arc<ScopeCore>,
    /// Invariant in `'env` (mirrors rayon/std): stops the borrow
    /// checker from shortening the environment lifetime out from under
    /// the spawned closures.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queue a task. It may run on any worker (or on the thread
    /// waiting for the scope) and is guaranteed to finish before the
    /// enclosing [`Pool::scope`] call returns. A panic inside the task
    /// is captured and re-raised by the scope owner.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.core.pending.fetch_add(1, Ordering::AcqRel);
        let core = Arc::clone(&self.core);
        let shared = Arc::clone(&self.pool.shared);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = core.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            core.pending.fetch_sub(1, Ordering::AcqRel);
            let _g = shared.idle.lock().unwrap_or_else(|e| e.into_inner());
            shared.wake.notify_all();
        });
        // SAFETY: only the lifetime is erased; the fat-pointer layout
        // of `Box<dyn FnOnce() + Send>` does not depend on it. The
        // closure (and everything it borrows, all `'env`) is
        // guaranteed to run before `Pool::scope` returns — the owner
        // drains `pending` to zero before unwinding or returning, even
        // when the scope body panics — so the erased borrows never
        // outlive their referents. Completion signalling goes through
        // the `Arc`s the job owns, never through the owner's frame.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push(job);
    }
}

/// The process-wide default pool, created on first use with one worker
/// per available core (`AXML_POOL_THREADS` overrides the count).
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let workers = std::env::var("AXML_POOL_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Pool::new(workers)
    })
}

/// [`Pool::scope`] on the [`global`] pool.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    global().scope(f)
}

/// [`Pool::join`] on the [`global`] pool.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    global().join(a, b)
}

/// How much parallelism an evaluation entry point may use.
///
/// This is a *fan-out bound*, not a thread count: work is split into
/// about this many independent units and offered to a [`Pool`]; the
/// pool's worker count (plus the calling thread) bounds how many
/// actually run at once. [`Parallelism::sequential`] — the default on
/// every API that takes one — never touches a pool at all, so
/// single-threaded callers keep exactly the pre-parallelism code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// 0 = auto (resolve against the global pool), n ≥ 1 = explicit.
    threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

impl Parallelism {
    /// No parallelism: the sequential code path, untouched (default).
    pub const fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// Size the fan-out to the global pool (one unit per worker plus
    /// the calling thread).
    pub const fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Explicit fan-out bound. `0` means [`Parallelism::auto`]; `1` is
    /// [`Parallelism::sequential`].
    pub const fn threads(n: usize) -> Self {
        Parallelism { threads: n }
    }

    /// The resolved fan-out degree (≥ 1), sized against the global
    /// pool when auto. Prefer [`Parallelism::degree_on`] (or
    /// [`ExecCtx::degree`]) when the work runs on an explicit pool —
    /// this method spawns the global pool to size an auto request.
    pub fn degree(self) -> usize {
        match self.threads {
            0 => global().workers() + 1,
            n => n,
        }
    }

    /// The fan-out degree resolved against the pool the work will
    /// actually run on: auto sizes to that pool's workers (plus the
    /// driving thread) and never touches the global pool.
    pub fn degree_on(self, pool: &Pool) -> usize {
        match self.threads {
            0 => pool.workers() + 1,
            n => n,
        }
    }

    /// Does this request the pure sequential path?
    pub fn is_sequential(self) -> bool {
        self.threads == 1
    }
}

/// A pool plus a fan-out bound: the execution context parallel
/// evaluation entry points thread through their recursion. Evaluators
/// take `Option<&ExecCtx>` — `None` is the untouched sequential path.
#[derive(Clone, Copy, Debug)]
pub struct ExecCtx<'p> {
    /// Where fanned-out work is scheduled.
    pub pool: &'p Pool,
    /// How far to fan out (see [`Parallelism`]).
    pub par: Parallelism,
}

impl<'p> ExecCtx<'p> {
    /// Context on an explicit pool.
    pub fn new(pool: &'p Pool, par: Parallelism) -> Self {
        ExecCtx { pool, par }
    }

    /// Does this context request the pure sequential path?
    pub fn is_sequential(&self) -> bool {
        self.par.is_sequential()
    }

    /// The fan-out degree, resolved against **this context's pool**
    /// (auto = its workers + 1; an explicit pool never borrows the
    /// global pool's sizing).
    pub fn degree(&self) -> usize {
        self.par.degree_on(self.pool)
    }
}

/// Context on the [`global`] pool.
impl ExecCtx<'static> {
    /// An [`ExecCtx`] scheduling onto the global pool.
    pub fn global(par: Parallelism) -> Self {
        ExecCtx {
            pool: global(),
            par,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_borrows_stack_data() {
        let pool = Pool::new(4);
        let data: Vec<u64> = (1..=8).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn join_returns_both() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "b".to_owned());
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn map_slice_preserves_order() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map_slice(&items, |i, x| i * 1000 + x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 1000 + i * 2);
        }
    }

    #[test]
    fn map_chunks_covers_everything() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (1..=1000).collect();
        let sums = pool.map_chunks(&items, 7, |run| run.iter().sum::<u64>());
        assert!(sums.len() <= 7);
        assert_eq!(sums.iter().sum::<u64>(), 500_500);
    }

    #[test]
    fn reduce_merges_all() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (1..=257).collect();
        assert_eq!(pool.reduce(items, 8, |a, b| a + b), Some(33_153));
        assert_eq!(pool.reduce(Vec::<u64>::new(), 8, |a, b| a + b), None);
        assert_eq!(pool.reduce([7u64].to_vec(), 8, |a, b| a + b), Some(7));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                s.spawn(move || {
                    // A task that itself forks: the worker must help,
                    // not block, while its inner scope drains.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let pool = Pool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the scope owner");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            8,
            "siblings run to completion"
        );
        // The pool survives a panicking scope.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn many_small_tasks_stress() {
        let pool = Pool::new(8); // oversubscribed on small machines — intended
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..100 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn parallelism_resolution() {
        assert!(Parallelism::sequential().is_sequential());
        assert!(Parallelism::default().is_sequential());
        assert_eq!(Parallelism::threads(4).degree(), 4);
        assert!(!Parallelism::threads(4).is_sequential());
        assert!(Parallelism::auto().degree() >= 2);
        assert_eq!(Parallelism::threads(0), Parallelism::auto());
    }

    #[test]
    fn global_pool_is_usable() {
        let items: Vec<u32> = (0..64).collect();
        let out = global().map_slice(&items, |_, x| x + 1);
        assert_eq!(out.iter().sum::<u32>(), (1..=64).sum::<u32>());
    }
}
