//! Compatibility re-export of the workspace's no-serde JSON writer.
//!
//! The writer started life here; the `axml-server` crate needed it
//! without depending on the bench crate, so it was promoted to
//! [`axml::json`]. Existing `axml_bench::json::Json` callers (the
//! criterion shim's consumers, `bench_regression`) keep working
//! through this re-export.

pub use axml::json::*;
