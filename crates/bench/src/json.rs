//! The workspace's no-serde JSON writer.
//!
//! The build environment has no `serde`, so everything that emits JSON
//! — the criterion-shim summaries consumed by `bench_regression`, the
//! checked-in `BENCH_*.json` baselines, and the CLI's
//! `--format json` query output — goes through this one small writer
//! instead of growing per-call-site string plumbing.

use std::fmt::Write as _;

/// Escape `s` per JSON string rules (quotes, backslashes, control
/// characters; non-ASCII passes through — JSON is UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// An incremental builder for one JSON value — objects, arrays and
/// scalars, with commas managed automatically. No reflection, no
/// intermediate DOM: values stream into one `String`.
///
/// ```
/// use axml_bench::json::Json;
/// let mut j = Json::new();
/// j.begin_obj();
/// j.key("id");
/// j.str("eval/depth=8");
/// j.key("mean_ns");
/// j.num(75_312.5);
/// j.end_obj();
/// assert_eq!(j.finish(), r#"{"id":"eval/depth=8","mean_ns":75312.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct Json {
    buf: String,
    /// Whether the next emission at the current nesting level needs a
    /// leading comma (one flag per open container).
    need_comma: Vec<bool>,
}

impl Json {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Emit an object key. Must be followed by exactly one value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\":", escape(k));
        // The value after a key is not a fresh element of the object.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Emit a string value.
    pub fn str(&mut self, s: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\"", escape(s));
    }

    /// Emit a numeric value (finite; NaN/∞ become `null`, which JSON
    /// requires).
    pub fn num(&mut self, n: f64) {
        self.pre_value();
        if n.is_finite() {
            let _ = write!(self.buf, "{n}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Emit an integer value.
    pub fn int(&mut self, n: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{n}");
    }

    /// The finished JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hé"), "\"hé\"");
    }

    #[test]
    fn nested_structures_comma_correctly() {
        let mut j = Json::new();
        j.begin_arr();
        for i in 0..2 {
            j.begin_obj();
            j.key("i");
            j.int(i);
            j.key("kids");
            j.begin_arr();
            j.str("a");
            j.str("b");
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        assert_eq!(
            j.finish(),
            r#"[{"i":0,"kids":["a","b"]},{"i":1,"kids":["a","b"]}]"#
        );
    }

    #[test]
    fn non_finite_numbers_are_null() {
        let mut j = Json::new();
        j.begin_arr();
        j.num(1.5);
        j.num(f64::NAN);
        j.end_arr();
        assert_eq!(j.finish(), "[1.5,null]");
    }
}
