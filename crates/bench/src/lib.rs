//! Shared workloads for the figure-regeneration binaries and the
//! Criterion benchmarks.
//!
//! Everything the paper's figures use is built here once so that the
//! `experiments` binary, `EXPERIMENTS.md` and the benches stay in sync.

use axml_semiring::{NatPoly, Semiring};
use axml_uxml::{parse_forest, Forest, Label, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod json;

/// The Fig 1 source value.
pub fn fig1_source() -> Forest<NatPoly> {
    parse_forest("<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>")
        .expect("fig1 source parses")
}

/// The Fig 1 query (the "grandchildren" query written with for-clauses).
pub const FIG1_QUERY: &str =
    "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }";

/// The Fig 4 source value.
pub fn fig4_source() -> Forest<NatPoly> {
    parse_forest(
        "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
    )
    .expect("fig4 source parses")
}

/// The Fig 4 query.
pub const FIG4_QUERY: &str = "element r { $T//c }";

/// The Fig 5/6/7 view, exactly as printed in the paper.
pub const FIG5_VIEW: &str = r#"
    let $r := $d/R/*,
        $rAB := for $t in $r return <t> { $t/A, $t/B } </t>,
        $rBC := for $t in $r return <t> { $t/B, $t/C } </t>,
        $s := $d/S/*
    return
      <Q> { for $x in $rAB, $y in ($rBC, $s)
            where $x/B = $y/B
            return <t> { $x/A, $y/C } </t> } </Q>"#;

/// The Fig 6 source (Fig 5 data with annotations on every node kind).
pub fn fig6_source() -> Forest<NatPoly> {
    parse_forest(
        r#"<D>
             <R {w1}>
               <t {x1}> <A {y1}> a </A> <B {y2}> b {z1} </B> <C {y3}> c </C> </t>
               <t {x2}> <A {y1}> d </A> <B {y2}> b {z2} </B> <C {y3}> e {z3} </C> </t>
               <t {x3}> <A {y1}> f </A> <B {y2}> g {z4} </B> <C {y3}> e {z5} </C> </t>
             </R>
             <S>
               <t {x4}> <B {y5}> b {z6} </B> <C {y6}> c </C> </t>
               <t {x5}> <B {y5}> g {z7} </B> <C {y6}> c </C> </t>
             </S>
           </D>"#,
    )
    .expect("fig6 source parses")
}

/// The §5 representation: Fig 4's source with x1, x2 set to 1.
pub fn section5_repr() -> Forest<NatPoly> {
    parse_forest("<a> <b> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b </a> </d> </c> </a>")
        .expect("section 5 representation parses")
}

/// A balanced tree of the given depth and branching factor with `1`
/// annotations everywhere, in any semiring (for scaling benches).
/// Leaves are labeled `c` (so `//c` finds them); inner siblings carry
/// distinct labels so they never merge. `size = Σ branchingⁱ` nodes.
pub fn balanced_tree<K: Semiring>(depth: u32, branching: u32) -> Tree<K> {
    fn build<K: Semiring>(depth: u32, branching: u32, idx: u32) -> Tree<K> {
        if depth == 0 {
            // first leaf under each parent is a `c`, the rest distinct
            return if idx == 0 {
                Tree::leaf("c")
            } else {
                Tree::new(Label::new(&format!("l{idx}")), Forest::new())
            };
        }
        let mut kids = Forest::new();
        for i in 0..branching {
            kids.insert(build::<K>(depth - 1, branching, i), K::one());
        }
        Tree::new(Label::new(&format!("n{depth}_{idx}")), kids)
    }
    build::<K>(depth, branching, 0)
}

/// A random forest over a bounded label alphabet with fresh provenance
/// tokens on every node — `n_nodes` grows linearly with the `size`
/// parameter (used by the Prop 2 sweep and the scaling benches).
pub fn random_annotated_forest(seed: u64, size: usize) -> Forest<NatPoly> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = 0usize;
    let mut forest = Forest::new();
    let roots = 1 + size / 16;
    for _ in 0..roots {
        let t = random_tree(&mut rng, size / roots, &mut counter);
        let var = NatPoly::var_named(&format!("r{counter}"));
        counter += 1;
        forest.insert(t, var);
    }
    forest
}

fn random_tree(rng: &mut StdRng, budget: usize, counter: &mut usize) -> Tree<NatPoly> {
    let labels = ["a", "b", "c", "d", "e"];
    let label = labels[rng.gen_range(0..labels.len())];
    if budget <= 1 {
        return Tree::leaf(label);
    }
    let kids_n = rng.gen_range(1..=3.min(budget));
    let mut kids = Forest::new();
    let per = (budget - 1) / kids_n;
    for _ in 0..kids_n {
        let child = random_tree(rng, per, counter);
        let var = NatPoly::var_named(&format!("n{counter}"));
        *counter += 1;
        kids.insert(child, var);
    }
    Tree::new(label, kids)
}

/// A wide, shallow ℕ\[X\]-annotated "relation-like" document with `rows`
/// tuples, for view-scaling benchmarks (the Fig 5/6 shape at scale).
pub fn relation_like_doc(rows: usize) -> Forest<NatPoly> {
    let values = ["u", "v", "w", "x", "y"];
    let mut r_tuples = Forest::new();
    for i in 0..rows {
        let a = values[i % 5];
        let b = values[(i / 5) % 5];
        let c = values[(i / 25) % 5];
        let t = parse_forest::<NatPoly>(&format!(
            "<t {{x{i}}}> <A> {a} </A> <B> {b} </B> <C> {c} </C> </t>"
        ))
        .expect("tuple parses");
        let (tree, k) = t.into_iter().next().expect("one tuple");
        r_tuples.insert(tree, k);
    }
    let mut s_tuples = Forest::new();
    for i in 0..rows.div_ceil(2) {
        let b = values[i % 5];
        let c = values[(i / 5) % 5];
        let t = parse_forest::<NatPoly>(&format!("<t {{s{i}}}> <B> {b} </B> <C> {c} </C> </t>"))
            .expect("tuple parses");
        let (tree, k) = t.into_iter().next().expect("one tuple");
        s_tuples.insert(tree, k);
    }
    let mut rels = Forest::new();
    rels.insert(Tree::new("R", r_tuples), NatPoly::one());
    rels.insert(Tree::new("S", s_tuples), NatPoly::one());
    Forest::unit(Tree::new("D", rels))
}

/// The shared-subtree corpus for the storage/dedup stat: `n` documents
/// that all embed the same balanced body and the same relation-like
/// document, distinguished only by a per-document marker leaf. The
/// logical node count grows linearly in `n` while the distinct-subtree
/// count stays ~constant — the workload the engine's content-addressed
/// arena exists for (UniProtKB-style corpora with massive repeated
/// substructure).
pub fn shared_corpus(n: usize) -> Vec<(String, Forest<NatPoly>)> {
    let shared = balanced_tree::<NatPoly>(6, 2);
    let rel = relation_like_doc(64);
    (0..n)
        .map(|i| {
            let mut f = Forest::new();
            f.insert(shared.clone(), NatPoly::one());
            for (t, k) in rel.iter() {
                f.insert(t.clone(), k.clone());
            }
            f.insert(Tree::leaf(format!("marker{i}").as_str()), NatPoly::one());
            (format!("shared{i:02}"), f)
        })
        .collect()
}

/// Load the [`shared_corpus`] into a fresh engine and report its
/// [`axml::StorageStats`] — the deterministic memory/dedup numbers the
/// `bench_regression` gate records alongside latency.
pub fn shared_corpus_stats(n: usize) -> axml::StorageStats {
    let engine = axml::Engine::new();
    for (name, f) in shared_corpus(n) {
        engine.insert_forest(&name, f);
    }
    engine.storage_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::Nat;

    #[test]
    fn balanced_tree_sizes() {
        let t = balanced_tree::<Nat>(2, 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.size(), 7, "1 + 2 + 4 nodes");
        // distinct siblings never merge
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn random_forest_deterministic() {
        let a = random_annotated_forest(7, 64);
        let b = random_annotated_forest(7, 64);
        assert_eq!(a, b);
        assert!(a.size() > 8);
    }

    #[test]
    fn relation_like_doc_shape() {
        let d = relation_like_doc(10);
        let root = d.trees().next().unwrap();
        assert_eq!(root.label().name(), "D");
        assert_eq!(root.children().len(), 2);
    }

    #[test]
    fn figure_sources_parse() {
        assert_eq!(fig1_source().len(), 1);
        assert_eq!(fig4_source().len(), 1);
        assert_eq!(fig6_source().len(), 1);
        assert_eq!(section5_repr().len(), 1);
    }
}
