//! Perf-regression gate for the criterion-shim benchmarks.
//!
//! Reads a fresh benchmark summary (the JSON-lines file the shim
//! appends to `$CRITERION_JSON`, or a normalized JSON array), compares
//! every benchmark's mean against the first checked-in baseline that
//! knows it, and fails — exit code 1 — when any mean regressed by more
//! than the threshold. Used by the `bench-regression` CI job and
//! runnable locally:
//!
//! ```text
//! CRITERION_JSON=/tmp/bench.jsonl cargo bench -p axml-bench
//! cargo run --release -p axml-bench --bin bench_regression -- \
//!     --new /tmp/bench.jsonl \
//!     --baseline BENCH_pr2.json --baseline BENCH_baseline.json \
//!     --threshold 0.25 --write-normalized BENCH_pr3.json
//! ```
//!
//! The build environment has no serde; the two flat JSON shapes the
//! shim and the checked-in baselines use are parsed by hand below.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark summary record (the shim's output shape).
#[derive(Clone, Debug)]
struct Rec {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: u64,
}

fn main() -> ExitCode {
    let mut new_path: Option<String> = None;
    let mut baselines: Vec<String> = Vec::new();
    let mut threshold = 0.25f64;
    let mut normalized_out: Option<String> = None;
    let mut median_normalize = false;
    let mut storage_stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--new" => new_path = Some(value("--new")),
            "--baseline" => baselines.push(value("--baseline")),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --threshold: {e}")))
            }
            "--write-normalized" => normalized_out = Some(value("--write-normalized")),
            "--median-normalize" => median_normalize = true,
            "--storage-stats" => storage_stats = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_regression --new FILE [--baseline FILE]... \
                     [--threshold 0.25] [--median-normalize] [--storage-stats] \
                     [--write-normalized FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let new_path = new_path.unwrap_or_else(|| die("--new FILE is required"));
    let mut fresh = load(&new_path);
    if fresh.is_empty() {
        die(&format!("no benchmark records in {new_path}"));
    }
    if storage_stats {
        fresh.extend(storage_records());
    }

    // Baselines: first file listed that knows an id wins.
    let baseline_recs: Vec<(String, BTreeMap<String, Rec>)> = baselines
        .iter()
        .map(|p| {
            let map = load(p).into_iter().map(|r| (r.id.clone(), r)).collect();
            (p.clone(), map)
        })
        .collect();

    if let Some(path) = normalized_out {
        write_normalized(&path, &fresh);
        println!("normalized summary written to {path}");
    }

    // Pair each fresh record with the first baseline that knows it.
    let paired: Vec<(&Rec, Option<(&str, &Rec)>)> = fresh
        .iter()
        .map(|rec| {
            let base = baseline_recs
                .iter()
                .find_map(|(file, map)| map.get(&rec.id).map(|r| (file.as_str(), r)));
            (rec, base)
        })
        .collect();

    // With --median-normalize, divide every ratio by the median ratio
    // across all compared benchmarks: a *uniformly* slower or faster
    // machine (baselines are recorded on dev hardware, CI runners
    // differ) cancels out, while a genuine single-benchmark regression
    // still stands against its peers. Deterministic count records
    // (`storage/...`) are machine-independent, so they neither enter
    // the median pool nor get divided by the scale below.
    let mut ratios: Vec<f64> = paired
        .iter()
        .filter(|(rec, _)| !is_count(&rec.id))
        .filter_map(|(rec, base)| base.map(|(_, old)| rec.mean_ns / old.mean_ns))
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let scale = if median_normalize && !ratios.is_empty() {
        ratios[ratios.len() / 2].max(f64::MIN_POSITIVE)
    } else {
        1.0
    };
    if median_normalize {
        println!("machine-speed scale (median ratio vs baselines): {scale:.2}x");
    }

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    println!(
        "{:<55} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline ns", "new ns", "ratio"
    );
    for (rec, base) in &paired {
        match base {
            None => println!(
                "{:<55} {:>12} {:>12.1} {:>8}  new (no baseline)",
                rec.id, "-", rec.mean_ns, "-"
            ),
            Some((file, old)) => {
                compared += 1;
                let ratio = rec.mean_ns / old.mean_ns / if is_count(&rec.id) { 1.0 } else { scale };
                let verdict = if ratio > 1.0 + threshold {
                    regressions.push((rec.id.clone(), old.mean_ns, rec.mean_ns, ratio));
                    "REGRESSED"
                } else if ratio < 0.8 {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{:<55} {:>12.1} {:>12.1} {:>8.2}  {verdict} (vs {file})",
                    rec.id, old.mean_ns, rec.mean_ns, ratio
                );
            }
        }
    }
    println!(
        "\n{} benchmarks, {} compared against baselines, {} regression(s) \
         (threshold: +{:.0}%{})",
        fresh.len(),
        compared,
        regressions.len(),
        threshold * 100.0,
        if median_normalize {
            ", median-normalized"
        } else {
            ""
        }
    );
    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (id, old, new, ratio) in &regressions {
            eprintln!("REGRESSION: {id}: {old:.1} ns -> {new:.1} ns ({ratio:.2}x)");
        }
        ExitCode::FAILURE
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_regression: {msg}");
    std::process::exit(2)
}

/// Records exempt from machine-speed normalization, compared against
/// baselines at the same threshold but neither entering the median
/// pool nor divided by the scale: deterministic count records
/// (`storage/...`, node/dedup statistics — machine-independent by
/// construction) and the server loopback latencies (`server/...`,
/// dominated by syscall/scheduling overhead that does not track CPU
/// speed the way the compute benches setting the median do), plus the
/// churn cost ratios (`…/cost_ratio_x1000`, a per-mille
/// incremental-vs-full quotient — machine speed divides out of the
/// quotient by construction).
fn is_count(id: &str) -> bool {
    id.starts_with("storage/") || id.starts_with("server/") || id.ends_with("/cost_ratio_x1000")
}

/// Synthesize count records for the shared-subtree corpus: logical node
/// count, distinct subtree count after content addressing, and the
/// dedup ratio ×1000. `mean_ns` carries the count (the comparison
/// machinery is unit-agnostic); a dedup regression — the arena storing
/// more distinct subtrees for the same corpus — fails the gate like any
/// latency regression.
fn storage_records() -> Vec<Rec> {
    let stats = axml_bench::shared_corpus_stats(16);
    // distinct subtrees per 1000 logical nodes: *lower* is better, so a
    // dedup regression raises it and the ratio>threshold gate catches it
    // (the inverse "sharing factor" would flag improvements instead).
    let distinct_per_1000 = 1000 * stats.distinct_subtrees / stats.logical_nodes.max(1);
    let count = |name: &str, value: usize| Rec {
        id: format!("storage/shared_corpus16/{name}"),
        mean_ns: value as f64,
        median_ns: value as f64,
        min_ns: value as f64,
        max_ns: value as f64,
        samples: 1,
    };
    vec![
        count("logical_nodes", stats.logical_nodes),
        count("distinct_subtrees", stats.distinct_subtrees),
        count("child_edges", stats.child_edges),
        count("distinct_per_1000_logical", distinct_per_1000),
    ]
}

/// Load records from a JSON array or JSON-lines file. Duplicate ids
/// keep the *last* record (reruns append to `$CRITERION_JSON`).
fn load(path: &str) -> Vec<Rec> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut by_id: BTreeMap<String, usize> = BTreeMap::new();
    let mut out: Vec<Rec> = Vec::new();
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        path,
    };
    p.skip_ws_and(b"[,]");
    while p.pos < p.bytes.len() {
        let rec = p.object();
        match by_id.get(&rec.id) {
            Some(&i) => out[i] = rec,
            None => {
                by_id.insert(rec.id.clone(), out.len());
                out.push(rec);
            }
        }
        p.skip_ws_and(b"[,]");
    }
    out
}

/// A parser exactly as strong as the shim's flat output needs.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> ! {
        die(&format!(
            "{}: byte {}: expected {what}",
            self.path, self.pos
        ))
    }

    fn skip_ws_and(&mut self, extra: &[u8]) {
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_whitespace() || extra.contains(&self.bytes[self.pos]))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws_and(b"");
        if self.bytes.get(self.pos) != Some(&b) {
            self.fail(&format!("{:?}", b as char));
        }
        self.pos += 1;
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return s;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(&c @ (b'"' | b'\\' | b'/')) => s.push(c as char),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        _ => self.fail("escape"),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    s.push(c as char);
                    self.pos += 1;
                }
                None => self.fail("closing quote"),
            }
        }
    }

    fn number(&mut self) -> f64 {
        self.skip_ws_and(b"");
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| self.fail("number"))
    }

    fn object(&mut self) -> Rec {
        self.expect(b'{');
        let mut rec = Rec {
            id: String::new(),
            mean_ns: f64::NAN,
            median_ns: f64::NAN,
            min_ns: f64::NAN,
            max_ns: f64::NAN,
            samples: 0,
        };
        loop {
            self.skip_ws_and(b",");
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                break;
            }
            let key = self.string();
            self.expect(b':');
            match key.as_str() {
                "id" => rec.id = self.string(),
                "mean_ns" => rec.mean_ns = self.number(),
                "median_ns" => rec.median_ns = self.number(),
                "min_ns" => rec.min_ns = self.number(),
                "max_ns" => rec.max_ns = self.number(),
                "samples" => rec.samples = self.number() as u64,
                _ => {
                    // unknown key: skip one scalar value
                    self.skip_ws_and(b"");
                    if self.bytes.get(self.pos) == Some(&b'"') {
                        self.string();
                    } else {
                        self.number();
                    }
                }
            }
        }
        if rec.id.is_empty() || !rec.mean_ns.is_finite() {
            self.fail("record with id and mean_ns");
        }
        rec
    }
}

/// Write the canonical pretty-printed array format of the checked-in
/// `BENCH_*.json` files (string escaping via the shared no-serde
/// writer, `axml_bench::json`).
fn write_normalized(path: &str, recs: &[Rec]) {
    let mut out = String::from("[\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"id\": {},\n    \"mean_ns\": {:.1},\n    \"median_ns\": {:.1},\n    \"min_ns\": {:.1},\n    \"max_ns\": {:.1},\n    \"samples\": {}\n  }}{}\n",
            axml_bench::json::string(&r.id),
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            if i + 1 == recs.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}
