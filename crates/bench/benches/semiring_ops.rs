//! Perf-6: semiring microbenchmarks and representation ablations.
//!
//! - raw `+`/`·` throughput per semiring (the per-annotation cost every
//!   query operation pays);
//! - ℕ\[X\] polynomial product scaling in term count;
//! - ablation: `PosBool` (absorbing, canonical DNF) vs `Why`
//!   (non-absorbing witness sets) on iterated union/product chains —
//!   minimization costs per operation but keeps annotations small;
//!   without it, witness sets grow and every later operation pays more.

use axml_semiring::{Nat, NatPoly, PosBool, Semiring, Why};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn poly_with_terms(n: usize, prefix: &str) -> NatPoly {
    let mut p = NatPoly::zero();
    for i in 0..n {
        p = p.plus(
            &NatPoly::var_named(&format!("{prefix}{i}"))
                .times(&NatPoly::var_named(&format!("{prefix}{}", (i + 1) % n))),
        );
    }
    p
}

fn raw_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("raw_ops");
    let (na, nb) = (Nat(123456), Nat(654321));
    g.bench_function("nat_times", |b| {
        b.iter(|| black_box(na).times(&black_box(nb)))
    });
    let (pa, pb) = (poly_with_terms(8, "ra"), poly_with_terms(8, "rb"));
    g.bench_function("natpoly8_times", |b| {
        b.iter(|| black_box(&pa).times(black_box(&pb)))
    });
    g.bench_function("natpoly8_plus", |b| {
        b.iter(|| black_box(&pa).plus(black_box(&pb)))
    });
    g.finish();
}

fn poly_product_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("poly_product_scaling");
    for n in [2usize, 8, 32] {
        let a = poly_with_terms(n, "psa");
        let b = poly_with_terms(n, "psb");
        g.bench_function(BenchmarkId::new("terms", n), |bch| {
            bch.iter(|| black_box(&a).times(black_box(&b)))
        });
    }
    g.finish();
}

/// Build Σᵢ (xᵢ ∧ xᵢ₊₁) ∨ xᵢ chains where absorption fires constantly.
fn chain<K: Semiring>(n: usize, var: impl Fn(usize) -> K) -> K {
    let mut acc = K::zero();
    for i in 0..n {
        let a = var(i);
        let b = var((i + 1) % n);
        acc = acc.plus(&a.times(&b)).plus(&a);
    }
    acc
}

fn absorption_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("absorption_ablation");
    for n in [8usize, 16, 32] {
        g.bench_function(BenchmarkId::new("posbool_absorbing", n), |b| {
            b.iter(|| chain(n, |i| PosBool::var_named(&format!("ab{i}"))))
        });
        g.bench_function(BenchmarkId::new("why_nonabsorbing", n), |b| {
            b.iter(|| chain(n, |i| Why::var(axml_semiring::Var::new(&format!("ab{i}")))))
        });
        // report representation sizes once per n
        let pb = chain(n, |i| PosBool::var_named(&format!("ab{i}")));
        let wy = chain(n, |i| Why::var(axml_semiring::Var::new(&format!("ab{i}"))));
        eprintln!(
            "absorption ablation n={n}: PosBool clauses={}, Why witnesses={}",
            pb.num_clauses(),
            wy.num_witnesses()
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = raw_ops, poly_product_scaling, absorption_ablation
}
criterion_main!(benches);
