//! Perf-5: multi-query throughput. A fixed batch of 64 prepared-query
//! evaluations over the `eval_scaling` corpus (balanced depth-8
//! trees), scheduled through `Engine::eval_batch_on` on pools of 1, 2
//! and 8 workers, against the plain sequential loop — queries/sec is
//! `64 / (ns_per_iter · 1e-9)`, and the `pool8 / seq` ratio is the
//! batch-throughput scaling factor the parallel evaluation layer
//! exists for. `eval_many_docs` (one query fanned over 8 documents)
//! rides along.
//!
//! Caveat for cross-machine comparisons: a pool can only scale to the
//! cores that exist. On a single-core container every pool size
//! measures (sequential + scheduling overhead); the recorded baseline
//! states the machine's core count alongside the numbers.

use axml::{Engine, EvalOptions, Pool, PreparedQuery, SemiringKind};
use axml_bench::balanced_tree;
use axml_semiring::NatPoly;
use axml_uxml::Forest;
use criterion::{criterion_group, criterion_main, Criterion};

const N_DOCS: usize = 8;
const BATCH: usize = 64;

struct Workload {
    engine: Engine,
    queries: Vec<PreparedQuery>,
}

fn workload() -> Workload {
    let engine = Engine::new();
    for i in 0..N_DOCS {
        engine.insert_forest(
            &format!("S{i}"),
            Forest::unit(balanced_tree::<NatPoly>(8, 2)),
        );
    }
    let queries = (0..N_DOCS)
        .map(|i| {
            engine
                .prepare(&format!("element out {{ $S{i}//c }}"))
                .expect("prepares")
        })
        .collect();
    Workload { engine, queries }
}

/// 64 entries: 8 documents × a rotating semiring mix (symbolic ℕ[X]
/// plus three specialized kinds — the steady-state server shape where
/// every artifact and specialization is already cached).
fn batch(w: &Workload) -> Vec<(&PreparedQuery, EvalOptions)> {
    const KINDS: [SemiringKind; 4] = [
        SemiringKind::NatPoly,
        SemiringKind::Nat,
        SemiringKind::Tropical,
        SemiringKind::Why,
    ];
    (0..BATCH)
        .map(|j| {
            (
                &w.queries[j % N_DOCS],
                EvalOptions::new().semiring(KINDS[j % KINDS.len()]),
            )
        })
        .collect()
}

fn throughput(c: &mut Criterion) {
    let w = workload();
    let entries = batch(&w);
    // Warm every (document × kind) specialization and per-kind artifact
    // cache so the measurement is steady-state evaluation only.
    for r in w.engine.eval_batch_on(&Pool::new(1), &entries) {
        r.expect("warmup evaluates");
    }

    let mut g = c.benchmark_group("throughput");
    g.bench_function("batch64/seq", |b| {
        b.iter(|| {
            let results: Vec<_> = entries.iter().map(|(q, o)| q.eval(&w.engine, *o)).collect();
            assert_eq!(results.len(), BATCH);
            results
        })
    });
    for workers in [1usize, 2, 8] {
        let pool = Pool::new(workers);
        g.bench_function(format!("batch64/pool{workers}"), |b| {
            b.iter(|| {
                let results = w.engine.eval_batch_on(&pool, &entries);
                assert_eq!(results.len(), BATCH);
                results
            })
        });
    }

    // One prepared query fanned over every document.
    let q = w.engine.prepare("element out { $D//c }").expect("prepares");
    let names: Vec<String> = (0..N_DOCS).map(|i| format!("S{i}")).collect();
    let docs: Vec<&str> = names.iter().map(String::as_str).collect();
    let pool8 = Pool::new(8);
    g.bench_function("many_docs8/seq", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| {
                    let aliases: Vec<(&str, &str)> =
                        q.free_vars().iter().map(|v| (v.as_str(), *d)).collect();
                    q.eval_bound(&w.engine, EvalOptions::new(), &aliases)
                })
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("many_docs8/pool8", |b| {
        b.iter(|| {
            w.engine
                .eval_many_docs_on(&pool8, &q, &docs, EvalOptions::new())
        })
    });
    g.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
