//! Perf-5: multi-query throughput. A fixed batch of 64 prepared-query
//! evaluations over the `eval_scaling` corpus (balanced depth-8
//! trees), scheduled through `Engine::eval_batch_on` on pools of 1, 2
//! and 8 workers, against the plain sequential loop — queries/sec is
//! `64 / (ns_per_iter · 1e-9)`, and the `pool8 / seq` ratio is the
//! batch-throughput scaling factor the parallel evaluation layer
//! exists for. `eval_many_docs` (one query fanned over 8 documents)
//! rides along.
//!
//! Caveat for cross-machine comparisons: a pool can only scale to the
//! cores that exist. On a single-core container every pool size
//! measures (sequential + scheduling overhead); the recorded baseline
//! states the machine's core count alongside the numbers.

use axml::{Engine, EvalOptions, Pool, PreparedQuery, SemiringKind};
use axml_bench::balanced_tree;
use axml_semiring::NatPoly;
use axml_uxml::Forest;
use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

const N_DOCS: usize = 8;
const BATCH: usize = 64;

struct Workload {
    engine: Engine,
    queries: Vec<PreparedQuery>,
}

fn workload() -> Workload {
    let engine = Engine::new();
    for i in 0..N_DOCS {
        engine.insert_forest(
            &format!("S{i}"),
            Forest::unit(balanced_tree::<NatPoly>(8, 2)),
        );
    }
    let queries = (0..N_DOCS)
        .map(|i| {
            engine
                .prepare(&format!("element out {{ $S{i}//c }}"))
                .expect("prepares")
        })
        .collect();
    Workload { engine, queries }
}

/// 64 entries: 8 documents × a rotating semiring mix (symbolic ℕ[X]
/// plus three specialized kinds — the steady-state server shape where
/// every artifact and specialization is already cached).
fn batch(w: &Workload) -> Vec<(&PreparedQuery, EvalOptions)> {
    const KINDS: [SemiringKind; 4] = [
        SemiringKind::NatPoly,
        SemiringKind::Nat,
        SemiringKind::Tropical,
        SemiringKind::Why,
    ];
    (0..BATCH)
        .map(|j| {
            (
                &w.queries[j % N_DOCS],
                EvalOptions::new().semiring(KINDS[j % KINDS.len()]),
            )
        })
        .collect()
}

fn throughput(c: &mut Criterion) {
    let w = workload();
    let entries = batch(&w);
    // Warm every (document × kind) specialization and per-kind artifact
    // cache so the measurement is steady-state evaluation only.
    for r in w.engine.eval_batch_on(&Pool::new(1), &entries) {
        r.expect("warmup evaluates");
    }

    let mut g = c.benchmark_group("throughput");
    g.bench_function("batch64/seq", |b| {
        b.iter(|| {
            let results: Vec<_> = entries.iter().map(|(q, o)| q.eval(&w.engine, *o)).collect();
            assert_eq!(results.len(), BATCH);
            results
        })
    });
    for workers in [1usize, 2, 8] {
        let pool = Pool::new(workers);
        g.bench_function(format!("batch64/pool{workers}"), |b| {
            b.iter(|| {
                let results = w.engine.eval_batch_on(&pool, &entries);
                assert_eq!(results.len(), BATCH);
                results
            })
        });
    }

    // One prepared query fanned over every document.
    let q = w.engine.prepare("element out { $D//c }").expect("prepares");
    let names: Vec<String> = (0..N_DOCS).map(|i| format!("S{i}")).collect();
    let docs: Vec<&str> = names.iter().map(String::as_str).collect();
    let pool8 = Pool::new(8);
    g.bench_function("many_docs8/seq", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| {
                    let aliases: Vec<(&str, &str)> =
                        q.free_vars().iter().map(|v| (v.as_str(), *d)).collect();
                    q.eval_bound(&w.engine, EvalOptions::new(), &aliases)
                })
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("many_docs8/pool8", |b| {
        b.iter(|| {
            w.engine
                .eval_many_docs_on(&pool8, &q, &docs, EvalOptions::new())
        })
    });
    g.finish();
}

/// Document churn: edit-then-eval through `Engine::edit_document` (the
/// incremental path — spine-only interning, Δ-fact propagation on the
/// shredded route, fingerprint-memoized re-walks on the direct route)
/// against reparse-then-eval (`load_document` with the full edited
/// text — the only option before the edit API existed). Corpus: one
/// depth-6 branching-3 balanced tree (1093 logical nodes); the
/// `edit1pct` scenario splices a height-1 subtree (4 nodes, ~0.4% of
/// the document), `edit10pct` a height-4 subtree (121 nodes, ~11%).
/// Each sample times one edit (or reload) **plus** one evaluation of
/// `$S//c`, alternating between two same-size splice payloads so the
/// document stays in steady state.
///
/// Records: `churn/incremental_vs_full/{route}_{scenario}/{edit_eval,
/// reparse_eval}` (wall-clock, median-normalized like the compute
/// benches) and `…/cost_ratio_x1000` — the incremental cost as a
/// per-mille fraction of the full cost (machine-independent, exempt
/// from normalization; ≤200 means the edit path is ≥5× faster, and a
/// *rise* past the gate threshold fails CI).
fn churn(c: &mut Criterion) {
    let _ = c; // hand-measured: each sample is one edit+eval round trip
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if let Some(filter) = args.iter().rfind(|a| !a.starts_with("--")) {
        if !"churn/incremental_vs_full".contains(filter.as_str()) {
            return;
        }
    }

    /// A balanced splice payload with labels disjoint from the
    /// corpus's (`tag` makes the two alternating variants distinct);
    /// like the corpus, the first leaf under each parent is a `c` so
    /// the benched query keeps matching inside the spliced region.
    fn variant(height: u32, branching: u32, tag: u32) -> axml_uxml::Tree<NatPoly> {
        fn build(h: u32, b: u32, tag: u32, idx: u32) -> axml_uxml::Tree<NatPoly> {
            use axml_semiring::Semiring as _;
            if h == 0 {
                return if idx == 0 {
                    axml_uxml::Tree::leaf("c")
                } else {
                    axml_uxml::Tree::leaf(axml_uxml::Label::new(&format!("w{tag}_{idx}")))
                };
            }
            let mut kids = Forest::new();
            for i in 0..b {
                kids.insert(build(h - 1, b, tag, i), NatPoly::one());
            }
            axml_uxml::Tree::new(axml_uxml::Label::new(&format!("v{tag}_{h}_{idx}")), kids)
        }
        build(height, branching, tag, 0)
    }

    let base = balanced_tree::<NatPoly>(6, 3);
    let base_text = base.to_string();
    const QUERY: &str = "$S//c";

    for (scenario, path, height) in [
        ("edit1pct", "/0/0/0/0/0/0", 1u32),
        ("edit10pct", "/0/0/0", 4),
    ] {
        let scripts: Vec<String> = (0..2)
            .map(|tag| format!("splice {path} {}", variant(height, 3, tag)))
            .collect();
        // The reparse side's inputs: the full text of the document one
        // splice away from base, one per payload variant.
        let full_texts: Vec<String> = scripts
            .iter()
            .map(|s| {
                let e = Engine::new();
                e.insert_forest("S", Forest::unit(base.clone()));
                e.edit_document_text("S", s).expect("splice applies");
                let doc = e.document("S").expect("document exists");
                let entries = doc.iter_document();
                assert_eq!(entries.len(), 1, "corpus is single-rooted");
                entries[0].0.to_string()
            })
            .collect();

        for route in [axml::Route::Direct, axml::Route::Shredded] {
            let opts = EvalOptions::new().semiring(SemiringKind::Nat).route(route);

            let inc = Engine::new();
            inc.insert_forest("S", Forest::unit(base.clone()));
            let q_inc = inc.prepare(QUERY).expect("prepares");
            let full = Engine::new();
            full.load_document("S", &base_text).expect("corpus loads");
            let q_full = full.prepare(QUERY).expect("prepares");

            let (warmup, samples) = if test_mode { (2, 2) } else { (6, 40) };
            // Warm to steady state: the incremental engine needs one
            // edited version before its memo/fixpoint state engages.
            for i in 0..warmup {
                inc.edit_document_text("S", &scripts[i % 2]).expect("edits");
                q_inc.eval(&inc, opts).expect("evaluates");
                full.load_document("S", &full_texts[i % 2])
                    .expect("reloads");
                q_full.eval(&full, opts).expect("evaluates");
            }

            let measure = |label: &str, f: &mut dyn FnMut(usize)| {
                let mut ns: Vec<f64> = (0..samples)
                    .map(|i| {
                        let t = Instant::now();
                        f(i);
                        t.elapsed().as_nanos() as f64
                    })
                    .collect();
                ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
                let mean = ns.iter().sum::<f64>() / ns.len() as f64;
                let p50 = ns[(ns.len() - 1) / 2];
                criterion::record(
                    &format!(
                        "churn/incremental_vs_full/{}_{scenario}/{label}",
                        route.name()
                    ),
                    mean,
                    p50,
                    ns[0],
                    ns[ns.len() - 1],
                    samples,
                );
                mean
            };
            let inc_mean = measure("edit_eval", &mut |i| {
                inc.edit_document_text("S", &scripts[i % 2]).expect("edits");
                q_inc.eval(&inc, opts).expect("evaluates");
            });
            let full_mean = measure("reparse_eval", &mut |i| {
                full.load_document("S", &full_texts[i % 2])
                    .expect("reloads");
                q_full.eval(&full, opts).expect("evaluates");
            });

            let ratio_x1000 = (1000.0 * inc_mean / full_mean).round();
            criterion::record(
                &format!(
                    "churn/incremental_vs_full/{}_{scenario}/cost_ratio_x1000",
                    route.name()
                ),
                ratio_x1000,
                ratio_x1000,
                ratio_x1000,
                ratio_x1000,
                samples,
            );
        }
    }
}

/// The streaming cursor against one-shot materialization, on a wide
/// result (512 distinct top-level pieces, `Nat`, direct route):
/// `collect` is the full-drain cost of `eval_stream` (its overhead
/// over `materialized` is the channel + producer-thread tax), and
/// `first_piece` is the latency win the cursor exists for — time until
/// the first `(tree, annotation)` pair is in hand, dropping the cursor
/// (and cancelling the producer) immediately after.
fn eval_stream(c: &mut Criterion) {
    let engine = Engine::new();
    // Distinct labels: identical trees would merge into one K-set piece.
    let body: String = (0..512).map(|i| format!("b{i} {{x{i}}} ")).collect();
    engine
        .load_document("W", &format!("<a> {body} </a>"))
        .expect("loads the wide document");
    let q = engine.prepare("$W/*").expect("prepares");
    let opts = EvalOptions::new().semiring(SemiringKind::Nat);
    q.eval(&engine, opts).expect("warms the caches");

    let mut g = c.benchmark_group("eval_stream");
    g.bench_function("wide512/materialized", |b| {
        b.iter(|| q.eval(&engine, opts).expect("evaluates"))
    });
    g.bench_function("wide512/collect", |b| {
        b.iter(|| {
            q.eval_stream(&engine, opts)
                .expect("streams")
                .collect_result()
                .expect("collects")
        })
    });
    g.bench_function("wide512/first_piece", |b| {
        b.iter(|| {
            let mut cursor = q.eval_stream(&engine, opts).expect("streams");
            cursor
                .next()
                .expect("a wide result has pieces")
                .expect("ok")
        })
    });
    g.finish();
}

/// The HTTP front end's loopback round trip: one keep-alive
/// connection issuing `POST /eval?handle=…` for the Fig 1 query, each
/// request timed individually so tail latency is visible. Unlike the
/// in-process benches above, every sample includes request parsing,
/// registry lookup, evaluation on the server's pool, and the chunked
/// streaming write — the end-to-end cost a network client pays.
///
/// Records go through `criterion::record` with explicit p50/p99
/// alongside the mean (`server/loopback_eval/{mean,p50,p99}`); the
/// regression gate exempts `server/*` from median normalization the
/// same way it exempts the `storage/*` counts.
fn server_loopback(c: &mut Criterion) {
    let _ = c; // measured by hand: per-request latencies, not b.iter()
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if let Some(filter) = args.iter().rfind(|a| !a.starts_with("--")) {
        if !"server/loopback_eval".contains(filter.as_str()) {
            return;
        }
    }

    let engine = Arc::new(Engine::new());
    engine.insert_forest("S", axml_bench::fig1_source());
    let mut server = axml_server::start(axml_server::ServerConfig::default(), engine)
        .expect("loopback server starts");

    let mut conn = std::net::TcpStream::connect(server.addr()).expect("connects");
    conn.set_nodelay(true).expect("nodelay");
    let handle = {
        let body = axml_bench::FIG1_QUERY.as_bytes();
        let response = roundtrip(
            &mut conn,
            &format!(
                "POST /prepare HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                body.len()
            ),
            body,
        );
        let text = String::from_utf8(response).expect("prepare response is UTF-8");
        text.split("\"handle\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("prepare returns a handle")
            .to_owned()
    };

    let head =
        format!("POST /eval?handle={handle}&semiring=nat HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    let (warmup, samples) = if test_mode { (1, 1) } else { (20, 200) };
    for _ in 0..warmup {
        roundtrip(&mut conn, &head, b"");
    }
    let mut latencies_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            let body = roundtrip(&mut conn, &head, b"");
            let ns = t.elapsed().as_nanos() as f64;
            assert!(!body.is_empty(), "eval response has a body");
            ns
        })
        .collect();
    server.shutdown();

    latencies_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = latencies_ns.iter().sum::<f64>() / latencies_ns.len() as f64;
    let pct = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    let (min, max) = (latencies_ns[0], latencies_ns[latencies_ns.len() - 1]);
    criterion::record("server/loopback_eval/mean", mean, p50, min, max, samples);
    criterion::record("server/loopback_eval/p50", p50, p50, p50, p50, samples);
    criterion::record("server/loopback_eval/p99", p99, p99, p99, p99, samples);
}

/// Time-to-first-chunk against time-to-last-byte on a wide streamed
/// result (400 distinct pieces): the gap between
/// `server/first_byte_latency/first_chunk` and `…/last_byte` is the
/// wall-clock the streaming `/eval` endpoint hands back to the client
/// — the first piece is on the wire while the evaluation is still
/// producing the rest. Hand-measured per request like
/// [`server_loopback`]; `server/*` records are exempt from median
/// normalization in the regression gate.
fn server_first_byte(c: &mut Criterion) {
    let _ = c; // measured by hand: split timestamps inside one response
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if let Some(filter) = args.iter().rfind(|a| !a.starts_with("--")) {
        if !"server/first_byte_latency".contains(filter.as_str()) {
            return;
        }
    }

    let engine = Arc::new(Engine::new());
    let body: String = (0..400).map(|i| format!("b{i} {{x{i}}} ")).collect();
    engine
        .load_document("W", &format!("<a> {body} </a>"))
        .expect("loads the wide document");
    let mut server = axml_server::start(axml_server::ServerConfig::default(), engine)
        .expect("loopback server starts");

    let mut conn = std::net::TcpStream::connect(server.addr()).expect("connects");
    conn.set_nodelay(true).expect("nodelay");
    let head = "POST /eval?semiring=nat HTTP/1.1\r\nContent-Length: 4\r\n\r\n";
    let (warmup, samples) = if test_mode { (1, 1) } else { (20, 200) };
    for _ in 0..warmup {
        roundtrip_timed(&mut conn, head, b"$W/*");
    }
    let mut firsts: Vec<f64> = Vec::with_capacity(samples);
    let mut lasts: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (first_ns, last_ns) = roundtrip_timed(&mut conn, head, b"$W/*");
        assert!(first_ns <= last_ns);
        firsts.push(first_ns);
        lasts.push(last_ns);
    }
    server.shutdown();

    for (name, mut ns) in [("first_chunk", firsts), ("last_byte", lasts)] {
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let p50 = ns[(ns.len() - 1) / 2];
        let (min, max) = (ns[0], ns[ns.len() - 1]);
        criterion::record(
            &format!("server/first_byte_latency/{name}"),
            mean,
            p50,
            min,
            max,
            samples,
        );
    }
}

/// Mixed cheap/expensive load on a 2-worker server pool — the
/// tail-latency-isolation scenario scope-affine scheduling exists for.
/// Cheap requests are PosBool direct evals over a small document;
/// expensive ones run the NatPoly shredded fixpoint over a deep one.
/// One background client hammers the expensive handle continuously
/// while the foreground client times cheap requests, first in
/// isolation and then under the mixed load.
///
/// Records `server/mixed_load/{cheap_p50,cheap_p99,expensive_mean}`
/// (nanoseconds, machine-dependent, hand-measured like
/// [`server_loopback`]) plus `server/mixed_load/cheap_p99_interference`
/// — mixed-load cheap p99 divided by isolated cheap p99 from the same
/// process, a dimensionless ratio that transfers across machines the
/// way the `churn/` ratios do. Interference ≈ 1 means an expensive
/// stranger's fixpoint cannot capture a cheap request's critical path;
/// the pre-affinity scheduler measured multiples of that. `server/*`
/// records are exempt from median normalization in the regression
/// gate.
fn server_mixed_load(c: &mut Criterion) {
    let _ = c; // measured by hand: per-request latencies under load
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if let Some(filter) = args.iter().rfind(|a| !a.starts_with("--")) {
        if !"server/mixed_load".contains(filter.as_str()) {
            return;
        }
    }

    let engine = Arc::new(Engine::new());
    let (levels, width) = if test_mode { (8, 12) } else { (48, 96) };
    let big: String = {
        let mut s = String::new();
        for l in 0..levels {
            s.push_str(&format!("<a {{x{l}}}> "));
            for w in 0..width {
                s.push_str(&format!("c {{y{l}_{w}}} "));
            }
        }
        for _ in 0..levels {
            s.push_str("</a> ");
        }
        s
    };
    let small: String = {
        let body: String = (0..96).map(|w| format!("c {{v{w}}} ")).collect();
        format!("<r> {body} </r>")
    };
    engine.load_document("BIG", &big).expect("loads BIG");
    engine.load_document("SMALL", &small).expect("loads SMALL");
    let config = axml_server::ServerConfig {
        pool_workers: 2,
        ..Default::default()
    };
    let mut server = axml_server::start(config, engine).expect("loopback server starts");
    let addr = server.addr();

    let prepare = |conn: &mut std::net::TcpStream, query: &str| -> String {
        let body = query.as_bytes();
        let response = roundtrip(
            conn,
            &format!(
                "POST /prepare HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                body.len()
            ),
            body,
        );
        let text = String::from_utf8(response).expect("prepare response is UTF-8");
        text.split("\"handle\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("prepare returns a handle")
            .to_owned()
    };
    let mut conn = std::net::TcpStream::connect(addr).expect("connects");
    conn.set_nodelay(true).expect("nodelay");
    let cheap_handle = prepare(&mut conn, "$SMALL//c");
    let expensive_handle = prepare(&mut conn, "$BIG//c");
    let cheap_head = format!(
        "POST /eval?handle={cheap_handle}&semiring=posbool HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
    );
    let expensive_head = format!(
        "POST /eval?handle={expensive_handle}&semiring=natpoly&route=shredded&parallelism=2 \
         HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
    );

    let (warmup, samples) = if test_mode { (1, 2) } else { (20, 200) };
    let measure_cheap = |conn: &mut std::net::TcpStream| -> Vec<f64> {
        (0..samples)
            .map(|_| {
                let t = Instant::now();
                let body = roundtrip(conn, &cheap_head, b"");
                let ns = t.elapsed().as_nanos() as f64;
                assert!(!body.is_empty(), "cheap eval response has a body");
                ns
            })
            .collect()
    };
    let pct = |ns: &[f64], p: f64| {
        let mut sorted = ns.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    };

    // Phase 1 — isolation: the cheap request's cost with the pool to
    // itself, the denominator of the interference ratio.
    for _ in 0..warmup {
        roundtrip(&mut conn, &cheap_head, b"");
        roundtrip(&mut conn, &expensive_head, b"");
    }
    let isolated = measure_cheap(&mut conn);

    // Phase 2 — mixed: an expensive client loops back-to-back on its
    // own connection while the cheap client re-measures.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let expensive_client = {
        let stop = Arc::clone(&stop);
        let head = expensive_head.clone();
        let mut conn = std::net::TcpStream::connect(addr).expect("connects");
        conn.set_nodelay(true).expect("nodelay");
        std::thread::spawn(move || {
            let mut latencies_ns = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let t = Instant::now();
                let body = roundtrip(&mut conn, &head, b"");
                latencies_ns.push(t.elapsed().as_nanos() as f64);
                assert!(!body.is_empty(), "expensive eval response has a body");
            }
            latencies_ns
        })
    };
    let mixed = measure_cheap(&mut conn);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let expensive_ns = expensive_client.join().expect("expensive client finished");
    server.shutdown();

    let cheap_p50 = pct(&mixed, 0.50);
    let cheap_p99 = pct(&mixed, 0.99);
    let expensive_mean = expensive_ns.iter().sum::<f64>() / expensive_ns.len().max(1) as f64;
    let interference = cheap_p99 / pct(&isolated, 0.99);
    criterion::record(
        "server/mixed_load/cheap_p50",
        cheap_p50,
        cheap_p50,
        cheap_p50,
        cheap_p50,
        samples,
    );
    criterion::record(
        "server/mixed_load/cheap_p99",
        cheap_p99,
        cheap_p99,
        cheap_p99,
        cheap_p99,
        samples,
    );
    criterion::record(
        "server/mixed_load/expensive_mean",
        expensive_mean,
        expensive_mean,
        expensive_mean,
        expensive_mean,
        expensive_ns.len(),
    );
    criterion::record(
        "server/mixed_load/cheap_p99_interference",
        interference,
        interference,
        interference,
        interference,
        samples,
    );
}

/// Like [`roundtrip`], but returns `(time to the end of the first data
/// chunk, time to the last body byte)` in nanoseconds, both measured
/// from the moment the request is fully written.
fn roundtrip_timed(conn: &mut std::net::TcpStream, head: &str, body: &[u8]) -> (f64, f64) {
    conn.write_all(head.as_bytes())
        .expect("writes request head");
    conn.write_all(body).expect("writes request body");
    let t = Instant::now();
    let mut buf = Vec::new();
    let mut one = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(conn.read(&mut one).expect("reads head"), 1, "EOF in head");
        buf.push(one[0]);
    }
    let head_text = String::from_utf8_lossy(&buf);
    assert!(head_text.starts_with("HTTP/1.1 200"), "{head_text}");
    assert!(
        head_text
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "streamed eval responses are chunked"
    );
    let mut first_chunk_ns: Option<f64> = None;
    loop {
        let mut line = Vec::new();
        while !line.ends_with(b"\r\n") {
            assert_eq!(conn.read(&mut one).expect("reads size"), 1, "EOF in chunk");
            line.push(one[0]);
        }
        let size_txt = String::from_utf8_lossy(&line);
        let size = usize::from_str_radix(size_txt.trim(), 16).expect("chunk size");
        let mut chunk = vec![0u8; size + 2]; // data + CRLF
        conn.read_exact(&mut chunk).expect("reads chunk");
        if size == 0 {
            let last_ns = t.elapsed().as_nanos() as f64;
            return (first_chunk_ns.expect("at least one data chunk"), last_ns);
        }
        if first_chunk_ns.is_none() {
            first_chunk_ns = Some(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Write one request, read one complete response (de-chunked when the
/// server streams), return the body bytes.
fn roundtrip(conn: &mut std::net::TcpStream, head: &str, body: &[u8]) -> Vec<u8> {
    conn.write_all(head.as_bytes())
        .expect("writes request head");
    conn.write_all(body).expect("writes request body");
    let mut buf = Vec::new();
    let mut one = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(conn.read(&mut one).expect("reads head"), 1, "EOF in head");
        buf.push(one[0]);
    }
    let head_text = String::from_utf8_lossy(&buf);
    assert!(head_text.starts_with("HTTP/1.1 200"), "{head_text}");
    if head_text
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        let mut out = Vec::new();
        loop {
            let mut line = Vec::new();
            while !line.ends_with(b"\r\n") {
                assert_eq!(conn.read(&mut one).expect("reads size"), 1, "EOF in chunk");
                line.push(one[0]);
            }
            let size_txt = String::from_utf8_lossy(&line);
            let size = usize::from_str_radix(size_txt.trim(), 16).expect("chunk size");
            let mut chunk = vec![0u8; size + 2]; // data + CRLF
            conn.read_exact(&mut chunk).expect("reads chunk");
            if size == 0 {
                return out;
            }
            chunk.truncate(size);
            out.extend_from_slice(&chunk);
        }
    }
    let len: usize = head_text
        .to_ascii_lowercase()
        .split("content-length:")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("content-length");
    let mut out = vec![0u8; len];
    conn.read_exact(&mut out).expect("reads body");
    out
}

criterion_group!(
    benches,
    throughput,
    churn,
    eval_stream,
    server_loopback,
    server_first_byte,
    server_mixed_load
);
criterion_main!(benches);
