//! Perf-2: Prop 2's size bound, measured. Provenance-polynomial sizes
//! (and evaluation time) as the query grows by one `descendant` step at
//! a time over a fixed document: growth is exponential in |p| but each
//! step stays polynomial in |v| — the O(|v|^|p|) shape.

use axml_bench::random_annotated_forest;
use axml_core::run_query;
use axml_semiring::NatPoly;
use axml_uxml::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn prop2_growth(c: &mut Criterion) {
    let forest = random_annotated_forest(11, 48);
    let mut g = c.benchmark_group("prop2_growth");
    for steps in 1..=4usize {
        let mut q = String::from("$S");
        for _ in 0..steps {
            q.push_str("/descendant::*");
        }
        // report the measured polynomial size alongside the timing
        let out = run_query::<NatPoly>(&q, &[("S", Value::Set(forest.clone()))]).unwrap();
        let Value::Set(f) = out else { unreachable!() };
        let max_size = f.iter().map(|(_, k)| k.size()).max().unwrap_or(0);
        let total_size: usize = f.iter().map(|(_, k)| k.size()).sum();
        eprintln!("prop2: |p|={steps} steps → max poly size {max_size}, total {total_size}");
        g.bench_function(BenchmarkId::new("descendant_steps", steps), |b| {
            b.iter(|| {
                run_query::<NatPoly>(&q, &[("S", Value::Set(forest.clone()))]).expect("evaluates")
            })
        });
    }
    g.finish();
}

fn prop2_doc_scaling(c: &mut Criterion) {
    // fixed |p| (2 steps), growing |v|: polynomial growth in |v|
    let mut g = c.benchmark_group("prop2_doc_scaling");
    for size in [16usize, 32, 64, 128] {
        let forest = random_annotated_forest(13, size);
        let q = "$S/descendant::*/descendant::*";
        g.bench_function(BenchmarkId::new("doc_nodes", forest.size()), |b| {
            b.iter(|| {
                run_query::<NatPoly>(q, &[("S", Value::Set(forest.clone()))]).expect("evaluates")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = prop2_growth, prop2_doc_scaling
}
criterion_main!(benches);
