//! Perf-3: why §5's representation systems matter. Computing all query
//! answers of an incomplete document by (a) enumerating the 2ⁿ worlds
//! and querying each, vs (b) evaluating the query ONCE symbolically in
//! ℕ\[X\] and specializing the answer per world (justified by Corollary
//! 1). The crossover: (b) pays polynomial arithmetic once, (a) pays a
//! full query per world — symbolic wins and the gap grows ~2ⁿ.

use axml_core::run_query;
use axml_semiring::NatPoly;
use axml_uxml::hom::specialize_forest;
use axml_uxml::{parse_forest, Forest, Value};
use axml_worlds::{bool_valuations, forest_vars, mod_bool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const QUERY: &str = "element r { $T//c }";

/// An incomplete document with `n` independently-uncertain subtrees.
fn uncertain_doc(n: usize) -> Forest<NatPoly> {
    let mut inner = String::new();
    for i in 0..n {
        inner.push_str(&format!("<c {{u{i}}}> d{i} </c> "));
    }
    parse_forest(&format!("<root> {inner} </root>")).unwrap()
}

fn worlds_vs_symbolic(c: &mut Criterion) {
    for n in [4usize, 6, 8, 10] {
        let doc = uncertain_doc(n);
        let mut g = c.benchmark_group(format!("worlds_vs_symbolic/n={n}"));

        g.bench_function(BenchmarkId::new("enumerate_worlds", n), |b| {
            b.iter(|| {
                let mut answers = std::collections::BTreeSet::new();
                for w in mod_bool(&doc) {
                    let o = run_query::<bool>(QUERY, &[("T", Value::Set(w))]).expect("evaluates");
                    answers.insert(o);
                }
                answers
            })
        });

        g.bench_function(BenchmarkId::new("symbolic_then_specialize", n), |b| {
            b.iter(|| {
                let sym = run_query::<NatPoly>(QUERY, &[("T", Value::Set(doc.clone()))])
                    .expect("evaluates");
                let Value::Tree(t) = sym else { unreachable!() };
                let answer = Forest::unit(t);
                let vars = forest_vars(&answer);
                let mut answers = std::collections::BTreeSet::new();
                for val in bool_valuations(&vars) {
                    answers.insert(specialize_forest(&answer, &val));
                }
                answers
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = worlds_vs_symbolic
}
criterion_main!(benches);
