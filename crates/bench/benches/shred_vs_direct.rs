//! Perf-4: the §7 alternative semantics, costed. Direct evaluation of
//! an XPath chain vs the full shredding pipeline (φ, Datalog fixpoint
//! with Skolem functions, GC, decode). The paper positions shredding as
//! proof-of-concept, "not on practicality": expect the Datalog route to
//! lose by a large factor, with the gap widening on recursive
//! (descendant) steps — that shape is the point of the measurement.

use axml_bench::balanced_tree;
use axml_core::ast::{Axis, NodeTest, Step};
use axml_core::eval_step;
use axml_relational::eval_steps_via_shredding;
use axml_semiring::Nat;
use axml_uxml::{Forest, Label};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn steps_child_child() -> Vec<Step> {
    vec![
        Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
        },
        Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
        },
    ]
}

fn steps_descendant() -> Vec<Step> {
    vec![Step {
        axis: Axis::Descendant,
        test: NodeTest::Label(Label::new("c")),
    }]
}

fn shred_vs_direct(c: &mut Criterion) {
    for depth in [4u32, 6] {
        let forest = Forest::unit(balanced_tree::<Nat>(depth, 2));
        for (name, steps) in [
            ("child_child", steps_child_child()),
            ("descendant_c", steps_descendant()),
        ] {
            let mut g = c.benchmark_group(format!("shred_vs_direct/{name}"));
            g.bench_function(BenchmarkId::new("direct", depth), |b| {
                b.iter(|| {
                    let mut cur = forest.clone();
                    for s in &steps {
                        cur = eval_step(&cur, *s);
                    }
                    cur
                })
            });
            g.bench_function(BenchmarkId::new("shredded_datalog", depth), |b| {
                b.iter(|| eval_steps_via_shredding(&forest, &steps).expect("converges"))
            });
            g.finish();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = shred_vs_direct
}
criterion_main!(benches);
