//! Perf-4: the §7 alternative semantics, costed. Direct evaluation of
//! an XPath-fragment query vs the full shredding pipeline (φ, the
//! semi-naive Datalog fixpoint with Skolem functions, GC, decode). The
//! paper positions shredding as proof-of-concept, "not on
//! practicality": the Datalog route still loses, but since PR 3
//! (semi-naive deltas + indexed joins) by a bounded factor rather than
//! the old 100–400×. Coverage spans chains, unions and branching
//! predicates — everything ψ now translates.

use axml_bench::balanced_tree;
use axml_core::ast::{Axis, NodeTest, Step};
use axml_core::path::PathQuery;
use axml_core::{eval_path, eval_step};
use axml_relational::{eval_path_via_shredding, eval_steps_via_shredding};
use axml_semiring::Nat;
use axml_uxml::{Forest, Label};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn steps_child_child() -> Vec<Step> {
    vec![
        Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
        },
        Step {
            axis: Axis::Child,
            test: NodeTest::Wildcard,
        },
    ]
}

fn steps_descendant() -> Vec<Step> {
    vec![Step {
        axis: Axis::Descendant,
        test: NodeTest::Label(Label::new("c")),
    }]
}

fn shred_vs_direct(c: &mut Criterion) {
    for depth in [4u32, 6] {
        let forest = Forest::unit(balanced_tree::<Nat>(depth, 2));
        for (name, steps) in [
            ("child_child", steps_child_child()),
            ("descendant_c", steps_descendant()),
        ] {
            let mut g = c.benchmark_group(format!("shred_vs_direct/{name}"));
            g.bench_function(BenchmarkId::new("direct", depth), |b| {
                b.iter(|| {
                    let mut cur = forest.clone();
                    for s in &steps {
                        cur = eval_step(&cur, *s);
                    }
                    cur
                })
            });
            g.bench_function(BenchmarkId::new("shredded_datalog", depth), |b| {
                b.iter(|| eval_steps_via_shredding(&forest, &steps).expect("converges"))
            });
            g.finish();
        }
    }
}

/// The newly ψ-translatable fragment: unions and branching predicates.
fn shred_vs_direct_fragment(c: &mut Criterion) {
    let child_wild = Step {
        axis: Axis::Child,
        test: NodeTest::Wildcard,
    };
    let union_query = PathQuery::Union(
        Box::new(PathQuery::from_steps(&steps_descendant())),
        Box::new(PathQuery::from_steps(&[child_wild, child_wild])),
    );
    // //n*[descendant::c] — inner nodes qualified by a recursive path
    let filter_query = PathQuery::Filter(
        Box::new(PathQuery::from_steps(&[Step {
            axis: Axis::Descendant,
            test: NodeTest::Wildcard,
        }])),
        Box::new(PathQuery::Step(
            Box::new(PathQuery::Root),
            Step {
                axis: Axis::Child,
                test: NodeTest::Label(Label::new("c")),
            },
        )),
    );
    for depth in [4u32, 6] {
        let forest = Forest::unit(balanced_tree::<Nat>(depth, 2));
        for (name, query) in [
            ("union_c_gc", &union_query),
            ("filter_has_c", &filter_query),
        ] {
            let mut g = c.benchmark_group(format!("shred_vs_direct/{name}"));
            g.bench_function(BenchmarkId::new("direct", depth), |b| {
                b.iter(|| eval_path(&forest, query))
            });
            g.bench_function(BenchmarkId::new("shredded_datalog", depth), |b| {
                b.iter(|| eval_path_via_shredding(&forest, query).expect("converges"))
            });
            g.finish();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = shred_vs_direct, shred_vs_direct_fragment
}
criterion_main!(benches);
