//! The facade's value proposition, measured: `prepare` once and
//! `eval` N times vs. re-parsing + re-elaborating per call, against
//! the floor of direct evaluation over a pre-built core query.
//!
//! Acceptance shape: `prepared/engine_eval` must sit within noise of
//! `raw/eval_prebuilt` — a prepared evaluation pays no per-call
//! parse/elaborate/compile cost, only the evaluator itself plus one
//! document-store lookup. `fresh/parse_eval` shows what every call
//! would cost without the facade.

use axml_bench::{balanced_tree, fig1_source, FIG1_QUERY};
use axml_core::{elaborate, eval_core, parse_query, QueryEnv};
use axml_semiring::NatPoly;
use axml_uxml::{Forest, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const CHAIN_QUERY: &str = "element out { $S//c }";

fn bench_workload(c: &mut Criterion, name: &str, query: &str, forest: Forest<NatPoly>) {
    // -- fresh: parse + elaborate + evaluate, every call ------------
    let mut g = c.benchmark_group("prepared_vs_fresh");
    g.bench_function(BenchmarkId::new("fresh_parse_eval", name), |b| {
        b.iter(|| {
            let q = parse_query::<NatPoly>(query).unwrap();
            let core = elaborate(&q).unwrap();
            let mut env = QueryEnv::from_bindings([("S".to_owned(), Value::Set(forest.clone()))]);
            eval_core(&core, &mut env).expect("evaluates")
        })
    });

    // -- prepared: engine facade, compile once ----------------------
    let engine = axml::Engine::new();
    engine.insert_forest("S", forest.clone());
    let prepared = engine.prepare(query).unwrap();
    // Warm the per-kind caches so the measurement is steady state.
    prepared.eval(&engine, axml::EvalOptions::new()).unwrap();
    g.bench_function(BenchmarkId::new("prepared_engine_eval", name), |b| {
        b.iter(|| {
            prepared
                .eval(&engine, axml::EvalOptions::new())
                .expect("evaluates")
        })
    });

    // -- floor: direct evaluation over the pre-built core -----------
    let core = elaborate(&parse_query::<NatPoly>(query).unwrap()).unwrap();
    g.bench_function(BenchmarkId::new("raw_eval_prebuilt", name), |b| {
        b.iter(|| {
            let mut env = QueryEnv::from_bindings([("S".to_owned(), Value::Set(forest.clone()))]);
            eval_core(&core, &mut env).expect("evaluates")
        })
    });

    // -- runtime semiring dispatch on the same prepared query -------
    let nat_opts = axml::EvalOptions::new().semiring(axml::SemiringKind::Nat);
    prepared.eval(&engine, nat_opts).unwrap(); // warm the Nat caches
    g.bench_function(BenchmarkId::new("prepared_eval_nat", name), |b| {
        b.iter(|| prepared.eval(&engine, nat_opts).expect("evaluates"))
    });

    // -- the compiled NRC route through the facade ------------------
    let nrc_opts = axml::EvalOptions::new().route(axml::Route::ViaNrc);
    g.bench_function(BenchmarkId::new("prepared_eval_via_nrc", name), |b| {
        b.iter(|| prepared.eval(&engine, nrc_opts).expect("evaluates"))
    });
    g.finish();
}

fn prepared_vs_fresh(c: &mut Criterion) {
    bench_workload(c, "fig1", FIG1_QUERY, fig1_source());
    for depth in [4, 6] {
        bench_workload(
            c,
            &format!("chain_depth{depth}"),
            CHAIN_QUERY,
            Forest::unit(balanced_tree::<NatPoly>(depth, 2)),
        );
    }
}

criterion_group!(benches, prepared_vs_fresh);
criterion_main!(benches);
