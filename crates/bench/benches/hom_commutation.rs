//! Perf-5: Corollary 1 as an optimization knob. `H(p(v))` (evaluate
//! with full ℕ\[X\] provenance, then specialize) vs `H(p)(H(v))`
//! (specialize the source first, evaluate in the small semiring).
//! Same result — the theorem — but very different cost: early
//! specialization avoids polynomial arithmetic entirely. The measured
//! gap is the price one pays to *keep* provenance around.

use axml_bench::{relation_like_doc, FIG5_VIEW};
use axml_core::run_query;
use axml_semiring::{Clearance, NatPoly, Valuation, Var};
use axml_uxml::hom::specialize_forest;
use axml_uxml::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn clearance_valuation() -> Valuation<Clearance> {
    Valuation::from_pairs([
        (Var::new("x0"), Clearance::C),
        (Var::new("x3"), Clearance::S),
        (Var::new("s1"), Clearance::T),
    ])
}

fn hom_commutation(c: &mut Criterion) {
    for rows in [4usize, 8, 16] {
        let doc = relation_like_doc(rows);
        let val = clearance_valuation();
        let mut g = c.benchmark_group(format!("hom_commutation/rows={rows}"));

        // late specialization: evaluate symbolically, then map H
        g.bench_function(BenchmarkId::new("late_H_of_p_v", rows), |b| {
            b.iter(|| {
                let sym = run_query::<NatPoly>(FIG5_VIEW, &[("d", Value::Set(doc.clone()))])
                    .expect("evaluates");
                let Value::Tree(t) = sym else { unreachable!() };
                specialize_forest(&t.children().clone(), &val)
            })
        });

        // early specialization: map H first, evaluate in Clearance
        g.bench_function(BenchmarkId::new("early_Hp_of_Hv", rows), |b| {
            b.iter(|| {
                let small = specialize_forest(&doc, &val);
                let out = run_query::<Clearance>(FIG5_VIEW, &[("d", Value::Set(small))])
                    .expect("evaluates");
                let Value::Tree(t) = out else { unreachable!() };
                t.children().clone()
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = hom_commutation
}
criterion_main!(benches);
