//! The PR-3 tentpole, costed: semi-naive vs naïve annotated-Datalog
//! fixpoint on the two workloads that matter here — the ψ program of
//! the §7 shredding route (recursive `descendant` rules over the edge
//! encoding of a balanced tree) and a plain annotated transitive
//! closure over a chain. The naïve evaluator recomputes every IDB per
//! iteration with nested scans; the semi-naive one joins only against
//! deltas through hash indexes, so the gap must widen with depth.

use axml_bench::balanced_tree;
use axml_core::ast::{Axis, NodeTest, Step};
use axml_relational::datalog::{atom, eval_datalog_naive, v, Program, Rule};
use axml_relational::{
    eval_datalog, shred, xpath_to_datalog, Database, KRelation, RelValue, Schema,
};
use axml_semiring::{Nat, NatPoly};
use axml_uxml::{Forest, Label};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn descendant_c() -> Vec<Step> {
    vec![Step {
        axis: Axis::Descendant,
        test: NodeTest::Label(Label::new("c")),
    }]
}

/// ψ(//c) over the shredded balanced tree: the exact program
/// `Route::Shredded` runs.
fn psi_program(c: &mut Criterion) {
    for depth in [4u32, 6] {
        let forest = Forest::unit(balanced_tree::<Nat>(depth, 2));
        let edb = Database::new().with("E", shred(&forest));
        let prog = xpath_to_datalog(&descendant_c());
        let mut g = c.benchmark_group("datalog_seminaive/psi_descendant");
        g.bench_function(BenchmarkId::new("seminaive", depth), |b| {
            b.iter(|| eval_datalog(&prog, &edb).expect("converges"))
        });
        g.bench_function(BenchmarkId::new("naive", depth), |b| {
            b.iter(|| eval_datalog_naive(&prog, &edb).expect("converges"))
        });
        g.finish();
    }
}

/// Annotated transitive closure over a chain of `n` edges, in ℕ[X]:
/// every derivation is a distinct monomial product.
fn closure_chain(c: &mut Criterion) {
    let prog = Program::new([
        Rule::new(atom("T", [v("x"), v("y")]), [atom("E", [v("x"), v("y")])]),
        Rule::new(
            atom("T", [v("x"), v("z")]),
            [atom("T", [v("x"), v("y")]), atom("E", [v("y"), v("z")])],
        ),
    ]);
    for n in [8u64, 16] {
        let mut e = KRelation::new(Schema::new(["src", "dst"]));
        for i in 0..n {
            e.insert(
                vec![RelValue::Node(i), RelValue::Node(i + 1)],
                NatPoly::var_named(&format!("e{i}")),
            );
        }
        let edb = Database::new().with("E", e);
        let mut g = c.benchmark_group("datalog_seminaive/closure_chain");
        g.bench_function(BenchmarkId::new("seminaive", n), |b| {
            b.iter(|| eval_datalog(&prog, &edb).expect("converges"))
        });
        g.bench_function(BenchmarkId::new("naive", n), |b| {
            b.iter(|| eval_datalog_naive(&prog, &edb).expect("converges"))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = psi_program, closure_chain
}
criterion_main!(benches);
