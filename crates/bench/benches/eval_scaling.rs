//! Perf-1: the cost of annotations. The same query over the same data,
//! with annotations drawn from 𝔹 (plain sets), ℕ (bags), the Clearance
//! lattice, and ℕ\[X\] (full provenance). The expected shape: constant
//! semirings cost roughly alike; ℕ\[X\] pays for polynomial arithmetic,
//! growing with tree size (it is the price of provenance, bounded by
//! Prop 2).

use axml_bench::balanced_tree;
use axml_core::{elaborate, eval_core, parse_query, QueryEnv};
use axml_semiring::{Clearance, Nat, NatPoly, Semiring};
use axml_uxml::{Forest, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const QUERY: &str = "element out { $S//c }";

fn bench_semiring<K: Semiring + axml_uxml::ParseAnnotation>(
    c: &mut Criterion,
    group: &str,
    name: &str,
    depth: u32,
) {
    let tree = balanced_tree::<K>(depth, 2);
    let forest = Forest::unit(tree);
    let q = elaborate(&parse_query::<K>(QUERY).unwrap()).unwrap();
    let mut g = c.benchmark_group(group);
    g.bench_function(BenchmarkId::new(name, format!("depth={depth}")), |b| {
        b.iter(|| {
            let mut env = QueryEnv::from_bindings([("S".to_owned(), Value::Set(forest.clone()))]);
            eval_core(&q, &mut env).expect("evaluates")
        })
    });
    g.finish();
}

fn eval_scaling(c: &mut Criterion) {
    for depth in [4, 6, 8] {
        bench_semiring::<bool>(c, "eval_scaling", "bool", depth);
        bench_semiring::<Nat>(c, "eval_scaling", "nat", depth);
        bench_semiring::<Clearance>(c, "eval_scaling", "clearance", depth);
        bench_semiring::<NatPoly>(c, "eval_scaling", "natpoly", depth);
    }
}

fn direct_vs_compiled(c: &mut Criterion) {
    // The two semantics routes on the same workload, each in both
    // implementations: the slot-resolved compiled plans (what
    // `PreparedQuery` runs) and the tree-walking interpreters (the
    // differential references). `via_nrc_srt` is the *route* benchmark
    // and measures what `Route::ViaNrc` actually executes — the
    // compiled plan of the axiom-normalized term; `via_nrc_interp`
    // keeps the interpreter cost visible.
    let forest = Forest::unit(balanced_tree::<Nat>(6, 2));
    let q = parse_query::<Nat>(QUERY).unwrap();
    let core = elaborate(&q).unwrap();
    let expr = axml_core::compile_optimized(&core);
    let core_plan = axml_core::CompiledQuery::compile(&core);
    let nrc_plan = axml_nrc::CompiledExpr::compile(&expr);
    let mut g = c.benchmark_group("semantics_route");
    g.bench_function("direct", |b| {
        b.iter(|| {
            let mut env = QueryEnv::from_bindings([("S".to_owned(), Value::Set(forest.clone()))]);
            eval_core(&core, &mut env).expect("evaluates")
        })
    });
    g.bench_function("direct_compiled", |b| {
        b.iter(|| {
            core_plan
                .eval(&[("S", Value::Set(forest.clone()))])
                .expect("evaluates")
        })
    });
    g.bench_function("via_nrc_srt", |b| {
        b.iter(|| {
            nrc_plan
                .eval_with_forests(&[("S", &forest)])
                .expect("evaluates")
        })
    });
    g.bench_function("via_nrc_interp", |b| {
        b.iter(|| axml_nrc::eval::eval_with_forests(&expr, &[("S", &forest)]).expect("evaluates"))
    });
    g.finish();
}

fn optimizer_ablation(c: &mut Criterion) {
    // Ablation: evaluating the raw compiled NRC term vs the
    // axioms-normalized term (Prop 5 as an optimizer). Simplification
    // removes the identity big-unions and singleton redexes the
    // compiler emits; the win shows up as interpretation overhead.
    let forest = Forest::unit(balanced_tree::<Nat>(6, 2));
    let q = parse_query::<Nat>(QUERY).unwrap();
    let core = elaborate(&q).unwrap();
    let raw = axml_core::compile(&core);
    let optimized = axml_nrc::axioms::simplify(&raw);
    eprintln!(
        "optimizer ablation: term size {} → {}",
        raw.size(),
        optimized.size()
    );
    let mut g = c.benchmark_group("optimizer_ablation");
    g.bench_function("raw_compiled", |b| {
        b.iter(|| axml_nrc::eval::eval_with_forests(&raw, &[("S", &forest)]).expect("evaluates"))
    });
    g.bench_function("simplified", |b| {
        b.iter(|| {
            axml_nrc::eval::eval_with_forests(&optimized, &[("S", &forest)]).expect("evaluates")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = eval_scaling, direct_vs_compiled, optimizer_ablation
}
criterion_main!(benches);
