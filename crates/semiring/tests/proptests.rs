//! Property-based law checking for the semiring instances on *random*
//! elements (the unit tests check hand-picked samples; these sweep the
//! space). Every instance must satisfy the commutative-semiring laws,
//! every collapse must be a homomorphism, and PosBool's canonical form
//! must coincide with truth-table equivalence.

use axml_semiring::trio::collapse;
use axml_semiring::{
    Arctic, BoolPoly, Clearance, Fuzzy, KSet, Lineage, Nat, NatPoly, PosBool, Product, Semiring,
    Trio, Tropical, Valuation, Var, Why,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const VARS: [&str; 4] = ["pp_a", "pp_b", "pp_c", "pp_d"];

fn arb_poly() -> impl Strategy<Value = NatPoly> {
    // random sums of random monomials with small coefficients
    proptest::collection::vec(
        (
            proptest::collection::vec((0usize..VARS.len(), 1u32..3), 0..3),
            1u64..4,
        ),
        0..4,
    )
    .prop_map(|terms| {
        let mut acc = NatPoly::zero();
        for (vars, coeff) in terms {
            let mono = axml_semiring::Monomial::from_pairs(
                vars.into_iter().map(|(i, e)| (Var::new(VARS[i]), e)),
            );
            acc = acc.plus(&NatPoly::term(mono, Nat(coeff as u128)));
        }
        acc
    })
}

fn check_semiring_laws<K: Semiring>(a: &K, b: &K, c: &K) {
    assert_eq!(a.plus(b), b.plus(a));
    assert_eq!(a.plus(&b.plus(c)), a.plus(b).plus(c));
    assert_eq!(a.plus(&K::zero()), *a);
    assert_eq!(a.times(b), b.times(a));
    assert_eq!(a.times(&b.times(c)), a.times(b).times(c));
    assert_eq!(a.times(&K::one()), *a);
    assert_eq!(a.times(&b.plus(c)), a.times(b).plus(&a.times(c)));
    assert_eq!(a.times(&K::zero()), K::zero());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn natpoly_laws(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
        check_semiring_laws(&a, &b, &c);
    }

    #[test]
    fn collapsed_semiring_laws(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
        check_semiring_laws(
            &collapse::natpoly_to_posbool(&a),
            &collapse::natpoly_to_posbool(&b),
            &collapse::natpoly_to_posbool(&c),
        );
        check_semiring_laws(
            &collapse::natpoly_to_why(&a),
            &collapse::natpoly_to_why(&b),
            &collapse::natpoly_to_why(&c),
        );
        check_semiring_laws(
            &collapse::natpoly_to_trio(&a),
            &collapse::natpoly_to_trio(&b),
            &collapse::natpoly_to_trio(&c),
        );
        check_semiring_laws(
            &collapse::natpoly_to_boolpoly(&a),
            &collapse::natpoly_to_boolpoly(&b),
            &collapse::natpoly_to_boolpoly(&c),
        );
        check_semiring_laws(
            &collapse::natpoly_to_lineage(&a),
            &collapse::natpoly_to_lineage(&b),
            &collapse::natpoly_to_lineage(&c),
        );
    }

    #[test]
    fn every_collapse_is_a_hom(a in arb_poly(), b in arb_poly()) {
        macro_rules! hom_check {
            ($f:expr) => {{
                let f = $f;
                prop_assert_eq!(f(&a.plus(&b)), f(&a).plus(&f(&b)));
                prop_assert_eq!(f(&a.times(&b)), f(&a).times(&f(&b)));
            }};
        }
        hom_check!(collapse::natpoly_to_posbool);
        hom_check!(collapse::natpoly_to_why);
        hom_check!(collapse::natpoly_to_trio);
        hom_check!(collapse::natpoly_to_boolpoly);
        hom_check!(collapse::natpoly_to_lineage);
        let _ : (Why, Trio, BoolPoly, Lineage, PosBool);
    }

    #[test]
    fn valuations_are_homs(a in arb_poly(), b in arb_poly(),
                           vals in proptest::collection::vec(0u64..4, 4)) {
        let val = Valuation::<Nat>::from_pairs(
            VARS.iter()
                .zip(vals.iter())
                .map(|(n, &v)| (Var::new(n), Nat::from(v))),
        );
        prop_assert_eq!(a.plus(&b).eval(&val), a.eval(&val).plus(&b.eval(&val)));
        prop_assert_eq!(a.times(&b).eval(&val), a.eval(&val).times(&b.eval(&val)));
    }

    #[test]
    fn hierarchy_diamond_commutes(a in arb_poly()) {
        prop_assert_eq!(
            collapse::boolpoly_to_why(&collapse::natpoly_to_boolpoly(&a)),
            collapse::natpoly_to_why(&a)
        );
        prop_assert_eq!(
            collapse::trio_to_why(&collapse::natpoly_to_trio(&a)),
            collapse::natpoly_to_why(&a)
        );
        prop_assert_eq!(
            collapse::why_to_posbool(&collapse::natpoly_to_why(&a)),
            collapse::natpoly_to_posbool(&a)
        );
    }

    /// PosBool's canonical equality = truth-table equivalence.
    #[test]
    fn posbool_canonical_iff_semantic(a in arb_poly(), b in arb_poly()) {
        let pa = collapse::natpoly_to_posbool(&a);
        let pb = collapse::natpoly_to_posbool(&b);
        let mut all_vars: BTreeSet<Var> = pa.variables();
        all_vars.extend(pb.variables());
        let vars: Vec<Var> = all_vars.into_iter().collect();
        let mut semantically_equal = true;
        for bits in 0..(1u32 << vars.len()) {
            let tv: BTreeSet<Var> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            if pa.eval_assignment(&tv) != pb.eval_assignment(&tv) {
                semantically_equal = false;
                break;
            }
        }
        prop_assert_eq!(pa == pb, semantically_equal);
    }

    /// Evaluating ℕ\[X\] in 𝔹 factors through PosBool (a homomorphism
    /// triangle the incomplete-data application relies on).
    #[test]
    fn bool_eval_factors_through_posbool(a in arb_poly(), bits in 0u8..16) {
        let tv: BTreeSet<Var> = VARS
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, n)| Var::new(n))
            .collect();
        let val = Valuation::<bool>::from_pairs(
            VARS.iter().map(|n| (Var::new(n), tv.contains(&Var::new(n)))),
        );
        prop_assert_eq!(
            a.eval(&val),
            collapse::natpoly_to_posbool(&a).eval_assignment(&tv)
        );
    }

    #[test]
    fn product_semiring_laws(a1 in 0u64..6, a2 in 0u64..6, b1 in 0u64..6,
                             b2 in 0u64..6, c1 in 0u64..6, c2 in 0u64..6) {
        let a = Product::new(Nat::from(a1), Tropical::Cost(a2));
        let b = Product::new(Nat::from(b1), Tropical::Cost(b2));
        let c = Product::new(Nat::from(c1), Tropical::Cost(c2));
        check_semiring_laws(&a, &b, &c);
    }

    #[test]
    fn numeric_lattice_laws(a in 0u64..50, b in 0u64..50, c in 0u64..50) {
        check_semiring_laws(&Tropical::Cost(a), &Tropical::Cost(b), &Tropical::Cost(c));
        check_semiring_laws(&Arctic::Value(a), &Arctic::Value(b), &Arctic::Value(c));
        let f = |x: u64| Fuzzy::new(x as f64 / 50.0);
        check_semiring_laws(&f(a), &f(b), &f(c));
    }

    #[test]
    fn clearance_valuation_respects_order(picks in proptest::collection::vec(0usize..5, 4)) {
        let levels = [
            Clearance::P,
            Clearance::C,
            Clearance::S,
            Clearance::T,
            Clearance::NEVER,
        ];
        let chosen: Vec<Clearance> = picks.iter().map(|&i| levels[i]).collect();
        // plus = min of clearances, times = max — on any subset
        let total_plus = Clearance::sum(chosen.iter().copied());
        let total_times = Clearance::product(chosen.iter().copied());
        for c in &chosen {
            assert!(total_plus.0 <= c.0, "+ takes the minimum");
            assert!(total_times.0 >= c.0, "· takes the maximum");
        }
    }

    /// Free-semimodule (KSet) laws on random annotated bags.
    #[test]
    fn kset_bind_monad_laws(
        items in proptest::collection::vec((0u32..6, arb_poly()), 0..5)
    ) {
        let s: KSet<u32, NatPoly> = KSet::from_pairs(items);
        // right identity
        prop_assert_eq!(s.bind(|x| KSet::unit(*x)), s.clone());
        // associativity with two fixed continuations
        let f = |x: &u32| {
            KSet::from_pairs([(x + 1, NatPoly::var_named("kb_f"))])
        };
        let g = |x: &u32| {
            KSet::from_pairs([
                (x % 3, NatPoly::one()),
                (x + 10, NatPoly::var_named("kb_g")),
            ])
        };
        prop_assert_eq!(s.bind(f).bind(g), s.bind(|x| f(x).bind(g)));
    }
}
