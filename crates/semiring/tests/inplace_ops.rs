//! Property tests for the in-place / consuming hot-path operations:
//! every one of them must agree exactly with its functional
//! counterpart, across semirings with different shapes (numeric `Nat`,
//! absorbing `PosBool`, lattice-like `Tropical`, and symbolic
//! `NatPoly`).
//!
//! - `KSet::union_with`        ≡ `KSet::union`
//! - `KSet::scalar_mul_in_place` ≡ `KSet::scalar_mul`
//! - `KSet::extend_scaled`     ≡ `union ∘ scalar_mul`
//! - `KSet::bind_into`         ≡ `union ∘ bind`
//! - flat `Monomial::times`    ≡ the map-based reference product
//! - `NatPoly`'s consuming `Semiring::add` ≡ `Semiring::plus`

use axml_semiring::{KSet, Monomial, Nat, NatPoly, PosBool, Semiring, Tropical, Var};
use proptest::prelude::*;
use std::collections::BTreeMap;

const VARS: [&str; 4] = ["ip_a", "ip_b", "ip_c", "ip_d"];

fn arb_nat() -> impl Strategy<Value = Nat> {
    (0u64..5).prop_map(Nat::from)
}

fn arb_posbool() -> impl Strategy<Value = PosBool> {
    prop_oneof![
        1 => Just(PosBool::ff()),
        1 => Just(PosBool::tt()),
        3 => proptest::sample::select(&VARS[..]).prop_map(PosBool::var_named),
        2 => (
            proptest::sample::select(&VARS[..]),
            proptest::sample::select(&VARS[..]),
        )
            .prop_map(|(a, b)| {
                PosBool::var_named(a).times(&PosBool::var_named(b))
            }),
        1 => (
            proptest::sample::select(&VARS[..]),
            proptest::sample::select(&VARS[..]),
        )
            .prop_map(|(a, b)| {
                PosBool::var_named(a).plus(&PosBool::var_named(b))
            }),
    ]
}

fn arb_tropical() -> impl Strategy<Value = Tropical> {
    prop_oneof![
        1 => Just(Tropical::zero()),
        5 => (0u64..20).prop_map(Tropical::cost),
    ]
}

fn arb_poly() -> impl Strategy<Value = NatPoly> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0usize..VARS.len(), 1u32..3), 0..3),
            1u64..4,
        ),
        0..4,
    )
    .prop_map(|terms| {
        let mut acc = NatPoly::zero();
        for (vars, coeff) in terms {
            let mono = Monomial::from_pairs(vars.into_iter().map(|(i, e)| (Var::new(VARS[i]), e)));
            acc = acc.plus(&NatPoly::term(mono, Nat::from(coeff)));
        }
        acc
    })
}

/// Check every in-place KSet op against its functional counterpart on
/// one triple of inputs.
fn check_kset_ops<K: Semiring>(a: KSet<u32, K>, b: KSet<u32, K>, k: K) {
    // union_with ≡ union
    let functional = a.union(&b);
    let mut in_place = a.clone();
    in_place.union_with(b.clone());
    assert_eq!(in_place, functional, "union_with must agree with union");

    // scalar_mul_in_place ≡ scalar_mul
    let functional = a.scalar_mul(&k);
    let mut in_place = a.clone();
    in_place.scalar_mul_in_place(&k);
    assert_eq!(
        in_place, functional,
        "scalar_mul_in_place must agree with scalar_mul"
    );

    // extend_scaled ≡ union ∘ scalar_mul
    let functional = a.union(&b.scalar_mul(&k));
    let mut in_place = a.clone();
    in_place.extend_scaled(b.clone(), &k);
    assert_eq!(
        in_place, functional,
        "extend_scaled must agree with union ∘ scalar_mul"
    );

    // bind_into ≡ union ∘ bind
    let f =
        |x: &u32| -> KSet<u32, K> { KSet::from_pairs([(x % 3, K::one()), (x + 10, k.clone())]) };
    let functional = a.union(&b.bind(f));
    let mut in_place = a.clone();
    b.bind_into(f, &mut in_place);
    assert_eq!(
        in_place, functional,
        "bind_into must agree with union ∘ bind"
    );
}

/// The pre-refactor map-based monomial product, kept as the reference
/// the flat merge implementation must reproduce.
fn reference_monomial_times(a: &Monomial, b: &Monomial) -> Monomial {
    let mut exps: BTreeMap<Var, u32> = a.iter().collect();
    for (v, e) in b.iter() {
        *exps.entry(v).or_insert(0) += e;
    }
    Monomial::from_pairs(exps)
}

fn arb_monomial() -> impl Strategy<Value = Monomial> {
    proptest::collection::vec((0usize..VARS.len(), 0u32..3), 0..5).prop_map(|pairs| {
        Monomial::from_pairs(pairs.into_iter().map(|(i, e)| (Var::new(VARS[i]), e)))
    })
}

macro_rules! kset_agreement_tests {
    ($($name:ident => $arb:expr),+ $(,)?) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            $(
                #[test]
                fn $name(
                    a in proptest::collection::vec((0u32..6, $arb), 0..5),
                    b in proptest::collection::vec((0u32..6, $arb), 0..5),
                    k in $arb,
                ) {
                    check_kset_ops(KSet::from_pairs(a), KSet::from_pairs(b), k);
                }
            )+
        }
    };
}

kset_agreement_tests! {
    kset_inplace_ops_agree_nat => arb_nat(),
    kset_inplace_ops_agree_posbool => arb_posbool(),
    kset_inplace_ops_agree_tropical => arb_tropical(),
    kset_inplace_ops_agree_natpoly => arb_poly(),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Flat merge-based monomial product ≡ map-based reference.
    #[test]
    fn flat_monomial_times_matches_reference(a in arb_monomial(), b in arb_monomial()) {
        prop_assert_eq!(a.times(&b), reference_monomial_times(&a, &b));
        // commutativity comes along for free and pins down the merge
        prop_assert_eq!(a.times(&b), b.times(&a));
    }

    /// NatPoly's consuming merge addition ≡ functional plus.
    #[test]
    fn natpoly_consuming_add_matches(a in arb_poly(), b in arb_poly()) {
        let functional = a.plus(&b);
        prop_assert_eq!(a.clone().add(b.clone()), functional.clone());
        prop_assert_eq!(b.add(a), functional);
    }

    /// The swap inside union_with (merge smaller into larger) must not
    /// leak: union stays commutative through the in-place path.
    #[test]
    fn union_with_commutes(
        a in proptest::collection::vec((0u32..6, arb_poly()), 0..6),
        b in proptest::collection::vec((0u32..6, arb_poly()), 0..2),
    ) {
        let (sa, sb): (KSet<u32, NatPoly>, KSet<u32, NatPoly>) =
            (KSet::from_pairs(a), KSet::from_pairs(b));
        let mut ab = sa.clone();
        ab.union_with(sb.clone());
        let mut ba = sb;
        ba.union_with(sa);
        prop_assert_eq!(ab, ba);
    }
}
