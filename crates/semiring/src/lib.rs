//! Commutative semirings, homomorphisms, and free semimodules.
//!
//! This crate implements §2 and Appendix A of Foster, Green & Tannen,
//! *Annotated XML: Queries and Provenance* (PODS 2008): the algebraic
//! substrate on which every other crate in this workspace is built.
//!
//! A commutative semiring `(K, +, ·, 0, 1)` is a set with two commutative
//! monoid structures where `·` distributes over `+` and `0` annihilates.
//! Annotations drawn from a semiring decorate data items; intuitively
//! `k1 + k2` models *alternative* uses of data and `k1 · k2` models
//! *joint* use (see [`Semiring`]).
//!
//! # Provided semirings
//!
//! | Type | Semiring | Models |
//! |------|----------|--------|
//! | [`bool`] | (𝔹, ∨, ∧, false, true) | set semantics |
//! | [`Nat`] | (ℕ, +, ·, 0, 1) | bag semantics / multiplicities |
//! | [`NatPoly`] | (ℕ\[X\], +, ·, 0, 1) | **provenance polynomials** (universal) |
//! | [`PosBool`] | positive boolean expressions | incomplete data (c-tables) |
//! | [`BoolPoly`] | 𝔹\[X\] | polynomials with boolean coefficients |
//! | [`Trio`] | Trio(X) | bags of witness sets (lineage with multiplicity) |
//! | [`Why`] | Why(X) | why-provenance (witness bases) |
//! | [`Lineage`] | Lin(X) | lineage (set of contributing tokens) |
//! | [`Clearance`] | (C, min, max, Never, Public) | §4 security clearances |
//! | [`MinMax`] | total-order min/max | generic distributive-lattice annotations |
//! | [`Tropical`] | (ℕ ∪ {∞}, min, +, ∞, 0) | cost / cheapest derivation |
//! | [`Arctic`] | (ℕ ∪ {-∞}, max, +, -∞, 0) | cost / costliest derivation |
//! | [`Fuzzy`] | (\[0,1\], max, min, 0, 1) | Gödel fuzzy membership |
//! | [`Prob`] | (\[0,1\], max, ·, 0, 1) | Viterbi / most-likely derivation |
//! | [`Product`] | K₁ × K₂ | joint annotations (§9) |
//!
//! # Universality of ℕ\[X\]
//!
//! Any map `X → K` (a [`Valuation`]) extends uniquely to a semiring
//! homomorphism `ℕ[X] → K` ([`NatPoly::eval`]). Query semantics commutes
//! with homomorphisms (the paper's Theorem 1 / Corollary 1), so computing
//! once with provenance polynomials and evaluating later is equivalent to
//! computing directly in `K` — the foundation of the security (§4) and
//! incomplete/probabilistic (§5) applications.
//!
//! # Free semimodules
//!
//! [`KSet`] implements the free `K`-semimodule on a set of values: a
//! function to `K` with finite support. It carries the collection-monad
//! structure of Appendix A (`unit` = singleton, `bind` = big-union with
//! scalar multiplication) and is the semantics of the `{t}` type in
//! `NRC_K` and of element sets in K-UXML.
//!
//! # Performance kernels
//!
//! Every semantics route (direct evaluation, the `NRC_K` compilation,
//! relational shredding) bottoms out in this crate, so its two hot
//! kernels are built for accumulation rather than rebuilding:
//!
//! - **In-place semimodule ops.** [`KSet::union_with`] consumes its
//!   argument and merges the smaller operand into the larger;
//!   [`KSet::scalar_mul_in_place`] rewrites annotations without
//!   reallocating; [`KSet::extend_scaled`] and [`KSet::bind_into`]
//!   accumulate one iteration step directly into a reused accumulator.
//!   Evaluator loops use these instead of the quadratic
//!   `out = out.union(&inner)` pattern. Property tests
//!   (`tests/inplace_ops.rs`) pin each one to its functional
//!   counterpart across `Nat`, `PosBool`, `Tropical` and `NatPoly`.
//! - **Flat polynomial arithmetic.** A [`Monomial`] is a flat sorted
//!   `Vec<(Var, u32)>` whose product is a two-pointer merge of `Copy`
//!   pairs, and [`NatPoly`] stores a flat sorted term vector: `plus`
//!   is a capacity-exact two-run merge (with a consuming `add`
//!   override that moves monomials instead of cloning), and `times`
//!   accumulates all cross products
//!   into one preallocated vector canonicalized by a single
//!   sort-and-coalesce pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clearance;
pub mod hom;
pub mod intern;
pub mod nat;
pub mod poly;
pub mod posbool;
pub mod product;
pub mod semimodule;
#[allow(clippy::module_inception)]
pub mod semiring;
pub mod trio;
pub mod tropical;
pub mod var;
pub mod why;

pub use clearance::{Clearance, MinMax, TotalOrderBounds};
pub use hom::{dup_elim, FnHom, IdentityHom, SemiringHom, Valuation};
pub use nat::Nat;
pub use poly::{Monomial, NatPoly};
pub use posbool::PosBool;
pub use product::Product;
pub use semimodule::par_union_all;
pub use semimodule::KSet;
pub use semiring::Semiring;
pub use trio::{BoolPoly, Trio};
pub use tropical::{Arctic, Fuzzy, Prob, Tropical};
pub use var::Var;
pub use why::{Lineage, Why};

// ---------------------------------------------------------------------
// Thread-safety audit (PR 5): every annotation type crosses thread
// boundaries in the parallel evaluation layer — worker pools move
// K-sets, polynomials and interned handles between threads, and shared
// documents are read concurrently. `Semiring` requires `Send + Sync`
// as a supertrait; these compile-time asserts additionally pin the
// concrete instances (including the interned-handle types, whose
// backing pools are global `RwLock`s with `&'static str` entries, and
// the collection types built on them), so a future field — say a
// carelessly added `Rc` or `RefCell` memo — fails the build here
// rather than at a distant generic use site.
// ---------------------------------------------------------------------

const fn assert_send_sync<T: Send + Sync>() {}

const _: () = {
    // Scalar semirings.
    assert_send_sync::<bool>();
    assert_send_sync::<Nat>();
    assert_send_sync::<NatPoly>();
    assert_send_sync::<PosBool>();
    assert_send_sync::<BoolPoly>();
    assert_send_sync::<Trio>();
    assert_send_sync::<Why>();
    assert_send_sync::<Lineage>();
    assert_send_sync::<Clearance>();
    assert_send_sync::<Tropical>();
    assert_send_sync::<Arctic>();
    assert_send_sync::<Fuzzy>();
    assert_send_sync::<Prob>();
    assert_send_sync::<Product<Nat, NatPoly>>();
    // Interned handles (backed by the global pools) and their parts.
    assert_send_sync::<Var>();
    assert_send_sync::<Monomial>();
    // The free-semimodule collection over a representative payload.
    assert_send_sync::<KSet<String, NatPoly>>();
    assert_send_sync::<Valuation<Tropical>>();
};
