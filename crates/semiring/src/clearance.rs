//! Security-clearance annotations (§4): distributive-lattice semirings.
//!
//! The paper organizes confidentiality levels as the total order
//! `P < C < S < T < 0` and observes that `(C, min, max, 0, P)` is a
//! commutative semiring: `+ = min` (alternative derivations — the least
//! clearance that can see *some* derivation suffices) and `· = max`
//! (joint use — you need clearance for *every* input). The generic
//! [`MinMax`] wrapper turns any bounded total order into such a
//! semiring; [`Clearance`] is the paper's concrete instance.
//!
//! Any distributive lattice works the same way (meet/join distribute),
//! which is what Prop 3 needs; total orders are the special case used
//! in the paper's example.

use crate::semiring::Semiring;
use std::fmt;

/// A bounded total order usable as a [`MinMax`] min/max semiring.
///
/// `MIN` is the semiring `1` (least restrictive / "public") and `MAX`
/// is the semiring `0` (most restrictive / "not even there").
pub trait TotalOrderBounds:
    Clone + Copy + Eq + Ord + std::hash::Hash + fmt::Debug + Send + Sync + 'static
{
    /// The least element (becomes the semiring `1`).
    const MIN: Self;
    /// The greatest element (becomes the semiring `0`).
    const MAX: Self;
}

/// The min/max semiring over a bounded total order:
/// `(T, min, max, T::MAX, T::MIN)`.
///
/// This is a distributive lattice, so `+` and `·` are both idempotent
/// and Prop 3 applies: UXML-equivalent queries compute equal
/// annotations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MinMax<T>(pub T);

impl<T: TotalOrderBounds> Semiring for MinMax<T> {
    fn zero() -> Self {
        MinMax(T::MAX)
    }

    fn one() -> Self {
        MinMax(T::MIN)
    }

    /// Alternative use: the smaller (less restrictive) level suffices.
    fn plus(&self, other: &Self) -> Self {
        MinMax(self.0.min(other.0))
    }

    /// Joint use: the larger (more restrictive) level is required.
    fn times(&self, other: &Self) -> Self {
        MinMax(self.0.max(other.0))
    }
}

impl<T: fmt::Debug> fmt::Debug for MinMax<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: fmt::Display> fmt::Display for MinMax<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// The paper's clearance levels: `P < C < S < T < 0` (§4).
///
/// `Never` plays the role of the added `0`: "so secret, it isn't even
/// there" — items annotated `Never` are absent from every K-set, which
/// is why the paper adds it rather than reusing `TopSecret` (data
/// tagged `T` must not be lost entirely).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ClearanceLevel {
    /// `P` — public (the semiring `1`).
    #[default]
    Public,
    /// `C` — confidential.
    Confidential,
    /// `S` — secret.
    Secret,
    /// `T` — top-secret.
    TopSecret,
    /// `0` — absent at every clearance (the semiring `0`).
    Never,
}

impl TotalOrderBounds for ClearanceLevel {
    const MIN: Self = ClearanceLevel::Public;
    const MAX: Self = ClearanceLevel::Never;
}

/// The clearance semiring `(C, min, max, 0, P)` from §4.
pub type Clearance = MinMax<ClearanceLevel>;

/// Shorthand constructors matching the paper's notation.
impl MinMax<ClearanceLevel> {
    /// `P` (public) — the semiring `1`.
    pub const P: Clearance = MinMax(ClearanceLevel::Public);
    /// `C` (confidential).
    pub const C: Clearance = MinMax(ClearanceLevel::Confidential);
    /// `S` (secret).
    pub const S: Clearance = MinMax(ClearanceLevel::Secret);
    /// `T` (top-secret).
    pub const T: Clearance = MinMax(ClearanceLevel::TopSecret);
    /// `0` (never) — the semiring `0`.
    pub const NEVER: Clearance = MinMax(ClearanceLevel::Never);

    /// Can a principal with clearance `level` see data annotated `self`?
    ///
    /// A principal cleared at `level` sees everything whose computed
    /// clearance is ≤ `level` (and `Never`-annotated data is invisible
    /// to everyone, including `TopSecret` principals).
    pub fn visible_at(self, level: ClearanceLevel) -> bool {
        self.0 != ClearanceLevel::Never && self.0 <= level
    }
}

impl fmt::Debug for ClearanceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ClearanceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClearanceLevel::Public => "P",
            ClearanceLevel::Confidential => "C",
            ClearanceLevel::Secret => "S",
            ClearanceLevel::TopSecret => "T",
            ClearanceLevel::Never => "0",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for Clearance {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "P" => Ok(Clearance::P),
            "C" => Ok(Clearance::C),
            "S" => Ok(Clearance::S),
            "T" => Ok(Clearance::T),
            "0" => Ok(Clearance::NEVER),
            other => Err(format!("unknown clearance level {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::{check_laws, check_plus_idempotent};

    const ALL: [Clearance; 5] = [
        Clearance::P,
        Clearance::C,
        Clearance::S,
        Clearance::T,
        Clearance::NEVER,
    ];

    #[test]
    fn clearance_is_a_semiring() {
        for a in ALL {
            for b in ALL {
                for c in ALL {
                    check_laws(&a, &b, &c);
                }
            }
        }
    }

    #[test]
    fn lattice_idempotence() {
        for a in ALL {
            check_plus_idempotent(&a);
            assert_eq!(a.times(&a), a);
        }
    }

    #[test]
    fn fig7_first_row() {
        // (a,c): w1·y5 + w1² with w1=C, y5=T  ⇒  C·T + C·C = max(C,T) min max(C,C) = min(T,C) = C
        let w1 = Clearance::C;
        let y5 = Clearance::T;
        let ann = w1.times(&y5).plus(&w1.times(&w1));
        assert_eq!(ann, Clearance::C);
    }

    #[test]
    fn fig7_remaining_rows() {
        let (w1, x2, y5) = (Clearance::C, Clearance::S, Clearance::T);
        // (a,e): w1²·x2 = S
        assert_eq!(w1.times(&w1).times(&x2), Clearance::S);
        // (d,c): w1·x2·y5 + w1²·x2 = min(T, S) = S
        assert_eq!(
            w1.times(&x2).times(&y5).plus(&w1.times(&w1).times(&x2)),
            Clearance::S
        );
        // (d,e): w1²·x2² = S
        assert_eq!(w1.pow(2).times(&x2.pow(2)), Clearance::S);
        // (f,c): w1·y5 = T
        assert_eq!(w1.times(&y5), Clearance::T);
        // (f,e): w1² = C
        assert_eq!(w1.pow(2), Clearance::C);
    }

    #[test]
    fn visibility() {
        assert!(Clearance::P.visible_at(ClearanceLevel::Public));
        assert!(Clearance::C.visible_at(ClearanceLevel::Secret));
        assert!(!Clearance::T.visible_at(ClearanceLevel::Secret));
        // Never is invisible even to top-secret principals.
        assert!(!Clearance::NEVER.visible_at(ClearanceLevel::TopSecret));
    }

    #[test]
    fn parse_and_display() {
        for (s, c) in [
            ("P", Clearance::P),
            ("C", Clearance::C),
            ("S", Clearance::S),
            ("T", Clearance::T),
            ("0", Clearance::NEVER),
        ] {
            assert_eq!(s.parse::<Clearance>().unwrap(), c);
            assert_eq!(c.to_string(), s);
        }
        assert!("X".parse::<Clearance>().is_err());
    }

    #[test]
    fn natural_order_is_opposite_of_clearance_order() {
        // Footnote 7: the semiring's natural order (a ≤ b iff a+x=b for
        // some x) is the opposite of the clearance order. a + b = min,
        // so P absorbs everything: P + T = P.
        assert_eq!(Clearance::P.plus(&Clearance::T), Clearance::P);
    }

    #[test]
    fn generic_minmax_over_u8_levels() {
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        struct Level(u8);
        impl TotalOrderBounds for Level {
            const MIN: Self = Level(0);
            const MAX: Self = Level(u8::MAX);
        }
        let a = MinMax(Level(3));
        let b = MinMax(Level(7));
        let c = MinMax(Level(1));
        check_laws(&a, &b, &c);
        assert_eq!(a.plus(&b), a);
        assert_eq!(a.times(&b), b);
    }
}
