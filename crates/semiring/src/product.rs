//! Product semirings (§9: "recording jointly provenance, security, and
//! uncertainty (the product of several semirings is also a semiring!)").

use crate::semiring::Semiring;
use std::fmt;

/// The product semiring `K₁ × K₂` with componentwise operations.
///
/// Nest `Product`s for more components:
/// `Product<Clearance, Product<Nat, PosBool>>` tracks clearance,
/// multiplicity and an incompleteness condition simultaneously. The two
/// projections are semiring homomorphisms, so by Theorem 1 evaluating
/// jointly and projecting agrees with evaluating each component
/// separately.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Product<K1, K2>(pub K1, pub K2);

impl<K1: Semiring, K2: Semiring> Product<K1, K2> {
    /// Pair two annotations.
    pub fn new(a: K1, b: K2) -> Self {
        Product(a, b)
    }

    /// First projection (a semiring homomorphism).
    pub fn fst(&self) -> &K1 {
        &self.0
    }

    /// Second projection (a semiring homomorphism).
    pub fn snd(&self) -> &K2 {
        &self.1
    }
}

impl<K1: Semiring, K2: Semiring> Semiring for Product<K1, K2> {
    fn zero() -> Self {
        Product(K1::zero(), K2::zero())
    }

    fn one() -> Self {
        Product(K1::one(), K2::one())
    }

    fn plus(&self, other: &Self) -> Self {
        Product(self.0.plus(&other.0), self.1.plus(&other.1))
    }

    fn times(&self, other: &Self) -> Self {
        Product(self.0.times(&other.0), self.1.times(&other.1))
    }
}

impl<K1: fmt::Debug, K2: fmt::Debug> fmt::Debug for Product<K1, K2> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.0, self.1)
    }
}

impl<K1: fmt::Display, K2: fmt::Display> fmt::Display for Product<K1, K2> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.0, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clearance::Clearance;
    use crate::hom::{assert_hom_laws, FnHom};
    use crate::nat::Nat;
    use crate::semiring::laws::check_laws;

    #[test]
    fn product_is_a_semiring() {
        let samples = [
            Product::new(Nat(0), false),
            Product::new(Nat(1), true),
            Product::new(Nat(2), false),
            Product::new(Nat(3), true),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn projections_are_homomorphisms() {
        let samples = [
            Product::new(Nat(0), Clearance::NEVER),
            Product::new(Nat(1), Clearance::P),
            Product::new(Nat(2), Clearance::S),
            Product::new(Nat(5), Clearance::T),
        ];
        assert_hom_laws(
            &FnHom::new(|p: &Product<Nat, Clearance>| *p.fst()),
            &samples,
        );
        assert_hom_laws(
            &FnHom::new(|p: &Product<Nat, Clearance>| *p.snd()),
            &samples,
        );
    }

    #[test]
    fn triple_nesting() {
        type K = Product<Nat, Product<bool, Clearance>>;
        let a: K = Product::new(Nat(2), Product::new(true, Clearance::C));
        let b: K = Product::new(Nat(3), Product::new(true, Clearance::S));
        let ab = a.times(&b);
        assert_eq!(ab.0, Nat(6));
        assert!(ab.1 .0);
        assert_eq!(ab.1 .1, Clearance::S);
    }

    #[test]
    fn display() {
        let p = Product::new(Nat(2), Clearance::S);
        assert_eq!(p.to_string(), "(2, S)");
    }
}
