//! Provenance polynomials: the universal semiring ℕ\[X\] (§2, §3).
//!
//! `ℕ[X]` is the semiring of multivariate polynomials with natural-number
//! coefficients over indeterminates X (the "provenance tokens"). It is
//! *universal* among commutative semirings: any valuation `X → K`
//! extends uniquely to a homomorphism `ℕ[X] → K` ([`NatPoly::eval`]).
//! Combined with the commutation-with-homomorphisms theorem this makes
//! ℕ\[X\] "a good representation for implementations": compute provenance
//! once, specialize to any semiring later.

use crate::hom::Valuation;
use crate::nat::Nat;
use crate::semiring::Semiring;
use crate::var::Var;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: a finite multiset of variables, e.g. `x1²·y3`.
///
/// Represented canonically as a **flat sorted vector** of
/// `(variable, exponent)` pairs with strictly positive exponents: the
/// dominant operation, [`Monomial::times`], is a two-pointer merge of
/// two sorted runs of `Copy` pairs — no per-node allocation, no tree
/// rebalancing, cache-friendly comparisons. The empty monomial is the
/// constant `1`. Ordering is lexicographic over the pairs, which
/// coincides with the ordering of the previous `BTreeMap`-based
/// representation, so printed term order is unchanged.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    exps: Vec<(Var, u32)>,
}

impl Monomial {
    /// The empty monomial (the constant term's key).
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// The monomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Monomial { exps: vec![(v, 1)] }
    }

    /// Build from `(variable, exponent)` pairs; zero exponents are
    /// dropped, duplicate variables have their exponents summed.
    pub fn from_pairs<I: IntoIterator<Item = (Var, u32)>>(pairs: I) -> Self {
        let mut exps: Vec<(Var, u32)> = pairs.into_iter().filter(|&(_, e)| e > 0).collect();
        exps.sort_unstable_by_key(|&(v, _)| v);
        exps.dedup_by(|later, earlier| {
            if earlier.0 == later.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        Monomial { exps }
    }

    /// Multiply two monomials (add exponents): a sorted two-run merge.
    pub fn times(&self, other: &Monomial) -> Monomial {
        if self.exps.is_empty() {
            return other.clone();
        }
        if other.exps.is_empty() {
            return self.clone();
        }
        let (a, b) = (&self.exps, &other.exps);
        let mut exps = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    exps.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    exps.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    exps.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        exps.extend_from_slice(&a[i..]);
        exps.extend_from_slice(&b[j..]);
        Monomial { exps }
    }

    /// Is this the empty monomial (constant 1)?
    pub fn is_unit(&self) -> bool {
        self.exps.is_empty()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.exps.iter().map(|&(_, e)| e).sum()
    }

    /// Iterate `(variable, exponent)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, u32)> + '_ {
        self.exps.iter().copied()
    }

    /// The set of variables occurring in this monomial.
    pub fn variables(&self) -> impl Iterator<Item = Var> + '_ {
        self.exps.iter().map(|&(v, _)| v)
    }

    /// Evaluate under a valuation into any semiring.
    pub fn eval<K: Semiring>(&self, val: &Valuation<K>) -> K {
        K::product(self.iter().map(|(v, e)| val.get(v).pow(e)))
    }

    /// Drop exponents: the *set* of variables (used by the ℕ\[X\] → Trio /
    /// Why collapses of the provenance hierarchy).
    pub fn support_set(&self) -> std::collections::BTreeSet<Var> {
        self.variables().collect()
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exps.is_empty() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in &self.exps {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if *e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A provenance polynomial in ℕ\[X\]: a canonical (sorted) map from
/// monomials to nonzero natural coefficients.
///
/// ```
/// use axml_semiring::{NatPoly, Semiring, Var};
/// let x1 = NatPoly::var(Var::new("x1"));
/// let x4 = NatPoly::var(Var::new("x4"));
/// // The Fig. 5 annotation of tuple (a,c): x1² + x1·x4
/// let ann = x1.times(&x1).plus(&x1.times(&x4));
/// assert_eq!(ann.to_string(), "x1^2 + x1*x4");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NatPoly {
    /// Sorted by monomial, all coefficients nonzero. A flat vector:
    /// `plus` is a two-run merge, `times` accumulates all cross
    /// products into one capacity-preallocated vector and canonicalizes
    /// with a single sort-and-coalesce pass.
    terms: Vec<(Monomial, Nat)>,
}

impl NatPoly {
    /// The zero polynomial.
    pub fn zero_poly() -> Self {
        NatPoly::default()
    }

    /// A constant polynomial.
    pub fn constant(n: impl Into<Nat>) -> Self {
        let n = n.into();
        NatPoly {
            terms: if n.is_zero() {
                Vec::new()
            } else {
                vec![(Monomial::unit(), n)]
            },
        }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        NatPoly {
            terms: vec![(Monomial::var(v), Nat::ONE)],
        }
    }

    /// The polynomial consisting of a single variable, interned by name.
    pub fn var_named(name: &str) -> Self {
        NatPoly::var(Var::new(name))
    }

    /// A single monomial term with coefficient.
    pub fn term(m: Monomial, coeff: impl Into<Nat>) -> Self {
        let c = coeff.into();
        NatPoly {
            terms: if c.is_zero() {
                Vec::new()
            } else {
                vec![(m, c)]
            },
        }
    }

    /// Number of monomials with nonzero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Is this polynomial identically zero?
    pub fn is_zero_poly(&self) -> bool {
        self.terms.is_empty()
    }

    /// Maximum total degree over all monomials (0 for constants/zero).
    pub fn degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|(m, _)| m.degree())
            .max()
            .unwrap_or(0)
    }

    /// A size measure for Prop 2's `O(|v|^|p|)` bound: the total number
    /// of symbols — for each term, its coefficient plus each
    /// variable-with-exponent counts 1.
    pub fn size(&self) -> usize {
        self.terms.iter().map(|(m, _)| 1 + m.iter().count()).sum()
    }

    /// Iterate `(monomial, coefficient)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, Nat)> + '_ {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// All variables occurring in the polynomial, in order.
    pub fn variables(&self) -> std::collections::BTreeSet<Var> {
        self.terms.iter().flat_map(|(m, _)| m.variables()).collect()
    }

    /// Evaluate under a valuation `X → K`: the unique homomorphism
    /// extension `ℕ[X] → K` (universality, §2/§5). Variables missing
    /// from the valuation default to `K::one()` — the paper's convention
    /// for "setting the other indeterminates to 1" (§3).
    pub fn eval<K: Semiring>(&self, val: &Valuation<K>) -> K {
        K::sum(self.iter().map(|(m, c)| {
            // coefficient n maps to 1 + 1 + ... + 1 (n times) in K
            let coeff = nat_to_semiring::<K>(c);
            coeff.times(&m.eval(val))
        }))
    }

    /// Substitute polynomials for variables (endo-homomorphism
    /// `ℕ[X] → ℕ[X]`); missing variables are left untouched.
    pub fn substitute(&self, subst: &BTreeMap<Var, NatPoly>) -> NatPoly {
        let mut acc = NatPoly::zero_poly();
        for (m, c) in self.iter() {
            let mut t = NatPoly::constant(c);
            for (v, e) in m.iter() {
                let base = subst.get(&v).cloned().unwrap_or_else(|| NatPoly::var(v));
                t = t.times(&base.pow(e));
            }
            // consuming add: merges by moving monomials, no clones
            acc = acc.add(t);
        }
        acc
    }

    /// Canonicalize a vector of `(monomial, coefficient)` products:
    /// sort, coalesce equal monomials, drop zero coefficients.
    fn canonicalize(mut terms: Vec<(Monomial, Nat)>) -> Vec<(Monomial, Nat)> {
        terms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        terms.dedup_by(|later, earlier| {
            if earlier.0 == later.0 {
                earlier.1 = earlier.1.plus(&later.1);
                true
            } else {
                false
            }
        });
        terms.retain(|(_, c)| !c.is_zero());
        terms
    }
}

/// Merge two canonical term vectors (consuming both, moving monomials).
fn merge_terms(a: Vec<(Monomial, Nat)>, b: Vec<(Monomial, Nat)>) -> Vec<(Monomial, Nat)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(ta), Some(tb)) => match ta.0.cmp(&tb.0) {
                std::cmp::Ordering::Less => {
                    out.push(ia.next().expect("peeked"));
                }
                std::cmp::Ordering::Greater => {
                    out.push(ib.next().expect("peeked"));
                }
                std::cmp::Ordering::Equal => {
                    let (m, ca) = ia.next().expect("peeked");
                    let (_, cb) = ib.next().expect("peeked");
                    let c = ca.plus(&cb);
                    if !c.is_zero() {
                        out.push((m, c));
                    }
                }
            },
            (Some(_), None) => {
                out.extend(ia);
                return out;
            }
            (None, Some(_)) => {
                out.extend(ib);
                return out;
            }
            (None, None) => return out,
        }
    }
}

/// Embed a natural number into any semiring as `1 + 1 + ... + 1`.
///
/// This is the canonical (unique) homomorphism ℕ → K. Uses binary
/// expansion (`n = Σ bᵢ·2ⁱ` with repeated doubling) so it is `O(log n)`
/// semiring operations rather than `O(n)`.
pub fn nat_to_semiring<K: Semiring>(n: Nat) -> K {
    let mut n = n.value();
    if n == 0 {
        return K::zero();
    }
    let one = K::one();
    let mut power = one.clone(); // 2^i in K
    let mut acc = K::zero();
    loop {
        if n & 1 == 1 {
            acc = acc.plus(&power);
        }
        n >>= 1;
        if n == 0 {
            return acc;
        }
        power = power.plus(&power);
    }
}

impl Semiring for NatPoly {
    fn zero() -> Self {
        NatPoly::zero_poly()
    }

    fn one() -> Self {
        NatPoly::constant(Nat::ONE)
    }

    fn plus(&self, other: &Self) -> Self {
        if self.terms.is_empty() {
            return other.clone();
        }
        if other.terms.is_empty() {
            return self.clone();
        }
        NatPoly {
            terms: merge_terms(self.terms.clone(), other.terms.clone()),
        }
    }

    fn times(&self, other: &Self) -> Self {
        if self.terms.is_empty() || other.terms.is_empty() {
            return NatPoly::zero_poly();
        }
        if self.is_one() {
            return other.clone();
        }
        if other.is_one() {
            return self.clone();
        }
        let (n, m) = (self.terms.len(), other.terms.len());
        // Bulk path: materialize all n·m cross products and
        // canonicalize with one sort-and-coalesce pass — fastest for
        // the polynomial sizes queries actually produce. Above the
        // threshold, accumulate row by row instead so peak memory is
        // bounded by the output size, not n·m.
        if n.saturating_mul(m) <= 1 << 16 {
            let mut products = Vec::with_capacity(n * m);
            for (ma, ca) in &self.terms {
                for (mb, cb) in &other.terms {
                    products.push((ma.times(mb), ca.times(cb)));
                }
            }
            NatPoly {
                terms: NatPoly::canonicalize(products),
            }
        } else {
            let mut acc: Vec<(Monomial, Nat)> = Vec::new();
            for (ma, ca) in &self.terms {
                let row: Vec<(Monomial, Nat)> = other
                    .terms
                    .iter()
                    .map(|(mb, cb)| (ma.times(mb), ca.times(cb)))
                    .collect();
                acc = merge_terms(acc, NatPoly::canonicalize(row));
            }
            NatPoly { terms: acc }
        }
    }

    fn add(self, other: Self) -> Self {
        if self.terms.is_empty() {
            return other;
        }
        if other.terms.is_empty() {
            return self;
        }
        NatPoly {
            terms: merge_terms(self.terms, other.terms),
        }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    fn is_one(&self) -> bool {
        self.terms.len() == 1 && self.terms[0].0.is_unit() && self.terms[0].1.is_one()
    }
}

impl From<Var> for NatPoly {
    fn from(v: Var) -> Self {
        NatPoly::var(v)
    }
}

impl From<u64> for NatPoly {
    fn from(n: u64) -> Self {
        NatPoly::constant(Nat::from(n))
    }
}

impl fmt::Debug for NatPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for NatPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Print in descending monomial order so constants come last,
        // matching the paper's style (e.g. "x1^2 + x1*x4", "2*w1 + 3").
        let mut first = true;
        for (m, c) in self.terms.iter().rev() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if m.is_unit() {
                write!(f, "{c}")?;
            } else if c.is_one() {
                write!(f, "{m}")?;
            } else {
                write!(f, "{c}*{m}")?;
            }
        }
        Ok(())
    }
}

/// Parse a polynomial from text, e.g. `"z*x1*y1 + z*x2*y2"`, `"x1^2 +
/// 3"`, `"2*w1^2*x1"`. Grammar: `poly := term ('+' term)*`, `term :=
/// factor ('*' factor)*`, `factor := NUMBER | IDENT ('^' NUMBER)? |
/// '(' poly ')'`. Identifiers start with a letter or `_` and may contain
/// alphanumerics, `_`, `.`.
impl std::str::FromStr for NatPoly {
    type Err = PolyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = PolyParser {
            chars: s.char_indices().peekable(),
            src: s,
            depth: 0,
        };
        let poly = p.parse_poly()?;
        p.skip_ws();
        if let Some(&(i, c)) = p.chars.peek() {
            return Err(PolyParseError {
                msg: format!("unexpected character {c:?}"),
                offset: i,
            });
        }
        Ok(poly)
    }
}

/// Error from parsing a polynomial annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for PolyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "polynomial parse error at byte {}: {}",
            self.offset, self.msg
        )
    }
}

impl std::error::Error for PolyParseError {}

struct PolyParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
    depth: usize,
}

/// Maximum parenthesis nesting. Annotations come from user input
/// (document and query text), so `((((…` must yield a parse error,
/// not a stack overflow.
const MAX_PAREN_DEPTH: usize = 256;

impl<'a> PolyParser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn parse_poly(&mut self) -> Result<NatPoly, PolyParseError> {
        let mut acc = self.parse_term()?;
        loop {
            self.skip_ws();
            if matches!(self.chars.peek(), Some(&(_, '+'))) {
                self.chars.next();
                let t = self.parse_term()?;
                acc = acc.plus(&t);
            } else {
                return Ok(acc);
            }
        }
    }

    fn parse_term(&mut self) -> Result<NatPoly, PolyParseError> {
        let mut acc = self.parse_factor()?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&(_, '*')) => {
                    self.chars.next();
                    let f = self.parse_factor()?;
                    acc = acc.times(&f);
                }
                // Juxtaposition also multiplies ("x1 y2" is x1*y2,
                // "2(x+1)" is 2*(x+1)) — convenient for figure input.
                Some(&(_, c)) if c.is_alphabetic() || c == '_' || c == '(' => {
                    let f = self.parse_factor()?;
                    acc = acc.times(&f);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<NatPoly, PolyParseError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some((i, '(')) => {
                self.chars.next();
                self.depth += 1;
                if self.depth > MAX_PAREN_DEPTH {
                    return Err(PolyParseError {
                        msg: format!("parenthesis nesting exceeds {MAX_PAREN_DEPTH} levels"),
                        offset: i,
                    });
                }
                let inner = self.parse_poly()?;
                self.depth -= 1;
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ')')) => Ok(inner),
                    other => Err(PolyParseError {
                        msg: "expected ')'".into(),
                        offset: other.map_or(self.src.len(), |(i, _)| i),
                    }),
                }
            }
            Some((start, c)) if c.is_ascii_digit() => {
                let n = self.lex_number(start)?;
                Ok(NatPoly::constant(Nat(n)))
            }
            Some((start, c)) if c.is_alphabetic() || c == '_' => {
                let name = self.lex_ident(start);
                let v = Var::new(name);
                self.skip_ws();
                if matches!(self.chars.peek(), Some(&(_, '^'))) {
                    self.chars.next();
                    self.skip_ws();
                    let (ei, ec) = self.chars.peek().copied().ok_or(PolyParseError {
                        msg: "expected exponent".into(),
                        offset: self.src.len(),
                    })?;
                    if !ec.is_ascii_digit() {
                        return Err(PolyParseError {
                            msg: "expected numeric exponent".into(),
                            offset: ei,
                        });
                    }
                    let e: u32 = self
                        .lex_number(ei)?
                        .try_into()
                        .map_err(|_| PolyParseError {
                            msg: "exponent too large".into(),
                            offset: ei,
                        })?;
                    Ok(NatPoly::term(Monomial::from_pairs([(v, e)]), Nat::ONE))
                } else {
                    Ok(NatPoly::var(v))
                }
            }
            Some((i, c)) => Err(PolyParseError {
                msg: format!("unexpected character {c:?}"),
                offset: i,
            }),
            None => Err(PolyParseError {
                msg: "unexpected end of input".into(),
                offset: self.src.len(),
            }),
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<u128, PolyParseError> {
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.src[start..end].parse().map_err(|_| PolyParseError {
            msg: "number too large".into(),
            offset: start,
        })
    }

    fn lex_ident(&mut self, start: usize) -> &'a str {
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' || c == '.' {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        &self.src[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::check_laws;
    use crate::var::vars;

    fn p(s: &str) -> NatPoly {
        s.parse().expect("polynomial should parse")
    }

    #[test]
    fn paren_bomb_errors_instead_of_overflowing() {
        let bomb = format!("{}x{}", "(".repeat(100_000), ")".repeat(100_000));
        let e = bomb.parse::<NatPoly>().unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        // a reasonable depth still parses
        let ok = format!("{}x{}", "(".repeat(50), ")".repeat(50));
        assert_eq!(ok.parse::<NatPoly>().unwrap(), NatPoly::var(Var::new("x")));
    }

    #[test]
    fn oversized_exponents_are_errors() {
        assert!("x^4294967296".parse::<NatPoly>().is_err());
        assert!("x^99999999999999999999999999999"
            .parse::<NatPoly>()
            .is_err());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "x1",
            "x1^2",
            "x1^2 + x1*x4",
            "2*w1^2*x1 + 3",
            "z*x1*y1 + z*x2*y2",
        ] {
            let poly = p(s);
            assert_eq!(p(&poly.to_string()), poly, "roundtrip of {s}");
        }
    }

    #[test]
    fn parse_juxtaposition_and_parens() {
        assert_eq!(p("x1 y2"), p("x1*y2"));
        assert_eq!(p("(x1 + y2) * z"), p("x1*z + y2*z"));
        assert_eq!(p("2(x1 + 1)").to_string(), p("2*x1 + 2").to_string());
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<NatPoly>().is_err());
        assert!("x1 +".parse::<NatPoly>().is_err());
        assert!("(x1".parse::<NatPoly>().is_err());
        assert!("x1^".parse::<NatPoly>().is_err());
        assert!("@".parse::<NatPoly>().is_err());
    }

    #[test]
    fn semiring_laws_on_samples() {
        let samples = [
            p("0"),
            p("1"),
            p("x1"),
            p("x1 + y1"),
            p("2*x1^2 + y1*z1"),
            p("3"),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn times_row_merge_path_matches_bulk() {
        // 260×260 = 67 600 cross products crosses the 2^16 bulk-path
        // threshold, exercising the memory-bounded row-merge branch;
        // each half-product below stays on the bulk branch, so the two
        // paths are checked against each other.
        let var_sum = |prefix: &str, lo: usize, hi: usize| {
            let mut acc = NatPoly::zero_poly();
            for i in lo..hi {
                acc = acc.add(NatPoly::var_named(&format!("{prefix}{i}")));
            }
            acc
        };
        let a = var_sum("trm_a", 0, 260);
        let b = var_sum("trm_b", 0, 260);
        let big = a.times(&b);
        let halves = var_sum("trm_a", 0, 130)
            .times(&b)
            .plus(&var_sum("trm_a", 130, 260).times(&b));
        assert_eq!(big, halves);
        assert_eq!(big.num_terms(), 260 * 260);
    }

    #[test]
    fn canonical_forms_merge() {
        // x + x = 2x, and zero coefficients vanish
        let x = NatPoly::var_named("cf_x");
        let two_x = x.plus(&x);
        assert_eq!(two_x.num_terms(), 1);
        assert_eq!(two_x.to_string(), "2*cf_x");
        let zero = NatPoly::zero_poly().times(&x);
        assert!(zero.is_zero_poly());
        assert_eq!(NatPoly::constant(0u32).num_terms(), 0);
    }

    #[test]
    fn fig5_tuple_ac_annotation() {
        // Fig 5: annotation of (a,c) in Q is x1² + x1·x4.
        let [x1, x4] = vars(["x1", "x4"]);
        let (px1, px4) = (NatPoly::var(x1), NatPoly::var(x4));
        let ann = px1.times(&px1).plus(&px1.times(&px4));
        assert_eq!(ann, p("x1^2 + x1*x4"));
        assert_eq!(ann.degree(), 2);
        assert_eq!(ann.num_terms(), 2);
    }

    #[test]
    fn eval_universality_into_nat() {
        // p = 2·x² + x·y evaluated at x=3, y=5 is 18 + 15 = 33.
        let [x, y] = vars(["ev_x", "ev_y"]);
        let poly = p("2*ev_x^2 + ev_x*ev_y");
        let val = Valuation::<Nat>::from_pairs([(x, Nat(3)), (y, Nat(5))]);
        assert_eq!(poly.eval(&val), Nat(33));
    }

    #[test]
    fn eval_missing_vars_default_to_one() {
        // Setting "the other indeterminates to 1" (§3).
        let poly = p("dm_x*dm_y + dm_x");
        let val = Valuation::<Nat>::from_pairs([(Var::new("dm_x"), Nat(2))]);
        // 2·1 + 2 = 4
        assert_eq!(poly.eval(&val), Nat(4));
    }

    #[test]
    fn eval_into_bool_is_dup_elim_composed() {
        let poly = p("eb_x + eb_y");
        let val =
            Valuation::<bool>::from_pairs([(Var::new("eb_x"), false), (Var::new("eb_y"), false)]);
        assert!(!poly.eval(&val));
        let val2 =
            Valuation::<bool>::from_pairs([(Var::new("eb_x"), true), (Var::new("eb_y"), false)]);
        assert!(poly.eval(&val2));
    }

    #[test]
    fn nat_embedding_binary() {
        assert_eq!(nat_to_semiring::<Nat>(Nat(0)), Nat(0));
        assert_eq!(nat_to_semiring::<Nat>(Nat(1)), Nat(1));
        assert_eq!(nat_to_semiring::<Nat>(Nat(13)), Nat(13));
        assert!(!nat_to_semiring::<bool>(Nat(0)));
        assert!(nat_to_semiring::<bool>(Nat(7)));
    }

    #[test]
    fn substitution_is_homomorphic() {
        let [x, y] = vars(["sub_x", "sub_y"]);
        let a = p("sub_x + 1");
        let b = p("sub_y^2");
        let mut subst = BTreeMap::new();
        subst.insert(x, p("sub_y + 1"));
        // (x+1)·y² under x := y+1  ==  (y+2)·y²
        let lhs = a.times(&b).substitute(&subst);
        let rhs = a.substitute(&subst).times(&b.substitute(&subst));
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, p("sub_y^3 + 2*sub_y^2"));
        let _ = y;
    }

    #[test]
    fn size_measure() {
        assert_eq!(p("0").size(), 0);
        assert_eq!(p("5").size(), 1);
        // x1² + x1·x4: term1 = coeff + x1 → 2; term2 = coeff + x1 + x4 → 3
        assert_eq!(p("x1^2 + x1*x4").size(), 5);
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(
            p("w1 * x1 * x4 * y2 * y5 * z1 * z6").to_string(),
            "w1*x1*x4*y2*y5*z1*z6"
        );
        assert_eq!(p("w1^2 x1^2 y2^2 z1^2").to_string(), "w1^2*x1^2*y2^2*z1^2");
    }
}
