//! Free `K`-semimodules: the collection type of the whole framework
//! (Appendix A).
//!
//! For a commutative semiring `K`, the free `K`-semimodule on a set `X`
//! is the set of functions `X → K` with finite support. This is exactly
//! the paper's semantics for the `{t}` type of `NRC_K` (§6.2) and for
//! the sets of children in K-UXML trees (§3). With `K = 𝔹` it is the
//! finite-set functor, with `K = ℕ` finite bags.
//!
//! [`KSet`] carries the (strong) monad structure of Appendix A:
//! [`KSet::unit`] is the singleton and [`KSet::bind`] is the big-union
//! operator `∪(x ∈ e₁) e₂`, which multiplies each inner collection by
//! the annotation of the element it came from:
//!
//! ```text
//! [[∪(x ∈ e₁) e₂]](y) = Σᵢ f(xᵢ) · gᵢ(y)
//! ```
//!
//! The semimodule and bind axioms (Prop 5) are property-tested in this
//! module and again at the NRC level in `axml-nrc`.

use crate::semiring::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A function `T → K` with finite support — a "K-collection".
///
/// Invariant: no entry is ever annotated `K::zero()`; such items are
/// "not present" (§2) and are pruned eagerly on every operation. This
/// makes structural equality coincide with semantic equality of
/// K-collections and keeps iteration proportional to the support.
///
/// ```
/// use axml_semiring::{KSet, Nat, Semiring};
/// let mut bag: KSet<&str, Nat> = KSet::new();
/// bag.insert("a", Nat(2));
/// bag.insert("a", Nat(3)); // annotations add
/// assert_eq!(bag.get(&"a"), Nat(5));
/// assert_eq!(bag.support_len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KSet<T: Ord + Clone, K: Semiring> {
    entries: BTreeMap<T, K>,
}

impl<T: Ord + Clone, K: Semiring> Default for KSet<T, K> {
    fn default() -> Self {
        KSet {
            entries: BTreeMap::new(),
        }
    }
}

impl<T: Ord + Clone, K: Semiring> KSet<T, K> {
    /// The empty collection (the constant-0 function).
    pub fn new() -> Self {
        Self::default()
    }

    /// The monad unit: a singleton annotated `1` (the paper's `{e}`).
    pub fn unit(item: T) -> Self {
        KSet::singleton(item, K::one())
    }

    /// A singleton with an explicit annotation.
    pub fn singleton(item: T, k: K) -> Self {
        let mut entries = BTreeMap::new();
        if !k.is_zero() {
            entries.insert(item, k);
        }
        KSet { entries }
    }

    /// Build from `(item, annotation)` pairs; duplicate items have
    /// their annotations summed, zeros are pruned.
    pub fn from_pairs<I: IntoIterator<Item = (T, K)>>(pairs: I) -> Self {
        let mut set = KSet::new();
        for (t, k) in pairs {
            set.insert(t, k);
        }
        set
    }

    /// Build from pairs whose items are already **distinct**: zeros are
    /// pruned, but nothing is merged — the map is bulk-built from the
    /// pairs (sorted once, then assembled linearly) instead of paying a
    /// tree insert per pair. This is the fast path for producers that
    /// already deduplicate, e.g. the weighted descendant closure in
    /// `axml-uxml`, whose output has one entry per distinct subtree.
    ///
    /// Debug builds assert distinctness; release builds silently keep
    /// one entry per item (which one is unspecified), so callers must
    /// uphold the contract.
    pub fn from_distinct_pairs<I: IntoIterator<Item = (T, K)>>(pairs: I) -> Self {
        let pruned: Vec<(T, K)> = pairs.into_iter().filter(|(_, k)| !k.is_zero()).collect();
        let n = pruned.len();
        let entries: BTreeMap<T, K> = pruned.into_iter().collect();
        debug_assert_eq!(
            entries.len(),
            n,
            "from_distinct_pairs requires distinct items"
        );
        KSet { entries }
    }

    /// Add `k` to the annotation of `item` (inserting if absent).
    pub fn insert(&mut self, item: T, k: K) {
        if k.is_zero() {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.entries.entry(item) {
            Entry::Vacant(e) => {
                e.insert(k);
            }
            Entry::Occupied(mut e) => {
                let merged = e.get().plus(&k);
                if merged.is_zero() {
                    // Unreachable for the semirings in this crate (none
                    // has additive inverses) but required to keep the
                    // invariant for user-supplied semirings.
                    e.remove();
                } else {
                    *e.get_mut() = merged;
                }
            }
        }
    }

    /// The annotation of `item` (`0` if absent).
    pub fn get(&self, item: &T) -> K {
        self.entries.get(item).cloned().unwrap_or_else(K::zero)
    }

    /// Keep only the entries satisfying the predicate — in place, no
    /// rebuild. The churn path prunes retired tuples out of retained
    /// Datalog fixpoints this way: an O(Δ) edit must not pay O(n)
    /// reallocation.
    pub fn retain<F: FnMut(&T, &K) -> bool>(&mut self, mut f: F) {
        self.entries.retain(|t, k| f(t, k));
    }

    /// The annotation of `item`, borrowed (`None` if absent) — for
    /// hot paths that must not clone large annotations just to
    /// compare them.
    pub fn get_ref(&self, item: &T) -> Option<&K> {
        self.entries.get(item)
    }

    /// Does `item` have a nonzero annotation?
    pub fn contains(&self, item: &T) -> bool {
        self.entries.contains_key(item)
    }

    /// Number of items with nonzero annotation.
    pub fn support_len(&self) -> usize {
        self.entries.len()
    }

    /// Is this the empty collection?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(item, annotation)` pairs in item order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, &K)> + '_ {
        self.entries.iter()
    }

    /// Iterate the support (items with nonzero annotation).
    pub fn support(&self) -> impl Iterator<Item = &T> + '_ {
        self.entries.keys()
    }

    /// Pointwise addition (the paper's `e₁ ∪ e₂`).
    pub fn union(&self, other: &Self) -> Self {
        if self.entries.is_empty() {
            return other.clone();
        }
        if other.entries.is_empty() {
            return self.clone();
        }
        let mut out = self.clone();
        for (t, k) in &other.entries {
            out.insert(t.clone(), k.clone());
        }
        out
    }

    /// Pointwise addition in place, consuming `other`: `self += other`.
    ///
    /// Merges the smaller operand into the larger one (union is
    /// commutative), so folding a sequence of unions into an
    /// accumulator is `O(total · log)` instead of the `O(n²)` cost of
    /// rebuilding the accumulator with [`KSet::union`] at every step.
    pub fn union_with(&mut self, mut other: Self) {
        if other.entries.is_empty() {
            return;
        }
        if self.entries.is_empty() {
            *self = other;
            return;
        }
        if other.entries.len() > self.entries.len() {
            std::mem::swap(&mut self.entries, &mut other.entries);
        }
        for (t, k) in other.entries {
            self.insert(t, k);
        }
    }

    /// Scalar multiplication in place: `self = k · self`, reusing the
    /// allocation instead of rebuilding a new map per call.
    pub fn scalar_mul_in_place(&mut self, k: &K) {
        if k.is_one() {
            return;
        }
        if k.is_zero() {
            self.entries.clear();
            return;
        }
        self.entries.retain(|_, ann| {
            *ann = k.times(ann);
            !ann.is_zero()
        });
    }

    /// Bulk insert of scaled entries: `self += k · other`, consuming
    /// `other`. This is one bind step with a reused accumulator — the
    /// loops of `for`-iteration and big-union call it once per binding
    /// instead of allocating an inner collection and unioning it in.
    pub fn extend_scaled(&mut self, other: Self, k: &K) {
        if k.is_zero() || other.entries.is_empty() {
            return;
        }
        if k.is_one() {
            self.union_with(other);
            return;
        }
        for (t, ann) in other.entries {
            self.insert(t, k.times(&ann));
        }
    }

    /// The monad bind accumulated into an existing collection:
    /// `out += ∪(x ∈ self) f(x)`. Equivalent to
    /// `out.union_with(self.bind(f))` without the intermediate
    /// allocation.
    pub fn bind_into<U: Ord + Clone, F: FnMut(&T) -> KSet<U, K>>(
        &self,
        mut f: F,
        out: &mut KSet<U, K>,
    ) {
        for (t, k) in &self.entries {
            let inner = f(t);
            out.extend_scaled(inner, k);
        }
    }

    /// Scalar multiplication `k · e` (the paper's `k e`, §6.2).
    pub fn scalar_mul(&self, k: &K) -> Self {
        if k.is_zero() {
            return KSet::new();
        }
        if k.is_one() {
            return self.clone();
        }
        let mut out = KSet::new();
        for (t, ann) in &self.entries {
            out.insert(t.clone(), k.times(ann));
        }
        out
    }

    /// The monad bind / big-union `∪(x ∈ self) f(x)`:
    /// `result(y) = Σ_x self(x) · f(x)(y)`.
    pub fn bind<U: Ord + Clone, F: FnMut(&T) -> KSet<U, K>>(&self, f: F) -> KSet<U, K> {
        let mut out = KSet::new();
        self.bind_into(f, &mut out);
        out
    }

    /// Functorial map: re-key the support, merging collisions with `+`.
    pub fn map_support<U: Ord + Clone, F: FnMut(&T) -> U>(&self, mut f: F) -> KSet<U, K> {
        let mut out = KSet::new();
        for (t, k) in &self.entries {
            out.insert(f(t), k.clone());
        }
        out
    }

    /// Keep items satisfying the predicate (annotations unchanged).
    pub fn filter<F: FnMut(&T) -> bool>(&self, mut f: F) -> Self {
        KSet {
            entries: self
                .entries
                .iter()
                .filter(|(t, _)| f(t))
                .map(|(t, k)| (t.clone(), k.clone()))
                .collect(),
        }
    }

    /// Apply a semiring homomorphism to every annotation, re-keying with
    /// a value transform; the lifting `H` of §6.4 at collection level.
    pub fn map_annotations<K2, U, FH, FT>(&self, mut hom: FH, mut tf: FT) -> KSet<U, K2>
    where
        K2: Semiring,
        U: Ord + Clone,
        FH: FnMut(&K) -> K2,
        FT: FnMut(&T) -> U,
    {
        let mut out = KSet::new();
        for (t, k) in &self.entries {
            out.insert(tf(t), hom(k));
        }
        out
    }

    /// The total annotation `Σ_x self(x)` (e.g. total multiplicity for
    /// bags; useful for aggregates and tests).
    pub fn total(&self) -> K {
        K::sum(self.entries.values().cloned())
    }
}

/// Union a batch of K-sets down to one, in parallel: a tree-reduce
/// over [`KSet::union_with`] on `pool`, splitting across up to
/// `par.degree()` concurrent folds. The merge is the same
/// smaller-into-larger in-place union the sequential evaluator loops
/// use, so the result is identical to folding the batch left-to-right
/// (union is associative and commutative); with
/// [`axml_pool::Parallelism::is_sequential`] the pool is never
/// touched.
///
/// This is the reduce half of every fan-out in the parallel evaluation
/// layer: chunked descendant sweeps and partitioned join rounds each
/// produce one K-set per chunk and meet here.
pub fn par_union_all<T, K>(
    pool: &axml_pool::Pool,
    par: axml_pool::Parallelism,
    sets: Vec<KSet<T, K>>,
) -> KSet<T, K>
where
    T: Ord + Clone + Send,
    K: Semiring,
{
    let merge = |mut a: KSet<T, K>, b: KSet<T, K>| {
        a.union_with(b);
        a
    };
    if par.is_sequential() {
        return sets.into_iter().reduce(merge).unwrap_or_default();
    }
    pool.reduce(sets, par.degree_on(pool), merge)
        .unwrap_or_default()
}

impl<T: Ord + Clone, K: Semiring> FromIterator<(T, K)> for KSet<T, K> {
    fn from_iter<I: IntoIterator<Item = (T, K)>>(iter: I) -> Self {
        KSet::from_pairs(iter)
    }
}

impl<T: Ord + Clone, K: Semiring> IntoIterator for KSet<T, K> {
    type Item = (T, K);
    type IntoIter = std::collections::btree_map::IntoIter<T, K>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<T: Ord + Clone + fmt::Debug, K: Semiring> fmt::Debug for KSet<T, K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (t, k) in &self.entries {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if k.is_one() {
                write!(f, "{t:?}")?;
            } else {
                write!(f, "{t:?}^{k:?}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::Nat;
    use crate::poly::NatPoly;

    type Bag<'a> = KSet<&'a str, Nat>;

    #[test]
    fn zero_annotations_are_pruned() {
        let mut s: Bag = KSet::new();
        s.insert("a", Nat(0));
        assert!(s.is_empty());
        assert!(!s.contains(&"a"));
        let s2: Bag = KSet::singleton("a", Nat(0));
        assert!(s2.is_empty());
    }

    #[test]
    fn insert_adds_annotations() {
        let mut s: Bag = KSet::new();
        s.insert("a", Nat(2));
        s.insert("a", Nat(3));
        s.insert("b", Nat(1));
        assert_eq!(s.get(&"a"), Nat(5));
        assert_eq!(s.get(&"b"), Nat(1));
        assert_eq!(s.get(&"c"), Nat(0));
        assert_eq!(s.support_len(), 2);
        assert_eq!(s.total(), Nat(6));
    }

    #[test]
    fn union_is_pointwise_addition() {
        let a: Bag = KSet::from_pairs([("x", Nat(1)), ("y", Nat(2))]);
        let b: Bag = KSet::from_pairs([("y", Nat(3)), ("z", Nat(4))]);
        let u = a.union(&b);
        assert_eq!(u.get(&"x"), Nat(1));
        assert_eq!(u.get(&"y"), Nat(5));
        assert_eq!(u.get(&"z"), Nat(4));
    }

    #[test]
    fn flatten_example_from_paper() {
        // §6.2: flatten {{a^p, b^r}^u, {b^s}^v} = {a^{u·p}, b^{u·r+v·s}}
        let [p, r, u, s, v] = [Nat(2), Nat(3), Nat(5), Nat(7), Nat(11)];
        let inner1: Bag = KSet::from_pairs([("a", p), ("b", r)]);
        let inner2: Bag = KSet::from_pairs([("b", s)]);
        let outer: KSet<Bag, Nat> = KSet::from_pairs([(inner1, u), (inner2, v)]);
        let flat = outer.bind(|w| w.clone());
        assert_eq!(flat.get(&"a"), u.times(&p));
        assert_eq!(flat.get(&"b"), u.times(&r).plus(&v.times(&s)));
    }

    #[test]
    fn cartesian_product_example_from_paper() {
        // §6.2: {a^p, b^r} × {c^u} = {(a,c)^{p·u}, (b,c)^{r·u}}
        let r1: Bag = KSet::from_pairs([("a", Nat(2)), ("b", Nat(3))]);
        let r2: Bag = KSet::from_pairs([("c", Nat(5))]);
        let prod = r1.bind(|x| r2.map_support(|y| (*x, *y)));
        assert_eq!(prod.get(&("a", "c")), Nat(10));
        assert_eq!(prod.get(&("b", "c")), Nat(15));
    }

    #[test]
    fn scalar_mul_shortcuts() {
        let s: Bag = KSet::from_pairs([("a", Nat(2))]);
        assert!(s.scalar_mul(&Nat(0)).is_empty());
        assert_eq!(s.scalar_mul(&Nat(1)), s);
        assert_eq!(s.scalar_mul(&Nat(3)).get(&"a"), Nat(6));
    }

    #[test]
    fn map_support_merges_with_plus() {
        let s: Bag = KSet::from_pairs([("aa", Nat(2)), ("ab", Nat(3))]);
        let by_first = s.map_support(|t| &t[..1]);
        assert_eq!(by_first.get(&"a"), Nat(5));
        assert_eq!(by_first.support_len(), 1);
    }

    #[test]
    fn filter_keeps_annotations() {
        let s: Bag = KSet::from_pairs([("a", Nat(2)), ("b", Nat(3))]);
        let f = s.filter(|t| *t == "a");
        assert_eq!(f.get(&"a"), Nat(2));
        assert!(!f.contains(&"b"));
    }

    #[test]
    fn map_annotations_applies_hom() {
        let s: Bag = KSet::from_pairs([("a", Nat(2)), ("b", Nat(0))]);
        let b: KSet<&str, bool> = s.map_annotations(crate::hom::dup_elim, |t| *t);
        assert!(b.get(&"a"));
        assert!(!b.contains(&"b"));
    }

    // ---- Semimodule axioms (Prop 5 / Appendix A), deterministic ----

    fn sample_sets() -> Vec<KSet<u32, NatPoly>> {
        let x = NatPoly::var_named("sm_x");
        let y = NatPoly::var_named("sm_y");
        vec![
            KSet::new(),
            KSet::unit(1),
            KSet::from_pairs([(1, x.clone()), (2, y.clone())]),
            KSet::from_pairs([(2, x.times(&y)), (3, NatPoly::one())]),
        ]
    }

    fn sample_scalars() -> Vec<NatPoly> {
        vec![
            NatPoly::zero(),
            NatPoly::one(),
            NatPoly::var_named("sm_k1"),
            NatPoly::var_named("sm_k1").plus(&NatPoly::var_named("sm_k2")),
        ]
    }

    #[test]
    fn semimodule_axioms() {
        for k1 in sample_scalars() {
            for k2 in sample_scalars() {
                for xs in sample_sets() {
                    for ys in sample_sets() {
                        // k(x+y) = kx + ky
                        assert_eq!(
                            xs.union(&ys).scalar_mul(&k1),
                            xs.scalar_mul(&k1).union(&ys.scalar_mul(&k1))
                        );
                        // (k1+k2)x = k1x + k2x
                        assert_eq!(
                            xs.scalar_mul(&k1.plus(&k2)),
                            xs.scalar_mul(&k1).union(&xs.scalar_mul(&k2))
                        );
                        // (k1·k2)x = k1(k2 x)
                        assert_eq!(
                            xs.scalar_mul(&k1.times(&k2)),
                            xs.scalar_mul(&k2).scalar_mul(&k1)
                        );
                    }
                    // k·0 = 0, 0·x = 0, 1·x = x
                    assert_eq!(KSet::<u32, NatPoly>::new().scalar_mul(&k1), KSet::new());
                }
            }
        }
        for xs in sample_sets() {
            assert_eq!(xs.scalar_mul(&NatPoly::zero()), KSet::new());
            assert_eq!(xs.scalar_mul(&NatPoly::one()), xs);
        }
    }

    #[test]
    fn bind_axioms() {
        // ∪(x ∈ S) {x} = S   (right identity)
        for s in sample_sets() {
            assert_eq!(s.bind(|x| KSet::unit(*x)), s);
        }
        // ∪(x ∈ {e}) S = S[x := e]   (left identity)
        let f = |x: &u32| KSet::from_pairs([(x + 1, NatPoly::var_named("sm_b"))]);
        assert_eq!(KSet::<u32, NatPoly>::unit(7).bind(f), f(&7));
        // associativity: ∪(x ∈ ∪(y ∈ R) S) T = ∪(y ∈ R) ∪(x ∈ S) T
        for r in sample_sets() {
            let s = |y: &u32| {
                KSet::from_pairs([
                    (y * 2, NatPoly::one()),
                    (y * 2 + 1, NatPoly::var_named("sm_s")),
                ])
            };
            let t = |x: &u32| KSet::from_pairs([(x % 3, NatPoly::var_named("sm_t"))]);
            assert_eq!(r.bind(s).bind(t), r.bind(|y| s(y).bind(t)));
        }
        // bilinearity in the source:
        // ∪(x ∈ k1 R1 ∪ k2 R2) S = k1 (∪(x∈R1) S) ∪ k2 (∪(x∈R2) S)
        let k1 = NatPoly::var_named("sm_k1");
        let k2 = NatPoly::var_named("sm_k2");
        for r1 in sample_sets() {
            for r2 in sample_sets() {
                let s = |x: &u32| KSet::from_pairs([(x + 10, NatPoly::one())]);
                let lhs = r1.scalar_mul(&k1).union(&r2.scalar_mul(&k2)).bind(s);
                let rhs = r1
                    .bind(s)
                    .scalar_mul(&k1)
                    .union(&r2.bind(s).scalar_mul(&k2));
                assert_eq!(lhs, rhs);
            }
        }
        // bilinearity in the body:
        // ∪(x ∈ R)(k1 S1 ∪ k2 S2) = k1(∪(x∈R) S1) ∪ k2(∪(x∈R) S2)
        for r in sample_sets() {
            let s1 = |x: &u32| KSet::from_pairs([(x + 1, NatPoly::one())]);
            let s2 = |x: &u32| KSet::from_pairs([(x + 2, NatPoly::var_named("sm_w"))]);
            let lhs = r.bind(|x| s1(x).scalar_mul(&k1).union(&s2(x).scalar_mul(&k2)));
            let rhs = r
                .bind(s1)
                .scalar_mul(&k1)
                .union(&r.bind(s2).scalar_mul(&k2));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn bind_commutation() {
        // ∪(x ∈ R) ∪(y ∈ S) T = ∪(y ∈ S) ∪(x ∈ R) T (independent sources)
        for r in sample_sets() {
            for s in sample_sets() {
                let t = |x: &u32, y: &u32| KSet::from_pairs([(x * 100 + y, NatPoly::one())]);
                let lhs = r.bind(|x| s.bind(|y| t(x, y)));
                let rhs = s.bind(|y| r.bind(|x| t(x, y)));
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn par_union_all_matches_sequential_fold() {
        let pool = axml_pool::Pool::new(4);
        // 64 overlapping bags: every third key collides across sets.
        let sets: Vec<KSet<u32, Nat>> = (0..64u32)
            .map(|i| KSet::from_pairs([(i % 3, Nat(i as u128)), (i + 100, Nat(1))]))
            .collect();
        let expected = sets
            .iter()
            .cloned()
            .reduce(|mut a, b| {
                a.union_with(b);
                a
            })
            .unwrap();
        for par in [
            axml_pool::Parallelism::sequential(),
            axml_pool::Parallelism::threads(4),
            axml_pool::Parallelism::threads(16),
        ] {
            assert_eq!(par_union_all(&pool, par, sets.clone()), expected);
        }
        assert!(
            par_union_all::<u32, Nat>(&pool, axml_pool::Parallelism::threads(4), Vec::new())
                .is_empty()
        );
    }

    #[test]
    fn debug_format_elides_one() {
        let s: Bag = KSet::from_pairs([("a", Nat(1)), ("b", Nat(2))]);
        assert_eq!(format!("{s:?}"), "{\"a\", \"b\"^2}");
    }
}
