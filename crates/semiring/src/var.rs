//! Interned provenance variables ("provenance tokens", §3).
//!
//! Provenance polynomials ℕ\[X\] are polynomials over a set X of
//! indeterminates. Variables are interned into a process-global pool so
//! that a [`Var`] is a `Copy` 4-byte id: polynomial arithmetic compares
//! and hashes ids instead of strings (a large constant-factor win, per
//! the perf-book guidance on hashing and allocation).
//!
//! Interning is append-only; ids are stable for the life of the process.
//! [`Var`]'s `Ord` sorts by *name* (not id) so every printed polynomial
//! and every `BTreeMap` iteration order is deterministic regardless of
//! interning order — figure regeneration must be byte-stable.

use std::cmp::Ordering;
use std::fmt;

/// A provenance variable (indeterminate) such as `x1`, `y2`, `w1`.
///
/// Create with [`Var::new`]; two `Var`s with the same name are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(u32);

crate::define_intern_pool!();

impl Var {
    /// Intern a variable by name.
    pub fn new(name: &str) -> Var {
        Var(intern_name(name))
    }

    /// The variable's name.
    pub fn name(self) -> &'static str {
        interned_name(self.0)
    }

    /// The raw interned id (stable within a process; for debugging).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Var {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        // Order by name for deterministic, human-meaningful output.
        self.name().cmp(other.name())
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// Convenience: intern several variables at once.
///
/// ```
/// use axml_semiring::var::vars;
/// let [x, y, z] = vars(["x", "y", "z"]);
/// assert_eq!(x.name(), "x");
/// assert!(x < y && y < z);
/// ```
pub fn vars<const N: usize>(names: [&str; N]) -> [Var; N] {
    names.map(Var::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Var::new("x1");
        let b = Var::new("x1");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.name(), "x1");
    }

    #[test]
    fn distinct_names_distinct_vars() {
        let a = Var::new("alpha");
        let b = Var::new("beta");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_by_name() {
        // Intern in reverse order to show Ord ignores interning order.
        let z = Var::new("zzz_order");
        let a = Var::new("aaa_order");
        assert!(a < z);
        let same = Var::new("aaa_order");
        assert_eq!(a.cmp(&same), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_from() {
        let v: Var = "w1".into();
        assert_eq!(v.to_string(), "w1");
        assert_eq!(format!("{v:?}"), "w1");
    }

    #[test]
    fn vars_helper() {
        let [x, y] = vars(["vh_x", "vh_y"]);
        assert_eq!(x.name(), "vh_x");
        assert_eq!(y.name(), "vh_y");
    }
}
