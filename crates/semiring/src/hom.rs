//! Semiring homomorphisms and valuations (§2, §6.4).
//!
//! A homomorphism `h : K₁ → K₂` preserves `0`, `1`, `+` and `·`. The
//! paper's central structural result (Theorem 1 / Corollary 1) is that
//! query evaluation *commutes* with applying homomorphisms to the
//! annotations of the input: `H(e(v)) = H(e)(H(v))`. Every application
//! in §4 and §5 is an instance of this commutation.
//!
//! The workhorse is [`Valuation`], a finite map `X → K` which induces
//! the unique homomorphism `ℕ[X] → K` via [`crate::NatPoly::eval`].

use crate::nat::Nat;
use crate::semiring::Semiring;
use crate::var::Var;
use std::collections::BTreeMap;
use std::fmt;

/// A homomorphism of commutative semirings.
///
/// Implementations must satisfy (property-tested in `tests/`):
/// `h(0)=0`, `h(1)=1`, `h(a+b)=h(a)+h(b)`, `h(a·b)=h(a)·h(b)`.
pub trait SemiringHom<A: Semiring, B: Semiring> {
    /// Apply the homomorphism to one annotation.
    fn apply(&self, a: &A) -> B;
}

/// The identity homomorphism `K → K`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityHom;

impl<K: Semiring> SemiringHom<K, K> for IdentityHom {
    fn apply(&self, a: &K) -> K {
        a.clone()
    }
}

/// Wrap any function as a homomorphism. The caller asserts the
/// homomorphism laws; use the `hom_laws` helpers in tests to check.
pub struct FnHom<A, B, F: Fn(&A) -> B> {
    f: F,
    _marker: std::marker::PhantomData<fn(&A) -> B>,
}

impl<A, B, F: Fn(&A) -> B> FnHom<A, B, F> {
    /// Wrap `f` as a [`SemiringHom`].
    pub fn new(f: F) -> Self {
        FnHom {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A: Semiring, B: Semiring, F: Fn(&A) -> B> SemiringHom<A, B> for FnHom<A, B, F> {
    fn apply(&self, a: &A) -> B {
        (self.f)(a)
    }
}

/// The "duplicate elimination" homomorphism `† : ℕ → 𝔹` (§6.4):
/// `†(0) = false`, `†(n+1) = true`. Lifted over values it factors
/// set-semantics evaluation through bag-semantics evaluation, with
/// duplicate elimination deferred to the end — the way commercial
/// RDBMSs treat `DISTINCT`.
pub fn dup_elim(n: &Nat) -> bool {
    !n.is_zero()
}

/// A finite map `X → K` assigning semiring values to provenance
/// variables. Extends uniquely to the homomorphism `ℕ[X] → K`
/// ([`crate::NatPoly::eval`]); variables not in the map default to
/// `K::one()` (the paper's "set the other indeterminates to 1").
#[derive(Clone, PartialEq, Eq)]
pub struct Valuation<K: Semiring> {
    map: BTreeMap<Var, K>,
}

impl<K: Semiring> Default for Valuation<K> {
    fn default() -> Self {
        Valuation {
            map: BTreeMap::new(),
        }
    }
}

impl<K: Semiring> Valuation<K> {
    /// The empty valuation (every variable ↦ 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(variable, value)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Var, K)>>(pairs: I) -> Self {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Bind `v ↦ k` (overwriting any previous binding).
    pub fn set(&mut self, v: Var, k: K) -> &mut Self {
        self.map.insert(v, k);
        self
    }

    /// Look up a variable; unbound variables are `1` (see type docs).
    pub fn get(&self, v: Var) -> K {
        self.map.get(&v).cloned().unwrap_or_else(K::one)
    }

    /// Is the variable explicitly bound?
    pub fn binds(&self, v: Var) -> bool {
        self.map.contains_key(&v)
    }

    /// Iterate explicit bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &K)> + '_ {
        self.map.iter().map(|(&v, k)| (v, k))
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no variable is explicitly bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<K: Semiring> fmt::Debug for Valuation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for (v, k) in &self.map {
            d.entry(&v.name(), k);
        }
        d.finish()
    }
}

impl<K: Semiring> FromIterator<(Var, K)> for Valuation<K> {
    fn from_iter<I: IntoIterator<Item = (Var, K)>>(iter: I) -> Self {
        Valuation::from_pairs(iter)
    }
}

/// Test helper: assert the homomorphism laws for `h` on given samples.
/// Available outside `cfg(test)` so downstream crates' tests can reuse it.
pub fn assert_hom_laws<A: Semiring, B: Semiring, H: SemiringHom<A, B>>(h: &H, samples: &[A]) {
    assert_eq!(h.apply(&A::zero()), B::zero(), "h(0) = 0");
    assert_eq!(h.apply(&A::one()), B::one(), "h(1) = 1");
    for a in samples {
        for b in samples {
            assert_eq!(
                h.apply(&a.plus(b)),
                h.apply(a).plus(&h.apply(b)),
                "h(a+b) = h(a)+h(b) for {a:?}, {b:?}"
            );
            assert_eq!(
                h.apply(&a.times(b)),
                h.apply(a).times(&h.apply(b)),
                "h(a·b) = h(a)·h(b) for {a:?}, {b:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::NatPoly;
    use crate::var::vars;

    #[test]
    fn dup_elim_is_a_hom() {
        let h = FnHom::new(dup_elim);
        assert_hom_laws(&h, &[Nat(0), Nat(1), Nat(2), Nat(5)]);
        assert!(!dup_elim(&Nat(0)));
        assert!(dup_elim(&Nat(3)));
    }

    #[test]
    fn identity_hom() {
        let h = IdentityHom;
        assert_hom_laws::<Nat, Nat, _>(&h, &[Nat(0), Nat(1), Nat(9)]);
    }

    #[test]
    fn valuation_defaults_to_one() {
        let [x, y] = vars(["vt_x", "vt_y"]);
        let val = Valuation::<Nat>::from_pairs([(x, Nat(7))]);
        assert_eq!(val.get(x), Nat(7));
        assert_eq!(val.get(y), Nat(1));
        assert!(val.binds(x));
        assert!(!val.binds(y));
        assert_eq!(val.len(), 1);
        assert!(!val.is_empty());
    }

    #[test]
    fn valuation_induces_hom_on_polys() {
        // f*: ℕ[X] → ℕ is a homomorphism for any valuation f.
        let [x, y] = vars(["vh_p", "vh_q"]);
        let val = Valuation::<Nat>::from_pairs([(x, Nat(2)), (y, Nat(3))]);
        let h = FnHom::new(move |p: &NatPoly| p.eval(&val));
        let samples = [
            NatPoly::zero_poly(),
            NatPoly::one(),
            NatPoly::var(x),
            NatPoly::var(x).plus(&NatPoly::var(y)),
            NatPoly::var(y).times(&NatPoly::var(y)),
        ];
        assert_hom_laws(&h, &samples);
    }

    #[test]
    fn valuation_debug_is_readable() {
        let [x] = vars(["dbg_v"]);
        let val = Valuation::<Nat>::from_pairs([(x, Nat(2))]);
        assert_eq!(format!("{val:?}"), "{\"dbg_v\": 2}");
    }
}
