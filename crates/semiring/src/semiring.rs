//! The [`Semiring`] trait and the Boolean instance.

use std::fmt::Debug;
use std::hash::Hash;

/// A commutative semiring `(K, +, ·, 0, 1)` (§2 of the paper).
///
/// Laws (checked by property tests in this crate and re-checked through
/// query semantics by the `theorems` integration tests):
///
/// 1. `(K, +, 0)` is a commutative monoid;
/// 2. `(K, ·, 1)` is a commutative monoid;
/// 3. `·` distributes over `+`: `a · (b + c) = a·b + a·c`;
/// 4. `0` annihilates: `0 · a = 0`.
///
/// Implementations must be **canonical**: two elements are semantically
/// equal iff they are `==`. This is what lets annotated trees and
/// K-collections use annotations as parts of map keys. All provided
/// instances normalize on construction (e.g. [`crate::PosBool`] keeps an
/// irredundant monotone DNF).
///
/// The intuition for the operations (paper, §2): an annotation `0` means
/// the item is absent, `k1 + k2` means the item can be obtained from the
/// data described by `k1` *or* by `k2`, and `k1 · k2` means obtaining it
/// requires *both*. `1` is one copy "without restrictions".
pub trait Semiring: Clone + Eq + Ord + Hash + Debug + Send + Sync + 'static {
    /// The additive identity `0`.
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Semiring addition `+` (alternative use).
    fn plus(&self, other: &Self) -> Self;
    /// Semiring multiplication `·` (joint use).
    fn times(&self, other: &Self) -> Self;

    /// Is this the additive identity? Items annotated `0` are treated as
    /// absent by every collection in this workspace.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Is this the multiplicative identity? Used by pretty-printers to
    /// elide "neutral" annotations exactly as the paper's figures do.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// `Σ` of an iterator of elements (0 for the empty iterator).
    fn sum<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::zero(), |acc, k| acc.plus(&k))
    }

    /// `Π` of an iterator of elements (1 for the empty iterator).
    fn product<I: IntoIterator<Item = Self>>(iter: I) -> Self {
        iter.into_iter().fold(Self::one(), |acc, k| acc.times(&k))
    }

    /// `self + other`, consuming both (convenience over [`Semiring::plus`]).
    fn add(self, other: Self) -> Self {
        self.plus(&other)
    }

    /// `self · other`, consuming both (convenience over [`Semiring::times`]).
    fn mul(self, other: Self) -> Self {
        self.times(&other)
    }

    /// `self^n` by repeated squaring. `k^0 = 1`.
    fn pow(&self, mut n: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.times(&base);
            }
            n >>= 1;
            if n > 0 {
                base = base.times(&base);
            }
        }
        acc
    }
}

/// The Boolean semiring `(𝔹, ∨, ∧, false, true)`: ordinary set-based
/// data. `B`-UXML is "essentially unannotated unordered XML" (§3).
impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn plus(&self, other: &Self) -> Self {
        *self || *other
    }
    fn times(&self, other: &Self) -> Self {
        *self && *other
    }
    fn is_zero(&self) -> bool {
        !*self
    }
    fn is_one(&self) -> bool {
        *self
    }
}

#[cfg(test)]
pub(crate) mod laws {
    //! Reusable semiring-law assertions, used by every instance's tests.
    use super::Semiring;

    /// Assert all commutative-semiring laws on a triple of elements.
    pub fn check_laws<K: Semiring>(a: &K, b: &K, c: &K) {
        // additive commutative monoid
        assert_eq!(a.plus(b), b.plus(a), "+ commutes");
        assert_eq!(a.plus(&b.plus(c)), a.plus(b).plus(c), "+ associates");
        assert_eq!(a.plus(&K::zero()), *a, "0 is + identity");
        // multiplicative commutative monoid
        assert_eq!(a.times(b), b.times(a), "· commutes");
        assert_eq!(a.times(&b.times(c)), a.times(b).times(c), "· associates");
        assert_eq!(a.times(&K::one()), *a, "1 is · identity");
        // distributivity and annihilation
        assert_eq!(
            a.times(&b.plus(c)),
            a.times(b).plus(&a.times(c)),
            "· distributes over +"
        );
        assert_eq!(a.times(&K::zero()), K::zero(), "0 annihilates");
    }

    /// Assert idempotence of `+` (for lattice-like semirings).
    pub fn check_plus_idempotent<K: Semiring>(a: &K) {
        assert_eq!(a.plus(a), *a, "+ idempotent");
    }
}

#[cfg(test)]
mod tests {
    use super::laws::check_laws;
    use super::*;

    #[test]
    fn bool_is_a_semiring() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    check_laws(&a, &b, &c);
                }
            }
        }
    }

    #[test]
    fn bool_identities() {
        assert!(!<bool as Semiring>::zero());
        assert!(<bool as Semiring>::one());
        assert!(true.is_one());
        assert!(false.is_zero());
    }

    #[test]
    fn sum_and_product_fold() {
        assert!(<bool as Semiring>::sum([false, true, false]));
        assert!(!<bool as Semiring>::sum(std::iter::empty::<bool>()));
        assert!(<bool as Semiring>::product(std::iter::empty::<bool>()));
        assert!(!<bool as Semiring>::product([true, false]));
    }

    #[test]
    fn pow_boolean() {
        assert!(true.pow(0));
        assert!(false.pow(0), "k^0 = 1 even for 0");
        assert!(!false.pow(3));
        assert!(true.pow(5));
    }
}
