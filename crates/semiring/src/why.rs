//! Why-provenance and lineage semirings (§2's "lineage and
//! why-provenance ... correspond to different semirings", citing
//! Buneman–Cheney–Tan–Vansummeren).
//!
//! These are coarser members of the provenance hierarchy obtained from
//! ℕ\[X\] by surjective homomorphisms (see [`crate::hom`] and the
//! hierarchy collapses in [`crate::trio`]):
//!
//! ```text
//! ℕ\[X\] → 𝔹\[X\] → Why(X) → PosBool(X) → 𝔹
//!    ↘ Trio(X) ↗       ↘ Lineage(X) ↗
//! ```
//!
//! (PosBool and Lineage are incomparable quotients of Why; see
//! [`crate::trio::collapse`].)

use crate::semiring::Semiring;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;

type Witness = BTreeSet<Var>;

/// The why-provenance semiring `Why(X)`: sets of *witnesses* (each a set
/// of contributing tokens), a.k.a. witness bases.
///
/// `0 = {}`, `1 = {∅}`, `+` is union, `·` is pairwise union of
/// witnesses. Unlike [`crate::PosBool`], no absorption is performed —
/// `Why` distinguishes `{{x}}` from `{{x},{x,y}}`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Why {
    witnesses: BTreeSet<Witness>,
}

impl Why {
    /// A single-token witness `{{v}}`.
    pub fn var(v: Var) -> Self {
        let mut w = Witness::new();
        w.insert(v);
        let mut witnesses = BTreeSet::new();
        witnesses.insert(w);
        Why { witnesses }
    }

    /// Build from an iterator of witnesses.
    pub fn from_witnesses<I, W>(ws: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: IntoIterator<Item = Var>,
    {
        Why {
            witnesses: ws.into_iter().map(|w| w.into_iter().collect()).collect(),
        }
    }

    /// Iterate the witnesses.
    pub fn witnesses(&self) -> impl Iterator<Item = &Witness> + '_ {
        self.witnesses.iter()
    }

    /// Number of witnesses.
    pub fn num_witnesses(&self) -> usize {
        self.witnesses.len()
    }
}

impl Semiring for Why {
    fn zero() -> Self {
        Why::default()
    }

    fn one() -> Self {
        let mut witnesses = BTreeSet::new();
        witnesses.insert(Witness::new());
        Why { witnesses }
    }

    fn plus(&self, other: &Self) -> Self {
        Why {
            witnesses: self.witnesses.union(&other.witnesses).cloned().collect(),
        }
    }

    fn times(&self, other: &Self) -> Self {
        let mut witnesses = BTreeSet::new();
        for a in &self.witnesses {
            for b in &other.witnesses {
                witnesses.insert(a.union(b).copied().collect::<Witness>());
            }
        }
        Why { witnesses }
    }

    fn is_zero(&self) -> bool {
        self.witnesses.is_empty()
    }
}

impl fmt::Debug for Why {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Why {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for w in &self.witnesses {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{{")?;
            let mut fv = true;
            for v in w {
                if !fv {
                    write!(f, ",")?;
                }
                fv = false;
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// The lineage semiring `Lin(X)`: the set of all tokens that contributed
/// to an item, or ⊥ if the item is absent.
///
/// `0 = ⊥`, `1 = ∅`; `+` and `·` both take unions, except that `⊥` is
/// the identity for `+` and annihilates `·`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lineage {
    /// `None` is ⊥ ("not present"); `Some(s)` is the token set.
    tokens: Option<BTreeSet<Var>>,
}

impl Lineage {
    /// The bottom element ⊥ (absent).
    pub fn bottom() -> Self {
        Lineage { tokens: None }
    }

    /// A single token.
    pub fn var(v: Var) -> Self {
        Lineage {
            tokens: Some(BTreeSet::from([v])),
        }
    }

    /// Build from tokens.
    pub fn from_tokens<I: IntoIterator<Item = Var>>(tokens: I) -> Self {
        Lineage {
            tokens: Some(tokens.into_iter().collect()),
        }
    }

    /// The token set, or `None` for ⊥.
    pub fn tokens(&self) -> Option<&BTreeSet<Var>> {
        self.tokens.as_ref()
    }
}

impl Semiring for Lineage {
    fn zero() -> Self {
        Lineage::bottom()
    }

    fn one() -> Self {
        Lineage {
            tokens: Some(BTreeSet::new()),
        }
    }

    fn plus(&self, other: &Self) -> Self {
        match (&self.tokens, &other.tokens) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => Lineage {
                tokens: Some(a.union(b).copied().collect()),
            },
        }
    }

    fn times(&self, other: &Self) -> Self {
        match (&self.tokens, &other.tokens) {
            (None, _) | (_, None) => Lineage::bottom(),
            (Some(a), Some(b)) => Lineage {
                tokens: Some(a.union(b).copied().collect()),
            },
        }
    }

    fn is_zero(&self) -> bool {
        self.tokens.is_none()
    }
}

impl fmt::Debug for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.tokens {
            None => write!(f, "⊥"),
            Some(s) => {
                write!(f, "{{")?;
                let mut first = true;
                for v in s {
                    if !first {
                        write!(f, ",")?;
                    }
                    first = false;
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::check_laws;
    use crate::var::vars;

    fn why_samples() -> Vec<Why> {
        let [x, y, z] = vars(["wy_x", "wy_y", "wy_z"]);
        vec![
            Why::zero(),
            Why::one(),
            Why::var(x),
            Why::var(x).plus(&Why::var(y)),
            Why::var(x).times(&Why::var(y)).plus(&Why::var(z)),
        ]
    }

    #[test]
    fn why_is_a_semiring() {
        let s = why_samples();
        for a in &s {
            for b in &s {
                for c in &s {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn why_keeps_non_minimal_witnesses() {
        // Why(X) is strictly finer than PosBool: {{x}} + {{x,y}} keeps
        // both witnesses (no absorption).
        let [x, y] = vars(["wk_x", "wk_y"]);
        let w = Why::var(x).plus(&Why::var(x).times(&Why::var(y)));
        assert_eq!(w.num_witnesses(), 2);
    }

    #[test]
    fn why_times_merges_pairwise() {
        let [x, y, z] = vars(["wt_x", "wt_y", "wt_z"]);
        let a = Why::var(x).plus(&Why::var(y));
        let b = Why::var(z);
        let prod = a.times(&b);
        assert_eq!(prod, Why::from_witnesses([vec![x, z], vec![y, z]]));
    }

    fn lineage_samples() -> Vec<Lineage> {
        let [x, y] = vars(["ln_x", "ln_y"]);
        vec![
            Lineage::zero(),
            Lineage::one(),
            Lineage::var(x),
            Lineage::var(x).plus(&Lineage::var(y)),
        ]
    }

    #[test]
    fn lineage_is_a_semiring() {
        let s = lineage_samples();
        for a in &s {
            for b in &s {
                for c in &s {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn lineage_flattens_alternatives() {
        // Lineage loses the alternative/joint distinction: x+y and x·y
        // both become {x,y}.
        let [x, y] = vars(["lf_x", "lf_y"]);
        let plus = Lineage::var(x).plus(&Lineage::var(y));
        let times = Lineage::var(x).times(&Lineage::var(y));
        assert_eq!(plus, times);
        assert_eq!(plus.tokens().unwrap().len(), 2);
    }

    #[test]
    fn lineage_bottom_behaviour() {
        let [x] = vars(["lb_x"]);
        let l = Lineage::var(x);
        assert_eq!(Lineage::bottom().plus(&l), l);
        assert_eq!(Lineage::bottom().times(&l), Lineage::bottom());
        assert!(Lineage::bottom().is_zero());
        assert!(!Lineage::one().is_zero());
    }

    #[test]
    fn display_forms() {
        let [x, y] = vars(["ds_x", "ds_y"]);
        assert_eq!(Why::zero().to_string(), "{}");
        assert_eq!(Why::one().to_string(), "{{}}");
        assert_eq!(Why::var(x).times(&Why::var(y)).to_string(), "{{ds_x,ds_y}}");
        assert_eq!(Lineage::bottom().to_string(), "⊥");
        assert_eq!(Lineage::one().to_string(), "{}");
        assert_eq!(Lineage::var(x).to_string(), "{ds_x}");
    }
}
