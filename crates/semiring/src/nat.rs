//! The natural-number semiring `(ℕ, +, ·, 0, 1)` — bag semantics.

use crate::semiring::Semiring;
use std::fmt;

/// A natural number used as a semiring annotation (multiplicity).
///
/// `ℕ`-UXML is unordered XML with *repetitions*: the annotation of a
/// subtree is the number of copies present (§3, §5).
///
/// Arithmetic is checked `u128`: provenance-polynomial coefficients and
/// bag multiplicities can grow multiplicatively with query size (Prop 2),
/// and silent wrap-around would violate the homomorphism laws that the
/// whole framework rests on. Overflow panics with a clear message
/// instead; at 128 bits this is unreachable for every workload in this
/// repository.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nat(pub u128);

impl Nat {
    /// The value 0.
    pub const ZERO: Nat = Nat(0);
    /// The value 1.
    pub const ONE: Nat = Nat(1);

    /// Construct from any unsigned integer.
    pub fn new(n: impl Into<u128>) -> Self {
        Nat(n.into())
    }

    /// The underlying integer.
    pub fn value(self) -> u128 {
        self.0
    }

    /// Checked addition; panics on overflow (see type docs).
    fn checked_plus(self, other: Nat) -> Nat {
        Nat(self
            .0
            .checked_add(other.0)
            .expect("Nat semiring addition overflowed u128"))
    }

    /// Checked multiplication; panics on overflow (see type docs).
    fn checked_times(self, other: Nat) -> Nat {
        Nat(self
            .0
            .checked_mul(other.0)
            .expect("Nat semiring multiplication overflowed u128"))
    }
}

impl Semiring for Nat {
    fn zero() -> Self {
        Nat::ZERO
    }
    fn one() -> Self {
        Nat::ONE
    }
    fn plus(&self, other: &Self) -> Self {
        self.checked_plus(*other)
    }
    fn times(&self, other: &Self) -> Self {
        self.checked_times(*other)
    }
    fn is_zero(&self) -> bool {
        self.0 == 0
    }
    fn is_one(&self) -> bool {
        self.0 == 1
    }
}

impl From<u64> for Nat {
    fn from(n: u64) -> Self {
        Nat(n as u128)
    }
}

impl From<u32> for Nat {
    fn from(n: u32) -> Self {
        Nat(n as u128)
    }
}

impl From<usize> for Nat {
    fn from(n: usize) -> Self {
        Nat(n as u128)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::check_laws;

    #[test]
    fn nat_is_a_semiring() {
        let samples = [Nat(0), Nat(1), Nat(2), Nat(7), Nat(100)];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Nat(2).plus(&Nat(3)), Nat(5));
        assert_eq!(Nat(2).times(&Nat(3)), Nat(6));
        assert_eq!(Nat(9).pow(2), Nat(81));
        assert_eq!(Nat(2).pow(10), Nat(1024));
        assert_eq!(Nat(0).pow(0), Nat(1));
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn multiplication_overflow_panics() {
        let big = Nat(u128::MAX / 2);
        let _ = big.times(&Nat(3));
    }

    #[test]
    fn sum_product() {
        assert_eq!(Nat::sum([Nat(1), Nat(2), Nat(3)]), Nat(6));
        assert_eq!(Nat::product([Nat(2), Nat(3), Nat(4)]), Nat(24));
    }

    #[test]
    fn conversions() {
        assert_eq!(Nat::from(5u32), Nat(5));
        assert_eq!(Nat::from(5u64), Nat(5));
        assert_eq!(Nat::from(5usize), Nat(5));
        assert_eq!(Nat::new(5u64).value(), 5);
    }
}
