//! The provenance hierarchy between ℕ\[X\] and Why(X): `Trio(X)` (bags of
//! witness sets) and `𝔹[X]` (polynomials with Boolean coefficients).
//!
//! Together with [`crate::NatPoly`], [`crate::Why`], [`crate::PosBool`]
//! and [`crate::Lineage`], these form the classical hierarchy of
//! provenance semirings, ordered by the surjective homomorphisms
//! implemented in [`collapse`]:
//!
//! ```text
//!            ℕ\[X\]
//!           /    \
//!      𝔹\[X\]      Trio(X)
//!           \    /
//!           Why(X)
//!          /      \
//!   PosBool(X)   Lineage(X)
//!          \      /
//!             𝔹
//! ```
//!
//! (PosBool and Lineage are *incomparable* quotients of Why: absorption
//! in PosBool discards witnesses whose tokens Lineage must keep, so
//! there is no homomorphism PosBool → Lineage — a fact our tests pin.)
//!
//! Every collapse commutes with query evaluation (Theorem 1), so a
//! single ℕ\[X\] run yields all coarser provenance notions for free.

use crate::nat::Nat;
use crate::poly::{Monomial, NatPoly};
use crate::semiring::Semiring;
use crate::var::Var;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

type Witness = BTreeSet<Var>;

/// The Trio semiring `Trio(X)`: *bags* of witness sets — like
/// [`crate::Why`] but remembering how many derivations produce each
/// witness (drops exponents from ℕ\[X\], keeps coefficients).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Trio {
    bags: BTreeMap<Witness, Nat>,
}

impl Trio {
    /// A single token with multiplicity 1.
    pub fn var(v: Var) -> Self {
        let mut bags = BTreeMap::new();
        bags.insert(BTreeSet::from([v]), Nat::ONE);
        Trio { bags }
    }

    /// Iterate `(witness, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Witness, Nat)> + '_ {
        self.bags.iter().map(|(w, &n)| (w, n))
    }

    fn insert(bags: &mut BTreeMap<Witness, Nat>, w: Witness, n: Nat) {
        if n.is_zero() {
            return;
        }
        use std::collections::btree_map::Entry;
        match bags.entry(w) {
            Entry::Vacant(e) => {
                e.insert(n);
            }
            Entry::Occupied(mut e) => {
                let m = e.get().plus(&n);
                *e.get_mut() = m;
            }
        }
    }
}

impl Semiring for Trio {
    fn zero() -> Self {
        Trio::default()
    }

    fn one() -> Self {
        let mut bags = BTreeMap::new();
        bags.insert(Witness::new(), Nat::ONE);
        Trio { bags }
    }

    fn plus(&self, other: &Self) -> Self {
        let mut bags = self.bags.clone();
        for (w, &n) in &other.bags {
            Trio::insert(&mut bags, w.clone(), n);
        }
        Trio { bags }
    }

    fn times(&self, other: &Self) -> Self {
        let mut bags = BTreeMap::new();
        for (wa, &na) in &self.bags {
            for (wb, &nb) in &other.bags {
                let w: Witness = wa.union(wb).copied().collect();
                Trio::insert(&mut bags, w, na.times(&nb));
            }
        }
        Trio { bags }
    }

    fn is_zero(&self) -> bool {
        self.bags.is_empty()
    }
}

impl fmt::Debug for Trio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")?;
        Ok(())
    }
}

impl fmt::Display for Trio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bags.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (w, n) in &self.bags {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if !n.is_one() {
                write!(f, "{n}·")?;
            }
            write!(f, "{{")?;
            let mut fv = true;
            for v in w {
                if !fv {
                    write!(f, ",")?;
                }
                fv = false;
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// The semiring `𝔹[X]` of polynomials with Boolean coefficients: sets of
/// monomials (drops coefficients from ℕ\[X\], keeps exponents).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BoolPoly {
    monomials: BTreeSet<Monomial>,
}

impl BoolPoly {
    /// A single variable.
    pub fn var(v: Var) -> Self {
        let mut monomials = BTreeSet::new();
        monomials.insert(Monomial::var(v));
        BoolPoly { monomials }
    }

    /// Iterate the monomials.
    pub fn iter(&self) -> impl Iterator<Item = &Monomial> + '_ {
        self.monomials.iter()
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.monomials.len()
    }
}

impl Semiring for BoolPoly {
    fn zero() -> Self {
        BoolPoly::default()
    }

    fn one() -> Self {
        let mut monomials = BTreeSet::new();
        monomials.insert(Monomial::unit());
        BoolPoly { monomials }
    }

    fn plus(&self, other: &Self) -> Self {
        BoolPoly {
            monomials: self.monomials.union(&other.monomials).cloned().collect(),
        }
    }

    fn times(&self, other: &Self) -> Self {
        let mut monomials = BTreeSet::new();
        for a in &self.monomials {
            for b in &other.monomials {
                monomials.insert(a.times(b));
            }
        }
        BoolPoly { monomials }
    }

    fn is_zero(&self) -> bool {
        self.monomials.is_empty()
    }
}

impl fmt::Debug for BoolPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BoolPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.monomials.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for m in &self.monomials {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

/// The surjective homomorphisms ("collapses") of the provenance
/// hierarchy. Each is a [`crate::SemiringHom`] via [`crate::FnHom`];
/// the `theorems` integration tests verify the homomorphism laws and
/// the commutation with query evaluation for every collapse.
pub mod collapse {
    use super::*;
    use crate::posbool::PosBool;
    use crate::why::{Lineage, Why};

    /// ℕ\[X\] → 𝔹\[X\]: drop coefficients.
    pub fn natpoly_to_boolpoly(p: &NatPoly) -> BoolPoly {
        BoolPoly {
            monomials: p.iter().map(|(m, _)| m.clone()).collect(),
        }
    }

    /// ℕ\[X\] → Trio(X): drop exponents (merging monomials with the same
    /// variable set, adding coefficients).
    pub fn natpoly_to_trio(p: &NatPoly) -> Trio {
        let mut bags = BTreeMap::new();
        for (m, c) in p.iter() {
            Trio::insert(&mut bags, m.support_set(), c);
        }
        Trio { bags }
    }

    /// 𝔹\[X\] → Why(X): drop exponents.
    pub fn boolpoly_to_why(p: &BoolPoly) -> Why {
        Why::from_witnesses(p.iter().map(|m| m.support_set()))
    }

    /// Trio(X) → Why(X): drop coefficients.
    pub fn trio_to_why(t: &Trio) -> Why {
        Why::from_witnesses(t.iter().map(|(w, _)| w.iter().copied()))
    }

    /// ℕ\[X\] → Why(X): drop both (the diamond commutes; tested).
    pub fn natpoly_to_why(p: &NatPoly) -> Why {
        Why::from_witnesses(p.iter().map(|(m, _)| m.support_set()))
    }

    /// Why(X) → PosBool(X): absorb non-minimal witnesses.
    pub fn why_to_posbool(w: &Why) -> PosBool {
        PosBool::from_clauses(w.witnesses().map(|c| c.iter().copied()))
    }

    /// ℕ\[X\] → PosBool(X): the composite used by §5's incomplete-data
    /// representation ("the obvious homomorphism").
    pub fn natpoly_to_posbool(p: &NatPoly) -> PosBool {
        PosBool::from_clauses(p.iter().map(|(m, _)| m.support_set()))
    }

    /// Why(X) → Lineage(X): union all witnesses (⊥ for the empty set).
    ///
    /// Note this factors through *Why*, not PosBool: PosBool's
    /// absorption (`true + x = true`) discards the token `x` that
    /// Lineage must retain, so no homomorphism PosBool → Lineage
    /// exists (see the module-level hierarchy diagram).
    pub fn why_to_lineage(w: &Why) -> Lineage {
        if w.is_zero() {
            return Lineage::bottom();
        }
        Lineage::from_tokens(w.witnesses().flatten().copied())
    }

    /// ℕ\[X\] → Lineage(X): the composite through Why.
    pub fn natpoly_to_lineage(p: &NatPoly) -> Lineage {
        why_to_lineage(&natpoly_to_why(p))
    }
}

#[cfg(test)]
mod tests {
    use super::collapse::*;
    use super::*;
    use crate::hom::{assert_hom_laws, FnHom};
    use crate::semiring::laws::check_laws;
    use crate::var::vars;

    fn poly_samples() -> Vec<NatPoly> {
        let [x, y] = vars(["tr_x", "tr_y"]);
        let (px, py) = (NatPoly::var(x), NatPoly::var(y));
        vec![
            NatPoly::zero(),
            NatPoly::one(),
            px.clone(),
            px.plus(&py),
            px.times(&px).plus(&NatPoly::constant(2u32).times(&py)),
            px.times(&py),
        ]
    }

    #[test]
    fn trio_is_a_semiring() {
        let samples: Vec<Trio> = poly_samples().iter().map(natpoly_to_trio).collect();
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn boolpoly_is_a_semiring() {
        let samples: Vec<BoolPoly> = poly_samples().iter().map(natpoly_to_boolpoly).collect();
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn all_collapses_are_homomorphisms() {
        let polys = poly_samples();
        assert_hom_laws(&FnHom::new(natpoly_to_boolpoly), &polys);
        assert_hom_laws(&FnHom::new(natpoly_to_trio), &polys);
        assert_hom_laws(&FnHom::new(natpoly_to_why), &polys);
        assert_hom_laws(&FnHom::new(natpoly_to_posbool), &polys);
        let bps: Vec<BoolPoly> = polys.iter().map(natpoly_to_boolpoly).collect();
        assert_hom_laws(&FnHom::new(boolpoly_to_why), &bps);
        let trios: Vec<Trio> = polys.iter().map(natpoly_to_trio).collect();
        assert_hom_laws(&FnHom::new(trio_to_why), &trios);
        let whys: Vec<crate::Why> = polys.iter().map(natpoly_to_why).collect();
        assert_hom_laws(&FnHom::new(why_to_posbool), &whys);
        assert_hom_laws(&FnHom::new(why_to_lineage), &whys);
        assert_hom_laws(&FnHom::new(natpoly_to_lineage), &polys);
    }

    #[test]
    fn posbool_to_lineage_is_not_a_homomorphism() {
        // Pin the counterexample: in PosBool, true + x = true
        // (absorption), so any additive map to Lineage would need
        // h(true) = h(true) + h(x), i.e. {} = {x}. Contradiction.
        use crate::posbool::PosBool;
        use crate::why::Lineage;
        let x = PosBool::var_named("nl_x");
        let lhs = PosBool::tt().plus(&x); // = true by absorption
        assert_eq!(lhs, PosBool::tt());
        // Whereas through Why the witness {x} survives:
        let wx = crate::Why::var(crate::Var::new("nl_x"));
        let w = crate::Why::one().plus(&wx);
        assert_eq!(
            why_to_lineage(&w),
            Lineage::from_tokens([crate::Var::new("nl_x")])
        );
    }

    #[test]
    fn hierarchy_diamond_commutes() {
        for p in poly_samples() {
            let via_boolpoly = boolpoly_to_why(&natpoly_to_boolpoly(&p));
            let via_trio = trio_to_why(&natpoly_to_trio(&p));
            let direct = natpoly_to_why(&p);
            assert_eq!(via_boolpoly, direct, "𝔹[X] route for {p}");
            assert_eq!(via_trio, direct, "Trio route for {p}");
        }
    }

    #[test]
    fn trio_distinguishes_multiplicity_why_does_not() {
        // 2x vs x: distinct in Trio, identical in Why.
        let [x] = vars(["tm_x"]);
        let two_x: NatPoly = NatPoly::var(x).plus(&NatPoly::var(x));
        let one_x = NatPoly::var(x);
        assert_ne!(natpoly_to_trio(&two_x), natpoly_to_trio(&one_x));
        assert_eq!(natpoly_to_why(&two_x), natpoly_to_why(&one_x));
    }

    #[test]
    fn boolpoly_distinguishes_exponent_trio_does_not() {
        // x² vs x: distinct in 𝔹[X], identical in Trio.
        let [x] = vars(["te_x"]);
        let x2 = NatPoly::var(x).times(&NatPoly::var(x));
        let x1 = NatPoly::var(x);
        assert_ne!(natpoly_to_boolpoly(&x2), natpoly_to_boolpoly(&x1));
        assert_eq!(natpoly_to_trio(&x2), natpoly_to_trio(&x1));
    }

    #[test]
    fn display_forms() {
        let [x, y] = vars(["td_x", "td_y"]);
        let p: NatPoly = "2*td_x + td_x*td_y".parse().unwrap();
        assert_eq!(natpoly_to_trio(&p).to_string(), "2·{td_x} + {td_x,td_y}");
        assert_eq!(natpoly_to_boolpoly(&p).to_string(), "td_x + td_x*td_y");
        let _ = (x, y);
    }
}
