//! The tropical and Viterbi semirings — classic annotation structures
//! mentioned throughout the semiring-provenance literature; included as
//! further instances exercising the framework (cost of the cheapest
//! derivation, probability of the likeliest derivation).

use crate::semiring::Semiring;
use std::fmt;

/// The tropical semiring `(ℕ ∪ {∞}, min, +, ∞, 0)`.
///
/// Annotating source items with costs, a query answer's annotation is
/// the cost of its *cheapest derivation*: `+` picks the cheaper
/// alternative, `·` sums the costs of jointly used inputs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Tropical {
    /// A finite cost.
    Cost(u64),
    /// Unreachable / absent (the semiring `0`).
    Infinity,
}

impl Tropical {
    /// Finite cost constructor.
    pub fn cost(c: u64) -> Self {
        Tropical::Cost(c)
    }

    /// The finite cost, if any.
    pub fn as_cost(self) -> Option<u64> {
        match self {
            Tropical::Cost(c) => Some(c),
            Tropical::Infinity => None,
        }
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical::Infinity
    }

    fn one() -> Self {
        Tropical::Cost(0)
    }

    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, x) | (x, Tropical::Infinity) => *x,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(*a.min(b)),
        }
    }

    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Tropical::Infinity, _) | (_, Tropical::Infinity) => Tropical::Infinity,
            (Tropical::Cost(a), Tropical::Cost(b)) => Tropical::Cost(
                a.checked_add(*b)
                    .expect("tropical cost addition overflowed u64"),
            ),
        }
    }
}

impl fmt::Debug for Tropical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tropical::Cost(c) => write!(f, "{c}"),
            Tropical::Infinity => write!(f, "∞"),
        }
    }
}

impl fmt::Display for Tropical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The Viterbi semiring `([0,1], max, ·, 0, 1)`: the probability of the
/// most likely derivation.
///
/// A newtype over `f64` restricted to `[0,1]`; `Eq`/`Ord`/`Hash` are
/// total because NaN and out-of-range values are rejected at
/// construction, giving the canonical-value property [`Semiring`]
/// requires.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Prob(f64);

impl Prob {
    /// Construct from a probability in `[0,1]`; panics outside the range
    /// (these values annotate data — an out-of-range probability is a
    /// caller bug, not a recoverable state).
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        Prob(p)
    }

    /// The inner probability.
    pub fn value(self) -> f64 {
        self.0
    }
}

// Prob contains no NaN by construction, so the partial orders are total.
impl Eq for Prob {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Prob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("Prob is NaN-free by construction")
    }
}

impl std::hash::Hash for Prob {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // 0.0 and -0.0 compare equal; normalize before hashing.
        let bits = if self.0 == 0.0 {
            0u64
        } else {
            self.0.to_bits()
        };
        bits.hash(state);
    }
}

impl Semiring for Prob {
    fn zero() -> Self {
        Prob(0.0)
    }

    fn one() -> Self {
        Prob(1.0)
    }

    fn plus(&self, other: &Self) -> Self {
        Prob(self.0.max(other.0))
    }

    fn times(&self, other: &Self) -> Self {
        Prob(self.0 * other.0)
    }
}

impl fmt::Debug for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The arctic semiring `(ℕ ∪ {-∞}, max, +, -∞, 0)`: the cost of the
/// *most expensive* derivation (critical paths, worst-case resource
/// accounting) — the order-dual of [`Tropical`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Arctic {
    /// Unreachable / absent (the semiring `0`).
    NegInfinity,
    /// A finite value.
    Value(u64),
}

impl Arctic {
    /// Finite value constructor.
    pub fn value(v: u64) -> Self {
        Arctic::Value(v)
    }

    /// The finite value, if any.
    pub fn as_value(self) -> Option<u64> {
        match self {
            Arctic::Value(v) => Some(v),
            Arctic::NegInfinity => None,
        }
    }
}

impl Semiring for Arctic {
    fn zero() -> Self {
        Arctic::NegInfinity
    }

    fn one() -> Self {
        Arctic::Value(0)
    }

    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Arctic::NegInfinity, x) | (x, Arctic::NegInfinity) => *x,
            (Arctic::Value(a), Arctic::Value(b)) => Arctic::Value(*a.max(b)),
        }
    }

    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Arctic::NegInfinity, _) | (_, Arctic::NegInfinity) => Arctic::NegInfinity,
            (Arctic::Value(a), Arctic::Value(b)) => Arctic::Value(
                a.checked_add(*b)
                    .expect("arctic value addition overflowed u64"),
            ),
        }
    }
}

impl fmt::Debug for Arctic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arctic::Value(v) => write!(f, "{v}"),
            Arctic::NegInfinity => write!(f, "-∞"),
        }
    }
}

impl fmt::Display for Arctic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The fuzzy semiring `([0,1], max, min, 0, 1)`: Gödel fuzzy logic — a
/// distributive lattice on the unit interval (so Prop 3 applies to it).
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Fuzzy(f64);

impl Fuzzy {
    /// Construct from a membership degree in `[0,1]`; panics outside.
    pub fn new(v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "fuzzy degree {v} outside [0,1]");
        Fuzzy(v)
    }

    /// The inner degree.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Eq for Fuzzy {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Fuzzy {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("Fuzzy is NaN-free by construction")
    }
}

impl std::hash::Hash for Fuzzy {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let bits = if self.0 == 0.0 {
            0u64
        } else {
            self.0.to_bits()
        };
        bits.hash(state);
    }
}

impl Semiring for Fuzzy {
    fn zero() -> Self {
        Fuzzy(0.0)
    }

    fn one() -> Self {
        Fuzzy(1.0)
    }

    fn plus(&self, other: &Self) -> Self {
        Fuzzy(self.0.max(other.0))
    }

    fn times(&self, other: &Self) -> Self {
        Fuzzy(self.0.min(other.0))
    }
}

impl fmt::Debug for Fuzzy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Fuzzy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::check_laws;

    #[test]
    fn tropical_is_a_semiring() {
        let samples = [
            Tropical::Infinity,
            Tropical::Cost(0),
            Tropical::Cost(1),
            Tropical::Cost(5),
            Tropical::Cost(100),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn tropical_cheapest_derivation() {
        // (2 + 3) alternatives with joint costs: min(2+3, 1+10) = 5
        let d1 = Tropical::Cost(2).times(&Tropical::Cost(3));
        let d2 = Tropical::Cost(1).times(&Tropical::Cost(10));
        assert_eq!(d1.plus(&d2), Tropical::Cost(5));
        assert_eq!(Tropical::Infinity.as_cost(), None);
        assert_eq!(Tropical::cost(4).as_cost(), Some(4));
    }

    #[test]
    fn viterbi_is_a_semiring() {
        let samples = [
            Prob::new(0.0),
            Prob::new(0.25),
            Prob::new(0.5),
            Prob::new(1.0),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn viterbi_most_likely_derivation() {
        let d1 = Prob::new(0.9).times(&Prob::new(0.5)); // 0.45
        let d2 = Prob::new(0.6).times(&Prob::new(0.6)); // 0.36
        assert_eq!(d1.plus(&d2), Prob::new(0.45));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn prob_rejects_out_of_range() {
        let _ = Prob::new(1.5);
    }

    #[test]
    fn arctic_is_a_semiring() {
        let samples = [
            Arctic::NegInfinity,
            Arctic::Value(0),
            Arctic::Value(3),
            Arctic::Value(10),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn arctic_most_expensive_derivation() {
        let d1 = Arctic::value(2).times(&Arctic::value(3)); // 5
        let d2 = Arctic::value(4).times(&Arctic::value(4)); // 8
        assert_eq!(d1.plus(&d2), Arctic::value(8));
        assert_eq!(Arctic::NegInfinity.as_value(), None);
    }

    #[test]
    fn fuzzy_is_a_distributive_lattice_semiring() {
        let samples = [
            Fuzzy::new(0.0),
            Fuzzy::new(0.3),
            Fuzzy::new(0.7),
            Fuzzy::new(1.0),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    check_laws(a, b, c);
                }
            }
        }
        // idempotence (lattice)
        for a in samples {
            assert_eq!(a.plus(&a), a);
            assert_eq!(a.times(&a), a);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn fuzzy_rejects_out_of_range() {
        let _ = Fuzzy::new(-0.1);
    }

    #[test]
    fn prob_zero_normalizes_negative_zero_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |p: Prob| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(Prob::new(0.0)), h(Prob(-0.0)));
    }
}
