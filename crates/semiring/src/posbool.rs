//! Positive Boolean expressions `PosBool(B)` (§5).
//!
//! The semiring `(PosBool(B), ∨, ∧, false, true)` of positive boolean
//! expressions over a set `B` of variables, *identifying expressions
//! which yield the same truth value for all Boolean assignments* (the
//! paper's footnote 8). `PosBool(B)`-UXML is the XML analogue of the
//! Boolean c-tables of Imieliński–Lipski and is a strong representation
//! system for UXQuery on ordinary (B-)UXML.
//!
//! # Canonical form
//!
//! Positive (monotone) boolean functions are in bijection with
//! *antichains* of variable sets: the irredundant monotone DNF, i.e. the
//! set of minimal satisfying assignments. We store exactly that:
//! a `BTreeSet` of clauses (each a `BTreeSet<Var>`) such that no clause
//! is a subset of another. This makes semantic equivalence coincide with
//! structural equality, as the `Semiring` contract requires:
//! `x ∨ (x ∧ y) = x` holds by construction (absorption).

use crate::semiring::Semiring;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;

type Clause = BTreeSet<Var>;

/// A positive boolean expression in canonical irredundant DNF.
///
/// `false` is the empty set of clauses; `true` is the single empty
/// clause. `∨` is union followed by minimization; `∧` is pairwise
/// clause union followed by minimization.
///
/// ```
/// use axml_semiring::{PosBool, Semiring, Var};
/// let x = PosBool::var(Var::new("pb_doc_x"));
/// let y = PosBool::var(Var::new("pb_doc_y"));
/// // absorption: x ∨ (x ∧ y) = x
/// assert_eq!(x.plus(&x.times(&y)), x);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PosBool {
    clauses: BTreeSet<Clause>,
}

impl PosBool {
    /// The constant `false` (semiring 0).
    pub fn ff() -> Self {
        PosBool::default()
    }

    /// The constant `true` (semiring 1).
    pub fn tt() -> Self {
        let mut clauses = BTreeSet::new();
        clauses.insert(Clause::new());
        PosBool { clauses }
    }

    /// A single variable.
    pub fn var(v: Var) -> Self {
        let mut clause = Clause::new();
        clause.insert(v);
        let mut clauses = BTreeSet::new();
        clauses.insert(clause);
        PosBool { clauses }
    }

    /// A single variable, interned by name.
    pub fn var_named(name: &str) -> Self {
        PosBool::var(Var::new(name))
    }

    /// Build from an iterator of clauses (conjunctions of variables);
    /// the result is minimized.
    pub fn from_clauses<I, C>(clauses: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Var>,
    {
        let raw: BTreeSet<Clause> = clauses
            .into_iter()
            .map(|c| c.into_iter().collect())
            .collect();
        PosBool {
            clauses: minimize(raw),
        }
    }

    /// Number of clauses in the canonical DNF.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Iterate the canonical clauses (minimal witnesses).
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> + '_ {
        self.clauses.iter()
    }

    /// All variables mentioned.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.clauses.iter().flatten().copied().collect()
    }

    /// Evaluate under a Boolean assignment: true iff some clause has all
    /// its variables true. (Total assignment given as the set of true
    /// variables — monotone functions need nothing more.)
    pub fn eval_assignment(&self, true_vars: &BTreeSet<Var>) -> bool {
        self.clauses.iter().any(|c| c.is_subset(true_vars))
    }
}

/// A 64-bit literal fingerprint: bit `v.id() mod 64` set for every
/// variable in the clause. `d ⊆ c` implies
/// `fp(d) & !fp(c) == 0`, so a single mask test rejects most
/// non-subset pairs in O(1) before the O(|d|) `is_subset` walk.
fn fingerprint(c: &Clause) -> u64 {
    c.iter().fold(0u64, |m, v| m | 1u64 << (v.id() & 63))
}

/// Keep only ⊆-minimal clauses (the antichain / irredundant DNF).
///
/// Clauses are processed in ascending size: a strict subset is always
/// strictly smaller (the input is deduplicated), so each clause only
/// needs checking against the already-kept smaller clauses — and the
/// fingerprint mask short-circuits the pairs that cannot be subsets.
fn minimize(raw: BTreeSet<Clause>) -> BTreeSet<Clause> {
    if raw.len() <= 1 {
        return raw;
    }
    let mut items: Vec<(u64, Clause)> = raw.into_iter().map(|c| (fingerprint(&c), c)).collect();
    items.sort_by_key(|(_, c)| c.len());
    let mut keep: Vec<(u64, Clause)> = Vec::with_capacity(items.len());
    'next: for (fp, c) in items {
        for (kfp, k) in &keep {
            // k ⊆ c needs every k-bit inside fp; since |k| ≤ |c| and
            // equal clauses were deduplicated, subset ⇒ |k| < |c|.
            if kfp & !fp == 0 && k.len() < c.len() && k.is_subset(&c) {
                continue 'next;
            }
        }
        keep.push((fp, c));
    }
    keep.into_iter().map(|(_, c)| c).collect()
}

impl Semiring for PosBool {
    fn zero() -> Self {
        PosBool::ff()
    }

    fn one() -> Self {
        PosBool::tt()
    }

    /// Disjunction, minimized.
    fn plus(&self, other: &Self) -> Self {
        if self.clauses.is_empty() {
            return other.clone();
        }
        if other.clauses.is_empty() {
            return self.clone();
        }
        let union: BTreeSet<Clause> = self.clauses.union(&other.clauses).cloned().collect();
        PosBool {
            clauses: minimize(union),
        }
    }

    /// Conjunction: pairwise clause union, minimized.
    fn times(&self, other: &Self) -> Self {
        if self.clauses.is_empty() || other.clauses.is_empty() {
            return PosBool::ff();
        }
        let mut product = BTreeSet::new();
        for a in &self.clauses {
            for b in &other.clauses {
                product.insert(a.union(b).copied().collect::<Clause>());
            }
        }
        PosBool {
            clauses: minimize(product),
        }
    }

    fn is_zero(&self) -> bool {
        self.clauses.is_empty()
    }

    fn is_one(&self) -> bool {
        self.clauses.len() == 1 && self.clauses.iter().next().is_some_and(|c| c.is_empty())
    }
}

impl fmt::Debug for PosBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for PosBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "false");
        }
        if self.is_one() {
            return write!(f, "true");
        }
        let mut first_clause = true;
        for c in &self.clauses {
            if !first_clause {
                write!(f, " | ")?;
            }
            first_clause = false;
            let mut first_var = true;
            for v in c {
                if !first_var {
                    write!(f, "&")?;
                }
                first_var = false;
                write!(f, "{v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::laws::{check_laws, check_plus_idempotent};
    use crate::var::vars;

    fn samples() -> Vec<PosBool> {
        let [x, y, z] = vars(["pbs_x", "pbs_y", "pbs_z"]);
        let (px, py, pz) = (PosBool::var(x), PosBool::var(y), PosBool::var(z));
        vec![
            PosBool::ff(),
            PosBool::tt(),
            px.clone(),
            py.clone(),
            px.plus(&py),
            px.times(&py).plus(&pz),
            px.times(&py.plus(&pz)),
        ]
    }

    #[test]
    fn posbool_is_a_semiring() {
        let s = samples();
        for a in &s {
            for b in &s {
                for c in &s {
                    check_laws(a, b, c);
                }
            }
        }
    }

    #[test]
    fn plus_and_times_idempotent() {
        for a in samples() {
            check_plus_idempotent(&a);
            assert_eq!(a.times(&a), a, "∧ idempotent");
        }
    }

    #[test]
    fn absorption_is_structural() {
        let [x, y] = vars(["abs_x", "abs_y"]);
        let (px, py) = (PosBool::var(x), PosBool::var(y));
        // x ∨ (x∧y) = x
        assert_eq!(px.plus(&px.times(&py)), px);
        // (x∨y) ∧ x = x
        assert_eq!(px.plus(&py).times(&px), px);
    }

    #[test]
    fn canonical_equality_of_distributed_forms() {
        let [x, y, z] = vars(["cde_x", "cde_y", "cde_z"]);
        let (px, py, pz) = (PosBool::var(x), PosBool::var(y), PosBool::var(z));
        // x∧(y∨z) == (x∧y)∨(x∧z) structurally
        assert_eq!(px.times(&py.plus(&pz)), px.times(&py).plus(&px.times(&pz)));
    }

    #[test]
    fn semantic_equality_exhaustive() {
        // Canonical form identifies expressions agreeing on all
        // assignments: check against brute-force truth tables.
        let [x, y] = vars(["se_x", "se_y"]);
        let (px, py) = (PosBool::var(x), PosBool::var(y));
        let e1 = px.plus(&py).times(&px.plus(&py)); // (x∨y)∧(x∨y)
        let e2 = px.plus(&py);
        assert_eq!(e1, e2);
        for bits in 0..4u8 {
            let mut tv = BTreeSet::new();
            if bits & 1 != 0 {
                tv.insert(x);
            }
            if bits & 2 != 0 {
                tv.insert(y);
            }
            assert_eq!(e1.eval_assignment(&tv), e2.eval_assignment(&tv));
        }
    }

    #[test]
    fn eval_assignment_basics() {
        let [x, y] = vars(["ea_x", "ea_y"]);
        let f = PosBool::var(x).times(&PosBool::var(y));
        let mut tv = BTreeSet::new();
        assert!(!f.eval_assignment(&tv));
        tv.insert(x);
        assert!(!f.eval_assignment(&tv));
        tv.insert(y);
        assert!(f.eval_assignment(&tv));
        assert!(PosBool::tt().eval_assignment(&BTreeSet::new()));
        assert!(!PosBool::ff().eval_assignment(&tv));
    }

    #[test]
    fn display() {
        let [x, y] = vars(["d_x", "d_y"]);
        assert_eq!(PosBool::ff().to_string(), "false");
        assert_eq!(PosBool::tt().to_string(), "true");
        assert_eq!(PosBool::var(x).to_string(), "d_x");
        assert_eq!(
            PosBool::var(x).times(&PosBool::var(y)).to_string(),
            "d_x&d_y"
        );
        assert_eq!(
            PosBool::var(x).plus(&PosBool::var(y)).to_string(),
            "d_x | d_y"
        );
    }

    #[test]
    fn minimize_agrees_with_allpairs_reference_under_collisions() {
        // 130 variables guarantee fingerprint-bit collisions (64-bit
        // masks); randomized clause sets pin the pruned minimize to
        // the naive all-pairs reference, including the empty clause
        // (`true`), which must absorb everything.
        let vs: Vec<Var> = (0..130).map(|i| Var::new(&format!("mmz_{i}"))).collect();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        for _ in 0..100 {
            let mut raw: BTreeSet<Clause> = BTreeSet::new();
            for _ in 0..(1 + rnd() % 12) {
                let mut c = Clause::new();
                for _ in 0..(rnd() % 5) {
                    c.insert(vs[(rnd() % 130) as usize]);
                }
                raw.insert(c);
            }
            let slow: BTreeSet<Clause> = raw
                .iter()
                .filter(|c| !raw.iter().any(|d| d != *c && d.is_subset(c)))
                .cloned()
                .collect();
            let fast = minimize(raw);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn from_clauses_minimizes() {
        let [x, y] = vars(["fc_x", "fc_y"]);
        let f = PosBool::from_clauses([vec![x], vec![x, y]]);
        assert_eq!(f, PosBool::var(x));
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn variables_collects() {
        let [x, y, z] = vars(["vc_x", "vc_y", "vc_z"]);
        let f = PosBool::from_clauses([vec![x, y], vec![z]]);
        assert_eq!(f.variables(), BTreeSet::from([x, y, z]));
    }
}
