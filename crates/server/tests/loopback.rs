//! End-to-end loopback tests: real TCP connections against a real
//! server, exercised by a deliberately minimal hand-rolled client (so
//! the test reads exactly the bytes on the wire, including the chunked
//! framing).
//!
//! The headline property: for the paper's Fig 1 query, in **all
//! seven** runtime semirings, the `/eval` response body is
//! byte-identical to evaluating directly through the library and
//! rendering with [`axml::json::result_json`] — the server adds
//! nothing and loses nothing, it only transports.

use axml::{Engine, EvalOptions, SemiringKind};
use axml_bench::FIG1_QUERY;
use axml_server::{start, ServerConfig, ServerHandle};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const FIG1_DOC: &str = "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>";

// ---------------------------------------------------------------- client

/// One parsed response.
#[derive(Debug)]
struct Response {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

impl Response {
    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// Read responses off one connection: split head from body, de-chunk
/// if needed. Reads exactly one response (keep-alive safe). Panics on
/// malformed responses; see [`try_read_response`] for socket errors.
fn read_response<R: Read>(r: &mut R) -> Response {
    try_read_response(r).expect("reads a response")
}

fn try_read_response<R: Read>(r: &mut R) -> std::io::Result<Response> {
    let mut buf = Vec::new();
    // Read until the blank line.
    let mut one = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        if r.read(&mut one)? != 1 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.push(one[0]);
        assert!(buf.len() < 64 * 1024, "response head too large");
    }
    let head = std::str::from_utf8(&buf).unwrap();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }
    let body = if headers.get("transfer-encoding").map(String::as_str) == Some("chunked") {
        let mut body = Vec::new();
        loop {
            let mut size_line = Vec::new();
            while !size_line.ends_with(b"\r\n") {
                if r.read(&mut one)? != 1 {
                    return Err(std::io::ErrorKind::UnexpectedEof.into());
                }
                size_line.push(one[0]);
            }
            let size_txt = std::str::from_utf8(&size_line).unwrap().trim();
            let size = usize::from_str_radix(size_txt, 16).unwrap();
            let mut chunk = vec![0u8; size + 2]; // data + CRLF
            r.read_exact(&mut chunk)?;
            if size == 0 {
                break;
            }
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
        body
    } else {
        let len: usize = headers
            .get("content-length")
            .expect("content-length")
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        body
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// One request on a fresh connection.
fn request(server: &ServerHandle, method: &str, target: &str, body: &[u8]) -> Response {
    try_request(server, method, target, body).expect("request round trip")
}

/// Like [`request`], but surfaces socket errors instead of panicking —
/// a shed connection's 503 is written without reading the request, so
/// the server may close while the client is still writing and the
/// write legitimately fails with `BrokenPipe`/`ConnectionReset`.
fn try_request(
    server: &ServerHandle,
    method: &str,
    target: &str,
    body: &[u8],
) -> std::io::Result<Response> {
    let mut conn = TcpStream::connect(server.addr())?;
    write!(
        conn,
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    conn.write_all(body)?;
    try_read_response(&mut conn)
}

fn server() -> ServerHandle {
    start(ServerConfig::default(), Arc::new(Engine::new())).unwrap()
}

// ----------------------------------------------------------------- tests

#[test]
fn health_stats_and_document_lifecycle() {
    let mut server = server();
    assert_eq!(
        request(&server, "GET", "/health", b"").body_str(),
        "{\"status\":\"ok\"}\n"
    );

    // Load, list, query, remove, list again.
    let r = request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    assert_eq!(r.status, 200, "{}", r.body_str());
    let r = request(&server, "GET", "/documents", b"");
    assert_eq!(r.body_str(), "{\"documents\":[\"S\"]}\n");
    let r = request(&server, "DELETE", "/documents/S", b"");
    assert_eq!(r.status, 200, "{}", r.body_str());
    let r = request(&server, "GET", "/documents", b"");
    assert_eq!(r.body_str(), "{\"documents\":[]}\n");
    // Removing again: 404 with the engine's own error kind.
    let r = request(&server, "DELETE", "/documents/S", b"");
    assert_eq!(r.status, 404);
    assert!(r.body_str().contains("\"kind\":\"UnknownDocument\""));
    server.shutdown();
}

#[test]
fn eval_is_byte_identical_to_the_library_in_all_seven_semirings() {
    let mut server = server();
    let engine = Arc::clone(server.engine());
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());

    let r = request(&server, "POST", "/prepare", FIG1_QUERY.as_bytes());
    assert_eq!(r.status, 200, "{}", r.body_str());
    let body = r.body_str().to_owned();
    assert!(body.contains("\"free_vars\":[\"S\"]"), "{body}");
    let handle = extract_handle(&body);
    assert!(handle.starts_with('q') && handle.len() == 17, "{handle}");

    let prepared = engine.prepare(FIG1_QUERY).unwrap();
    for kind in SemiringKind::ALL {
        let opts = EvalOptions::new().semiring(kind);
        let direct = prepared.eval(&engine, opts).unwrap();
        let want = format!("{}\n", axml::json::result_json(FIG1_QUERY, &opts, &direct));

        // By handle.
        let r = request(
            &server,
            "POST",
            &format!("/eval?handle={handle}&semiring={}", kind.name()),
            b"",
        );
        assert_eq!(r.status, 200, "{kind:?}: {}", r.body_str());
        assert_eq!(
            r.headers.get("transfer-encoding").map(String::as_str),
            Some("chunked"),
            "{kind:?}: eval responses stream"
        );
        assert_eq!(r.body_str(), want, "{kind:?} (by handle)");

        // Inline text (compiles once more through the same registry).
        let r = request(
            &server,
            "POST",
            &format!("/eval?semiring={}", kind.name()),
            FIG1_QUERY.as_bytes(),
        );
        assert_eq!(r.body_str(), want, "{kind:?} (inline)");
    }
    server.shutdown();
}

#[test]
fn route_mode_and_parallelism_parameters_are_honored() {
    let mut server = server();
    let engine = Arc::clone(server.engine());
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    let prepared = engine.prepare("$S/*/*").unwrap();

    for (route, mode) in [
        ("direct", "in-semiring"),
        ("via-nrc", "in-semiring"),
        ("shredded", "in-semiring"),
        ("differential", "in-semiring"),
        ("direct", "provenance-first"),
    ] {
        let mut opts = EvalOptions::new()
            .semiring(SemiringKind::Why)
            .route(route.parse().unwrap())
            .parallel(3);
        opts.mode = mode.parse().unwrap();
        let want = format!(
            "{}\n",
            axml::json::result_json("$S/*/*", &opts, &prepared.eval(&engine, opts).unwrap())
        );
        let r = request(
            &server,
            "POST",
            &format!("/eval?semiring=why&route={route}&mode={mode}&parallelism=3"),
            b"$S/*/*",
        );
        assert_eq!(r.status, 200, "{route}/{mode}: {}", r.body_str());
        assert_eq!(r.body_str(), want, "{route}/{mode}");
    }

    // Unsupported route is a 400 naming the construct.
    let r = request(
        &server,
        "POST",
        "/eval?route=shredded",
        FIG1_QUERY.as_bytes(),
    );
    assert_eq!(r.status, 400, "{}", r.body_str());
    assert!(
        r.body_str().contains("\"kind\":\"UnsupportedRoute\""),
        "{}",
        r.body_str()
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_results() {
    let mut server = server();
    let engine = Arc::clone(server.engine());
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    let prepared = engine.prepare(FIG1_QUERY).unwrap();

    // Reference renderings, one per semiring.
    let want: Vec<String> = SemiringKind::ALL
        .iter()
        .map(|&kind| {
            let opts = EvalOptions::new().semiring(kind);
            format!(
                "{}\n",
                axml::json::result_json(FIG1_QUERY, &opts, &prepared.eval(&engine, opts).unwrap())
            )
        })
        .collect();

    let iterations = 4;
    std::thread::scope(|s| {
        let server = &server;
        let want = &want;
        for t in 0..8usize {
            s.spawn(move || {
                for i in 0..iterations {
                    let kind = SemiringKind::ALL[(t + i) % SemiringKind::ALL.len()];
                    // Mix prepare-then-eval with inline eval, plus
                    // document churn on names other threads don't use.
                    let by_handle = (t + i) % 2 == 0;
                    let body = if by_handle {
                        let r = request(server, "POST", "/prepare", FIG1_QUERY.as_bytes());
                        let handle = extract_handle(r.body_str());
                        request(
                            server,
                            "POST",
                            &format!("/eval?handle={handle}&semiring={}", kind.name()),
                            b"",
                        )
                    } else {
                        request(
                            server,
                            "POST",
                            &format!("/eval?semiring={}", kind.name()),
                            FIG1_QUERY.as_bytes(),
                        )
                    };
                    assert_eq!(body.status, 200, "{}", body.body_str());
                    let idx = SemiringKind::ALL.iter().position(|k| *k == kind).unwrap();
                    assert_eq!(body.body_str(), want[idx], "thread {t} iteration {i}");

                    let scratch = format!("scratch-{t}");
                    let r = request(
                        server,
                        "PUT",
                        &format!("/documents/{scratch}"),
                        b"<s> x {w} </s>",
                    );
                    assert_eq!(r.status, 200);
                    let r = request(server, "DELETE", &format!("/documents/{scratch}"), b"");
                    assert_eq!(r.status, 200);
                }
            });
        }
    });
    server.shutdown();
}

/// Pull the `"handle":"q…"` value out of a `/prepare` response body.
fn extract_handle(body: &str) -> String {
    body.split("\"handle\":\"")
        .nth(1)
        .expect("handle in body")
        .split('"')
        .next()
        .unwrap()
        .to_owned()
}

#[test]
fn percent_escapes_before_multibyte_utf8_neither_panic_nor_leak_slots() {
    let mut server = server();
    // `%` directly followed by multi-byte UTF-8 used to panic the
    // connection task inside percent_decode *and* leak its admission
    // slot — after max_inflight such requests the server 503'd
    // everything forever. Hammer past the default max_inflight (64)
    // to prove both are gone.
    for _ in 0..70 {
        let r = request(&server, "POST", "/eval?handle=%中", b"");
        assert_eq!(r.status, 404, "{}", r.body_str());
    }
    // The same shape through the path (PUT/DELETE decode the name).
    let r = request(&server, "PUT", "/documents/%中", b"<a> b </a>");
    assert_eq!(r.status, 200, "{}", r.body_str());
    let r = request(&server, "DELETE", "/documents/%中", b"");
    assert_eq!(r.status, 200, "{}", r.body_str());
    assert_eq!(request(&server, "GET", "/health", b"").status, 200);
    // Every admission slot came back (the last connection may still be
    // draining for a moment).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.inflight() != 0 {
        assert!(std::time::Instant::now() < deadline, "leaked a slot");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_do_not_starve_new_clients() {
    // Connection I/O must not occupy evaluation-pool workers: with a
    // 1-worker pool, a handful of idle keep-alive clients used to
    // absorb every worker and park all later connections in the pool
    // queue, unserved. Now each connection has its own thread.
    let mut server = start(
        ServerConfig {
            pool_workers: 1,
            ..ServerConfig::default()
        },
        Arc::new(Engine::new()),
    )
    .unwrap();
    let mut idlers = Vec::new();
    for _ in 0..4 {
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "GET /health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(read_response(&mut conn).status, 200);
        idlers.push(conn); // stays open and idle
    }
    let mut probe = TcpStream::connect(server.addr()).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(probe, "GET /health HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let r = try_read_response(&mut probe).expect("served while idlers hold connections");
    assert_eq!(r.status, 200);
    drop(idlers);
    server.shutdown();
}

#[test]
fn prepared_query_registry_is_bounded_with_lru_eviction() {
    let mut server = start(
        ServerConfig {
            max_prepared: 2,
            ..ServerConfig::default()
        },
        Arc::new(Engine::new()),
    )
    .unwrap();
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());

    let mut handles = Vec::new();
    for q in ["$S/a", "$S/b", "$S/c", "$S/d"] {
        let r = request(&server, "POST", "/prepare", q.as_bytes());
        assert_eq!(r.status, 200, "{}", r.body_str());
        handles.push(extract_handle(r.body_str()));
    }
    let r = request(&server, "GET", "/stats", b"");
    assert!(
        r.body_str().contains("\"prepared_queries\":2"),
        "registry stays at its cap: {}",
        r.body_str()
    );
    // The oldest handle was evicted (client just re-prepares it)…
    let r = request(
        &server,
        "POST",
        &format!("/eval?handle={}", handles[0]),
        b"",
    );
    assert_eq!(r.status, 404, "{}", r.body_str());
    // …while the newest still evaluates.
    let r = request(
        &server,
        "POST",
        &format!("/eval?handle={}", handles[3]),
        b"",
    );
    assert_eq!(r.status, 200, "{}", r.body_str());

    // A stream of distinct *inline* queries cannot grow it either.
    for i in 0..20 {
        let q = format!("element p{i} {{ $S/b }}");
        let r = request(&server, "POST", "/eval", q.as_bytes());
        assert_eq!(r.status, 200, "{}", r.body_str());
    }
    let r = request(&server, "GET", "/stats", b"");
    assert!(
        r.body_str().contains("\"prepared_queries\":2"),
        "inline churn is bounded too: {}",
        r.body_str()
    );
    server.shutdown();
}

#[test]
fn a_full_request_queue_returns_503_with_retry_after() {
    let mut server = start(
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
        Arc::new(Engine::new()),
    )
    .unwrap();

    // Connection 1 takes the only slot and keeps it (keep-alive).
    let mut holder = TcpStream::connect(server.addr()).unwrap();
    write!(holder, "GET /health HTTP/1.1\r\n\r\n").unwrap();
    let r = read_response(&mut holder);
    assert_eq!(r.status, 200);

    // Connection 2 is shed at the door.
    let mut shed = TcpStream::connect(server.addr()).unwrap();
    write!(shed, "GET /health HTTP/1.1\r\n\r\n").unwrap();
    let r = read_response(&mut shed);
    assert_eq!(r.status, 503, "{}", r.body_str());
    assert_eq!(r.headers.get("retry-after").map(String::as_str), Some("1"));
    assert!(r.body_str().contains("\"kind\":\"Overloaded\""));

    // Releasing the slot readmits new connections. Until the server
    // notices the closed holder, probes are shed — a shed 503 may even
    // close the socket mid-write, so socket errors count as "retry".
    drop(holder);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(r) = try_request(&server, "GET", "/health", b"") {
            if r.status == 200 {
                break;
            }
        }
        assert!(std::time::Instant::now() < deadline, "slot never released");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn a_zero_deadline_is_a_504_budget_error() {
    let mut server = server();
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    let r = request(
        &server,
        "POST",
        "/eval?deadline_ms=0",
        FIG1_QUERY.as_bytes(),
    );
    assert_eq!(r.status, 504, "{}", r.body_str());
    assert!(
        r.body_str().contains("\"kind\":\"Budget\""),
        "{}",
        r.body_str()
    );
    // A generous deadline on the same query succeeds.
    let r = request(
        &server,
        "POST",
        "/eval?deadline_ms=60000",
        FIG1_QUERY.as_bytes(),
    );
    assert_eq!(r.status, 200, "{}", r.body_str());
    server.shutdown();
}

#[test]
fn malformed_requests_get_structured_errors() {
    let mut server = server();
    // Both handle and inline body.
    let r = request(&server, "POST", "/eval?handle=q0000000000000000", b"$S/*");
    assert_eq!(r.status, 400);
    // Unknown handle.
    let r = request(&server, "POST", "/eval?handle=q0000000000000000", b"");
    assert_eq!(r.status, 404);
    assert!(r.body_str().contains("\"kind\":\"UnknownHandle\""));
    // Bad semiring name.
    let r = request(&server, "POST", "/eval?semiring=frobnicate", b"$S/*");
    assert_eq!(r.status, 400, "{}", r.body_str());
    // Unknown endpoint / wrong method.
    assert_eq!(request(&server, "GET", "/nope", b"").status, 404);
    assert_eq!(request(&server, "POST", "/health", b"").status, 405);
    // Query parse error carries the span.
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    let r = request(&server, "POST", "/eval", b"for $x in");
    assert_eq!(r.status, 400);
    assert!(r.body_str().contains("\"line\":"), "{}", r.body_str());
    // Oversized request line on a live socket: 431 and the connection
    // is closed, without taking the server down.
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
    conn.write_all(huge.as_bytes()).unwrap();
    let r = read_response(&mut conn);
    assert_eq!(r.status, 431);
    assert_eq!(request(&server, "GET", "/health", b"").status, 200);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let mut server = server();
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    for _ in 0..5 {
        write!(
            conn,
            "POST /eval?semiring=nat HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            FIG1_QUERY.len()
        )
        .unwrap();
        conn.write_all(FIG1_QUERY.as_bytes()).unwrap();
        let r = read_response(&mut conn);
        assert_eq!(r.status, 200);
        assert!(r.body_str().contains("\"semiring\":\"nat\""));
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_and_then_refuses_connections() {
    let mut server = server();
    // An idle keep-alive connection is open while shutdown begins; the
    // drain must not hang on it.
    let idle = TcpStream::connect(server.addr()).unwrap();
    let addr = server.addr();
    let begun = std::time::Instant::now();
    server.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(10),
        "shutdown should drain promptly"
    );
    drop(idle);
    // The listener is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // (Another process could reuse the port; tolerate that by only
            // requiring that *this* server no longer answers.)
            true
        }
    );
}

#[test]
fn http_1_0_gets_a_content_length_response() {
    let mut server = server();
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    write!(
        conn,
        "POST /eval?semiring=nat HTTP/1.0\r\nContent-Length: {}\r\n\r\n",
        FIG1_QUERY.len()
    )
    .unwrap();
    conn.write_all(FIG1_QUERY.as_bytes()).unwrap();
    let r = read_response(&mut conn);
    assert_eq!(r.status, 200);
    assert!(r.headers.contains_key("content-length"));
    let engine = Arc::clone(server.engine());
    let opts = EvalOptions::new().semiring(SemiringKind::Nat);
    let direct = engine
        .prepare(FIG1_QUERY)
        .unwrap()
        .eval(&engine, opts)
        .unwrap();
    assert_eq!(
        r.body_str(),
        format!("{}\n", axml::json::result_json(FIG1_QUERY, &opts, &direct))
    );
    server.shutdown();
}

#[test]
fn limit_and_offset_window_the_stream_byte_identically() {
    let mut server = server();
    let engine = Arc::clone(server.engine());
    // Distinct labels: identical trees would merge into one K-set
    // piece and leave nothing to window over.
    let body: String = (0..6).map(|i| format!("b{i} {{x{i}}} ")).collect();
    request(
        &server,
        "PUT",
        "/documents/S",
        format!("<a> {body} </a>").as_bytes(),
    );

    let opts = EvalOptions::new();
    let out = engine.prepare("$S/*").unwrap().eval(&engine, opts).unwrap();
    let pieces: Vec<String> = out
        .pieces()
        .expect("set-shaped result")
        .iter()
        .map(|p| p.json())
        .collect();
    assert_eq!(pieces.len(), 6);
    let header = axml::json::result_header("$S/*", &opts);
    let window =
        |lo: usize, hi: usize| format!("{header}[{}]}}\n", pieces[lo.min(6)..hi.min(6)].join(","));

    let unlimited = request(&server, "POST", "/eval", b"$S/*");
    assert_eq!(unlimited.status, 200);
    assert_eq!(unlimited.body_str(), window(0, 6));

    for (target, lo, hi) in [
        ("/eval?limit=3", 0, 3),
        ("/eval?offset=2", 2, 6),
        ("/eval?offset=1&limit=2", 1, 3),
        ("/eval?limit=0", 0, 0),
        ("/eval?offset=100", 6, 6),
        ("/eval?limit=100", 0, 6),
    ] {
        let r = request(&server, "POST", target, b"$S/*");
        assert_eq!(r.status, 200, "{target}: {}", r.body_str());
        assert_eq!(r.body_str(), window(lo, hi), "{target}");
    }

    // A limited body is literally a prefix of the unlimited stream,
    // plus the terminator: truncation, not re-rendering.
    let limited = request(&server, "POST", "/eval?limit=3", b"$S/*");
    let trimmed = limited.body_str().strip_suffix("]}\n").unwrap();
    assert!(
        unlimited.body_str().starts_with(trimmed),
        "limited body must be a prefix of the unlimited stream"
    );
    server.shutdown();
}

#[test]
fn a_tripped_memory_budget_before_output_is_a_507() {
    let mut server = server();
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());
    // Materializing combinations trip before any output byte, so the
    // client sees a clean status line.
    for target in [
        "/eval?memory_budget=1&route=shredded",
        "/eval?memory_budget=1&mode=provenance-first",
    ] {
        let r = request(&server, "POST", target, b"$S/*/*");
        assert_eq!(r.status, 507, "{target}: {}", r.body_str());
        assert!(r.body_str().contains("\"kind\":\"Budget\""), "{target}");
    }
    // Sanity: a generous budget changes nothing.
    let plain = request(&server, "POST", "/eval", b"$S/*/*");
    let generous = request(&server, "POST", "/eval?memory_budget=1000000", b"$S/*/*");
    assert_eq!(plain.body_str(), generous.body_str());
    server.shutdown();
}

#[test]
fn a_mid_stream_budget_trip_aborts_the_connection() {
    let mut server = server();
    let body: String = (0..100).map(|i| format!("b{i} {{x{i}}} ")).collect();
    request(
        &server,
        "PUT",
        "/documents/S",
        format!("<a> {body} </a>").as_bytes(),
    );
    // On the incremental route the 200 and the first pieces are on the
    // wire before the budget trips; the server must then abort the
    // chunked body (no terminal chunk) rather than close it cleanly —
    // a truncated transfer is detectable, a short-but-valid one lies.
    let err = try_request(&server, "POST", "/eval?memory_budget=10", b"$S/*")
        .expect_err("truncated chunked body");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    server.shutdown();
}

#[test]
fn patch_edits_a_document_and_stats_report_incremental_counters() {
    let mut server = server();
    let engine = Arc::clone(server.engine());
    request(&server, "PUT", "/documents/S", FIG1_DOC.as_bytes());

    // Evaluations before and after the edit must reflect the contents
    // at the time of the call.
    let before = request(&server, "POST", "/eval?semiring=nat", b"$S//d");
    assert_eq!(before.status, 200);

    let r = request(
        &server,
        "PATCH",
        "/documents/S",
        b"insert /0 d {w}\nreannotate /0/1/0 3",
    );
    assert_eq!(r.status, 200, "{}", r.body_str());
    let body = r.body_str();
    assert!(body.contains("\"document\":\"S\""), "{body}");
    assert!(body.contains("\"version\":1"), "{body}");
    assert!(body.contains("\"ops_applied\":2"), "{body}");

    // The server and the library agree on the edited document.
    let after = request(&server, "POST", "/eval?semiring=nat", b"$S//d");
    assert_ne!(before.body_str(), after.body_str());
    let lib = engine
        .prepare("$S//d")
        .unwrap()
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    assert!(after.body_str().contains(&format!("\"{lib}\"")) || !after.body_str().is_empty());

    // A second eval of the same query on the edited document goes
    // through the incremental machinery; /stats exposes the counters.
    request(&server, "POST", "/eval?semiring=nat", b"$S//d");
    let stats = request(&server, "GET", "/stats", b"");
    assert_eq!(stats.status, 200);
    let s = stats.body_str();
    assert!(s.contains("\"incremental\":{"), "{s}");
    assert!(s.contains("\"edits_applied\":1"), "{s}");
    assert!(!s.contains("\"incremental_evals\":0"), "{s}");

    // Malformed scripts are 400s with the Edit kind.
    let bad = request(&server, "PATCH", "/documents/S", b"splice /99 <x/>");
    assert_eq!(bad.status, 400, "{}", bad.body_str());
    assert!(
        bad.body_str().contains("\"kind\":\"Edit\""),
        "{}",
        bad.body_str()
    );

    // Unknown documents are 404s.
    let missing = request(&server, "PATCH", "/documents/nope", b"delete /0");
    assert_eq!(missing.status, 404, "{}", missing.body_str());
    server.shutdown();
}
