//! Hostile-input tests for the bounded HTTP/1.1 parser: everything an
//! attacker controls — line lengths, header counts, body sizes, chunk
//! framing, raw byte noise — must produce a typed [`HttpError`] (or a
//! valid request), never a panic and never an unbounded allocation.

use axml_server::http::{read_request, HttpError, Limits, ReadOutcome, Request};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Cursor;

fn parse(bytes: &[u8]) -> Result<ReadOutcome, HttpError> {
    read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
}

fn parse_ok(bytes: &[u8]) -> Request {
    match parse(bytes).expect("should parse") {
        ReadOutcome::Request(r) => r,
        other => panic!("expected a request, got {other:?}"),
    }
}

#[test]
fn oversized_request_line_is_431_not_an_allocation() {
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(1 << 20));
    assert!(matches!(
        parse(huge.as_bytes()),
        Err(HttpError::HeadersTooLarge(_))
    ));
}

#[test]
fn oversized_header_line_is_431() {
    let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(1 << 20));
    assert!(matches!(
        parse(huge.as_bytes()),
        Err(HttpError::HeadersTooLarge(_))
    ));
}

#[test]
fn too_many_headers_is_431() {
    let mut req = String::from("GET / HTTP/1.1\r\n");
    for i in 0..100 {
        req.push_str(&format!("X-H{i}: v\r\n"));
    }
    req.push_str("\r\n");
    assert!(matches!(
        parse(req.as_bytes()),
        Err(HttpError::HeadersTooLarge(_))
    ));
}

#[test]
fn oversized_declared_body_is_413_before_reading_it() {
    // Content-Length far past the cap, but almost no actual bytes:
    // the parser must reject on the declaration, not try to read 1 GiB.
    let req = b"POST /eval HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\nx";
    assert!(matches!(parse(req), Err(HttpError::BodyTooLarge)));
}

#[test]
fn oversized_chunked_body_is_413_at_the_cap() {
    // Many chunks that together pass max_body.
    let mut req = Vec::from(&b"POST /eval HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..]);
    let chunk = vec![b'z'; 64 * 1024];
    for _ in 0..70 {
        req.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        req.extend_from_slice(&chunk);
        req.extend_from_slice(b"\r\n");
    }
    req.extend_from_slice(b"0\r\n\r\n");
    assert!(matches!(parse(&req), Err(HttpError::BodyTooLarge)));
}

#[test]
fn absurd_chunk_size_line_is_rejected() {
    for bad in [
        &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"[..],
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffffffffffffffff\r\n",
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\r\n",
    ] {
        assert!(
            matches!(parse(bad), Err(HttpError::Bad(_))),
            "{:?}",
            String::from_utf8_lossy(bad)
        );
    }
}

#[test]
fn truncated_requests_are_truncation_errors_not_panics() {
    for partial in [
        &b"GET / HT"[..],
        b"GET / HTTP/1.1\r\nHost: h",
        b"GET / HTTP/1.1\r\nHost: h\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab",
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n",
    ] {
        assert!(
            matches!(parse(partial), Err(HttpError::Truncated(_))),
            "{:?} → {:?}",
            String::from_utf8_lossy(partial),
            parse(partial)
        );
    }
}

#[test]
fn clean_close_before_any_byte_is_idle_not_an_error() {
    assert!(matches!(parse(b""), Ok(ReadOutcome::ClosedIdle)));
}

#[test]
fn pipelined_requests_parse_in_sequence_and_garbage_stops_the_pipeline() {
    let bytes =
        b"GET /health HTTP/1.1\r\n\r\nPOST /eval HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\x00\xff garbage";
    let mut cur = Cursor::new(bytes.to_vec());
    let limits = Limits::default();
    let first = match read_request(&mut cur, &limits).unwrap() {
        ReadOutcome::Request(r) => r,
        other => panic!("{other:?}"),
    };
    assert_eq!((first.method.as_str(), first.path()), ("GET", "/health"));
    let second = match read_request(&mut cur, &limits).unwrap() {
        ReadOutcome::Request(r) => r,
        other => panic!("{other:?}"),
    };
    assert_eq!(second.body, b"hi");
    // The trailing garbage is not a request: typed error, no panic.
    assert!(read_request(&mut cur, &limits).is_err());
}

#[test]
fn nul_bytes_and_binary_noise_in_the_request_line_are_400s() {
    for bad in [
        &b"\x00\x01\x02 / HTTP/1.1\r\n\r\n"[..],
        b"GET \xff\xfe HTTP/1.1\r\n\r\n",
        b"G\x00T / HTTP/1.1\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"GET / HTTP/1.1 extra\r\n\r\n",
        b"lowercase / HTTP/1.1\r\n\r\n",
    ] {
        assert!(
            matches!(parse(bad), Err(HttpError::Bad(_))),
            "{:?} → {:?}",
            String::from_utf8_lossy(bad),
            parse(bad)
        );
    }
}

#[test]
fn bare_lf_line_endings_are_tolerated() {
    let r = parse_ok(b"POST /eval HTTP/1.1\nContent-Length: 2\n\nok");
    assert_eq!(r.body, b"ok");
}

#[test]
fn header_values_keep_their_interior_whitespace() {
    let r = parse_ok(b"GET / HTTP/1.1\r\nX-Q: a b  c\r\n\r\n");
    assert_eq!(r.header("x-q"), Some("a b  c"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The core hardening claim: *arbitrary* byte noise never panics
    /// the parser — every input yields Ok or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(noise in vec(0u8..=255, 0..512)) {
        let _ = parse(&noise);
    }

    /// Noise *after* a valid request prefix never panics either (the
    /// keep-alive pipeline path).
    #[test]
    fn noise_after_a_valid_request_never_panics(noise in vec(0u8..=255, 0..256)) {
        let mut bytes = Vec::from(&b"GET /health HTTP/1.1\r\n\r\n"[..]);
        bytes.extend_from_slice(&noise);
        let mut cur = Cursor::new(bytes);
        let limits = Limits::default();
        let _ = read_request(&mut cur, &limits);
        let _ = read_request(&mut cur, &limits);
    }

    /// Percent-decoding is total over arbitrary Unicode — '%' followed
    /// by multi-byte characters must never panic (it used to slice the
    /// &str at a byte offset inside a character).
    #[test]
    fn percent_decode_never_panics(
        pieces in vec(proptest::sample::select(vec![
            "%", "+", "4", "F", "a", "z", "中", "\u{10348}", "é", "%%", "%e4", "%4", "",
        ]), 0..32)
    ) {
        let _ = axml_server::http::percent_decode(&pieces.concat());
    }

    /// Structured noise: CRLFs and colons sprinkled through random
    /// ASCII exercises the header state machine harder than raw bytes.
    #[test]
    fn structured_header_noise_never_panics(
        pieces in vec(proptest::sample::select(vec![
            "GET ", "/ ", "HTTP/1.1", "\r\n", "\n", ":", " ", "a", "\t",
            "Content-Length", "Transfer-Encoding", "chunked", "0", "9999999999999999999999",
        ]), 0..40)
    ) {
        let bytes: Vec<u8> = pieces.concat().into_bytes();
        let _ = parse(&bytes);
    }
}
