//! A minimal, hostile-input-hardened HTTP/1.1 reader/writer over
//! `std::io`.
//!
//! This is not a general HTTP implementation — it is the smallest
//! subset the query server needs, built with the same bounded-input
//! discipline as the workspace's document and query parsers: every
//! dimension an attacker controls (request-line length, header count
//! and size, body size, chunk framing, trailer count) has an explicit
//! cap from [`Limits`], and exceeding a cap is a typed error, never an
//! unbounded allocation. Malformed framing is rejected rather than
//! guessed at: a request carrying both `Content-Length` and
//! `Transfer-Encoding`, duplicate `Content-Length`s, non-`chunked`
//! transfer encodings, or whitespace-embedded header names (request
//! smuggling vectors) all fail with [`HttpError::Bad`].
//!
//! Reading is generic over [`BufRead`] so the hostile-input tests (and
//! the proptest that arbitrary byte noise never panics) run against
//! in-memory cursors; the server hands in a `BufReader<TcpStream>`
//! with a read timeout, which [`read_request`] reports as
//! [`ReadOutcome::TimedOutIdle`] *between* requests (the keep-alive
//! idle poll) and as a hard error *inside* one (the slow-client
//! guard).

use std::io::{BufRead, ErrorKind, Write};

/// Caps on attacker-controlled input dimensions.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Longest accepted single header line.
    pub max_header_line: usize,
    /// Most headers per request (trailers count against it too).
    pub max_header_count: usize,
    /// Largest accepted body, by `Content-Length` or summed chunks.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_header_count: 64,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// Everything that can go wrong reading one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed (or stalled past its timeout) mid-request.
    /// There is nobody coherent to answer: close the connection.
    Truncated(&'static str),
    /// Malformed request (`400 Bad Request`).
    Bad(&'static str),
    /// Request line or headers exceed [`Limits`]
    /// (`431 Request Header Fields Too Large`).
    HeadersTooLarge(&'static str),
    /// Body exceeds [`Limits::max_body`] (`413 Content Too Large`).
    BodyTooLarge,
    /// Transport failure other than the above.
    Io(ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Truncated(why) => write!(f, "truncated request: {why}"),
            HttpError::Bad(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadersTooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Io(kind) => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The status line to answer with, or `None` when the connection
    /// should just be closed (truncation / transport errors).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Bad(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge(_) => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Content Too Large")),
            HttpError::Truncated(_) | HttpError::Io(_) => None,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token, upper-case (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path plus optional `?query`).
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Headers in arrival order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (before `?`), percent-decoded per
    /// segment boundary left intact (only the raw path is returned;
    /// use [`percent_decode`] on segments).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// Decoded `key=value` pairs of the query string, in order.
    pub fn query_params(&self) -> Vec<(String, String)> {
        let Some((_, q)) = self.target.split_once('?') else {
            return Vec::new();
        };
        q.split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (percent_decode(k), percent_decode(v)),
                None => (percent_decode(kv), String::new()),
            })
            .collect()
    }

    /// First query parameter named `key`, decoded.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query_params()
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the connection should stay open after this request
    /// (HTTP/1.1 defaults to keep-alive, 1.0 to close; a `Connection`
    /// header overrides either way).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(|v| v.to_ascii_lowercase()) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Percent-decode a URL component (`%41` → `A`, `+` → space). Invalid
/// escapes pass through literally; the result is lossy-UTF-8. Works
/// on raw bytes throughout — a `%` followed by multi-byte UTF-8 (or
/// any non-hex bytes) is attacker-reachable input and must never land
/// on a `&str` slice at a non-character boundary.
pub fn percent_decode(s: &str) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => match (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                (Some(hi), Some(lo)) => {
                    out.push(hi << 4 | lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The outcome of waiting for one request on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed cleanly between requests — stop reading.
    ClosedIdle,
    /// The read timed out with no request bytes consumed — the
    /// connection is idle; the caller re-checks its shutdown flag and
    /// polls again.
    TimedOutIdle,
}

/// Read one request. Bounded everywhere (see [`Limits`]); supports
/// `Content-Length` and `chunked` bodies and tolerates up to a few
/// blank lines before the request line (clients that send an extra
/// CRLF after a body).
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<ReadOutcome, HttpError> {
    let mut consumed_any = false;
    // Request line (skipping stray leading CRLFs, bounded).
    let mut line = Vec::new();
    for _ in 0..4 {
        line = match read_line(r, limits.max_request_line, &mut consumed_any)? {
            LineOutcome::Line(l) => l,
            LineOutcome::ClosedIdle => return Ok(ReadOutcome::ClosedIdle),
            LineOutcome::TimedOutIdle => return Ok(ReadOutcome::TimedOutIdle),
        };
        if !line.is_empty() {
            break;
        }
        // A blank line is request progress only in the sense that we
        // consumed bytes; reset so a close after stray CRLFs is still
        // a clean idle close.
        consumed_any = false;
    }
    if line.is_empty() {
        return Err(HttpError::Bad("blank lines where a request line belongs"));
    }
    let line = String::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 request line"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Bad(
                "request line is not `METHOD TARGET VERSION`",
            ))
        }
    };
    if method.is_empty()
        || method.len() > 16
        || !method.bytes().all(|b| b.is_ascii_uppercase() || b == b'-')
    {
        return Err(HttpError::Bad("method is not an upper-case token"));
    }
    if !(target.starts_with('/') || target == "*") {
        return Err(HttpError::Bad("target must start with '/'"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Bad("unsupported HTTP version")),
    };

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(r, limits.max_header_line, &mut consumed_any)? {
            LineOutcome::Line(l) => l,
            _ => return Err(HttpError::Truncated("connection ended inside headers")),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_header_count {
            return Err(HttpError::HeadersTooLarge("too many headers"));
        }
        headers.push(parse_header(&line)?);
    }

    // Body framing. Both `Transfer-Encoding` and `Content-Length` on
    // one request is the classic smuggling ambiguity: reject it.
    let te = headers.iter().filter(|(n, _)| n == "transfer-encoding");
    let te: Vec<&str> = te.map(|(_, v)| v.as_str()).collect();
    let cl: Vec<&str> = headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .map(|(_, v)| v.as_str())
        .collect();
    if !te.is_empty() && !cl.is_empty() {
        return Err(HttpError::Bad(
            "both Transfer-Encoding and Content-Length present",
        ));
    }
    let body = if !te.is_empty() {
        if te.len() > 1 || !te[0].eq_ignore_ascii_case("chunked") {
            return Err(HttpError::Bad("unsupported Transfer-Encoding"));
        }
        read_chunked(r, limits, &mut consumed_any)?
    } else if !cl.is_empty() {
        if cl.len() > 1 {
            return Err(HttpError::Bad("duplicate Content-Length"));
        }
        let n = parse_content_length(cl[0])?;
        if n > limits.max_body {
            return Err(HttpError::BodyTooLarge);
        }
        read_exactly(r, n)?
    } else {
        Vec::new()
    };

    Ok(ReadOutcome::Request(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        http11,
        headers,
        body,
    }))
}

fn parse_header(line: &[u8]) -> Result<(String, String), HttpError> {
    let line = std::str::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 header"))?;
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::Bad("header line without ':'"));
    };
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"-_!#$%&'*+.^`|~".contains(&b))
    {
        // Space or control characters in a header name are a folding /
        // smuggling vector, not a header.
        return Err(HttpError::Bad("invalid header name"));
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_owned()))
}

fn parse_content_length(v: &str) -> Result<usize, HttpError> {
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::Bad("Content-Length is not a plain integer"));
    }
    v.parse()
        .map_err(|_| HttpError::Bad("Content-Length overflows"))
}

fn read_chunked<R: BufRead>(
    r: &mut R,
    limits: &Limits,
    consumed_any: &mut bool,
) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let line = match read_line(r, 256, consumed_any)? {
            LineOutcome::Line(l) => l,
            _ => return Err(HttpError::Truncated("connection ended inside chunked body")),
        };
        let line = std::str::from_utf8(&line).map_err(|_| HttpError::Bad("bad chunk size"))?;
        // Chunk extensions (`;name=value`) are allowed and ignored.
        let size_hex = line.split(';').next().unwrap_or("").trim();
        if size_hex.is_empty() || !size_hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(HttpError::Bad("bad chunk size"));
        }
        let size =
            usize::from_str_radix(size_hex, 16).map_err(|_| HttpError::Bad("bad chunk size"))?;
        if size == 0 {
            // Trailers until the blank line, bounded like headers.
            let mut trailers = 0;
            loop {
                let t = match read_line(r, limits.max_header_line, consumed_any)? {
                    LineOutcome::Line(l) => l,
                    _ => return Err(HttpError::Truncated("connection ended inside trailers")),
                };
                if t.is_empty() {
                    return Ok(body);
                }
                trailers += 1;
                if trailers > limits.max_header_count {
                    return Err(HttpError::HeadersTooLarge("too many trailers"));
                }
            }
        }
        if body.len().saturating_add(size) > limits.max_body {
            return Err(HttpError::BodyTooLarge);
        }
        let chunk = read_exactly(r, size)?;
        body.extend_from_slice(&chunk);
        // The CRLF after the chunk data.
        match read_line(r, 2, consumed_any)? {
            LineOutcome::Line(l) if l.is_empty() => {}
            LineOutcome::Line(_) => return Err(HttpError::Bad("chunk data not CRLF-terminated")),
            _ => return Err(HttpError::Truncated("connection ended inside chunked body")),
        }
    }
}

fn read_exactly<R: BufRead>(r: &mut R, n: usize) -> Result<Vec<u8>, HttpError> {
    let mut buf = vec![0u8; n];
    let mut filled = 0;
    while filled < n {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(HttpError::Truncated("connection ended inside body")),
            Ok(k) => filled += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(HttpError::Truncated("peer stalled inside body"))
            }
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    }
    Ok(buf)
}

enum LineOutcome {
    Line(Vec<u8>),
    ClosedIdle,
    TimedOutIdle,
}

/// Read one `\n`-terminated line (CR stripped), at most `max` bytes
/// long. EOF or a read timeout *before any request byte* is an idle
/// outcome; either one mid-line is an error.
fn read_line<R: BufRead>(
    r: &mut R,
    max: usize,
    consumed_any: &mut bool,
) -> Result<LineOutcome, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (take, newline) = {
            let buf = match r.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return if *consumed_any || !line.is_empty() {
                        Err(HttpError::Truncated("peer stalled mid-request"))
                    } else {
                        Ok(LineOutcome::TimedOutIdle)
                    };
                }
                Err(e) => return Err(HttpError::Io(e.kind())),
            };
            if buf.is_empty() {
                return if *consumed_any || !line.is_empty() {
                    Err(HttpError::Truncated("connection closed mid-request"))
                } else {
                    Ok(LineOutcome::ClosedIdle)
                };
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if line.len() + i > max {
                        return Err(HttpError::HeadersTooLarge("line exceeds cap"));
                    }
                    line.extend_from_slice(&buf[..i]);
                    (i + 1, true)
                }
                None => {
                    if line.len() + buf.len() > max {
                        return Err(HttpError::HeadersTooLarge("line exceeds cap"));
                    }
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        r.consume(take);
        *consumed_any = true;
        if newline {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(LineOutcome::Line(line));
        }
    }
}

/// Write a complete response with `Content-Length` framing.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// An incremental `Transfer-Encoding: chunked` response body: each
/// [`chunk`](ChunkedWriter::chunk) is written and flushed immediately,
/// so results stream to the client as they are produced.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Write the status line and headers, leaving the body open.
    pub fn begin(
        w: &'a mut W,
        status: u16,
        reason: &str,
        content_type: &str,
        keep_alive: bool,
    ) -> std::io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        Ok(ChunkedWriter { w })
    }

    /// Write one chunk and flush it (empty input is skipped — a
    /// zero-length chunk would terminate the body).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminate the body (the zero chunk).
    pub fn finish(self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<ReadOutcome, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    fn req(bytes: &[u8]) -> Request {
        match parse(bytes).expect("parses") {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let r = req(b"GET /health?x=1&y=a%20b HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path(), "/health");
        assert_eq!(
            r.query_params(),
            vec![("x".into(), "1".into()), ("y".into(), "a b".into())]
        );
        assert!(r.keep_alive());
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_content_length_and_chunked_bodies_identically() {
        let a = req(b"POST /eval HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        let b = req(b"POST /eval HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nhel\r\n2\r\nlo\r\n0\r\n\r\n");
        assert_eq!(a.body, b"hello");
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn connection_header_overrides_keep_alive_defaults() {
        assert!(!req(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(req(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
        assert!(!req(b"GET / HTTP/1.0\r\n\r\n").keep_alive());
    }

    #[test]
    fn smuggling_shapes_are_rejected() {
        for bytes in [
            &b"POST / HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\nabc"[..],
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd",
            b"POST / HTTP/1.1\r\nContent-Length: +3\r\n\r\nabc",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header: v\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bytes), Err(HttpError::Bad(_))),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn percent_decoding_is_total() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("%zz%"), "%zz%");
        assert_eq!(percent_decode("%e4%b8%ad"), "中");
    }

    #[test]
    fn percent_decoding_never_slices_multibyte_utf8() {
        // A '%' directly followed by multi-byte UTF-8 used to slice the
        // &str at a non-character boundary and panic — remotely
        // reachable from any request target (`GET /?handle=%中`).
        assert_eq!(percent_decode("%中"), "%中");
        assert_eq!(percent_decode("%4中"), "%4中");
        assert_eq!(percent_decode("中%41中"), "中A中");
        assert_eq!(percent_decode("%\u{10348}"), "%\u{10348}");
        assert_eq!(percent_decode("%%e4%b8%ad"), "%中");
    }
}
