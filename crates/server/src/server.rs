//! The query server: a [`std::net::TcpListener`] accept loop that
//! hands each admitted connection its own scoped OS thread; the
//! [`axml_pool::Pool`] is reserved for *evaluation* fan-out.
//!
//! Design notes:
//!
//! - **Connection I/O never occupies a pool worker.** A keep-alive
//!   connection blocks in socket reads for most of its life; parking
//!   it on a pool worker would let `workers` idle clients starve every
//!   other admitted connection (the pool helps with scope waits, not
//!   socket reads). Each connection therefore runs on a dedicated
//!   [`std::thread::scope`] thread — bounded by
//!   [`ServerConfig::max_inflight`] — while `POST /eval` fans its
//!   parallel work out onto the shared pool.
//! - **No new hot-path locks.** Every evaluation runs against the
//!   engine's `Arc`-shared document snapshots and a [`QueryRegistry`]
//!   whose entries are `OnceLock`-compiled; a request never holds a
//!   lock while evaluating.
//! - **Admission control at the front door.** The in-flight connection
//!   count is an atomic; past [`ServerConfig::max_inflight`] a new
//!   connection gets an immediate `503` with `Retry-After` and is
//!   closed, so overload sheds load instead of queueing it. The slot
//!   is released by a drop guard, so even a panicking connection
//!   cannot leak admission capacity.
//! - **Streaming results.** A successful `/eval` streams the exact
//!   bytes of [`axml::json::result_json`] as a chunked body, one chunk
//!   per `(tree, annotation)` pair, pulled from a
//!   [`PreparedQuery::eval_stream_with`] cursor: on the incremental
//!   combinations (`InSemiring` × direct/via-NRC) the first chunk is
//!   on the wire while the evaluation is still producing later
//!   pieces. `limit`/`offset` window the piece stream server-side
//!   (the body is a literal prefix/slice of the unlimited bytes), and
//!   `memory_budget` caps evaluation memory per request. Errors that
//!   precede the first output byte — including tripped budgets — get
//!   clean status lines (504 wall-clock, 507 memory); an error after
//!   the 200 is out aborts the chunked body without a terminal chunk,
//!   so clients see a truncated transfer, never a short-but-valid one.
//! - **Graceful shutdown.** [`ServerHandle::shutdown`] flips a flag
//!   and nudges the accept loop; the pool scope then drains: requests
//!   already in flight complete, idle keep-alive connections notice
//!   the flag at their next read-timeout poll and close.

use crate::http::{read_request, write_response, ChunkedWriter, Limits, ReadOutcome, Request};
use axml::json::{result_header, result_value_json, Json};
use axml::{
    AxmlError, BudgetKind, Engine, EvalOptions, Lane, PreparedQuery, QueryRegistry, Route,
    StreamItem,
};
use axml_pool::Pool;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tunables. `Default` gives an ephemeral loopback port, an
/// auto-sized pool and moderate limits — what the tests and the CLI's
/// defaults both start from.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port;
    /// [`ServerHandle::addr`] reports the one chosen).
    pub addr: String,
    /// Worker threads for the evaluation pool that `POST /eval` fans
    /// parallel work onto (`0` = one per available core). Connection
    /// I/O runs on its own per-connection threads, never on the pool.
    pub pool_workers: usize,
    /// Most connections served concurrently (each gets a dedicated
    /// thread); the rest get `503`.
    pub max_inflight: usize,
    /// Most prepared queries retained at once: the registry evicts
    /// least-recently-used entries past this, so unbounded streams of
    /// distinct `/prepare` or inline `/eval` texts cannot grow server
    /// memory without limit. An evicted handle just re-prepares.
    pub max_prepared: usize,
    /// Largest accepted request body (documents and inline queries).
    pub max_body: usize,
    /// Default per-request wall-clock deadline, when the request does
    /// not set `deadline_ms` itself. `None` = no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// How often idle keep-alive connections wake to re-check the
    /// shutdown flag (also the stall guard granularity mid-request).
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            pool_workers: 0,
            max_inflight: 64,
            max_prepared: 1024,
            max_body: 4 * 1024 * 1024,
            default_deadline_ms: None,
            poll_interval: Duration::from_millis(250),
        }
    }
}

/// State shared between the accept loop and the controlling handle.
struct Shared {
    shutdown: AtomicBool,
    inflight: AtomicUsize,
}

/// Everything a connection thread needs, borrowed from the accept
/// thread's frame (the thread scope guarantees connections finish
/// first).
struct ServerState<'a> {
    engine: &'a Engine,
    registry: QueryRegistry,
    config: ServerConfig,
    shared: &'a Shared,
    pool: &'a Pool,
}

/// A running server. Dropping the handle **without** calling
/// [`shutdown`](ServerHandle::shutdown) detaches the server thread
/// (it keeps serving until the process exits).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts — loads/removes through this
    /// handle are visible to requests immediately.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Connections currently admitted (serving or idle keep-alive).
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain in-flight requests, join the server
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        // Joining the server thread joins the connection scope inside
        // it: every connection thread exits at its next read-timeout
        // poll (or request boundary) once the flag is up.
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

/// Bind and start serving `engine` in a background thread.
pub fn start(config: ServerConfig, engine: Arc<Engine>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
    });
    let thread = {
        let engine = Arc::clone(&engine);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("axml-server-accept".into())
            .spawn(move || accept_loop(listener, config, &engine, &shared))?
    };
    Ok(ServerHandle {
        addr,
        engine,
        shared,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, config: ServerConfig, engine: &Engine, shared: &Shared) {
    let workers = if config.pool_workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.pool_workers
    };
    let pool = Pool::new(workers);
    let max_inflight = config.max_inflight.max(1);
    let max_prepared = config.max_prepared.max(1);
    let state = ServerState {
        engine,
        registry: QueryRegistry::with_capacity(max_prepared),
        config,
        shared,
        pool: &pool,
    };
    // One OS thread per admitted connection (bounded by max_inflight):
    // socket reads block for most of a keep-alive connection's life,
    // so parking connections on pool workers would let `workers` idle
    // clients starve everyone else. The thread scope is the
    // graceful-shutdown drain: it returns only after every connection
    // thread has finished.
    std::thread::scope(|s| loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        // Checked *after* accept so the shutdown nudge connection
        // reliably unblocks the loop.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Admission: take a slot or shed the connection right here on
        // the accept thread (no pool task, no queueing).
        let admitted = shared
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            let mut stream = stream;
            let body = error_body(
                "Overloaded",
                "request queue is full, try again shortly",
                &[],
            );
            let _ = write_response(
                &mut stream,
                503,
                "Service Unavailable",
                "application/json",
                body.as_bytes(),
                false,
                &[("Retry-After", "1")],
            );
            continue;
        }
        let state = &state;
        s.spawn(move || {
            // Release the admission slot however this thread ends — a
            // panic inside the handler must not leak capacity (each
            // leaked slot would permanently shrink the server until
            // everything 503s).
            let _slot = InflightSlot(state.shared);
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_connection(stream, state)
            }))
            .is_err()
            {
                // The connection is lost but the server keeps serving;
                // propagating would poison the whole thread scope.
                eprintln!("axml-server: connection handler panicked");
            }
        });
    });
}

/// Drop guard for one admitted connection's slot in the in-flight
/// count (see [`accept_loop`]).
struct InflightSlot<'a>(&'a Shared);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(stream: TcpStream, state: &ServerState<'_>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.config.poll_interval));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let limits = Limits {
        max_body: state.config.max_body,
        ..Limits::default()
    };
    loop {
        if state.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader, &limits) {
            Ok(ReadOutcome::Request(req)) => {
                // Stop advertising keep-alive once shutdown begins so
                // draining clients reconnect elsewhere.
                let keep_alive = req.keep_alive() && !state.shared.shutdown.load(Ordering::SeqCst);
                if respond(&mut writer, state, &req, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(ReadOutcome::ClosedIdle) => return,
            Ok(ReadOutcome::TimedOutIdle) => continue,
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    let body = error_body("BadRequest", &e.to_string(), &[]);
                    let _ = write_response(
                        &mut writer,
                        status,
                        reason,
                        "application/json",
                        body.as_bytes(),
                        false,
                        &[],
                    );
                }
                return;
            }
        }
    }
}

/// Route one request. An `Err` here is a transport failure — the
/// connection is closed; application errors are JSON responses.
fn respond<W: Write>(
    w: &mut W,
    state: &ServerState<'_>,
    req: &Request,
    keep_alive: bool,
) -> io::Result<()> {
    let path = req.path().to_owned();
    let method = req.method.as_str();
    match (method, path.as_str()) {
        ("GET", "/health") => {
            let mut j = Json::new();
            j.begin_obj();
            j.key("status");
            j.str("ok");
            j.end_obj();
            ok_json(w, j.finish(), keep_alive)
        }
        ("GET", "/stats") => {
            let stats = state.engine.storage_stats();
            let mut j = Json::new();
            j.begin_obj();
            j.key("documents");
            j.int(state.engine.document_names().len() as u64);
            j.key("prepared_queries");
            j.int(state.registry.len() as u64);
            j.key("inflight_connections");
            j.int(state.shared.inflight.load(Ordering::SeqCst) as u64);
            j.key("logical_nodes");
            j.int(stats.logical_nodes as u64);
            j.key("distinct_subtrees");
            j.int(stats.distinct_subtrees as u64);
            j.key("child_edges");
            j.int(stats.child_edges as u64);
            j.key("incremental");
            j.begin_obj();
            j.key("edits_applied");
            j.int(stats.incr.edits_applied);
            j.key("spine_nodes_interned");
            j.int(stats.incr.spine_nodes_interned);
            j.key("delta_facts_retired");
            j.int(stats.incr.delta_facts_retired);
            j.key("delta_facts_added");
            j.int(stats.incr.delta_facts_added);
            j.key("memo_hits");
            j.int(stats.incr.memo_hits);
            j.key("memo_misses");
            j.int(stats.incr.memo_misses);
            j.key("incremental_evals");
            j.int(stats.incr.incremental_evals);
            j.key("full_fallbacks");
            j.int(stats.incr.full_fallbacks);
            j.end_obj();
            // The scheduler counters of *this server's* pool (the one
            // running /eval fan-out), not the process-global pool.
            j.key("scheduler");
            axml::json::scheduler_json(&mut j, &state.pool.stats());
            j.end_obj();
            ok_json(w, j.finish(), keep_alive)
        }
        ("GET", "/documents") => {
            let mut j = Json::new();
            j.begin_obj();
            j.key("documents");
            j.begin_arr();
            for name in state.engine.document_names() {
                j.str(&name);
            }
            j.end_arr();
            j.end_obj();
            ok_json(w, j.finish(), keep_alive)
        }
        ("PUT", _) if path.starts_with("/documents/") => {
            let name = crate::http::percent_decode(&path["/documents/".len()..]);
            if name.is_empty() {
                return bad_request(w, "document name is empty", keep_alive);
            }
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return bad_request(w, "document body is not UTF-8", keep_alive);
            };
            match state.engine.load_document(&name, text) {
                Ok(()) => {
                    let mut j = Json::new();
                    j.begin_obj();
                    j.key("document");
                    j.str(&name);
                    j.key("loaded");
                    j.bool(true);
                    j.end_obj();
                    ok_json(w, j.finish(), keep_alive)
                }
                Err(e) => axml_error(w, &e, keep_alive),
            }
        }
        ("PATCH", _) if path.starts_with("/documents/") => {
            let name = crate::http::percent_decode(&path["/documents/".len()..]);
            if name.is_empty() {
                return bad_request(w, "document name is empty", keep_alive);
            }
            let Ok(script) = std::str::from_utf8(&req.body) else {
                return bad_request(w, "edit script is not UTF-8", keep_alive);
            };
            match state.engine.edit_document_text(&name, script) {
                Ok(stats) => {
                    let mut j = Json::new();
                    j.begin_obj();
                    j.key("document");
                    j.str(&name);
                    j.key("version");
                    j.int(stats.version);
                    j.key("ops_applied");
                    j.int(stats.ops_applied as u64);
                    j.key("spine_nodes_interned");
                    j.int(stats.spine_nodes_interned as u64);
                    j.key("facts_retired");
                    j.int(stats.facts_retired);
                    j.key("facts_added");
                    j.int(stats.facts_added);
                    j.end_obj();
                    ok_json(w, j.finish(), keep_alive)
                }
                Err(e) => axml_error(w, &e, keep_alive),
            }
        }
        ("DELETE", _) if path.starts_with("/documents/") => {
            let name = crate::http::percent_decode(&path["/documents/".len()..]);
            if state.engine.remove_document(&name) {
                let mut j = Json::new();
                j.begin_obj();
                j.key("document");
                j.str(&name);
                j.key("removed");
                j.bool(true);
                j.end_obj();
                ok_json(w, j.finish(), keep_alive)
            } else {
                let e = AxmlError::UnknownDocument {
                    name,
                    available: state.engine.document_names(),
                };
                axml_error(w, &e, keep_alive)
            }
        }
        ("POST", "/prepare") => {
            let Ok(src) = std::str::from_utf8(&req.body) else {
                return bad_request(w, "query body is not UTF-8", keep_alive);
            };
            if src.trim().is_empty() {
                return bad_request(w, "query body is empty", keep_alive);
            }
            match state.registry.prepare(src) {
                Ok((handle, prepared)) => {
                    let mut j = Json::new();
                    j.begin_obj();
                    j.key("handle");
                    j.str(&handle);
                    j.key("free_vars");
                    j.begin_arr();
                    for v in prepared.free_vars() {
                        j.str(v);
                    }
                    j.end_arr();
                    j.key("shreddable");
                    j.bool(prepared.is_shreddable());
                    j.end_obj();
                    ok_json(w, j.finish(), keep_alive)
                }
                Err(e) => axml_error(w, &e, keep_alive),
            }
        }
        ("POST", "/eval") => eval_endpoint(w, state, req, keep_alive),
        (_, "/health" | "/stats" | "/documents" | "/prepare" | "/eval") => {
            let body = error_body("MethodNotAllowed", "method not allowed for this path", &[]);
            write_response(
                w,
                405,
                "Method Not Allowed",
                "application/json",
                body.as_bytes(),
                keep_alive,
                &[],
            )
        }
        _ if path.starts_with("/documents/") => {
            let body = error_body(
                "MethodNotAllowed",
                "use PUT, PATCH or DELETE on /documents/{name}",
                &[],
            );
            write_response(
                w,
                405,
                "Method Not Allowed",
                "application/json",
                body.as_bytes(),
                keep_alive,
                &[],
            )
        }
        _ => {
            let body = error_body("NotFound", "no such endpoint", &[]);
            write_response(
                w,
                404,
                "Not Found",
                "application/json",
                body.as_bytes(),
                keep_alive,
                &[],
            )
        }
    }
}

/// History threshold for lane classification: a query whose EWMA
/// evaluation cost is at or above this is scheduled expensive.
const EXPENSIVE_COST_NS: u64 = 1_000_000;

/// Drop guard recording one request's wall-clock evaluation cost into
/// the registry's per-query EWMA, whatever path the handler exits by.
struct CostRecorder<'a> {
    registry: &'a QueryRegistry,
    handle: String,
    start: Instant,
}

impl Drop for CostRecorder<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.registry.record_cost(&self.handle, ns);
    }
}

/// `POST /eval`: by handle (`?handle=q…`) or inline query text in the
/// body — exactly one of the two. Inline text goes through the same
/// registry, so repeated inline evals of one query compile once.
fn eval_endpoint<W: Write>(
    w: &mut W,
    state: &ServerState<'_>,
    req: &Request,
    keep_alive: bool,
) -> io::Result<()> {
    let handle_param = req.query_param("handle");
    let inline = !req.body.is_empty();
    // The registry handle this request resolves to (inline texts get
    // one too) — keys the per-query cost history behind lane
    // classification.
    let mut cost_handle: Option<String> = handle_param.clone();
    let prepared: PreparedQuery = match (&handle_param, inline) {
        (Some(_), true) => {
            return bad_request(
                w,
                "give either ?handle= or an inline query body, not both",
                keep_alive,
            )
        }
        (None, false) => {
            return bad_request(w, "give ?handle= or an inline query body", keep_alive)
        }
        (Some(h), false) => match state.registry.get(h) {
            Some(p) => p,
            None => {
                let body = error_body(
                    "UnknownHandle",
                    &format!("no prepared query under handle {h:?}"),
                    &[],
                );
                return write_response(
                    w,
                    404,
                    "Not Found",
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                    &[],
                );
            }
        },
        (None, true) => {
            let Ok(src) = std::str::from_utf8(&req.body) else {
                return bad_request(w, "query body is not UTF-8", keep_alive);
            };
            match state.registry.prepare(src) {
                Ok((h, p)) => {
                    cost_handle = Some(h);
                    p
                }
                Err(e) => return axml_error(w, &e, keep_alive),
            }
        }
    };

    // Per-request options, every knob optional.
    let mut opts = EvalOptions::new();
    macro_rules! parse_param {
        ($name:literal, $apply:expr) => {
            if let Some(v) = req.query_param($name) {
                match v.parse() {
                    Ok(parsed) => {
                        #[allow(clippy::redundant_closure_call)]
                        {
                            opts = $apply(opts, parsed);
                        }
                    }
                    Err(e) => return bad_request(w, &format!("bad {}: {e}", $name), keep_alive),
                }
            }
        };
    }
    parse_param!("semiring", |o: EvalOptions, v| o.semiring(v));
    parse_param!("route", |o: EvalOptions, v| o.route(v));
    parse_param!("mode", |mut o: EvalOptions, v| {
        o.mode = v;
        o
    });
    parse_param!("parallelism", |o: EvalOptions, v: usize| o.parallel(v));
    parse_param!("memory_budget", |o: EvalOptions, v: usize| o
        .memory_budget(v));
    let deadline_ms = match req.query_param("deadline_ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(e) => return bad_request(w, &format!("bad deadline_ms: {e}"), keep_alive),
        },
        None => state.config.default_deadline_ms,
    };
    if let Some(ms) = deadline_ms {
        opts = opts.timeout(Duration::from_millis(ms));
    }
    let mut window = (0usize, None::<usize>); // (offset, limit) over set pieces
    if let Some(v) = req.query_param("offset") {
        match v.parse::<usize>() {
            Ok(n) => window.0 = n,
            Err(e) => return bad_request(w, &format!("bad offset: {e}"), keep_alive),
        }
    }
    if let Some(v) = req.query_param("limit") {
        match v.parse::<usize>() {
            Ok(n) => window.1 = Some(n),
            Err(e) => return bad_request(w, &format!("bad limit: {e}"), keep_alive),
        }
    }
    let (offset, limit) = window;

    // Evaluation is pulled through a cursor: binding errors (unknown
    // documents, bad options) surface from `eval_stream_bound` itself
    // and the first cursor item is pulled *before* the status line, so
    // every error that can precede output gets a clean status code. On
    // the incremental routes the first piece arrives while the rest of
    // the evaluation is still running — that is the first-byte win.
    // Scheduling lane: classify by per-query cost history when this
    // handle has been evaluated before (EWMA ≥ 1ms ⇒ expensive),
    // otherwise by route (the fixpoint-running routes start out
    // expensive, the plan routes cheap). The lane only orders pool
    // queues — results are byte-identical in every lane.
    let lane = match cost_handle
        .as_deref()
        .and_then(|h| state.registry.cost_hint(h))
    {
        Some(ns) if ns >= EXPENSIVE_COST_NS => Lane::Expensive,
        Some(_) => Lane::Cheap,
        None => match opts.route {
            Route::Shredded | Route::Differential => Lane::Expensive,
            Route::Direct | Route::ViaNrc => Lane::Cheap,
        },
    };
    opts = opts.lane(lane);
    // Feed the cost history on every exit path from here on (drop
    // guard): errors count too — a request that burned its deadline
    // was expensive.
    let _cost = cost_handle.map(|h| CostRecorder {
        registry: &state.registry,
        handle: h,
        start: Instant::now(),
    });

    let mut cursor = match prepared.eval_stream_with(state.engine, opts, &[], Some(state.pool)) {
        Ok(c) => c,
        Err(e) => return axml_error(w, &e, keep_alive),
    };

    // Skip `offset` pieces, then take the first piece of the window.
    // Any in-band error met while skipping — deadline, memory budget,
    // evaluation failure — still precedes all output, so it too gets a
    // clean status line.
    enum First {
        Empty,
        Scalar(axml::AxmlResult),
        Piece(axml::ResultPiece),
    }
    let mut skipped = 0usize;
    let first = loop {
        match cursor.next() {
            None => break First::Empty,
            Some(Err(e)) => return axml_error(w, &e, keep_alive),
            Some(Ok(StreamItem::Scalar(out))) => break First::Scalar(out),
            Some(Ok(StreamItem::Piece(p))) => {
                // `limit`/`offset` window *set pieces*; scalars pass
                // through untouched.
                if limit == Some(0) {
                    break First::Empty;
                }
                if skipped < offset {
                    skipped += 1;
                    continue;
                }
                break First::Piece(p);
            }
        }
    };

    let header = result_header(prepared.source(), &opts);
    if !req.http11 {
        // HTTP/1.0 has no chunked encoding: buffer the window whole.
        // Nothing has been written yet, so errors stay clean statuses.
        let mut body = header;
        match first {
            First::Empty => body.push_str("[]"),
            First::Scalar(out) => {
                let mut j = Json::new();
                result_value_json(&mut j, &out);
                body.push_str(&j.finish());
            }
            First::Piece(p) => {
                body.push('[');
                body.push_str(&p.json());
                let mut kept = 1usize;
                while limit.is_none_or(|n| kept < n) {
                    match cursor.next() {
                        None => break,
                        Some(Err(e)) => return axml_error(w, &e, keep_alive),
                        Some(Ok(StreamItem::Piece(p))) => {
                            body.push(',');
                            body.push_str(&p.json());
                            kept += 1;
                        }
                        Some(Ok(StreamItem::Scalar(_))) => unreachable!("scalar after a piece"),
                    }
                }
                body.push(']');
            }
        }
        body.push_str("}\n");
        return write_response(
            w,
            200,
            "OK",
            "application/json",
            body.as_bytes(),
            keep_alive,
            &[],
        );
    }

    // HTTP/1.1: chunked, each piece flushed as it is produced.
    let mut cw = ChunkedWriter::begin(w, 200, "OK", "application/json", keep_alive)?;
    cw.chunk(header.as_bytes())?;
    match first {
        First::Empty => cw.chunk(b"[]")?,
        First::Scalar(out) => {
            let mut j = Json::new();
            result_value_json(&mut j, &out);
            cw.chunk(j.finish().as_bytes())?;
        }
        First::Piece(p) => {
            cw.chunk(b"[")?;
            cw.chunk(p.json().as_bytes())?;
            let mut kept = 1usize;
            while limit.is_none_or(|n| kept < n) {
                match cursor.next() {
                    None => break,
                    Some(Ok(StreamItem::Piece(p))) => {
                        cw.chunk(b",")?;
                        cw.chunk(p.json().as_bytes())?;
                        kept += 1;
                    }
                    Some(Ok(StreamItem::Scalar(_))) => unreachable!("scalar after a piece"),
                    Some(Err(e)) => {
                        // The 200 status line is long gone. Never end
                        // the chunked body cleanly on a failed stream —
                        // abort the connection so the client sees a
                        // truncated body, not a valid-looking prefix.
                        return Err(io::Error::other(format!("eval failed mid-stream: {e}")));
                    }
                }
            }
            cw.chunk(b"]")?;
        }
    }
    // Dropping the cursor early (limit reached) cancels the producer.
    drop(cursor);
    cw.chunk(b"}\n")?;
    cw.finish()
}

fn ok_json<W: Write>(w: &mut W, mut body: String, keep_alive: bool) -> io::Result<()> {
    body.push('\n');
    write_response(
        w,
        200,
        "OK",
        "application/json",
        body.as_bytes(),
        keep_alive,
        &[],
    )
}

fn bad_request<W: Write>(w: &mut W, msg: &str, keep_alive: bool) -> io::Result<()> {
    let body = error_body("BadRequest", msg, &[]);
    write_response(
        w,
        400,
        "Bad Request",
        "application/json",
        body.as_bytes(),
        keep_alive,
        &[],
    )
}

/// `{"error":{"kind":…,"message":…, extra…}}` — the server's one
/// error shape.
fn error_body(kind: &str, message: &str, extra: &[(&str, String)]) -> String {
    let mut j = Json::new();
    j.begin_obj();
    j.key("error");
    j.begin_obj();
    j.key("kind");
    j.str(kind);
    j.key("message");
    j.str(message);
    for (k, v) in extra {
        j.key(k);
        j.str(v);
    }
    j.end_obj();
    j.end_obj();
    let mut s = j.finish();
    s.push('\n');
    s
}

/// Map an [`AxmlError`] to a status + structured JSON body. Parse
/// errors carry their [`axml::SourceSpan`] fields so API clients can
/// point at the offending line like the CLI does.
fn axml_error<W: Write>(w: &mut W, e: &AxmlError, keep_alive: bool) -> io::Result<()> {
    let (status, reason, kind) = match e {
        AxmlError::QueryParse { .. } => (400, "Bad Request", "QueryParse"),
        AxmlError::DocumentParse { .. } => (400, "Bad Request", "DocumentParse"),
        AxmlError::Type { .. } => (400, "Bad Request", "Type"),
        AxmlError::UnsupportedRoute { .. } => (400, "Bad Request", "UnsupportedRoute"),
        AxmlError::UnknownDocument { .. } => (404, "Not Found", "UnknownDocument"),
        AxmlError::Edit { .. } => (400, "Bad Request", "Edit"),
        AxmlError::EditConflict { .. } => (409, "Conflict", "EditConflict"),
        AxmlError::Budget {
            resource: BudgetKind::WallClock,
            ..
        } => (504, "Gateway Timeout", "Budget"),
        AxmlError::Budget {
            resource: BudgetKind::Memory,
            ..
        } => (507, "Insufficient Storage", "Budget"),
        AxmlError::Eval { .. } => (500, "Internal Server Error", "Eval"),
        AxmlError::Nrc { .. } => (500, "Internal Server Error", "Nrc"),
        AxmlError::Shredding { .. } => (500, "Internal Server Error", "Shredding"),
        AxmlError::EvaluatorDisagreement { .. } => {
            (500, "Internal Server Error", "EvaluatorDisagreement")
        }
        AxmlError::RouteDisagreement { .. } => (500, "Internal Server Error", "RouteDisagreement"),
    };
    let mut extra: Vec<(&str, String)> = Vec::new();
    let span = match e {
        AxmlError::QueryParse { span, .. } => Some(span),
        AxmlError::DocumentParse { span, .. } => Some(span),
        _ => None,
    };
    if let Some(span) = span {
        extra.push(("line", span.line.to_string()));
        extra.push(("column", span.column.to_string()));
        extra.push(("line_text", span.line_text.clone()));
    }
    let body = error_body(kind, &e.to_string(), &extra);
    write_response(
        w,
        status,
        reason,
        "application/json",
        body.as_bytes(),
        keep_alive,
        &[],
    )
}
