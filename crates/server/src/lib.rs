//! # axml-server — a std-only HTTP/1.1 front end for the axml engine
//!
//! Everything here is `std`: the listener is a
//! [`std::net::TcpListener`], each admitted connection gets its own
//! scoped OS thread (socket reads block; parking them on pool workers
//! would let idle keep-alive clients starve the pool), evaluation
//! fans out onto the workspace's own [`axml_pool::Pool`], and
//! responses are written by the no-dependency JSON builder in
//! [`axml::json`]. No async runtime, no HTTP crate — the same
//! vendored-shim discipline as the rest of the workspace.
//!
//! ```text
//!   client ──TCP──▶ accept loop ──admission (≤ max_inflight)──▶ connection
//!                        │ 503 + Retry-After when full            thread
//!                        ▼                                          │
//!                   [http::read_request]  ◀─ keep-alive loop ───────┤
//!                    bounded, hostile-input hardened                │
//!                                                                   ▼
//!                    /prepare ─▶ QueryRegistry (compile once, stable handle,
//!                    │                          LRU-bounded at max_prepared)
//!                    /eval ────▶ PreparedQuery::eval_stream_with(engine, pool)
//!                                   │ pieces flush as chunked JSON while
//!                                   │ the evaluation is still running
//!                                   ▼
//!                    /documents  load / list / remove on the shared Engine
//! ```
//!
//! ## Endpoints
//!
//! | Method & path            | Body            | Response |
//! |--------------------------|-----------------|----------|
//! | `GET /health`            | —               | `{"status":"ok"}` |
//! | `GET /stats`             | —               | documents, prepared queries, in-flight connections, storage stats, `incremental` edit/memo counters |
//! | `GET /documents`         | —               | `{"documents":[…]}` |
//! | `PUT /documents/{name}`  | document text   | `{"document":…,"loaded":true}` |
//! | `PATCH /documents/{name}` | edit script    | `{"document":…,"version":…,"ops_applied":…,"spine_nodes_interned":…,"facts_retired":…,"facts_added":…}` |
//! | `DELETE /documents/{name}` | —             | `{"document":…,"removed":true}` |
//! | `POST /prepare`          | query text      | `{"handle":"q…","free_vars":[…],"shreddable":…}` |
//! | `POST /eval`             | query text *or* `?handle=` | the [`axml::json::result_json`] shape, streamed |
//!
//! `POST /eval` takes `semiring`, `route`, `mode`, `parallelism`,
//! `deadline_ms`, `memory_budget` (an evaluation-memory cap in nodes;
//! tripping it is a `507` before output, a truncated chunked body
//! after), `limit` and `offset` (window the top-level piece stream;
//! the windowed body is a byte-literal slice of the unlimited one) as
//! query parameters; its body is byte-identical to the CLI's
//! `axml query --format json` output for the same options, and on the
//! incremental route/mode combinations the first chunk is written
//! before the evaluation has finished. Errors are structured JSON
//! (`{"error":{"kind":…,"message":…}}`) with parse errors carrying
//! `line`/`column`/`line_text`; a tripped wall-clock deadline is a
//! `504`, a tripped memory budget a `507`.
//!
//! `PATCH /documents/{name}` applies a line-based edit script (see
//! [`axml::EditScript::parse`]: `splice`, `relabel`, `insert`,
//! `delete`, `reannotate` ops addressed by child-index paths) through
//! [`axml::Engine::edit_document`], so subsequent evaluations of the
//! edited document take the incremental paths — delta-propagated
//! Datalog fixpoints on the shredded route, subtree-fingerprint memo
//! hits on the direct/via-NRC routes. A malformed script or a
//! non-applicable op is a `400` (`"kind":"Edit"`); an edit that races
//! a concurrent `PUT` replace of the same name is a `409`
//! (`"kind":"EditConflict"`) and should simply be retried.
//!
//! ## Memory under document churn
//!
//! The engine's hash-consing arenas are append-only by design:
//! `DELETE /documents/{name}` frees the document's forest but keeps
//! its interned subtrees available for future sharing, so the
//! `distinct_subtrees`/`child_edges` counters in `GET /stats` grow
//! monotonically even as documents come and go. Long-running
//! deployments with heavy `PUT`/`DELETE` churn over *disjoint*
//! content should expect arena growth proportional to the distinct
//! subtrees ever loaded (arena compaction is an open ROADMAP item);
//! churn over similar content re-shares and costs nothing new.
//! Prepared-query memory, by contrast, is bounded: the registry
//! evicts least-recently-used texts past
//! [`ServerConfig::max_prepared`].
//!
//! ## Quick start
//!
//! ```
//! use std::io::{Read, Write};
//!
//! let engine = std::sync::Arc::new(axml::Engine::new());
//! engine.load_document("S", "<a> b {x} </a>").unwrap();
//! let mut server =
//!     axml_server::start(axml_server::ServerConfig::default(), engine).unwrap();
//!
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! write!(conn, "GET /health HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
//!
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
mod server;

pub use server::{start, ServerConfig, ServerHandle};
