//! Incomplete and probabilistic K-UXML (§5 of Foster, Green & Tannen,
//! PODS 2008): possible-world semantics, strong representation systems,
//! and probabilistic evaluation over independent event variables.
//!
//! - [`modk`]: `Mod_K(v)` possible worlds of an ℕ\[X\] (or PosBool)
//!   representation; strong-representation checks
//!   `p(Mod_K(v)) = Mod_K(p(v))`.
//! - [`prob`]: probabilistic XML — Bernoulli event variables, exact
//!   answer distributions and marginals via the symbolic answer
//!   (Corollary 1), and Monte-Carlo estimation; the geometric law for
//!   ℕ-multiplicities.
//! - [`pattern`]: tree-pattern queries compiled to UXQuery, recovering
//!   the Senellart–Abiteboul evaluation algorithm as a special case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certain;
pub mod modk;
pub mod pattern;
pub mod prob;

pub use certain::{
    certain_answers, is_certain, is_possible, membership_condition, possible_answers,
};
pub use modk::{
    bool_valuations, forest_vars, mod_bool, mod_k, mod_nat, mod_posbool, nat_valuations,
    to_posbool_repr,
};
pub use pattern::{PatternEdge, TreePattern};
pub use prob::{
    answer_distribution, estimate_marginal, marginal_prob, sample_geometric_nat, ProbSpace,
};
