//! Probabilistic K-UXML (§5).
//!
//! A valuation is read as a conjunction of independent events
//! `{f(x) = k}`, one per variable. For `K = 𝔹` each variable is an
//! independent Bernoulli event (the hidden-web model of
//! Senellart–Abiteboul \[27\]); for `K = ℕ` the paper uses the
//! geometric law `Pr[f(x) = n] = 2⁻ⁿ for n > 0`.
//!
//! Three evaluation routes are provided, all justified by Corollary 1:
//!
//! - [`answer_distribution`]: exact — specialize the *symbolic* answer
//!   `p(v)` under every Boolean valuation (evaluating the query once,
//!   not once per world) and aggregate world probabilities;
//! - [`marginal_prob`]: exact probability that a given tree occurs in
//!   the answer set;
//! - [`estimate_marginal`]: Monte-Carlo estimation, for variable
//!   spaces too large to enumerate.

use crate::modk::{bool_valuations, forest_vars};
use axml_semiring::{NatPoly, PosBool, Semiring, Valuation, Var};
use axml_uxml::hom::specialize_forest;
use axml_uxml::{Forest, Tree};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// An assignment of independent Bernoulli probabilities to event
/// variables. Variables not mentioned default to probability 1
/// (certainly present), mirroring the `Valuation` convention.
#[derive(Clone, Debug, Default)]
pub struct ProbSpace {
    probs: BTreeMap<Var, f64>,
}

impl ProbSpace {
    /// Empty space (every variable certain).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(variable, probability)` pairs.
    ///
    /// # Panics
    /// If a probability is outside `[0, 1]`.
    pub fn from_pairs<I: IntoIterator<Item = (Var, f64)>>(pairs: I) -> Self {
        let probs: BTreeMap<Var, f64> = pairs.into_iter().collect();
        for (v, p) in &probs {
            assert!(
                (0.0..=1.0).contains(p),
                "probability {p} for {v} outside [0,1]"
            );
        }
        ProbSpace { probs }
    }

    /// `Pr[v = true]`.
    pub fn prob(&self, v: Var) -> f64 {
        self.probs.get(&v).copied().unwrap_or(1.0)
    }

    /// Probability of a specific Boolean valuation (independence).
    pub fn world_prob(&self, val: &Valuation<bool>, vars: &BTreeSet<Var>) -> f64 {
        vars.iter()
            .map(|&v| {
                if val.get(v) {
                    self.prob(v)
                } else {
                    1.0 - self.prob(v)
                }
            })
            .product()
    }

    /// Probability that a positive Boolean condition holds, by exact
    /// enumeration over the condition's own variables (monotone DNF,
    /// so only the mentioned variables matter).
    pub fn prob_of_condition(&self, cond: &PosBool) -> f64 {
        if cond.is_zero() {
            return 0.0;
        }
        if cond.is_one() {
            return 1.0;
        }
        let vars: Vec<Var> = cond.variables().into_iter().collect();
        assert!(
            vars.len() <= 24,
            "condition mentions {} variables; use estimate_marginal instead",
            vars.len()
        );
        let mut total = 0.0;
        for bits in 0..(1u64 << vars.len()) {
            let tv: BTreeSet<Var> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            if cond.eval_assignment(&tv) {
                let p: f64 = vars
                    .iter()
                    .map(|&v| {
                        if tv.contains(&v) {
                            self.prob(v)
                        } else {
                            1.0 - self.prob(v)
                        }
                    })
                    .product();
                total += p;
            }
        }
        total
    }

    /// Sample a Boolean valuation of `vars`.
    pub fn sample<R: Rng>(&self, vars: &BTreeSet<Var>, rng: &mut R) -> Valuation<bool> {
        Valuation::from_pairs(vars.iter().map(|&v| (v, rng.gen_bool(self.prob(v)))))
    }
}

/// Sample an ℕ-valuation under the paper's geometric law
/// `Pr[f(x) = n] = 2⁻ⁿ (n ≥ 1)`.
pub fn sample_geometric_nat<R: Rng>(
    vars: &BTreeSet<Var>,
    rng: &mut R,
) -> Valuation<axml_semiring::Nat> {
    Valuation::from_pairs(vars.iter().map(|&v| {
        let mut n = 1u64;
        while rng.gen_bool(0.5) {
            n += 1;
        }
        (v, axml_semiring::Nat::from(n))
    }))
}

/// Exact distribution over answer worlds: evaluate the query *once*
/// symbolically, then specialize the answer under every Boolean
/// valuation (Corollary 1 justifies the swap). Returns each distinct
/// world with its total probability.
pub fn answer_distribution(
    symbolic_answer: &Forest<NatPoly>,
    space: &ProbSpace,
) -> Vec<(Forest<bool>, f64)> {
    let vars = forest_vars(symbolic_answer);
    let mut acc: BTreeMap<Forest<bool>, f64> = BTreeMap::new();
    for val in bool_valuations(&vars) {
        let w = specialize_forest(symbolic_answer, &val);
        *acc.entry(w).or_insert(0.0) += space.world_prob(&val, &vars);
    }
    let mut out: Vec<(Forest<bool>, f64)> = acc.into_iter().collect();
    // Deterministic, cross-process-stable order (the map's internal
    // order is fingerprint-based). Sorting on the rendered form costs
    // one document-order render per world instead of re-sorting both
    // forests inside every comparison; Forest<bool> renders injectively
    // (structure and labels shown, `true` annotations elided).
    out.sort_by_cached_key(|(w, _)| w.to_string());
    out
}

/// Exact probability that `tree` occurs (annotation `true`) among the
/// top-level members of the answer, by enumeration over the answer's
/// variables.
pub fn marginal_prob(
    symbolic_answer: &Forest<NatPoly>,
    tree: &Tree<bool>,
    space: &ProbSpace,
) -> f64 {
    let vars = forest_vars(symbolic_answer);
    let mut total = 0.0;
    for val in bool_valuations(&vars) {
        let w = specialize_forest(symbolic_answer, &val);
        if w.contains(tree) {
            total += space.world_prob(&val, &vars);
        }
    }
    total
}

/// Monte-Carlo estimate of the same marginal (for large variable
/// spaces). Returns the fraction of `samples` worlds containing `tree`.
pub fn estimate_marginal<R: Rng>(
    symbolic_answer: &Forest<NatPoly>,
    tree: &Tree<bool>,
    space: &ProbSpace,
    samples: u32,
    rng: &mut R,
) -> f64 {
    let vars = forest_vars(symbolic_answer);
    let mut hits = 0u32;
    for _ in 0..samples {
        let val = space.sample(&vars, rng);
        let w = specialize_forest(symbolic_answer, &val);
        if w.contains(tree) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::run_query;
    use axml_uxml::{leaf, parse_forest, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn repr() -> Forest<NatPoly> {
        parse_forest(
            "<a> <b> <a> c {pe3} d </a> </b> <c {pe1}> <d> <a> c {pe2} b </a> </d> </c> </a>",
        )
        .unwrap()
    }

    fn answer() -> Forest<NatPoly> {
        let out =
            run_query::<NatPoly>("element r { $T//c }", &[("T", Value::Set(repr()))]).unwrap();
        let Value::Tree(t) = out else { panic!() };
        t.children().clone()
    }

    #[test]
    fn distribution_sums_to_one() {
        let space = ProbSpace::from_pairs([
            (Var::new("pe1"), 0.5),
            (Var::new("pe2"), 0.25),
            (Var::new("pe3"), 0.75),
        ]);
        let dist = answer_distribution(&answer(), &space);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // 5 distinct answer worlds (see modk::tests for why the
        // paper's displayed 6th is unrealizable)
        assert_eq!(dist.len(), 5);
    }

    #[test]
    fn marginal_of_leaf_c_matches_hand_computation() {
        // leaf c occurs iff pe3 ∨ (pe1 ∧ pe2); with p3=0.75, p1=0.5,
        // p2=0.25: Pr = p3 + (1-p3)·p1·p2 = 0.75 + 0.25·0.125 = 0.78125
        let space = ProbSpace::from_pairs([
            (Var::new("pe1"), 0.5),
            (Var::new("pe2"), 0.25),
            (Var::new("pe3"), 0.75),
        ]);
        let m = marginal_prob(&answer(), &leaf("c"), &space);
        assert!((m - 0.781_25).abs() < 1e-9, "got {m}");
    }

    #[test]
    fn marginal_agrees_with_posbool_condition() {
        // The leaf-c annotation pe3 + pe1·pe2 collapses to the PosBool
        // condition pe3 ∨ (pe1∧pe2); its probability is the marginal.
        let space = ProbSpace::from_pairs([
            (Var::new("pe1"), 0.5),
            (Var::new("pe2"), 0.25),
            (Var::new("pe3"), 0.75),
        ]);
        let ann = answer().get(&leaf("c"));
        let cond = axml_semiring::trio::collapse::natpoly_to_posbool(&ann);
        let p1 = space.prob_of_condition(&cond);
        let p2 = marginal_prob(&answer(), &leaf("c"), &space);
        assert!((p1 - p2).abs() < 1e-9, "{p1} vs {p2}");
    }

    #[test]
    fn monte_carlo_converges() {
        let space = ProbSpace::from_pairs([
            (Var::new("pe1"), 0.5),
            (Var::new("pe2"), 0.25),
            (Var::new("pe3"), 0.75),
        ]);
        let mut rng = StdRng::seed_from_u64(42);
        let est = estimate_marginal(&answer(), &leaf("c"), &space, 20_000, &mut rng);
        assert!((est - 0.781_25).abs() < 0.02, "estimate {est} too far");
    }

    #[test]
    fn prob_of_condition_corner_cases() {
        let space = ProbSpace::new();
        assert_eq!(space.prob_of_condition(&PosBool::ff()), 0.0);
        assert_eq!(space.prob_of_condition(&PosBool::tt()), 1.0);
        // default probability is 1
        assert_eq!(
            space.prob_of_condition(&PosBool::var_named("pc_unset")),
            1.0
        );
    }

    #[test]
    fn geometric_sampler_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let vars: BTreeSet<Var> = [Var::new("ge_a")].into_iter().collect();
        for _ in 0..50 {
            let val = sample_geometric_nat(&vars, &mut rng);
            let n = val.get(Var::new("ge_a"));
            assert!(n.value() >= 1, "geometric law has support n ≥ 1");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn prob_space_validates() {
        let _ = ProbSpace::from_pairs([(Var::new("bad_p"), 1.5)]);
    }
}
