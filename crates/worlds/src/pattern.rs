//! Tree-pattern queries, compiled to UXQuery.
//!
//! §5 closes by noting that "since tree pattern queries are expressible
//! in UXQuery, we get the query evaluation algorithm in \[27\]
//! (Senellart–Abiteboul, probabilistic XML) as a particular case". This
//! module makes that concrete: a [`TreePattern`] (label tests connected
//! by child/descendant edges) compiles to a UXQuery returning the
//! subtrees at which the pattern's root matches, annotated with the
//! condition under which the match exists.
//!
//! With `PosBool`/𝔹 annotations (idempotent semirings) this is exactly
//! pattern matching over probabilistic/incomplete XML; over
//! non-idempotent semirings the annotation counts *embeddings*
//! (a feature: with ℕ it is the embedding count).

use axml_core::ast::{Axis, ElementName, NodeTest, Step, SurfaceExpr};
use axml_semiring::Semiring;
use axml_uxml::Label;

/// How a child pattern is attached to its parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatternEdge {
    /// Immediate child (`/`).
    Child,
    /// Any descendant, per the paper's axis (includes the node itself).
    Descendant,
}

/// A tree pattern: a node test plus attached subpatterns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TreePattern {
    /// The test at this pattern node.
    pub test: NodeTest,
    /// The attached subpatterns.
    pub edges: Vec<(PatternEdge, TreePattern)>,
}

impl TreePattern {
    /// A pattern node testing a specific label.
    pub fn label(name: &str) -> Self {
        TreePattern {
            test: NodeTest::Label(Label::new(name)),
            edges: Vec::new(),
        }
    }

    /// A wildcard pattern node.
    pub fn any() -> Self {
        TreePattern {
            test: NodeTest::Wildcard,
            edges: Vec::new(),
        }
    }

    /// Attach a child-edge subpattern.
    pub fn child(mut self, sub: TreePattern) -> Self {
        self.edges.push((PatternEdge::Child, sub));
        self
    }

    /// Attach a descendant-edge subpattern.
    pub fn descendant(mut self, sub: TreePattern) -> Self {
        self.edges.push((PatternEdge::Descendant, sub));
        self
    }

    /// Compile to a UXQuery over the input variable `$doc`: the result
    /// is the set of subtrees where the pattern root matches, each
    /// annotated with the (semiring) evidence for the match.
    pub fn to_query<K: Semiring>(&self) -> SurfaceExpr<K> {
        // roots: $doc/descendant::<root test>
        let mut counter = 0usize;
        let root_var = "m0".to_owned();
        let roots = SurfaceExpr::Path(
            Box::new(SurfaceExpr::Var("doc".into())),
            Step {
                axis: Axis::Descendant,
                test: self.test,
            },
        );
        // innermost body returns the root match (wrapped in a set)
        let ret = SurfaceExpr::Paren(Box::new(SurfaceExpr::Var(root_var.clone())));
        let body = self.compile_edges(&root_var, ret, &mut counter);
        SurfaceExpr::For {
            binders: vec![(root_var, roots)],
            where_eq: None,
            body: Box::new(body),
        }
    }

    fn compile_edges<K: Semiring>(
        &self,
        ctx_var: &str,
        ret: SurfaceExpr<K>,
        counter: &mut usize,
    ) -> SurfaceExpr<K> {
        let mut body = ret;
        // Attach in reverse so the generated `for`s read left-to-right.
        for (edge, sub) in self.edges.iter().rev() {
            *counter += 1;
            let var = format!("m{counter}");
            let axis = match edge {
                PatternEdge::Child => Axis::Child,
                PatternEdge::Descendant => Axis::StrictDescendant,
            };
            let source = SurfaceExpr::Path(
                Box::new(SurfaceExpr::Paren(Box::new(SurfaceExpr::Var(
                    ctx_var.to_owned(),
                )))),
                Step {
                    axis,
                    test: sub.test,
                },
            );
            let inner = sub.compile_edges(&var, body, counter);
            body = SurfaceExpr::For {
                binders: vec![(var, source)],
                where_eq: None,
                body: Box::new(inner),
            };
        }
        body
    }
}

/// Wrap a compiled pattern in `element result { … }` for display.
pub fn pattern_result_query<K: Semiring>(p: &TreePattern) -> SurfaceExpr<K> {
    SurfaceExpr::Element {
        name: ElementName::Static(Label::new("result")),
        content: Box::new(p.to_query()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::eval_query;
    use axml_semiring::trio::collapse::natpoly_to_posbool;
    use axml_semiring::{NatPoly, PosBool, Semiring};
    use axml_uxml::{parse_forest, Value};

    #[test]
    fn simple_pattern_matches_with_condition() {
        // pattern: a[.//c] over the §5 representation
        let doc = parse_forest::<NatPoly>(
            "<a> <b> <a> c {tp3} d </a> </b> <c {tp1}> <d> <a> c {tp2} b </a> </d> </c> </a>",
        )
        .unwrap();
        let pat = TreePattern::label("a").descendant(TreePattern::label("c"));
        let q = pat.to_query::<NatPoly>();
        let out = eval_query(&q, &[("doc", Value::Set(doc))]).unwrap();
        let Value::Set(matches) = out else { panic!() };
        // the outermost a matches via three embeddings; the inner a's
        // match via their own c's
        assert!(!matches.is_empty());
        // condition of the root a as PosBool: tp3 ∨ tp1·tp2 … ∨ tp1
        // (embedding through the c{tp1} subtree root is c itself — not
        // a descendant of a? it is: strict-descendant of a includes it)
        let (root_match, ann) = matches
            .iter()
            .max_by_key(|(t, _)| t.size())
            .expect("nonempty");
        assert_eq!(root_match.label().name(), "a");
        let cond = natpoly_to_posbool(ann);
        // monotone condition must be satisfied when everything present
        assert!(cond.eval_assignment(&cond.variables()));
    }

    #[test]
    fn child_vs_descendant_edges() {
        let doc = parse_forest::<NatPoly>("<a> <b> c </b> </a>").unwrap();
        // a / c : no match (c is not an immediate child of a)
        let p1 = TreePattern::label("a").child(TreePattern::label("c"));
        let out1 = eval_query(
            &p1.to_query::<NatPoly>(),
            &[("doc", Value::Set(doc.clone()))],
        )
        .unwrap();
        assert!(out1.as_set().unwrap().is_empty());
        // a // c : matches
        let p2 = TreePattern::label("a").descendant(TreePattern::label("c"));
        let out2 = eval_query(&p2.to_query::<NatPoly>(), &[("doc", Value::Set(doc))]).unwrap();
        assert_eq!(out2.as_set().unwrap().len(), 1);
    }

    #[test]
    fn nat_annotations_count_embeddings() {
        use axml_semiring::Nat;
        let doc = parse_forest::<Nat>("<a> c c2 <b> c </b> </a>").unwrap();
        // a//c has two embeddings (the two c leaves — "c2" does not match)
        let pat = TreePattern::label("a").descendant(TreePattern::label("c"));
        let out = eval_query(&pat.to_query::<Nat>(), &[("doc", Value::Set(doc))]).unwrap();
        let Value::Set(m) = out else { panic!() };
        let (_, count) = m.iter().next().unwrap();
        assert_eq!(*count, Nat(2));
    }

    #[test]
    fn wildcard_root() {
        let doc = parse_forest::<PosBool>("<a> b </a>").unwrap();
        let pat = TreePattern::any();
        let out = eval_query(&pat.to_query::<PosBool>(), &[("doc", Value::Set(doc))]).unwrap();
        // matches every node: a and b
        assert_eq!(out.as_set().unwrap().len(), 2);
        // all annotated true (no uncertainty)
        for (_, k) in out.as_set().unwrap().iter() {
            assert!(k.is_one());
        }
    }

    #[test]
    fn multi_edge_pattern() {
        let doc = parse_forest::<PosBool>("<r> <a> b c </a> <a> b </a> </r>").unwrap();
        // a[b][c]: only the first a matches
        let pat = TreePattern::label("a")
            .child(TreePattern::label("b"))
            .child(TreePattern::label("c"));
        let out = eval_query(&pat.to_query::<PosBool>(), &[("doc", Value::Set(doc))]).unwrap();
        assert_eq!(out.as_set().unwrap().len(), 1);
    }
}
