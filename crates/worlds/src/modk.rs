//! Possible-world semantics for incomplete K-UXML (§5).
//!
//! An ℕ\[X\]-UXML value `v` *represents* the set of K-UXML instances
//! obtained by applying valuations to its variables:
//! `Mod_K(v) = { f*(v) : f : X → K }`. Querying commutes with taking
//! worlds — `p(Mod_K(v)) = Mod_K(p(v))` (a consequence of Corollary 1)
//! — which makes ℕ\[X\]-UXML a **strong representation system**: the
//! symbolic answer `p(v)` represents all per-world answers.
//!
//! For `K = 𝔹` the worlds are ordinary UXML instances and the variable
//! space is finite (2ⁿ valuations); for `K = ℕ` multiplicities are
//! unbounded and we enumerate up to a cap. `PosBool(B)`-UXML suffices
//! for 𝔹 (and any distributive lattice): the Boolean-c-table analogue.

use axml_semiring::trio::collapse::natpoly_to_posbool;
use axml_semiring::{Nat, NatPoly, PosBool, Semiring, Valuation, Var};
use axml_uxml::hom::{map_forest, specialize_forest};
use axml_uxml::{Forest, Tree};
use std::collections::BTreeSet;

/// All variables occurring in the annotations of a forest (recursively).
pub fn forest_vars(f: &Forest<NatPoly>) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    collect_forest_vars(f, &mut out);
    out
}

fn collect_forest_vars(f: &Forest<NatPoly>, out: &mut BTreeSet<Var>) {
    for (t, k) in f.iter() {
        out.extend(k.variables());
        collect_tree_vars(t, out);
    }
}

fn collect_tree_vars(t: &Tree<NatPoly>, out: &mut BTreeSet<Var>) {
    collect_forest_vars(t.children(), out);
}

/// Guard for exhaustive enumeration: 2²⁰ worlds is the sanity limit.
const MAX_ENUM_VARS: usize = 20;

/// All Boolean valuations of a variable set (2ⁿ of them).
///
/// # Panics
/// If more than 20 variables are given (enumeration would not finish).
pub fn bool_valuations(vars: &BTreeSet<Var>) -> Vec<Valuation<bool>> {
    assert!(
        vars.len() <= MAX_ENUM_VARS,
        "refusing to enumerate 2^{} Boolean valuations",
        vars.len()
    );
    let vars: Vec<Var> = vars.iter().copied().collect();
    let mut out = Vec::with_capacity(1 << vars.len());
    for bits in 0..(1u64 << vars.len()) {
        out.push(Valuation::from_pairs(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, bits & (1 << i) != 0)),
        ));
    }
    out
}

/// All ℕ-valuations assigning each variable a multiplicity in
/// `0..=max` ((max+1)ⁿ of them).
pub fn nat_valuations(vars: &BTreeSet<Var>, max: u64) -> Vec<Valuation<Nat>> {
    let n = vars.len() as u32;
    let count = (max + 1).pow(n);
    assert!(
        count <= 1 << MAX_ENUM_VARS,
        "refusing to enumerate {count} ℕ-valuations"
    );
    let vars: Vec<Var> = vars.iter().copied().collect();
    let mut out = Vec::with_capacity(count as usize);
    for mut idx in 0..count {
        let mut val = Valuation::new();
        for &v in &vars {
            val.set(v, Nat::from(idx % (max + 1)));
            idx /= max + 1;
        }
        out.push(val);
    }
    out
}

/// `Mod_K(v)` over an explicit set of valuations: the (deduplicated)
/// set of specialized instances.
pub fn mod_k<K: Semiring, I: IntoIterator<Item = Valuation<K>>>(
    repr: &Forest<NatPoly>,
    valuations: I,
) -> BTreeSet<Forest<K>> {
    valuations
        .into_iter()
        .map(|val| specialize_forest(repr, &val))
        .collect()
}

/// `Mod_B(v)`: all worlds under every Boolean valuation of the
/// representation's variables.
pub fn mod_bool(repr: &Forest<NatPoly>) -> BTreeSet<Forest<bool>> {
    mod_k(repr, bool_valuations(&forest_vars(repr)))
}

/// `Mod_ℕ(v)` with multiplicities capped at `max` (the full world set
/// is infinite; the cap gives a finite under-approximation that is
/// exact for queries distinguishing only multiplicities ≤ max).
pub fn mod_nat(repr: &Forest<NatPoly>, max: u64) -> BTreeSet<Forest<Nat>> {
    mod_k(repr, nat_valuations(&forest_vars(repr), max))
}

/// The possible worlds of a `PosBool`-annotated forest (the XML
/// analogue of Boolean c-tables): one world per assignment of the
/// condition variables.
pub fn mod_posbool(repr: &Forest<PosBool>) -> BTreeSet<Forest<bool>> {
    let mut vars = BTreeSet::new();
    collect_posbool_vars(repr, &mut vars);
    assert!(
        vars.len() <= MAX_ENUM_VARS,
        "refusing to enumerate 2^{} assignments",
        vars.len()
    );
    let vars: Vec<Var> = vars.into_iter().collect();
    let mut out = BTreeSet::new();
    for bits in 0..(1u64 << vars.len()) {
        let tv: BTreeSet<Var> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        struct AssignHom<'a>(&'a BTreeSet<Var>);
        impl axml_semiring::SemiringHom<PosBool, bool> for AssignHom<'_> {
            fn apply(&self, p: &PosBool) -> bool {
                p.eval_assignment(self.0)
            }
        }
        out.insert(map_forest(&AssignHom(&tv), repr));
    }
    out
}

fn collect_posbool_vars(f: &Forest<PosBool>, out: &mut BTreeSet<Var>) {
    for (t, k) in f.iter() {
        out.extend(k.variables());
        collect_posbool_vars(t.children(), out);
    }
}

/// Collapse an ℕ\[X\] representation to the `PosBool(B)` representation
/// ("we can transform an ℕ\[B\]-UXML representation into a
/// PosBool(B)-UXML representation by applying the obvious
/// homomorphism", §5).
pub fn to_posbool_repr(repr: &Forest<NatPoly>) -> Forest<PosBool> {
    struct H;
    impl axml_semiring::SemiringHom<NatPoly, PosBool> for H {
        fn apply(&self, p: &NatPoly) -> PosBool {
            natpoly_to_posbool(p)
        }
    }
    map_forest(&H, repr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::run_query;
    use axml_uxml::{parse_forest, Value};

    /// The §5 representation: the Fig 4 source with x1, x2 set to 1,
    /// leaving y1, y2, y3 on the subtrees labeled c.
    fn section5_repr() -> Forest<NatPoly> {
        parse_forest(
            "<a> <b> <a> c {wy3} d </a> </b> <c {wy1}> <d> <a> c {wy2} b </a> </d> </c> </a>",
        )
        .unwrap()
    }

    #[test]
    fn mod_b_has_six_worlds() {
        // 8 valuations of {y1,y2,y3} collapse to 6 distinct worlds
        // (y2 is irrelevant once y1 = false).
        let worlds = mod_bool(&section5_repr());
        assert_eq!(worlds.len(), 6);
    }

    #[test]
    fn mod_b_contains_the_full_and_empty_variants() {
        let worlds = mod_bool(&section5_repr());
        let all_true =
            parse_forest::<bool>("<a> <b> <a> c d </a> </b> <c> <d> <a> c b </a> </d> </c> </a>")
                .unwrap();
        assert!(worlds.contains(&all_true));
        // y1 = false, y3 = false: both c-subtrees gone
        let min = parse_forest::<bool>("<a> <b> <a> d </a> </b> </a>").unwrap();
        assert!(worlds.contains(&min));
    }

    #[test]
    fn strong_representation_for_the_section5_query() {
        // p(Mod_B(v)) = Mod_B(p(v)) for p = element r { $T//c }.
        let repr = section5_repr();
        // worlds of the symbolic answer
        let sym_answer =
            run_query::<NatPoly>("element r { $T//c }", &[("T", Value::Set(repr.clone()))])
                .unwrap();
        let Value::Tree(answer_tree) = sym_answer else {
            panic!()
        };
        let answer_repr = Forest::unit(answer_tree);
        let rhs = mod_bool(&answer_repr);

        // per-world answers
        let mut lhs = BTreeSet::new();
        for w in mod_bool(&repr) {
            let out = run_query::<bool>("element r { $T//c }", &[("T", Value::Set(w))]).unwrap();
            let Value::Tree(t) = out else { panic!() };
            lhs.insert(Forest::unit(t));
        }
        assert_eq!(lhs, rhs);
        // Note: the set has 5 distinct answers, not the 6 the paper
        // displays. The paper's 4th display Q[c[d[a[c b]]]] (the
        // matched c-subtree *without* the top-level leaf c) is
        // unrealizable: keeping the inner c requires y1 = y2 = true,
        // and then the leaf c is present via the y1·y2 term of its
        // annotation y3 + y1·y2. Applying p to the 6 input worlds
        // yields two coincident answers (TTT and TTF), so both sides
        // of the strong-representation equation have 5 elements.
        assert_eq!(rhs.len(), 5);
    }

    #[test]
    fn mod_nat_worlds_have_repetitions() {
        // §5: with K = ℕ a child can be repeated (y ↦ 2 duplicates c).
        let repr = parse_forest::<NatPoly>("<a> c {wn_y} </a>").unwrap();
        let worlds = mod_nat(&repr, 2);
        assert_eq!(worlds.len(), 3); // y ∈ {0, 1, 2}
        let doubled = parse_forest::<Nat>("<a> c {2} </a>").unwrap();
        assert!(worlds.contains(&doubled));
    }

    #[test]
    fn posbool_representation_agrees_with_natpoly() {
        // Mod_B through PosBool(B) equals Mod_B through ℕ[X].
        let repr = section5_repr();
        let via_posbool = mod_posbool(&to_posbool_repr(&repr));
        let direct = mod_bool(&repr);
        assert_eq!(via_posbool, direct);
    }

    #[test]
    fn forest_vars_collects_nested() {
        let repr = section5_repr();
        let vars = forest_vars(&repr);
        assert_eq!(vars.len(), 3);
        assert!(vars.contains(&Var::new("wy1")));
        assert!(vars.contains(&Var::new("wy2")));
        assert!(vars.contains(&Var::new("wy3")));
    }

    #[test]
    fn valuation_counts() {
        let vars: BTreeSet<Var> = [Var::new("vc_a"), Var::new("vc_b")].into_iter().collect();
        assert_eq!(bool_valuations(&vars).len(), 4);
        assert_eq!(nat_valuations(&vars, 2).len(), 9);
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn enumeration_guard() {
        let vars: BTreeSet<Var> = (0..25).map(|i| Var::new(&format!("g{i}"))).collect();
        let _ = bool_valuations(&vars);
    }
}
