//! Certain and possible answers over incomplete K-UXML.
//!
//! Classic incomplete-database notions:
//!
//! - a tree is a **possible** answer if it occurs in *some* world;
//! - a tree is a **certain** answer if it occurs in *every* world.
//!
//! When the answer's member trees are **ground** (no variables in their
//! internal annotations), membership of a tree is *monotone* in the
//! event variables and its condition is exactly the PosBool collapse of
//! the tree's annotation — giving O(1) certain/possible checks on the
//! canonical DNF ([`membership_condition`]).
//!
//! When inner structure is itself uncertain, exact-tree membership is
//! **non-monotone** (e.g. the childless `<a/>` exists only while its
//! uncertain child is *absent*), so no positive condition exists; the
//! checks then fall back to world enumeration. This asymmetry is a
//! small but real observation about the paper's representation systems,
//! pinned by the tests below.

use crate::modk::mod_bool;
use axml_semiring::trio::collapse::natpoly_to_posbool;
use axml_semiring::{NatPoly, PosBool, Semiring};
use axml_uxml::{Forest, Tree};
use std::collections::BTreeSet;

/// The (positive) membership condition of `tree` among the answer's
/// members — `Some` only when the answer is ground (see module docs).
pub fn membership_condition(answer: &Forest<NatPoly>, tree: &Tree<bool>) -> Option<PosBool> {
    if !answer_is_ground(answer) {
        return None;
    }
    let as_poly = ground_to_natpoly(tree);
    Some(natpoly_to_posbool(&answer.get(&as_poly)))
}

/// Is `tree` an answer in **every** world?
pub fn is_certain(answer: &Forest<NatPoly>, tree: &Tree<bool>) -> bool {
    match membership_condition(answer, tree) {
        Some(cond) => cond.is_one(),
        None => mod_bool(answer).iter().all(|w| w.contains(tree)),
    }
}

/// Is `tree` an answer in **some** world?
pub fn is_possible(answer: &Forest<NatPoly>, tree: &Tree<bool>) -> bool {
    match membership_condition(answer, tree) {
        Some(cond) => !cond.is_zero(),
        None => mod_bool(answer).iter().any(|w| w.contains(tree)),
    }
}

/// All certain answer trees, in document order.
pub fn certain_answers(answer: &Forest<NatPoly>) -> Vec<Tree<bool>> {
    let mut out: Vec<Tree<bool>> = if answer_is_ground(answer) {
        answer
            .iter()
            .filter(|(_, k)| natpoly_to_posbool(k).is_one())
            .map(|(t, _)| ground_to_bool(t))
            .collect()
    } else {
        // intersection over worlds
        let mut worlds = mod_bool(answer).into_iter();
        let Some(first) = worlds.next() else {
            return Vec::new();
        };
        let mut certain: BTreeSet<Tree<bool>> = first.trees().cloned().collect();
        for w in worlds {
            certain.retain(|t| w.contains(t));
        }
        certain.into_iter().collect()
    };
    out.sort_by(|a, b| a.cmp_document(b));
    out
}

/// All possible answer trees. For ground answers the accompanying
/// condition is the exact (positive) membership condition; for
/// non-ground answers membership can be non-monotone and no positive
/// condition exists, so `None` is returned alongside each tree.
pub fn possible_answers(answer: &Forest<NatPoly>) -> Vec<(Tree<bool>, Option<PosBool>)> {
    let mut out: Vec<(Tree<bool>, Option<PosBool>)> = if answer_is_ground(answer) {
        answer
            .iter()
            .map(|(t, k)| (ground_to_bool(t), Some(natpoly_to_posbool(k))))
            .collect()
    } else {
        let mut seen: BTreeSet<Tree<bool>> = BTreeSet::new();
        for w in mod_bool(answer) {
            seen.extend(w.trees().cloned());
        }
        seen.into_iter().map(|t| (t, None)).collect()
    };
    out.sort_by(|(a, _), (b, _)| a.cmp_document(b));
    out
}

/// Do all member trees have constant (variable-free) inner annotations?
/// (The top-level annotations may be arbitrary polynomials.)
pub fn answer_is_ground(answer: &Forest<NatPoly>) -> bool {
    fn tree_ground(t: &Tree<NatPoly>) -> bool {
        t.children()
            .iter()
            .all(|(c, k)| k.variables().is_empty() && tree_ground(c))
    }
    answer.trees().all(tree_ground)
}

fn ground_to_bool(t: &Tree<NatPoly>) -> Tree<bool> {
    let val = axml_semiring::Valuation::<bool>::new();
    axml_uxml::hom::specialize_tree(t, &val)
}

fn ground_to_natpoly(t: &Tree<bool>) -> Tree<NatPoly> {
    struct H;
    impl axml_semiring::SemiringHom<bool, NatPoly> for H {
        fn apply(&self, b: &bool) -> NatPoly {
            if *b {
                NatPoly::one()
            } else {
                NatPoly::zero()
            }
        }
    }
    axml_uxml::hom::map_tree(&H, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::run_query;
    use axml_uxml::{leaf, parse_forest, Value};

    fn answer_of(doc: &str, q: &str) -> Forest<NatPoly> {
        let f = parse_forest::<NatPoly>(doc).unwrap();
        let out = run_query::<NatPoly>(q, &[("S", Value::Set(f))]).unwrap();
        match out {
            Value::Set(f) => f,
            Value::Tree(t) => t.children().clone(),
            Value::Label(_) => panic!("label result"),
        }
    }

    #[test]
    fn certain_iff_in_all_worlds() {
        // leaf d is certain (annotation 1); leaf c is merely possible
        let ans = answer_of("<r> c {cw_u} d </r>", "$S/*");
        assert!(answer_is_ground(&ans));
        assert!(is_certain(&ans, &leaf("d")));
        assert!(is_possible(&ans, &leaf("d")));
        assert!(!is_certain(&ans, &leaf("c")));
        assert!(is_possible(&ans, &leaf("c")));
        assert!(!is_possible(&ans, &leaf("nope")));
    }

    #[test]
    fn alternative_derivations_can_make_certainty() {
        // c derivable via v OR via the always-present second copy
        let ans = answer_of("<r> c {cw_v} </r> <q> c </q>", "$S/*, $S/self::q/*");
        assert!(is_certain(&ans, &leaf("c")));
        assert_eq!(membership_condition(&ans, &leaf("c")), Some(PosBool::tt()));
    }

    #[test]
    fn agrees_with_world_enumeration() {
        let doc = "<r> <a {ce_p}> x </a> <b {ce_q}> x </b> y </r>";
        let ans = answer_of(doc, "$S//x, $S//y");
        let worlds = mod_bool(&ans);
        for t in [leaf::<bool>("x"), leaf("y"), leaf("z")] {
            let in_all = worlds.iter().all(|w| w.contains(&t));
            let in_some = worlds.iter().any(|w| w.contains(&t));
            assert_eq!(is_certain(&ans, &t), in_all, "certain({t})");
            assert_eq!(is_possible(&ans, &t), in_some, "possible({t})");
        }
    }

    #[test]
    fn certain_and_possible_listings() {
        let ans = answer_of("<r> c {cl_u} d </r>", "$S/*");
        let certain = certain_answers(&ans);
        assert_eq!(certain, vec![leaf::<bool>("d")]);
        let possible = possible_answers(&ans);
        assert_eq!(possible.len(), 2);
        let c_cond = possible
            .iter()
            .find(|(t, _)| *t == leaf("c"))
            .unwrap()
            .1
            .clone();
        assert_eq!(c_cond, Some(PosBool::var_named("cl_u")));
    }

    #[test]
    fn non_ground_membership_is_non_monotone() {
        // the answer tree itself contains an uncertain child: <a>w{z}</a>
        let ans = answer_of("<r> <a> w {ng_z} </a> </r>", "$S/*");
        assert!(!answer_is_ground(&ans));
        let with_w = parse_forest::<bool>("<a> w </a>")
            .unwrap()
            .trees()
            .next()
            .unwrap()
            .clone();
        let without_w = leaf::<bool>("a");
        // <a>w</a> needs ng_z; the childless <a/> needs ¬ng_z — both
        // possible, neither certain. No positive condition exists:
        assert!(membership_condition(&ans, &with_w).is_none());
        assert!(is_possible(&ans, &with_w));
        assert!(is_possible(&ans, &without_w));
        assert!(!is_certain(&ans, &with_w));
        assert!(!is_certain(&ans, &without_w));
        // listings agree
        assert!(certain_answers(&ans).is_empty());
        let possible = possible_answers(&ans);
        assert_eq!(possible.len(), 2);
        assert!(possible.iter().all(|(_, c)| c.is_none()));
    }

    #[test]
    fn certain_answers_of_non_ground_intersection() {
        // one certain member alongside the uncertain-structure one
        let ans = answer_of("<r> <a> w {ni_z} </a> k </r>", "$S/*");
        assert!(!answer_is_ground(&ans));
        assert_eq!(certain_answers(&ans), vec![leaf::<bool>("k")]);
    }
}
