//! Streaming cursor contract tests.
//!
//! 1. **Parity** (property): for every query × semiring × route ×
//!    mode × parallelism combination, collecting
//!    `PreparedQuery::eval_stream_bound` must equal `eval_bound` —
//!    same values (structural and rendered), same errors — so
//!    streaming is purely a latency choice.
//! 2. **Byte identity**: the streamed pieces, rendered one at a time
//!    through `axml::json`, concatenate to exactly the one-shot
//!    `result_json` bytes in all 7 semirings.
//! 3. **Laziness** (deterministic, no timing): on a streamable root
//!    shape, after pulling one piece the producer has emitted at most
//!    buffer + 1 pieces — the evaluation provably has not run ahead
//!    to completion.
//! 4. **Memory budgets**: a tripped `EvalOptions::memory_budget`
//!    surfaces as typed `AxmlError::Budget { resource: Memory }` on
//!    every route, materialized and streamed, never a panic and never
//!    a truncated-but-`Ok` result.

use axml::json::{result_header, result_json};
use axml::{
    AxmlError, BudgetKind, Engine, EvalCursor, EvalOptions, PreparedQuery, Route, SemiringKind,
    StreamItem, STREAM_BUFFER_PIECES,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const QUERY_POOL: [&str; 5] = [
    "$S/*",                // streamable: child step over a single root
    "$S/*/*",              // materialize-then-emit chain
    "element p { $S//c }", // scalar result (element constructor)
    "($S//d, $S/b)",       // union root: materialize-then-emit
    "$MISSING/b",          // document never loaded: always errors
];

const ROUTES: [Route; 4] = [
    Route::Direct,
    Route::ViaNrc,
    Route::Shredded,
    Route::Differential,
];

struct Fixture {
    engine: Engine,
    prepared: Vec<PreparedQuery>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let engine = Engine::new();
        engine
            .load_document(
                "S",
                "<a {z}> <b {x1}> d {y1} c </b> <c {x2}> d {y2} e {y3} </c> </a>",
            )
            .unwrap();
        let prepared = QUERY_POOL
            .iter()
            .map(|src| engine.prepare(src).unwrap())
            .collect();
        Fixture { engine, prepared }
    })
}

fn rendered(r: &Result<axml::AxmlResult, AxmlError>) -> String {
    match r {
        Ok(v) => format!("Ok: {v}"),
        Err(e) => format!("Err: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Collected stream ≡ materialized eval, across everything.
    #[test]
    fn stream_collects_to_the_materialized_result(
        qi in 0..QUERY_POOL.len(),
        ki in 0..SemiringKind::ALL.len(),
        ri in 0..ROUTES.len(),
        pf in 0..2usize,
        par in 0..2usize,
    ) {
        let fix = fixture();
        let q = &fix.prepared[qi];
        let mut opts = EvalOptions::new()
            .semiring(SemiringKind::ALL[ki])
            .route(ROUTES[ri]);
        if pf == 1 {
            opts = opts.provenance_first();
        }
        if par == 1 {
            opts = opts.parallel(4);
        }
        let materialized = q.eval(&fix.engine, opts);
        let streamed = q
            .eval_stream(&fix.engine, opts)
            .and_then(EvalCursor::collect_result);
        prop_assert_eq!(rendered(&materialized), rendered(&streamed));
        if let (Ok(m), Ok(s)) = (&materialized, &streamed) {
            prop_assert_eq!(m, s);
        }
    }
}

/// Acceptance: streamed pieces render to byte-identical JSON in all 7
/// semirings, on both incremental routes.
#[test]
fn streamed_json_is_byte_identical_to_one_shot() {
    let fix = fixture();
    for src in ["$S/*", "$S/*/*"] {
        let q = fix.engine.prepare(src).unwrap();
        for kind in SemiringKind::ALL {
            for route in [Route::Direct, Route::ViaNrc] {
                let opts = EvalOptions::new().semiring(kind).route(route);
                let whole = result_json(src, &opts, &q.eval(&fix.engine, opts).unwrap());

                let mut streamed = result_header(src, &opts);
                streamed.push('[');
                let mut first = true;
                for item in q.eval_stream(&fix.engine, opts).unwrap() {
                    match item.unwrap() {
                        StreamItem::Piece(p) => {
                            if !first {
                                streamed.push(',');
                            }
                            first = false;
                            streamed.push_str(&p.json());
                        }
                        StreamItem::Scalar(_) => unreachable!("set-shaped query"),
                    }
                }
                streamed.push_str("]}");
                assert_eq!(whole, streamed, "{kind} {route:?} {src}");
            }
        }
    }
}

/// Deterministic laziness: pulling one piece of a 500-piece streamable
/// result leaves the producer at most one buffer ahead — it provably
/// has not materialized the whole result. No sleeps, no timing: the
/// bounded channel *is* the synchronization.
#[test]
fn streaming_is_lazy_on_streamable_shapes() {
    let engine = Engine::new();
    // Distinct labels: identical trees would merge into one K-set
    // piece and defeat the point of the test.
    let body: String = (0..500).map(|i| format!("b{i} {{x{i}}} ")).collect();
    engine
        .load_document("S", &format!("<a> {body} </a>"))
        .unwrap();
    let q = engine.prepare("$S/*").unwrap();
    for route in [Route::Direct, Route::ViaNrc] {
        let mut cursor = q
            .eval_stream(&engine, EvalOptions::new().route(route))
            .unwrap();
        let first = cursor.next().expect("500 pieces").unwrap();
        assert!(matches!(first, StreamItem::Piece(_)));
        // The producer can be at most: buffer (in channel) + 1 (the
        // piece we pulled) + 1 (blocked mid-send) pieces in.
        let produced = cursor.produced_so_far();
        assert!(
            produced <= STREAM_BUFFER_PIECES + 2,
            "{route:?}: producer ran {produced} pieces ahead (buffer is {STREAM_BUFFER_PIECES})"
        );
        // Dropping the cursor mid-stream cancels cleanly (the producer
        // sees a closed channel at its next emission).
        drop(cursor);
    }
}

/// A tripped memory budget is a typed error on every route and mode —
/// and with a generous budget the result is identical to no budget.
#[test]
fn tripped_budgets_surface_as_typed_errors() {
    let fix = fixture();
    let q = fix.engine.prepare("$S/*/*").unwrap();
    for route in ROUTES {
        for pf in [false, true] {
            let mut opts = EvalOptions::new().semiring(SemiringKind::Nat).route(route);
            if pf {
                opts = opts.provenance_first();
            }
            match q.eval(&fix.engine, opts.memory_budget(1)) {
                Err(AxmlError::Budget { resource, at }) => {
                    assert_eq!(resource, BudgetKind::Memory, "{route:?} pf={pf}");
                    assert!(!at.is_empty(), "budget error should name its boundary");
                }
                other => panic!("{route:?} pf={pf}: expected Budget, got {other:?}"),
            }
            let unlimited = q.eval(&fix.engine, opts).unwrap();
            let generous = q.eval(&fix.engine, opts.memory_budget(1 << 20)).unwrap();
            assert_eq!(unlimited, generous, "{route:?} pf={pf}");
        }
    }
}

/// Streamed evaluations trip the same way: pieces, then an in-band
/// `Budget` error, then exhaustion — never a truncated-but-OK stream.
#[test]
fn streamed_budget_trips_end_the_stream_with_a_typed_error() {
    let engine = Engine::new();
    let body: String = (0..100).map(|i| format!("b{i} {{x{i}}} ")).collect();
    engine
        .load_document("S", &format!("<a> {body} </a>"))
        .unwrap();
    let q = engine.prepare("$S/*").unwrap();
    for route in [Route::Direct, Route::ViaNrc] {
        let opts = EvalOptions::new().route(route).memory_budget(10);
        let items: Vec<_> = q.eval_stream(&engine, opts).unwrap().collect();
        let (last, pieces) = items.split_last().expect("at least the error");
        assert!(
            pieces.iter().all(|i| matches!(i, Ok(StreamItem::Piece(_)))),
            "{route:?}: only pieces may precede the error"
        );
        match last {
            Err(AxmlError::Budget { resource, .. }) => {
                assert_eq!(*resource, BudgetKind::Memory, "{route:?}")
            }
            other => panic!("{route:?}: expected in-band Budget, got {other:?}"),
        }
        // And collecting reports the same trip as an error, not a
        // truncated Ok.
        assert!(matches!(
            q.eval_stream(&engine, opts).unwrap().collect_result(),
            Err(AxmlError::Budget { .. })
        ));
    }
}
