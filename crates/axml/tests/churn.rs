//! Incremental re-annotation under churn: property and stress tests.
//!
//! - **Parity**: random edit scripts (splice / relabel / insert /
//!   delete / reannotate, including no-op scripts and
//!   identical-subtree splices) applied through
//!   `Engine::edit_document`, then every query evaluated on the
//!   *edited* engine — whose incremental state (retained Datalog
//!   fixpoints, subtree-fingerprint memos) is live — and on a
//!   **from-scratch** engine holding the same final document. Results
//!   must be byte-identical across all 7 semirings × 4 routes × both
//!   eval modes, errors included.
//! - **Stress**: 8 threads hammering one shared engine with
//!   concurrent `edit_document` (retrying on conflict) and
//!   `Route::Differential` evaluations — the differential route
//!   re-checks the incremental evaluators against the stateless ones
//!   on every call.
//! - **Replace invalidation**: replacing a document via
//!   `load_document` must atomically drop all incremental and
//!   specialization state; in-flight cursors keep their snapshot.

use axml::{EditScript, Engine, EvalMode, EvalOptions, Route, SemiringKind};
use axml_semiring::NatPoly;
use axml_uxml::{Forest, Tree};
use std::sync::Arc;
use std::thread;

const ROUTES: [Route; 4] = [
    Route::Direct,
    Route::ViaNrc,
    Route::Shredded,
    Route::Differential,
];
const MODES: [EvalMode; 2] = [EvalMode::InSemiring, EvalMode::ProvenanceFirst];

/// Queries covering: plain descendant chain (tier-A shredded +
/// memoized direct), union, a branching predicate (tier-B: filters
/// re-solve over maintained edges), and a non-fragment constructor
/// (incremental layer must stay disengaged and errors must match).
const QUERIES: [&str; 4] = [
    "$S//c",
    "($S//c, $S/child::b)",
    "for $x in $S//a return for $y in ($x)/c return ($x)",
    "element r { $S//c }",
];

const BASE: &str =
    "<a {z}> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>";

/// Deterministic xorshift — tests must not depend on ambient entropy.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// All document-order child-index paths of a forest (non-empty ones
/// address an entry; used to aim random ops).
fn all_paths(f: &Forest<NatPoly>) -> Vec<Vec<usize>> {
    fn walk(f: &Forest<NatPoly>, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        for (i, (t, _)) in f.iter_document().into_iter().enumerate() {
            prefix.push(i);
            out.push(prefix.clone());
            walk(t.children(), prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    walk(f, &mut Vec::new(), &mut out);
    out
}

fn subtree_at<'a>(f: &'a Forest<NatPoly>, path: &[usize]) -> &'a Tree<NatPoly> {
    let (t, _) = f.iter_document()[path[0]];
    if path.len() == 1 {
        t
    } else {
        subtree_at(t.children(), &path[1..])
    }
}

fn opts(kind: SemiringKind, route: Route, mode: EvalMode) -> EvalOptions {
    let mut o = EvalOptions::new().semiring(kind).route(route);
    o.mode = mode;
    o
}

fn fmt_path(p: &[usize]) -> String {
    let mut s = String::new();
    for seg in p {
        s.push('/');
        s.push_str(&seg.to_string());
    }
    if s.is_empty() {
        s.push('/');
    }
    s
}

const PAYLOADS: [&str; 5] = [
    "<q {x2}> r </q>",
    "c {y1}",
    "<a> c {y2} </a>",
    "<needle> c {w} </needle>",
    "b",
];
const LABELS: [&str; 4] = ["a", "b", "c", "zz"];
const ANNS: [&str; 4] = ["1", "2", "x1", "z+1"];

/// One random single-op script (occasionally empty — a pure version
/// bump), always valid against `doc`.
fn random_script(rng: &mut Rng, doc: &Forest<NatPoly>) -> EditScript {
    let paths = all_paths(doc);
    if paths.is_empty() || rng.pick(10) == 0 {
        if rng.pick(2) == 0 {
            return EditScript::new(); // no-op script
        }
        return EditScript::parse(&format!("insert / {}", PAYLOADS[rng.pick(PAYLOADS.len())]))
            .unwrap();
    }
    let path = &paths[rng.pick(paths.len())];
    let line = match rng.pick(6) {
        0 => format!(
            "splice {} {}",
            fmt_path(path),
            PAYLOADS[rng.pick(PAYLOADS.len())]
        ),
        1 => {
            // Identical-subtree splice: replace a subtree with itself.
            // The delta must be empty and every memo must keep hitting.
            let t = subtree_at(doc, path);
            format!("splice {} {}", fmt_path(path), t)
        }
        2 => format!(
            "relabel {} {}",
            fmt_path(path),
            LABELS[rng.pick(LABELS.len())]
        ),
        3 => {
            let parent = &path[..path.len() - 1];
            format!(
                "insert {} {}",
                fmt_path(parent),
                PAYLOADS[rng.pick(PAYLOADS.len())]
            )
        }
        4 => format!("delete {}", fmt_path(path)),
        _ => format!(
            "reannotate {} {}",
            fmt_path(path),
            ANNS[rng.pick(ANNS.len())]
        ),
    };
    EditScript::parse(&line).unwrap()
}

/// Render an evaluation outcome for byte-wise comparison (errors
/// render too — both engines must fail identically).
fn outcome(engine: &Engine, q: &axml::PreparedQuery, opts: EvalOptions) -> String {
    match q.eval(engine, opts) {
        Ok(v) => format!("ok: {v}"),
        Err(e) => format!("err: {e}"),
    }
}

#[test]
fn random_edits_match_from_scratch_engine_everywhere() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let inc = Engine::new();
    inc.load_document("S", BASE).unwrap();
    let inc_queries: Vec<_> = QUERIES.iter().map(|q| inc.prepare(q).unwrap()).collect();

    for round in 0..12 {
        let doc = inc.document("S").unwrap();
        let script = random_script(&mut rng, &doc);
        let stats = inc.edit_document("S", &script).unwrap();
        assert_eq!(stats.version, round + 1);
        assert_eq!(stats.ops_applied, script.ops.len());

        // A from-scratch engine holding the identical final document.
        let fresh = Engine::new();
        fresh.insert_forest("S", (*inc.document("S").unwrap()).clone());
        let fresh_queries: Vec<_> = QUERIES.iter().map(|q| fresh.prepare(q).unwrap()).collect();

        for (qi, src) in QUERIES.iter().enumerate() {
            for kind in SemiringKind::ALL {
                for route in ROUTES {
                    for mode in MODES {
                        let o = opts(kind, route, mode);
                        let a = outcome(&inc, &inc_queries[qi], o);
                        let b = outcome(&fresh, &fresh_queries[qi], o);
                        assert_eq!(
                            a, b,
                            "round {round} query {src:?} kind {kind} route {route} mode {mode}: \
                             incremental engine diverged from from-scratch engine\nscript: {script:?}"
                        );
                    }
                }
            }
        }
    }
    let stats = inc.storage_stats();
    assert_eq!(stats.incr.edits_applied, 12);
    assert!(
        stats.incr.incremental_evals > 0,
        "incremental paths never engaged: {:?}",
        stats.incr
    );
    assert!(
        stats.incr.memo_hits > 0,
        "fingerprint memo never hit across 12 rounds: {:?}",
        stats.incr
    );
}

#[test]
fn concurrent_edits_and_differential_evals() {
    let engine = Arc::new(Engine::new());
    engine.load_document("S", BASE).unwrap();
    engine
        .load_document("T", "<r> <s {w}> a {2} b </s> <t> a {u} </t> </r>")
        .unwrap();
    let qs = Arc::new(vec![
        engine.prepare("$S//c").unwrap(),
        engine.prepare("($S//c, $S/child::b)").unwrap(),
        engine.prepare("$T//a").unwrap(),
    ]);

    let mut handles = Vec::new();
    for tid in 0..8u64 {
        let engine = Arc::clone(&engine);
        let qs = Arc::clone(&qs);
        handles.push(thread::spawn(move || {
            let mut rng = Rng(0xdead_beef ^ (tid + 1));
            for i in 0..40 {
                if tid < 2 {
                    // Editor threads: churn one document each.
                    let name = if tid == 0 { "S" } else { "T" };
                    let doc = engine.document(name).unwrap();
                    let script = random_script(&mut rng, &doc);
                    match engine.edit_document(name, &script) {
                        Ok(_) => {}
                        Err(axml::AxmlError::EditConflict { .. }) => {} // racing replace; fine
                        Err(e) => panic!("edit failed: {e}"),
                    }
                } else {
                    // Evaluator threads: differential re-checks the
                    // incremental evaluators against stateless ones.
                    let q = &qs[rng.pick(qs.len())];
                    let kind = SemiringKind::ALL[(i + tid as usize) % 7];
                    let opts = EvalOptions::new().semiring(kind).route(Route::Differential);
                    q.eval(&engine, opts)
                        .unwrap_or_else(|e| panic!("differential eval failed: {e}"));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Quiesced: the edited engine must agree with a from-scratch one.
    let fresh = Engine::new();
    for name in ["S", "T"] {
        fresh.insert_forest(name, (*engine.document(name).unwrap()).clone());
    }
    for src in ["$S//c", "($S//c, $S/child::b)", "$T//a"] {
        let qa = engine.prepare(src).unwrap();
        let qb = fresh.prepare(src).unwrap();
        for kind in SemiringKind::ALL {
            for route in ROUTES {
                let opts = EvalOptions::new().semiring(kind).route(route);
                assert_eq!(
                    outcome(&engine, &qa, opts),
                    outcome(&fresh, &qb, opts),
                    "{src} in {kind} via {route} after concurrent churn"
                );
            }
        }
    }
}

/// Replacing a document must atomically invalidate everything derived
/// from the old contents — specializations, incremental state,
/// retained fixpoints — while in-flight streaming evaluations keep
/// their pre-replace snapshot.
#[test]
fn replace_drops_all_derived_state() {
    let engine = Engine::with_doc_cache_cap(4);
    engine.load_document("S", "<a> c {x} </a>").unwrap();
    let q = engine.prepare("$S//c").unwrap();

    // Warm every cache: specializations, memo, retained fixpoint.
    engine.edit_document_text("S", "insert /0 c {y}").unwrap();
    for kind in SemiringKind::ALL {
        for route in ROUTES {
            q.eval(&engine, EvalOptions::new().semiring(kind).route(route))
                .unwrap();
        }
    }

    // Open a cursor on the pre-replace document, then replace.
    let cursor = q
        .eval_stream(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    engine.load_document("S", "<a> c {3} c {4} </a>").unwrap();

    // The in-flight cursor streams the snapshot it was bound to.
    let streamed = cursor.collect_result().unwrap().to_string();
    assert_eq!(streamed, "(c {2})", "cursor must keep its snapshot");

    // Every post-replace evaluation sees only the new contents.
    for kind in SemiringKind::ALL {
        for route in ROUTES {
            for mode in MODES {
                let out = q
                    .eval(&engine, opts(kind, route, mode))
                    .unwrap()
                    .to_string();
                assert!(
                    !out.contains('x') && !out.contains('y'),
                    "stale annotation after replace: {out} ({kind}/{route}/{mode})"
                );
            }
        }
    }
    let nat = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap()
        .to_string();
    assert_eq!(nat, "(c {7})");

    // Replace resets the edit lineage: the next edit starts at v1.
    let stats = engine.edit_document_text("S", "reannotate /0/0 5").unwrap();
    assert_eq!(stats.version, 1);
}
