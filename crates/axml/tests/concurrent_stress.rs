//! Concurrency stress: one shared [`Engine`], 8+ threads hammering
//! mixed `prepare` / `eval` / `load_document` / `remove_document`
//! traffic with `Route::Differential`, asserting
//!
//! - no deadlocks (the test terminates — every loop is a fixed
//!   iteration count with no unbounded waits),
//! - no cross-route disagreement (differential evaluation re-checks
//!   compiled-vs-interpreted and route-vs-route on every call),
//! - byte-identical results against a single-threaded reference run
//!   (rendered text compared verbatim).
//!
//! The engine runs with a small doc-cache cap, so the LRU eviction
//! path and the specialize-recompute path are both continuously
//! exercised under contention; batch threads additionally evaluate
//! with intra-query parallelism on the shared global pool.

use axml::{Engine, EvalOptions, Parallelism, Pool, Route, SemiringKind};
use std::sync::Arc;
use std::thread;

const STABLE_DOCS: [(&str, &str); 4] = [
    (
        "D0",
        "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
    ),
    ("D1", "<r> <s {w}> a {2} b </s> <t> a {u} </t> </r>"),
    ("D2", "<a> <a {p}> c </a> b {q} c {p*q} </a>"),
    ("D3", "<x {v}> <y {v}> <z {v}> c </z> </y> </x>"),
];

const QUERIES: [&str; 4] = [
    "$D0//c",
    "element r { $D1/*/* }",
    "($D2//a, $D2/b)",
    "$D3/descendant::*",
];

fn load_stable(engine: &Engine) {
    for (name, xml) in STABLE_DOCS {
        engine.load_document(name, xml).unwrap();
    }
}

/// `(query idx, kind)` → rendered differential result, computed on a
/// fresh single-threaded engine.
fn reference_results() -> Vec<((usize, SemiringKind), String)> {
    let engine = Engine::new();
    load_stable(&engine);
    let mut out = Vec::new();
    for (qi, src) in QUERIES.iter().enumerate() {
        let q = engine.prepare(src).unwrap();
        for kind in SemiringKind::ALL {
            let opts = EvalOptions::new().semiring(kind).route(Route::Differential);
            let r = q.eval(&engine, opts).unwrap();
            out.push(((qi, kind), r.to_string()));
        }
    }
    out
}

#[test]
fn eight_threads_mixed_workload_byte_identical() {
    let expected = Arc::new(reference_results());
    let engine = Arc::new(Engine::with_doc_cache_cap(5));
    load_stable(&engine);
    // Shared prepared queries: threads evaluate the same compiled
    // artifacts concurrently (the OnceLock per-kind caches race on
    // first use).
    let prepared: Arc<Vec<_>> = Arc::new(
        QUERIES
            .iter()
            .map(|src| engine.prepare(src).unwrap())
            .collect(),
    );

    let mut handles = Vec::new();

    // 4 eval threads: every (query, kind) pair, differentially, many
    // times over; results must match the single-threaded reference
    // byte for byte.
    for t in 0..4 {
        let engine = Arc::clone(&engine);
        let prepared = Arc::clone(&prepared);
        let expected = Arc::clone(&expected);
        handles.push(thread::spawn(move || {
            for round in 0..12 {
                // Stagger the starting point per thread and round so
                // threads hit different (doc × kind) caches at once.
                let offset = (t * 7 + round * 3) % expected.len();
                for j in 0..expected.len() {
                    let ((qi, kind), want) = &expected[(offset + j) % expected.len()];
                    let opts = EvalOptions::new()
                        .semiring(*kind)
                        .route(Route::Differential);
                    let got = prepared[*qi].eval(&engine, opts).unwrap();
                    assert_eq!(got.to_string(), *want, "q{qi} in {kind} diverged");
                }
            }
        }));
    }

    // 2 churn threads: load → query → remove ephemeral documents, and
    // occasionally re-load a stable document with identical content
    // (replacement is atomic; readers keep their Arc snapshot).
    for t in 0..2 {
        let engine = Arc::clone(&engine);
        handles.push(thread::spawn(move || {
            for i in 0..40 {
                let name = format!("churn_{t}_{i}");
                engine
                    .load_document(&name, "<r> <a {m}> c {n} </a> </r>")
                    .unwrap();
                let q = engine.prepare(&format!("${name}//c")).unwrap();
                let opts = EvalOptions::new()
                    .semiring(SemiringKind::NatPoly)
                    .route(Route::Differential);
                let got = q.eval(&engine, opts).unwrap();
                assert_eq!(got.to_string(), "(c {m*n})", "churn doc query");
                assert!(engine.remove_document(&name));
                let (stable, xml) = STABLE_DOCS[i % STABLE_DOCS.len()];
                engine.load_document(stable, xml).unwrap();
            }
        }));
    }

    // 2 batch threads: eval_batch over all (query, kind) pairs — with
    // and without intra-query parallelism — each entry checked against
    // the reference.
    for _ in 0..2 {
        let engine = Arc::clone(&engine);
        let prepared = Arc::clone(&prepared);
        let expected = Arc::clone(&expected);
        handles.push(thread::spawn(move || {
            for round in 0..6 {
                let par = if round % 2 == 0 {
                    Parallelism::sequential()
                } else {
                    Parallelism::threads(3)
                };
                let entries: Vec<_> = expected
                    .iter()
                    .map(|((qi, kind), _)| {
                        (
                            &prepared[*qi],
                            EvalOptions::new()
                                .semiring(*kind)
                                .route(Route::Differential)
                                .parallelism(par),
                        )
                    })
                    .collect();
                let results = engine.eval_batch(&entries);
                assert_eq!(results.len(), expected.len());
                for (res, ((qi, kind), want)) in results.iter().zip(expected.iter()) {
                    let got = res
                        .as_ref()
                        .unwrap_or_else(|e| panic!("batch entry q{qi} in {kind} errored: {e}"));
                    assert_eq!(got.to_string(), *want, "batch q{qi} in {kind} diverged");
                }
            }
        }));
    }

    for h in handles {
        h.join().expect("no stress thread panicked");
    }

    // The store ends exactly where it started: the four stable
    // documents, no churn leftovers.
    assert_eq!(engine.document_names(), ["D0", "D1", "D2", "D3"]);
}

/// `eval_many_docs` under thread contention: many threads fanning the
/// same prepared query over the same document set on one explicit
/// pool, all getting identical per-document results.
#[test]
fn eval_many_docs_concurrent() {
    let engine = Arc::new(Engine::new());
    for i in 0..6 {
        engine
            .load_document(&format!("M{i}"), &format!("<r> c {{x{i}}} d </r>"))
            .unwrap();
    }
    let q = Arc::new(engine.prepare("$M0//c").unwrap());
    let docs: Vec<String> = (0..6).map(|i| format!("M{i}")).collect();
    let expected: Vec<String> = (0..6).map(|i| format!("(c {{x{i}}})")).collect();
    let pool = Arc::new(Pool::new(4));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let engine = Arc::clone(&engine);
        let q = Arc::clone(&q);
        let docs = docs.clone();
        let expected = expected.clone();
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            for _ in 0..20 {
                let results = engine.eval_many_docs_on(
                    &pool,
                    &q,
                    &doc_refs,
                    EvalOptions::new().route(Route::Differential),
                );
                for (r, want) in results.iter().zip(&expected) {
                    assert_eq!(r.as_ref().unwrap().to_string(), *want);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
}
