//! Tail-latency isolation under mixed cheap/expensive load: the
//! scope-affine scheduler must keep a swarm of cheap requests from
//! queueing behind one long evaluation sharing the same small pool.
//!
//! - `cheap_requests_finish_before_the_expensive_one`: the ISSUE-10
//!   regression. Two pool workers, one long NatPoly shredded eval in
//!   the expensive lane, 32 cheap PosBool direct evals in the cheap
//!   lane, all concurrent. Every cheap request must complete before
//!   the expensive one does, and every result must stay byte-identical
//!   to a sequential reference run.
//! - `mixed_lane_stress_byte_identical`: 8 threads hammering all three
//!   lanes at once on one shared pool — lane hints order queues, they
//!   must never change bytes.

use axml::{Engine, EvalOptions, Lane, Parallelism, Pool, Route, SemiringKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// A deep × wide ℕ[X] document: `levels` nested rings, each ring
/// carrying `width` annotated `c` leaves, so `//c` in the shredded
/// route runs a fixpoint over `levels * width` facts.
fn big_doc(levels: usize, width: usize) -> String {
    let mut s = String::new();
    for l in 0..levels {
        s.push_str(&format!("<a {{x{l}}}> "));
        for w in 0..width {
            s.push_str(&format!("c {{y{l}_{w}}} "));
        }
    }
    for _ in 0..levels {
        s.push_str("</a> ");
    }
    s
}

/// A flat ℕ[X] document with `width` annotated leaves — cheap to
/// query on any route, big enough that a parallel eval actually
/// spawns pool tasks.
fn flat_doc(width: usize) -> String {
    let mut s = String::from("<r> ");
    for w in 0..width {
        s.push_str(&format!("c {{v{w}}} "));
    }
    s.push_str("</r>");
    s
}

const EXPENSIVE_QUERY: &str = "$BIG//c";
const CHEAP_QUERY: &str = "$SMALL//c";

fn expensive_opts() -> EvalOptions {
    EvalOptions::new()
        .semiring(SemiringKind::NatPoly)
        .route(Route::Shredded)
        .lane(Lane::Expensive)
        .parallelism(Parallelism::threads(2))
}

fn cheap_opts() -> EvalOptions {
    EvalOptions::new()
        .semiring(SemiringKind::PosBool)
        .route(Route::Direct)
        .lane(Lane::Cheap)
        .parallelism(Parallelism::threads(2))
}

fn load(engine: &Engine) {
    engine.load_document("BIG", &big_doc(64, 96)).unwrap();
    engine.load_document("SMALL", &flat_doc(96)).unwrap();
}

/// Sequential reference for one (query, opts) pair on a fresh engine.
fn reference(query: &str, opts: EvalOptions) -> String {
    let engine = Engine::new();
    load(&engine);
    let opts = opts.parallelism(Parallelism::sequential());
    engine.run(query, opts).unwrap().to_string()
}

#[test]
fn cheap_requests_finish_before_the_expensive_one() {
    const CHEAP: usize = 32;
    let want_expensive = reference(EXPENSIVE_QUERY, expensive_opts());
    let want_cheap = reference(CHEAP_QUERY, cheap_opts());

    let engine = Arc::new(Engine::new());
    load(&engine);
    let pool = Arc::new(Pool::new(2));
    let expensive = Arc::new(engine.prepare(EXPENSIVE_QUERY).unwrap());
    let cheap = Arc::new(engine.prepare(CHEAP_QUERY).unwrap());

    // Completion order: each request takes the next ticket as it
    // finishes; the expensive request must draw the last one.
    let finish = Arc::new(AtomicUsize::new(0));
    let (started_tx, started_rx) = mpsc::channel::<()>();

    let exp_thread = {
        let engine = Arc::clone(&engine);
        let pool = Arc::clone(&pool);
        let expensive = Arc::clone(&expensive);
        let finish = Arc::clone(&finish);
        thread::spawn(move || {
            started_tx.send(()).unwrap();
            let got = expensive
                .eval_with(&engine, expensive_opts(), &[], Some(&pool))
                .unwrap();
            let order = finish.fetch_add(1, Ordering::SeqCst);
            (got.to_string(), order)
        })
    };
    // Head start: the expensive eval is running (or about to) before
    // any cheap request is submitted — the adversarial ordering.
    started_rx.recv().unwrap();
    thread::sleep(std::time::Duration::from_millis(1));

    let mut cheap_threads = Vec::new();
    for i in 0..CHEAP {
        let engine = Arc::clone(&engine);
        let pool = Arc::clone(&pool);
        let cheap = Arc::clone(&cheap);
        let finish = Arc::clone(&finish);
        cheap_threads.push(thread::spawn(move || {
            let got = cheap
                .eval_with(&engine, cheap_opts(), &[], Some(&pool))
                .unwrap();
            let order = finish.fetch_add(1, Ordering::SeqCst);
            (i, got.to_string(), order)
        }));
    }

    let mut worst_cheap = 0;
    for h in cheap_threads {
        let (i, got, order) = h.join().expect("cheap thread finished");
        assert_eq!(got, want_cheap, "cheap request {i} diverged");
        worst_cheap = worst_cheap.max(order);
    }
    let (got, exp_order) = exp_thread.join().expect("expensive thread finished");
    assert_eq!(got, want_expensive, "expensive request diverged");
    assert_eq!(
        exp_order, CHEAP,
        "the expensive request must finish after all {CHEAP} cheap ones \
         (finished at position {exp_order}, worst cheap at {worst_cheap})"
    );

    // The isolation left a trace: waiters executed their own scopes'
    // tasks rather than parking (helped), and lanes existed.
    let stats = pool.stats();
    assert!(
        stats.owned + stats.helped + stats.stolen + stats.injected > 0,
        "the pool executed tasks: {stats:?}"
    );
}

#[test]
fn mixed_lane_stress_byte_identical() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    let lanes = [Lane::Cheap, Lane::Normal, Lane::Expensive];
    let cases: Vec<(String, EvalOptions)> = vec![
        (EXPENSIVE_QUERY.into(), expensive_opts()),
        (CHEAP_QUERY.into(), cheap_opts()),
        (
            "element p { $SMALL/* }".into(),
            EvalOptions::new()
                .semiring(SemiringKind::Nat)
                .route(Route::Differential)
                .parallelism(Parallelism::threads(2)),
        ),
        (
            "$BIG/a".into(),
            EvalOptions::new()
                .semiring(SemiringKind::Why)
                .route(Route::Direct)
                .parallelism(Parallelism::threads(2)),
        ),
    ];
    let expected: Vec<String> = cases.iter().map(|(q, o)| reference(q, *o)).collect();

    let engine = Arc::new(Engine::new());
    load(&engine);
    let pool = Arc::new(Pool::new(4));
    let prepared: Arc<Vec<_>> = Arc::new(
        cases
            .iter()
            .map(|(q, _)| engine.prepare(q).unwrap())
            .collect(),
    );
    let cases = Arc::new(cases);
    let expected = Arc::new(expected);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let engine = Arc::clone(&engine);
        let pool = Arc::clone(&pool);
        let prepared = Arc::clone(&prepared);
        let cases = Arc::clone(&cases);
        let expected = Arc::clone(&expected);
        handles.push(thread::spawn(move || {
            for round in 0..ROUNDS {
                let ci = (t + round) % cases.len();
                // Rotate the lane hint independently of the case, so
                // every query runs in every lane across the test.
                let lane = lanes[(t + round) % lanes.len()];
                let opts = cases[ci].1.lane(lane);
                let got = prepared[ci]
                    .eval_with(&engine, opts, &[], Some(&pool))
                    .unwrap();
                assert_eq!(
                    got.to_string(),
                    expected[ci],
                    "thread {t} round {round}: case {ci} in {lane:?} diverged"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("no stress thread panicked");
    }
}
