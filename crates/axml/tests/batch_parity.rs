//! `Engine::eval_batch` parity: for every randomly composed batch,
//! the batch results must be **element-wise identical** to calling
//! `prepared.eval` sequentially — same `Ok` values (structural
//! equality *and* rendered text), same `Err`s (rendered text), in the
//! same order — across all 7 [`SemiringKind`]s, all routes, both
//! modes, and error entries (unknown documents, unsupported routes).
//! Errors must stay per-entry: a failing entry never poisons its
//! neighbors.

use axml::{Engine, EvalOptions, Parallelism, Pool, PreparedQuery, Route, SemiringKind};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The query pool: healthy queries, a query over a document that is
/// never loaded (per-entry `UnknownDocument`), and a non-shreddable
/// query (per-entry `UnsupportedRoute` when the batch asks for the
/// relational route).
const QUERY_POOL: [&str; 5] = [
    "$S/*/*",              // shreddable chain
    "element p { $S//c }", // element constructor: not shreddable
    "($T//d, $S/b)",       // two documents; not shreddable (union of inputs)
    "$MISSING/b",          // document never loaded: always errors
    "for $x in $S return if (name($x) = a) then ($x)/c else ()",
];

const ROUTES: [Route; 4] = [
    Route::Direct,
    Route::ViaNrc,
    Route::Shredded,
    Route::Differential,
];

struct Fixture {
    engine: Engine,
    prepared: Vec<PreparedQuery>,
    pool: Pool,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let engine = Engine::new();
        engine
            .load_document(
                "S",
                "<a {z}> <b {x1}> d {y1} c </b> <c {x2}> d {y2} e {y3} </c> </a>",
            )
            .unwrap();
        engine
            .load_document("T", "<r> <s {w}> d {2} </s> d </r>")
            .unwrap();
        let prepared = QUERY_POOL
            .iter()
            .map(|src| engine.prepare(src).unwrap())
            .collect();
        Fixture {
            engine,
            prepared,
            pool: Pool::new(4),
        }
    })
}

fn arb_entry() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
    (
        0..QUERY_POOL.len(),
        0..SemiringKind::ALL.len(),
        0..ROUTES.len(),
        0..2usize, // provenance-first?
        0..2usize, // intra-query parallelism?
    )
}

fn build_opts(entry: &(usize, usize, usize, usize, usize)) -> EvalOptions {
    let (_, ki, ri, pf, par) = *entry;
    let mut opts = EvalOptions::new()
        .semiring(SemiringKind::ALL[ki])
        .route(ROUTES[ri]);
    if pf == 1 {
        opts = opts.provenance_first();
    }
    if par == 1 {
        opts = opts.parallelism(Parallelism::threads(3));
    }
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_matches_sequential_elementwise(entries in vec(arb_entry(), 0..24)) {
        let fix = fixture();
        let batch: Vec<(&PreparedQuery, EvalOptions)> = entries
            .iter()
            .map(|e| (&fix.prepared[e.0], build_opts(e)))
            .collect();
        // The reference: plain sequential eval, one entry at a time.
        let sequential: Vec<_> = batch.iter().map(|(q, o)| q.eval(&fix.engine, *o)).collect();
        // Same batch through the global pool and an explicit pool.
        for results in [
            fix.engine.eval_batch(&batch),
            fix.engine.eval_batch_on(&fix.pool, &batch),
        ] {
            prop_assert_eq!(results.len(), sequential.len());
            for (i, (got, want)) in results.iter().zip(&sequential).enumerate() {
                match (got, want) {
                    (Ok(g), Ok(w)) => {
                        prop_assert_eq!(g, w, "entry {} value diverged", i);
                        prop_assert_eq!(
                            g.to_string(),
                            w.to_string(),
                            "entry {} rendering diverged",
                            i
                        );
                    }
                    (Err(g), Err(w)) => prop_assert_eq!(
                        g.to_string(),
                        w.to_string(),
                        "entry {} error diverged",
                        i
                    ),
                    _ => prop_assert!(
                        false,
                        "entry {} outcome diverged: batch {:?} vs sequential {:?}",
                        i,
                        got.as_ref().map(|r| r.to_string()),
                        want.as_ref().map(|r| r.to_string())
                    ),
                }
            }
        }
    }
}

/// The documented per-entry error guarantees, pinned deterministically:
/// an unknown document and an unsupported route each fail their own
/// entry while every healthy entry still succeeds.
#[test]
fn errors_are_per_entry() {
    let fix = fixture();
    let nat = EvalOptions::new().semiring(SemiringKind::Nat);
    let batch: Vec<(&PreparedQuery, EvalOptions)> = vec![
        (&fix.prepared[0], nat),                        // ok
        (&fix.prepared[3], nat),                        // unknown document
        (&fix.prepared[1], nat.route(Route::Shredded)), // unsupported route
        (&fix.prepared[1], nat),                        // ok
    ];
    let results = fix.engine.eval_batch(&batch);
    assert!(results[0].is_ok());
    assert!(results[1]
        .as_ref()
        .unwrap_err()
        .to_string()
        .contains("MISSING"));
    assert!(results[2]
        .as_ref()
        .unwrap_err()
        .to_string()
        .contains("shredded"));
    assert!(results[3].is_ok(), "healthy entries unaffected by errors");
}
