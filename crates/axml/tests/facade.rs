//! Integration tests for the `axml` facade: route agreement across
//! every runtime-selectable semiring, mode agreement (Theorem 1 as an
//! API property), prepared-query reuse, aliasing, and error spans.

use axml::{AxmlError, Engine, EvalOptions, Route, SemiringKind};

const FIG1_DOC: &str = "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>";
const FIG1_QUERY: &str =
    "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }";

fn fig1_engine() -> Engine {
    let engine = Engine::new();
    engine.load_document("S", FIG1_DOC).unwrap();
    engine
}

/// Acceptance criterion: `Route::Differential` agrees across
/// `Direct`/`ViaNrc` on the Figure 1 query for every `SemiringKind`,
/// in both evaluation modes.
#[test]
fn differential_agrees_on_fig1_for_every_semiring() {
    let engine = fig1_engine();
    let q = engine.prepare(FIG1_QUERY).unwrap();
    for kind in SemiringKind::ALL {
        let native = q
            .eval(
                &engine,
                EvalOptions::new().route(Route::Differential).semiring(kind),
            )
            .unwrap_or_else(|e| panic!("differential {kind} (in-semiring) failed: {e}"));
        assert_eq!(native.kind(), kind);

        let prov_first = q
            .eval(
                &engine,
                EvalOptions::new()
                    .route(Route::Differential)
                    .semiring(kind)
                    .provenance_first(),
            )
            .unwrap_or_else(|e| panic!("differential {kind} (provenance-first) failed: {e}"));
        // Theorem 1: evaluate-then-specialize == specialize-then-evaluate.
        assert_eq!(native, prov_first, "modes disagree in {kind}");
    }
}

/// The shredded route joins the differential on step chains, again in
/// every semiring.
#[test]
fn differential_includes_shredding_on_step_chains() {
    let engine = Engine::new();
    engine
        .load_document(
            "T",
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> c {y2} </d> </c> </a>",
        )
        .unwrap();
    let q = engine.prepare("$T//c").unwrap();
    assert!(q.is_step_chain());
    for kind in SemiringKind::ALL {
        q.eval(
            &engine,
            EvalOptions::new().route(Route::Differential).semiring(kind),
        )
        .unwrap_or_else(|e| panic!("differential-with-shredding {kind} failed: {e}"));
    }
}

#[test]
fn fig1_answers_match_the_paper() {
    let engine = fig1_engine();
    let q = engine.prepare(FIG1_QUERY).unwrap();

    let sym = q.eval(&engine, EvalOptions::new()).unwrap();
    let shown = sym.to_string();
    assert!(shown.contains("x2*y2*z + x1*y1*z"), "{shown}");
    assert!(
        shown.contains("e {x2*y3*z}") || shown.contains("x2*y3*z"),
        "{shown}"
    );

    // Bag semantics: two derivations of d, one of e.
    let bags = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    assert_eq!(bags.to_string(), "<p> d {2} e </p>");

    // Why-provenance: d has two witnesses.
    let why = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Why))
        .unwrap();
    let axml_uxml::Value::Tree(t) = why.as_why().unwrap() else {
        panic!("expected tree")
    };
    let d = axml_uxml::leaf("d");
    assert_eq!(t.children().get(&d).num_witnesses(), 2);
}

#[test]
fn prepared_query_is_reusable_and_shared() {
    let engine = fig1_engine();
    let q = engine.prepare("$S/*").unwrap();
    let a = q.eval(&engine, EvalOptions::new()).unwrap();
    let b = q.eval(&engine, EvalOptions::new()).unwrap();
    assert_eq!(a, b);

    // Clone + use from another thread: the engine and the prepared
    // query are both Sync.
    let q2 = q.clone();
    let out = std::thread::scope(|s| {
        s.spawn(|| q2.eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat)))
            .join()
            .unwrap()
    })
    .unwrap();
    assert_eq!(out.kind(), SemiringKind::Nat);
}

#[test]
fn aliases_bind_other_documents() {
    let engine = Engine::new();
    engine
        .load_document("inventory_v2", "<r> a {2} </r>")
        .unwrap();
    let q = engine.prepare("$S/*").unwrap();

    let err = q.eval(&engine, EvalOptions::new()).unwrap_err();
    let AxmlError::UnknownDocument { name, available } = &err else {
        panic!("expected UnknownDocument, got {err:?}")
    };
    assert_eq!(name, "S");
    assert_eq!(available, &["inventory_v2".to_string()]);

    let out = q
        .eval_bound(&engine, EvalOptions::new(), &[("S", "inventory_v2")])
        .unwrap();
    assert_eq!(out.to_string(), "(a {2})");
}

#[test]
fn shredded_route_rejects_non_chains() {
    let engine = fig1_engine();
    let q = engine.prepare(FIG1_QUERY).unwrap();
    assert!(!q.is_step_chain());
    let err = q
        .eval(&engine, EvalOptions::new().route(Route::Shredded))
        .unwrap_err();
    let AxmlError::UnsupportedRoute {
        route: Route::Shredded,
        construct,
    } = &err
    else {
        panic!("expected UnsupportedRoute, got {err:?}")
    };
    // The error names the construct, and the prepared query exposes it.
    assert!(construct.contains("element constructor"), "{construct}");
    assert_eq!(q.shred_ineligibility(), Some(construct.as_str()));
    assert!(err.to_string().contains("element constructor"), "{err}");
}

#[test]
fn ineligible_constructs_are_named_precisely() {
    let engine = fig1_engine();
    for (query, needle) in [
        ("let $x := $S return $x", "let binding"),
        ("annot {2} ($S/child::*)", "annot"),
        ("element r { $S//d }", "element constructor"),
    ] {
        let q = engine.prepare(query).unwrap();
        let err = q
            .eval(&engine, EvalOptions::new().route(Route::Shredded))
            .unwrap_err();
        let AxmlError::UnsupportedRoute { construct, .. } = &err else {
            panic!("{query}: expected UnsupportedRoute, got {err:?}")
        };
        assert!(construct.contains(needle), "{query}: {construct}");
    }
}

/// The six §7-fragment example queries: navigation chains, step
/// composition, union, branching predicates and label tests. Each one
/// is shreddable, and `Route::Differential` — which runs Direct,
/// ViaNrc *and* Shredded and asserts pairwise agreement — passes in
/// all seven semirings, in both evaluation modes.
const SECTION7_EXAMPLES: [&str; 6] = [
    "$T//c",
    "$T/child::*/child::*",
    "($T//c, $T/child::*/child::b)",
    "for $x in $T//a return ($x)/child::c",
    "for $x in $T//a return for $y in ($x)/child::c return ($x)",
    "for $x in $T//* return if (name($x) = c) then ($x) else ()",
];

fn section7_engine() -> Engine {
    let engine = Engine::new();
    engine
        .load_document(
            "T",
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap();
    engine
}

#[test]
fn differential_passes_on_all_section7_examples_in_every_semiring() {
    let engine = section7_engine();
    for query in SECTION7_EXAMPLES {
        let q = engine.prepare(query).unwrap();
        assert!(q.is_shreddable(), "{query} should be §7-eligible");
        for kind in SemiringKind::ALL {
            let native = q
                .eval(
                    &engine,
                    EvalOptions::new().route(Route::Differential).semiring(kind),
                )
                .unwrap_or_else(|e| panic!("differential {kind} failed on {query}: {e}"));
            let prov_first = q
                .eval(
                    &engine,
                    EvalOptions::new()
                        .route(Route::Differential)
                        .semiring(kind)
                        .provenance_first(),
                )
                .unwrap_or_else(|e| {
                    panic!("differential {kind} (provenance-first) failed on {query}: {e}")
                });
            assert_eq!(native, prov_first, "modes disagree on {query} in {kind}");
        }
    }
}

#[test]
fn shredded_route_answers_match_direct_on_section7_examples() {
    let engine = section7_engine();
    for query in SECTION7_EXAMPLES {
        let q = engine.prepare(query).unwrap();
        let direct = q.eval(&engine, EvalOptions::new()).unwrap();
        let shredded = q
            .eval(&engine, EvalOptions::new().route(Route::Shredded))
            .unwrap();
        assert_eq!(direct, shredded, "shredded diverges on {query}");
    }
}

#[test]
fn query_errors_carry_spans() {
    let engine = Engine::new();
    let err = engine.prepare("for $x in $S\nreturn (").unwrap_err();
    let AxmlError::QueryParse { span, .. } = &err else {
        panic!("expected QueryParse, got {err:?}")
    };
    assert_eq!(span.line, 2);
    let rendered = err.to_string();
    assert!(
        rendered.contains("return (") && rendered.contains('^'),
        "{rendered}"
    );

    // Type errors pass through too.
    let err2 = engine.prepare("name($S)").unwrap_err();
    assert!(matches!(err2, AxmlError::Type { .. }), "{err2:?}");
}

#[test]
fn run_is_prepare_plus_eval() {
    let engine = fig1_engine();
    let one_shot = engine.run(FIG1_QUERY, EvalOptions::new()).unwrap();
    let prepared = engine
        .prepare(FIG1_QUERY)
        .unwrap()
        .eval(&engine, EvalOptions::new())
        .unwrap();
    assert_eq!(one_shot, prepared);
}

#[test]
fn annot_scalars_specialize_with_the_query() {
    // A query that *introduces* annotations must have them pushed
    // through the same homomorphism as the data.
    let engine = Engine::new();
    engine.load_document("S", "<r> a {w} </r>").unwrap();
    let q = engine.prepare("annot {3*u} ($S/*)").unwrap();
    let bags = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    // u ↦ 1, w ↦ 1: multiplicity 3·1 = 3.
    assert_eq!(bags.to_string(), "(a {3})");
    let sym = q.eval(&engine, EvalOptions::new()).unwrap();
    assert_eq!(sym.to_string(), "(a {3*u*w})");
}

/// `Engine::prepare` / `load_document` must return `Err` on hostile
/// input — never panic or abort the process.
#[test]
fn hostile_inputs_error_cleanly() {
    let engine = Engine::new();
    let paren_bomb = format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000));
    let for_bomb = format!("{}()", "for $x in () return ".repeat(100_000));
    let annot_bomb = format!(
        "annot {{{}x{}}} ()",
        "(".repeat(100_000),
        ")".repeat(100_000)
    );
    for bad in [
        paren_bomb.as_str(),
        for_bomb.as_str(),
        annot_bomb.as_str(),
        "for $x in",
        "if ($S = $T) then a else b", // type error: sets compared
        "",
        "🦀",
    ] {
        assert!(
            engine.prepare(bad).is_err(),
            "prepare({bad:.40}…) should err"
        );
    }
    let element_bomb = "<a> ".repeat(200_000);
    for bad in [element_bomb.as_str(), "<a> <b </a>", "<a {not-a-poly!}/>"] {
        assert!(
            engine.load_document("d", bad).is_err(),
            "load_document({bad:.40}…) should err"
        );
    }
}

/// The per-kind document caches honor the construction-time cap:
/// specializations are evicted oldest-first, and evaluation stays
/// correct after eviction (the copy is transparently recomputed).
#[test]
fn doc_cache_cap_evicts_oldest_first() {
    let engine = Engine::with_doc_cache_cap(2);
    assert_eq!(engine.doc_cache_cap(), Some(2));
    for name in ["A", "B", "C"] {
        engine
            .load_document(name, &format!("<r> {} {{2}} </r>", name.to_lowercase()))
            .unwrap();
    }
    let nat = EvalOptions::new().semiring(SemiringKind::Nat);
    for name in ["A", "B", "C"] {
        let q = engine.prepare(&format!("${name}/*")).unwrap();
        q.eval(&engine, nat).unwrap();
    }
    // Cap 2: A's Nat copy (oldest) was evicted; B and C are cached.
    assert_eq!(engine.cached_specializations("A"), []);
    assert_eq!(engine.cached_specializations("B"), [SemiringKind::Nat]);
    assert_eq!(engine.cached_specializations("C"), [SemiringKind::Nat]);

    // Evaluating A again recomputes (correctness unaffected) and
    // pushes B out in turn.
    let q = engine.prepare("$A/*").unwrap();
    assert_eq!(q.eval(&engine, nat).unwrap().to_string(), "(a {2})");
    assert_eq!(engine.cached_specializations("A"), [SemiringKind::Nat]);
    assert_eq!(engine.cached_specializations("B"), []);

    // Mixed kinds count against the same cap: two more kinds on C
    // evict everything else.
    let qc = engine.prepare("$C/*").unwrap();
    qc.eval(&engine, EvalOptions::new().semiring(SemiringKind::Why))
        .unwrap();
    qc.eval(&engine, EvalOptions::new().semiring(SemiringKind::Trio))
        .unwrap();
    assert_eq!(engine.cached_specializations("A"), []);
    assert_eq!(
        engine.cached_specializations("C"),
        [SemiringKind::Why, SemiringKind::Trio]
    );
}

/// The cap is a true LRU (PR 5): *reading* a cached specialization
/// refreshes its recency, so a hot entry survives eviction pressure
/// that would have expelled it under fill-order FIFO.
#[test]
fn doc_cache_cap_is_lru_on_read() {
    let engine = Engine::with_doc_cache_cap(2);
    let nat = EvalOptions::new().semiring(SemiringKind::Nat);
    for name in ["A", "B", "C"] {
        engine
            .load_document(name, &format!("<r> {} {{2}} </r>", name.to_lowercase()))
            .unwrap();
    }
    let qa = engine.prepare("$A/*").unwrap();
    qa.eval(&engine, nat).unwrap(); // fill A
    engine.prepare("$B/*").unwrap().eval(&engine, nat).unwrap(); // fill B
    qa.eval(&engine, nat).unwrap(); // touch A: now more recent than B
    engine.prepare("$C/*").unwrap().eval(&engine, nat).unwrap(); // fill C

    // FIFO would evict A (oldest fill); LRU must evict B instead.
    assert_eq!(engine.cached_specializations("A"), [SemiringKind::Nat]);
    assert_eq!(engine.cached_specializations("B"), []);
    assert_eq!(engine.cached_specializations("C"), [SemiringKind::Nat]);
}

/// Document churn (load → specialize → remove, repeatedly) must not
/// starve the live working set: dead queue entries are purged on
/// eviction passes, so long-lived hot documents stay cached no matter
/// how many ephemeral documents pass through the store.
#[test]
fn doc_cache_survives_document_churn() {
    let engine = Engine::with_doc_cache_cap(3);
    let nat = EvalOptions::new().semiring(SemiringKind::Nat);
    for name in ["hotA", "hotB"] {
        engine.load_document(name, "<r> a {3} </r>").unwrap();
        engine
            .prepare(&format!("${name}/*"))
            .unwrap()
            .eval(&engine, nat)
            .unwrap();
    }
    let qa = engine.prepare("$hotA/*").unwrap();
    let qb = engine.prepare("$hotB/*").unwrap();
    for i in 0..100 {
        let name = format!("churn{i}");
        engine.load_document(&name, "<r> x </r>").unwrap();
        engine
            .prepare(&format!("${name}/*"))
            .unwrap()
            .eval(&engine, nat)
            .unwrap();
        assert!(engine.remove_document(&name));
        // Keep the hot documents hot.
        qa.eval(&engine, nat).unwrap();
        qb.eval(&engine, nat).unwrap();
    }
    assert_eq!(engine.cached_specializations("hotA"), [SemiringKind::Nat]);
    assert_eq!(engine.cached_specializations("hotB"), [SemiringKind::Nat]);
    assert_eq!(engine.document_names(), ["hotA", "hotB"]);
}

/// Queue entries for replaced documents must not occupy cap slots:
/// with cap 2, replacing a specialized document and then specializing
/// a third must keep the *live* oldest specialization cached.
#[test]
fn doc_cache_cap_ignores_dead_entries() {
    let engine = Engine::with_doc_cache_cap(2);
    let nat = EvalOptions::new().semiring(SemiringKind::Nat);
    for name in ["A", "B"] {
        engine.load_document(name, "<r> a </r>").unwrap();
        engine
            .prepare(&format!("${name}/*"))
            .unwrap()
            .eval(&engine, nat)
            .unwrap();
    }
    // Replace B: its queued specialization entry is now dead.
    engine.load_document("B", "<r> b </r>").unwrap();
    engine.load_document("C", "<r> c </r>").unwrap();
    engine.prepare("$C/*").unwrap().eval(&engine, nat).unwrap();
    // Only two live specializations (A, C) exist — A must survive.
    assert_eq!(engine.cached_specializations("A"), [SemiringKind::Nat]);
    assert_eq!(engine.cached_specializations("C"), [SemiringKind::Nat]);
}

/// An uncapped engine (the default) never evicts; a 0-cap engine
/// caches nothing but still answers correctly.
#[test]
fn doc_cache_cap_edge_cases() {
    let uncapped = Engine::new();
    assert_eq!(uncapped.doc_cache_cap(), None);
    uncapped.load_document("S", "<r> a </r>").unwrap();
    let q = uncapped.prepare("$S/*").unwrap();
    for kind in SemiringKind::ALL {
        q.eval(&uncapped, EvalOptions::new().semiring(kind))
            .unwrap();
    }
    // All 6 non-symbolic kinds stay cached.
    assert_eq!(uncapped.cached_specializations("S").len(), 6);

    let nocache = Engine::with_doc_cache_cap(0);
    nocache.load_document("S", "<r> a {3} </r>").unwrap();
    let q = nocache.prepare("$S/*").unwrap();
    let out = q
        .eval(&nocache, EvalOptions::new().semiring(SemiringKind::Nat))
        .unwrap();
    assert_eq!(out.to_string(), "(a {3})");
    assert_eq!(nocache.cached_specializations("S"), []);
}

#[test]
fn tropical_costs_add_along_paths() {
    let engine = Engine::new();
    // In ℕ[X] → Tropical with every variable ↦ cost 0, constants k
    // map to 0 unless 0 (∞). Use multiplicities to model cost via
    // variables instead: the canonical hom sends every variable to 1
    // (= cost 0), so any present path costs 0 and absent data is ∞.
    engine.load_document("S", "<a> b {x} </a> ").unwrap();
    let q = engine.prepare("$S/b").unwrap();
    let out = q
        .eval(&engine, EvalOptions::new().semiring(SemiringKind::Tropical))
        .unwrap();
    let axml_uxml::Value::Set(f) = out.as_tropical().unwrap() else {
        panic!()
    };
    assert_eq!(
        f.get(&axml_uxml::leaf("b")),
        axml_semiring::Tropical::cost(0)
    );
}
