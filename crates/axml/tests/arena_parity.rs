//! Arena-vs-Arc differential at the engine level.
//!
//! The engine now stores every document hash-consed in a columnar
//! arena (canonical `Arc` handles, shared across documents). This
//! suite pins that the representation change is invisible to results:
//!
//! - engine evaluation over **interned** documents equals the core
//!   interpreter over a **freshly parsed, never-interned** copy of the
//!   same document (the pre-arena `Arc` representation);
//! - `Route::Differential` stays green across all 7 semirings — that
//!   route already cross-checks Direct, ViaNrc, Shredded (on step
//!   chains) and the reference interpreters against each other, so one
//!   green differential run covers every route over arena storage;
//! - the dedup stat behaves: N documents sharing subtrees grow the
//!   arena sub-linearly, and reloading a document adds nothing.

use axml::{AxmlResult, Engine, EvalOptions, Route, SemiringKind};
use axml_core::{elaborate, eval::eval_with, parse_query};
use axml_semiring::NatPoly;
use axml_uxml::{parse_forest, Value};

/// Documents with heavy repeated substructure, within and across
/// documents (`<b {x1}> d {y1} </b>` recurs everywhere).
const SHARED_DOCS: [(&str, &str); 3] = [
    (
        "D0",
        "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
    ),
    (
        "D1",
        "<a> <b {x1}> d {y1} </b> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
    ),
    (
        "D2",
        "<r {w}> <a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a> <b {x1}> d {y1} </b> </r>",
    ),
];

const QUERIES: [&str; 5] = [
    "$S/*/*",
    "$S//d",
    "$S/descendant::b",
    "element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }",
    "annot {3*x1} ($S/strict-descendant::*)",
];

fn shared_engine() -> Engine {
    let engine = Engine::new();
    for (name, xml) in SHARED_DOCS {
        engine.load_document(name, xml).unwrap();
    }
    engine
}

/// Engine evaluation (arena-interned storage) vs the core interpreter
/// on a freshly parsed forest that never went near an arena.
#[test]
fn engine_matches_uninterned_interpreter() {
    let engine = shared_engine();
    for (name, xml) in SHARED_DOCS {
        let fresh = parse_forest::<NatPoly>(xml).unwrap();
        for qsrc in QUERIES {
            let qsrc = qsrc.replace("$S", &format!("${name}"));
            let s = parse_query::<NatPoly>(&qsrc).unwrap();
            let q = elaborate(&s).unwrap();
            let reference = eval_with(&q, &[(name, Value::Set(fresh.clone()))]).unwrap();
            let prepared = engine.prepare(&qsrc).unwrap();
            let got = prepared
                .eval(&engine, EvalOptions::new().semiring(SemiringKind::NatPoly))
                .unwrap();
            let AxmlResult::NatPoly(got) = got else {
                panic!("expected a NatPoly result");
            };
            assert_eq!(got, reference, "arena vs Arc disagree on {qsrc}");
        }
    }
}

/// All 7 semirings × all routes (via `Route::Differential`, which
/// cross-checks every applicable route and the reference interpreters
/// internally), over arena-interned documents, in both evaluation
/// modes.
#[test]
fn differential_green_on_shared_corpus_all_semirings() {
    let engine = shared_engine();
    for (name, _) in SHARED_DOCS {
        for qsrc in ["$S//d", "$S/*/*"] {
            let qsrc = qsrc.replace("$S", &format!("${name}"));
            let q = engine.prepare(&qsrc).unwrap();
            for kind in SemiringKind::ALL {
                let native = q
                    .eval(
                        &engine,
                        EvalOptions::new().route(Route::Differential).semiring(kind),
                    )
                    .unwrap_or_else(|e| panic!("differential {kind} on {qsrc} failed: {e}"));
                let prov_first = q
                    .eval(
                        &engine,
                        EvalOptions::new()
                            .route(Route::Differential)
                            .semiring(kind)
                            .provenance_first(),
                    )
                    .unwrap_or_else(|e| panic!("prov-first {kind} on {qsrc} failed: {e}"));
                assert_eq!(native, prov_first, "modes disagree in {kind} on {qsrc}");
            }
        }
    }
}

/// Content addressing across documents: loading N documents that share
/// subtrees stores each distinct subtree once.
#[test]
fn dedup_stat_is_sublinear_on_shared_corpus() {
    let engine = Engine::new();
    engine.load_document("base", SHARED_DOCS[0].1).unwrap();
    let one = engine.storage_stats();
    assert!(one.distinct_subtrees <= one.logical_nodes);

    // N more copies of the same document under fresh names: logical
    // size grows linearly, the arena not at all.
    for i in 0..8 {
        engine
            .load_document(&format!("copy{i}"), SHARED_DOCS[0].1)
            .unwrap();
    }
    let many = engine.storage_stats();
    assert_eq!(many.logical_nodes, 9 * one.logical_nodes);
    assert_eq!(
        many.distinct_subtrees, one.distinct_subtrees,
        "identical documents must intern zero new subtrees"
    );

    // A document *overlapping* (not equal): only its genuinely new
    // subtrees are added — D2 embeds D0's whole tree plus one repeated
    // branch, so far fewer new nodes than its logical size.
    let d2 = parse_forest::<NatPoly>(SHARED_DOCS[2].1).unwrap();
    engine.load_document("overlap", SHARED_DOCS[2].1).unwrap();
    let with_overlap = engine.storage_stats();
    let added = with_overlap.distinct_subtrees - many.distinct_subtrees;
    assert!(
        added < d2.size(),
        "overlapping document must share: added {added} of {} nodes",
        d2.size()
    );

    // Reloading an existing name is also free for the arena.
    engine.load_document("base", SHARED_DOCS[0].1).unwrap();
    assert_eq!(
        engine.storage_stats().distinct_subtrees,
        with_overlap.distinct_subtrees
    );
}

/// Evaluation results are unaffected by *how much* sharing the arena
/// has accumulated: a fresh engine and a heavily shared engine agree.
#[test]
fn results_independent_of_arena_history() {
    let shared = shared_engine();
    for (name, xml) in SHARED_DOCS {
        let isolated = Engine::new();
        isolated.load_document(name, xml).unwrap();
        for qsrc in QUERIES {
            let qsrc = qsrc.replace("$S", &format!("${name}"));
            let a = shared
                .run(&qsrc, EvalOptions::new().semiring(SemiringKind::Why))
                .unwrap();
            let b = isolated
                .run(&qsrc, EvalOptions::new().semiring(SemiringKind::Why))
                .unwrap();
            assert_eq!(a, b, "arena history changed a result on {qsrc}");
        }
    }
}
