//! Wall-clock deadlines (`EvalOptions::deadline` / `timeout`).
//!
//! The contract under test: an already-expired deadline surfaces as
//! `AxmlError::Budget` on **every** route (checked at route starts —
//! each differential leg counts — and at semi-naive fixpoint round
//! boundaries), and a generous deadline changes nothing at all —
//! byte-identical results to an undeadlined evaluation.

use axml::{AxmlError, Engine, EvalOptions, Parallelism, Route, SemiringKind};
use std::time::{Duration, Instant};

const DOC: &str = "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>";

/// In the §7 fragment, so all four routes (and every differential
/// leg) can run it.
const QUERY: &str = "$S//d";

fn engine() -> Engine {
    let engine = Engine::new();
    engine.load_document("S", DOC).unwrap();
    engine
}

#[test]
fn an_expired_deadline_is_a_budget_error_on_every_route() {
    let engine = engine();
    let q = engine.prepare(QUERY).unwrap();
    for route in [
        Route::Direct,
        Route::ViaNrc,
        Route::Shredded,
        Route::Differential,
    ] {
        for par in [Parallelism::sequential(), Parallelism::threads(4)] {
            let opts = EvalOptions::new()
                .route(route)
                .parallelism(par)
                .deadline(Instant::now());
            match q.eval(&engine, opts) {
                Err(AxmlError::Budget { resource, at }) => {
                    assert_eq!(resource, axml::BudgetKind::WallClock);
                    assert!(!at.is_empty(), "budget error should name its boundary")
                }
                other => panic!("{route:?}: expected Budget, got {other:?}"),
            }
        }
    }
}

#[test]
fn an_expired_deadline_trips_provenance_first_too() {
    let engine = engine();
    let q = engine.prepare(QUERY).unwrap();
    let opts = EvalOptions::new()
        .semiring(SemiringKind::Nat)
        .provenance_first()
        .deadline(Instant::now());
    assert!(matches!(
        q.eval(&engine, opts),
        Err(AxmlError::Budget { .. })
    ));
}

#[test]
fn a_generous_deadline_is_a_no_op() {
    let engine = engine();
    let q = engine.prepare(QUERY).unwrap();
    for route in [
        Route::Direct,
        Route::ViaNrc,
        Route::Shredded,
        Route::Differential,
    ] {
        for kind in SemiringKind::ALL {
            let plain = q
                .eval(&engine, EvalOptions::new().route(route).semiring(kind))
                .unwrap();
            let timed = q
                .eval(
                    &engine,
                    EvalOptions::new()
                        .route(route)
                        .semiring(kind)
                        .timeout(Duration::from_secs(3600)),
                )
                .unwrap();
            assert_eq!(
                plain.to_string(),
                timed.to_string(),
                "{route:?}/{kind:?}: a generous deadline must not change the result"
            );
        }
    }
}

#[test]
fn an_unrepresentable_timeout_means_no_deadline() {
    // Instant::now() + Duration::MAX overflows; the builder degrades
    // to "no deadline" rather than wrapping into the past.
    let opts = EvalOptions::new().timeout(Duration::MAX);
    assert_eq!(opts.deadline, None);
    let engine = engine();
    let q = engine.prepare(QUERY).unwrap();
    assert!(q.eval(&engine, opts).is_ok());
}
