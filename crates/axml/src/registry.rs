//! [`QueryRegistry`]: a concurrent, compile-once store of
//! [`PreparedQuery`]s keyed by stable query-hash handles.
//!
//! The server's `POST /prepare` endpoint needs three properties the
//! engine alone does not give it: a *stable* handle clients can cache
//! across connections (and across server restarts — the handle is a
//! pure function of the query text, not of registration order),
//! *compile exactly once* per query text even when many connections
//! race to prepare the same query, and cheap concurrent lookup on the
//! eval hot path. The registry provides all three and nothing else;
//! it holds no documents and no locks shared with the engine.
//!
//! Handles are `"q"` followed by the 16-hex-digit FNV-1a 64 hash of
//! the query text. FNV is stable across processes and platforms
//! (unlike `DefaultHasher`, which is randomly seeded per process). A
//! genuine 64-bit collision between two *different* live query texts
//! is detected (sources are stored and compared) and reported as an
//! error rather than silently evaluating the wrong query.

use crate::error::AxmlError;
use crate::prepared::PreparedQuery;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The stable handle for a query text: `"q"` + FNV-1a 64 in hex.
pub fn query_handle(src: &str) -> String {
    format!("q{:016x}", fnv1a(src))
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One registered query text: the source (kept to detect hash
/// collisions and to echo in responses) and its compile-once slot.
struct RegEntry {
    source: String,
    slot: OnceLock<Result<PreparedQuery, AxmlError>>,
}

/// A concurrent prepared-query registry (see the module docs).
#[derive(Default)]
pub struct QueryRegistry {
    entries: RwLock<HashMap<u64, Arc<RegEntry>>>,
}

impl QueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile `src` (at most once per query text, however many
    /// threads race here) and return its stable handle plus the
    /// prepared query. Texts that fail to compile are not retained.
    pub fn prepare(&self, src: &str) -> Result<(String, PreparedQuery), AxmlError> {
        let hash = fnv1a(src);
        let entry = {
            // Fast path: already registered (the steady state).
            let read = self.entries.read().expect("registry lock");
            read.get(&hash).cloned()
        };
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut write = self.entries.write().expect("registry lock");
                write
                    .entry(hash)
                    .or_insert_with(|| {
                        Arc::new(RegEntry {
                            source: src.to_owned(),
                            slot: OnceLock::new(),
                        })
                    })
                    .clone()
            }
        };
        if entry.source != src {
            // A real 64-bit FNV collision between live query texts.
            return Err(AxmlError::Eval {
                msg: "query-hash collision in the prepared-query registry".into(),
                at: query_handle(src),
            });
        }
        // The first caller compiles; racers block here and share the
        // outcome — compile exactly once per text, success or failure.
        let compiled = entry.slot.get_or_init(|| PreparedQuery::compile(src));
        match compiled {
            Ok(q) => Ok((query_handle(src), q.clone())),
            Err(e) => {
                let e = e.clone();
                // Do not let hostile un-compilable texts accumulate:
                // drop the entry (guarded, in case a fresh entry for
                // the same hash was inserted meanwhile).
                let mut write = self.entries.write().expect("registry lock");
                if let Some(current) = write.get(&hash) {
                    if Arc::ptr_eq(current, &entry) {
                        write.remove(&hash);
                    }
                }
                Err(e)
            }
        }
    }

    /// Look up a previously prepared query by its handle. Returns
    /// `None` for unknown/malformed handles and for texts still being
    /// compiled by another thread (a successful [`Self::prepare`]
    /// response is what publishes the handle).
    pub fn get(&self, handle: &str) -> Option<PreparedQuery> {
        let hash = parse_handle(handle)?;
        let entry = self
            .entries
            .read()
            .expect("registry lock")
            .get(&hash)?
            .clone();
        entry.slot.get()?.as_ref().ok().cloned()
    }

    /// Forget a handle. Returns whether it was registered.
    pub fn remove(&self, handle: &str) -> bool {
        match parse_handle(handle) {
            Some(hash) => self
                .entries
                .write()
                .expect("registry lock")
                .remove(&hash)
                .is_some(),
            None => false,
        }
    }

    /// Number of registered query texts.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock").len()
    }

    /// Whether the registry holds no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn parse_handle(handle: &str) -> Option<u64> {
    let hex = handle.strip_prefix('q')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn handles_are_stable_and_text_derived() {
        let reg = QueryRegistry::new();
        let (h1, _) = reg.prepare("$S/b").unwrap();
        let (h2, _) = reg.prepare("$S/b").unwrap();
        assert_eq!(h1, h2);
        assert_eq!(h1, query_handle("$S/b"));
        assert!(h1.starts_with('q') && h1.len() == 17, "{h1}");
        let (h3, _) = reg.prepare("$S/c").unwrap();
        assert_ne!(h1, h3);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn get_and_remove_roundtrip() {
        let reg = QueryRegistry::new();
        assert!(reg.get(&query_handle("$S/b")).is_none());
        let (h, q) = reg.prepare("$S/b").unwrap();
        let got = reg.get(&h).expect("registered");
        assert_eq!(got.source(), q.source());
        assert!(reg.remove(&h));
        assert!(!reg.remove(&h));
        assert!(reg.get(&h).is_none());
        // malformed handles never panic
        for bad in ["", "q", "qzz", "x0000000000000000", "q123"] {
            assert!(reg.get(bad).is_none());
        }
    }

    #[test]
    fn failed_compiles_are_reported_and_not_retained() {
        let reg = QueryRegistry::new();
        let err = reg.prepare("for $x in").unwrap_err();
        assert!(matches!(err, AxmlError::QueryParse { .. }));
        assert!(reg.is_empty());
    }

    #[test]
    fn concurrent_prepares_agree_on_one_handle() {
        let reg = Arc::new(QueryRegistry::new());
        let successes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    let (h, q) = reg.prepare("element p { $S//c }").unwrap();
                    assert_eq!(q.source(), "element p { $S//c }");
                    successes.fetch_add(1, Ordering::Relaxed);
                    h
                })
            })
            .collect();
        let mut seen: Vec<String> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        seen.dedup();
        assert_eq!(seen.len(), 1, "all racers got the same handle");
        assert_eq!(successes.load(Ordering::Relaxed), 8);
        assert_eq!(reg.len(), 1, "one entry, compiled once");
    }
}
