//! [`QueryRegistry`]: a concurrent, compile-once store of
//! [`PreparedQuery`]s keyed by stable query-hash handles.
//!
//! The server's `POST /prepare` endpoint needs three properties the
//! engine alone does not give it: a *stable* handle clients can cache
//! across connections (and across server restarts — the handle is a
//! pure function of the query text, not of registration order),
//! *compile exactly once* per query text even when many connections
//! race to prepare the same query, and cheap concurrent lookup on the
//! eval hot path. The registry provides all three and nothing else;
//! it holds no documents and no locks shared with the engine.
//!
//! Handles are `"q"` followed by the 16-hex-digit FNV-1a 64 hash of
//! the query text. FNV is stable across processes and platforms
//! (unlike `DefaultHasher`, which is randomly seeded per process). A
//! genuine 64-bit collision between two *different* live query texts
//! is detected (sources are stored and compared) and reported as an
//! error rather than silently evaluating the wrong query.
//!
//! The registry is **bounded**: it holds at most its capacity
//! ([`QueryRegistry::with_capacity`], default
//! [`DEFAULT_CAPACITY`]) distinct query texts, evicting the
//! least-recently-used entry when a new text would exceed it. Without
//! the bound, a client streaming varied query texts (the server's
//! inline `POST /eval` accepts arbitrary bodies) would grow memory
//! without limit. Eviction is invisible to correctness — handles are
//! pure functions of the text, so an evicted query simply re-prepares
//! on next use.

use crate::error::AxmlError;
use crate::prepared::PreparedQuery;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Default bound on retained query texts (see the module docs).
pub const DEFAULT_CAPACITY: usize = 1024;

/// The stable handle for a query text: `"q"` + FNV-1a 64 in hex.
pub fn query_handle(src: &str) -> String {
    format!("q{:016x}", fnv1a(src))
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One registered query text: the source (kept to detect hash
/// collisions and to echo in responses), its compile-once slot, and
/// its LRU recency stamp.
struct RegEntry {
    source: String,
    slot: OnceLock<Result<PreparedQuery, AxmlError>>,
    last_used: AtomicU64,
    /// EWMA of observed evaluation cost in nanoseconds (0 = no
    /// history). Fed by [`QueryRegistry::record_cost`]; the server uses
    /// it to classify requests into cheap/expensive scheduling lanes.
    cost_ns: AtomicU64,
}

/// A concurrent, bounded prepared-query registry (see the module
/// docs).
pub struct QueryRegistry {
    entries: RwLock<HashMap<u64, Arc<RegEntry>>>,
    /// Most entries retained; past it the LRU entry is evicted.
    cap: usize,
    /// Monotonic recency clock; every successful lookup or prepare
    /// stamps the entry with the next tick.
    tick: AtomicU64,
}

impl Default for QueryRegistry {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl QueryRegistry {
    /// An empty registry bounded at [`DEFAULT_CAPACITY`] texts.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry retaining at most `cap` (≥ 1) query texts,
    /// evicting least-recently-used entries beyond that.
    pub fn with_capacity(cap: usize) -> Self {
        QueryRegistry {
            entries: RwLock::new(HashMap::new()),
            cap: cap.max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// The eviction bound this registry was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Stamp `entry` as just-used (monotonic ticks; relaxed is fine —
    /// eviction order only needs to be roughly recency-shaped, not
    /// totally ordered against other memory).
    fn touch(&self, entry: &RegEntry) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
    }

    /// Compile `src` (at most once per query text, however many
    /// threads race here) and return its stable handle plus the
    /// prepared query. Texts that fail to compile are not retained.
    pub fn prepare(&self, src: &str) -> Result<(String, PreparedQuery), AxmlError> {
        let hash = fnv1a(src);
        let entry = {
            // Fast path: already registered (the steady state).
            let read = self.entries.read().expect("registry lock");
            read.get(&hash).cloned()
        };
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut write = self.entries.write().expect("registry lock");
                // Make room *before* inserting a genuinely new text:
                // evict least-recently-used entries down to cap - 1.
                // An entry mid-compile may be evicted too — its racers
                // hold `Arc`s, so the compile still completes and is
                // returned; the registry merely forgets the handle.
                if !write.contains_key(&hash) {
                    while write.len() >= self.cap {
                        let lru = write
                            .iter()
                            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                            .map(|(k, _)| *k);
                        match lru {
                            Some(k) => {
                                write.remove(&k);
                            }
                            None => break,
                        }
                    }
                }
                write
                    .entry(hash)
                    .or_insert_with(|| {
                        Arc::new(RegEntry {
                            source: src.to_owned(),
                            slot: OnceLock::new(),
                            last_used: AtomicU64::new(0),
                            cost_ns: AtomicU64::new(0),
                        })
                    })
                    .clone()
            }
        };
        self.touch(&entry);
        if entry.source != src {
            // A real 64-bit FNV collision between live query texts.
            return Err(AxmlError::Eval {
                msg: "query-hash collision in the prepared-query registry".into(),
                at: query_handle(src),
            });
        }
        // The first caller compiles; racers block here and share the
        // outcome — compile exactly once per text, success or failure.
        let compiled = entry.slot.get_or_init(|| PreparedQuery::compile(src));
        match compiled {
            Ok(q) => Ok((query_handle(src), q.clone())),
            Err(e) => {
                let e = e.clone();
                // Do not let hostile un-compilable texts accumulate:
                // drop the entry (guarded, in case a fresh entry for
                // the same hash was inserted meanwhile).
                let mut write = self.entries.write().expect("registry lock");
                if let Some(current) = write.get(&hash) {
                    if Arc::ptr_eq(current, &entry) {
                        write.remove(&hash);
                    }
                }
                Err(e)
            }
        }
    }

    /// Look up a previously prepared query by its handle. Returns
    /// `None` for unknown/malformed handles and for texts still being
    /// compiled by another thread (a successful [`Self::prepare`]
    /// response is what publishes the handle).
    pub fn get(&self, handle: &str) -> Option<PreparedQuery> {
        let hash = parse_handle(handle)?;
        let entry = self
            .entries
            .read()
            .expect("registry lock")
            .get(&hash)?
            .clone();
        let prepared = entry.slot.get()?.as_ref().ok().cloned()?;
        self.touch(&entry);
        Some(prepared)
    }

    /// Record an observed evaluation cost for `handle`, folding it
    /// into the entry's per-query EWMA (weight 1/4 to the new sample:
    /// `new = old*3/4 + sample/4`; the first sample seeds it). Unknown
    /// handles are a no-op. A load/store race between two finishing
    /// evaluations can drop one sample — acceptable for a scheduling
    /// hint.
    pub fn record_cost(&self, handle: &str, cost_ns: u64) {
        let Some(hash) = parse_handle(handle) else {
            return;
        };
        let entry = {
            let read = self.entries.read().expect("registry lock");
            match read.get(&hash) {
                Some(e) => Arc::clone(e),
                None => return,
            }
        };
        let old = entry.cost_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            cost_ns.max(1)
        } else {
            (old - old / 4).saturating_add(cost_ns / 4).max(1)
        };
        entry.cost_ns.store(new, Ordering::Relaxed);
    }

    /// The EWMA evaluation cost of `handle` in nanoseconds, if any
    /// evaluation of it has been observed via [`Self::record_cost`].
    pub fn cost_hint(&self, handle: &str) -> Option<u64> {
        let hash = parse_handle(handle)?;
        let entry = self
            .entries
            .read()
            .expect("registry lock")
            .get(&hash)?
            .clone();
        match entry.cost_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Forget a handle. Returns whether it was registered.
    pub fn remove(&self, handle: &str) -> bool {
        match parse_handle(handle) {
            Some(hash) => self
                .entries
                .write()
                .expect("registry lock")
                .remove(&hash)
                .is_some(),
            None => false,
        }
    }

    /// Number of registered query texts.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock").len()
    }

    /// Whether the registry holds no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn parse_handle(handle: &str) -> Option<u64> {
    let hex = handle.strip_prefix('q')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn handles_are_stable_and_text_derived() {
        let reg = QueryRegistry::new();
        let (h1, _) = reg.prepare("$S/b").unwrap();
        let (h2, _) = reg.prepare("$S/b").unwrap();
        assert_eq!(h1, h2);
        assert_eq!(h1, query_handle("$S/b"));
        assert!(h1.starts_with('q') && h1.len() == 17, "{h1}");
        let (h3, _) = reg.prepare("$S/c").unwrap();
        assert_ne!(h1, h3);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn get_and_remove_roundtrip() {
        let reg = QueryRegistry::new();
        assert!(reg.get(&query_handle("$S/b")).is_none());
        let (h, q) = reg.prepare("$S/b").unwrap();
        let got = reg.get(&h).expect("registered");
        assert_eq!(got.source(), q.source());
        assert!(reg.remove(&h));
        assert!(!reg.remove(&h));
        assert!(reg.get(&h).is_none());
        // malformed handles never panic
        for bad in ["", "q", "qzz", "x0000000000000000", "q123"] {
            assert!(reg.get(bad).is_none());
        }
    }

    #[test]
    fn failed_compiles_are_reported_and_not_retained() {
        let reg = QueryRegistry::new();
        let err = reg.prepare("for $x in").unwrap_err();
        assert!(matches!(err, AxmlError::QueryParse { .. }));
        assert!(reg.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let reg = QueryRegistry::with_capacity(2);
        assert_eq!(reg.capacity(), 2);
        let (ha, _) = reg.prepare("$S/a").unwrap();
        let (hb, _) = reg.prepare("$S/b").unwrap();
        // Refresh a's recency, then push a third text: b is the LRU.
        assert!(reg.get(&ha).is_some());
        let (hc, _) = reg.prepare("$S/c").unwrap();
        assert_eq!(reg.len(), 2, "bounded at capacity");
        assert!(reg.get(&ha).is_some(), "recently used survives");
        assert!(reg.get(&hc).is_some(), "newest survives");
        assert!(reg.get(&hb).is_none(), "LRU evicted");
        // An evicted text is not an error — it just re-prepares, under
        // the same (text-derived) handle.
        let (hb2, _) = reg.prepare("$S/b").unwrap();
        assert_eq!(hb, hb2);
        assert!(reg.get(&hb2).is_some());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn varied_query_streams_stay_bounded() {
        // The unbounded-memory vector from the review: a stream of
        // distinct (valid) query texts must not grow the registry past
        // its cap.
        let reg = QueryRegistry::with_capacity(8);
        for i in 0..100 {
            let src = format!("element p{i} {{ $S/b }}");
            reg.prepare(&src).unwrap();
            assert!(reg.len() <= 8, "len {} at i={i}", reg.len());
        }
        assert_eq!(reg.len(), 8);
    }

    #[test]
    fn cost_ewma_seeds_then_converges() {
        let reg = QueryRegistry::new();
        let (h, _) = reg.prepare("$S/b").unwrap();
        assert_eq!(reg.cost_hint(&h), None, "no history yet");
        reg.record_cost(&h, 1_000_000);
        assert_eq!(reg.cost_hint(&h), Some(1_000_000), "first sample seeds");
        // Repeated faster samples pull the average down geometrically.
        for _ in 0..64 {
            reg.record_cost(&h, 100_000);
        }
        let settled = reg.cost_hint(&h).unwrap();
        assert!(
            (90_000..=120_000).contains(&settled),
            "EWMA converges toward recent samples, got {settled}"
        );
        // Unknown/malformed handles are a silent no-op.
        reg.record_cost("q0000000000000000", 5);
        reg.record_cost("nonsense", 5);
        assert_eq!(reg.cost_hint("nonsense"), None);
    }

    #[test]
    fn concurrent_prepares_agree_on_one_handle() {
        let reg = Arc::new(QueryRegistry::new());
        let successes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    let (h, q) = reg.prepare("element p { $S//c }").unwrap();
                    assert_eq!(q.source(), "element p { $S//c }");
                    successes.fetch_add(1, Ordering::Relaxed);
                    h
                })
            })
            .collect();
        let mut seen: Vec<String> = handles.into_iter().map(|t| t.join().unwrap()).collect();
        seen.dedup();
        assert_eq!(seen.len(), 1, "all racers got the same handle");
        assert_eq!(successes.load(Ordering::Relaxed), 8);
        assert_eq!(reg.len(), 1, "one entry, compiled once");
    }
}
