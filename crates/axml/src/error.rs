//! The unified error type of the facade.
//!
//! Every crate in the workspace has its own error type (`ParseError`
//! with a byte offset, `TypeError`, two `EvalError`s, `DatalogError`);
//! [`AxmlError`] wraps them all so `Engine` callers handle exactly one
//! type. Errors that originate in source text (query or document)
//! carry a [`SourceSpan`] — the offending line with a caret — so a
//! service can report them to *its* users without re-deriving
//! positions.

use crate::options::{Route, SemiringKind};
use std::fmt;

/// A resolved position in source text: the line containing a byte
/// offset, plus 1-based line/column numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpan {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte column within the line).
    pub column: usize,
    /// The full text of the offending line.
    pub line_text: String,
}

impl SourceSpan {
    /// Resolve a byte offset against the source it indexes. Offsets
    /// past the end clamp to the last line.
    pub fn from_offset(src: &str, offset: usize) -> Self {
        let offset = offset.min(src.len());
        let before = &src[..offset];
        let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[offset..]
            .find('\n')
            .map(|i| offset + i)
            .unwrap_or(src.len());
        SourceSpan {
            line,
            column: offset - line_start + 1,
            line_text: src[line_start..line_end].to_owned(),
        }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:{}", self.line, self.column)?;
        writeln!(f, "  | {}", self.line_text)?;
        write!(f, "  | {}^", " ".repeat(self.column.saturating_sub(1)))
    }
}

/// Which caller-imposed resource limit an [`AxmlError::Budget`]
/// reports. The server maps the two to different status codes (504
/// for time, 507 for memory), so the distinction is part of the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline ([`crate::EvalOptions::deadline`]).
    WallClock,
    /// The memory budget ([`crate::EvalOptions::memory_budget`]).
    Memory,
}

/// Everything that can go wrong between `Engine::load_document` and a
/// finished [`crate::AxmlResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum AxmlError {
    /// The query text did not parse.
    QueryParse {
        /// What the parser expected.
        msg: String,
        /// Byte offset into the query text.
        offset: usize,
        /// The offending line, with position.
        span: SourceSpan,
    },
    /// A document did not parse.
    DocumentParse {
        /// The document name passed to `load_document`.
        name: String,
        /// What the parser expected.
        msg: String,
        /// Byte offset into the document text.
        offset: usize,
        /// The offending line, with position.
        span: SourceSpan,
    },
    /// The query parsed but did not elaborate/typecheck.
    Type {
        /// The type error.
        msg: String,
    },
    /// Evaluation failed (direct route).
    Eval {
        /// Description.
        msg: String,
        /// Rendering of the subquery where it occurred.
        at: String,
    },
    /// Evaluation failed (NRC route).
    Nrc {
        /// Description.
        msg: String,
        /// Rendering of the NRC subexpression where it occurred.
        at: String,
    },
    /// The Datalog fixpoint of the shredded route failed.
    Shredding {
        /// Description.
        msg: String,
    },
    /// The evaluation ran past a caller-imposed resource limit: its
    /// wall-clock deadline ([`crate::EvalOptions::deadline`] /
    /// [`crate::EvalOptions::timeout`]) or its memory budget
    /// ([`crate::EvalOptions::memory_budget`]). Both are checked at
    /// coarse boundaries — route starts, set-producing plan ops,
    /// fixpoint rounds, streamed pieces — so the trip is observed at
    /// the first such boundary after the limit is crossed.
    Budget {
        /// Which limit tripped.
        resource: BudgetKind,
        /// The boundary that observed the exceeded limit (e.g.
        /// `"route start"`, `"datalog round"`, or a rendering of the
        /// plan op).
        at: String,
    },
    /// The query refers to a document the engine has not loaded.
    UnknownDocument {
        /// The free variable / document name.
        name: String,
        /// Names the engine does hold (to help diagnose typos).
        available: Vec<String>,
    },
    /// The requested route cannot evaluate this query shape.
    UnsupportedRoute {
        /// The route that was requested.
        route: Route,
        /// The construct that puts the query outside the route's
        /// fragment (e.g. "an element constructor", "a let binding"),
        /// as reported by `axml_core::path::extract_path`.
        construct: String,
    },
    /// `Route::Differential` found a route's compiled plan and its
    /// tree-walking interpreter disagreeing — a bug in the plan
    /// compiler or in the interpreter.
    EvaluatorDisagreement {
        /// The semiring the disagreement occurred in.
        semiring: SemiringKind,
        /// The route whose two evaluators diverged.
        route: Route,
        /// The compiled plan's result, rendered.
        compiled: String,
        /// The interpreter's result, rendered.
        interpreted: String,
    },
    /// An edit script failed to parse or to apply to the named
    /// document (bad path, wrong payload arity, malformed op).
    Edit {
        /// The document the script targeted.
        name: String,
        /// What went wrong.
        msg: String,
    },
    /// A concurrent `load_document`/`remove_document` replaced the
    /// document between the edit's snapshot and its publish — the
    /// edit was not applied; retry against the new contents.
    EditConflict {
        /// The document that changed underfoot.
        name: String,
    },
    /// `Route::Differential` found two routes disagreeing — a bug in
    /// one of the evaluators (or in a user-provided extension).
    RouteDisagreement {
        /// The semiring the disagreement occurred in.
        semiring: SemiringKind,
        /// First route.
        left_route: Route,
        /// Its result, rendered.
        left: String,
        /// Second route.
        right_route: Route,
        /// Its result, rendered.
        right: String,
    },
}

impl AxmlError {
    /// Wrap a query-text parse error, attaching the span.
    pub fn query_parse(src: &str, e: axml_core::ParseError) -> Self {
        AxmlError::QueryParse {
            span: SourceSpan::from_offset(src, e.offset),
            msg: e.msg,
            offset: e.offset,
        }
    }

    /// Wrap a document parse error, attaching the span.
    pub fn document_parse(name: &str, src: &str, e: axml_uxml::parse::ParseError) -> Self {
        AxmlError::DocumentParse {
            name: name.to_owned(),
            span: SourceSpan::from_offset(src, e.offset),
            msg: e.msg,
            offset: e.offset,
        }
    }
}

impl From<axml_core::TypeError> for AxmlError {
    fn from(e: axml_core::TypeError) -> Self {
        AxmlError::Type { msg: e.msg }
    }
}

impl From<axml_core::EvalError> for AxmlError {
    fn from(e: axml_core::EvalError) -> Self {
        if e.budget {
            AxmlError::Budget {
                resource: BudgetKind::Memory,
                at: e.at,
            }
        } else {
            AxmlError::Eval {
                msg: e.msg,
                at: e.at,
            }
        }
    }
}

impl From<axml_nrc::EvalError> for AxmlError {
    fn from(e: axml_nrc::EvalError) -> Self {
        if e.budget {
            AxmlError::Budget {
                resource: BudgetKind::Memory,
                at: e.at,
            }
        } else {
            AxmlError::Nrc {
                msg: e.msg,
                at: e.at,
            }
        }
    }
}

impl From<axml_relational::datalog::DatalogError> for AxmlError {
    fn from(e: axml_relational::datalog::DatalogError) -> Self {
        if e.budget {
            AxmlError::Budget {
                resource: if e.memory {
                    BudgetKind::Memory
                } else {
                    BudgetKind::WallClock
                },
                at: "datalog round".into(),
            }
        } else {
            AxmlError::Shredding { msg: e.msg }
        }
    }
}

impl fmt::Display for AxmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxmlError::QueryParse { msg, span, .. } => {
                write!(f, "query parse error at {span}\n{msg}")
            }
            AxmlError::DocumentParse {
                name, msg, span, ..
            } => write!(f, "parse error in document {name:?} at {span}\n{msg}"),
            AxmlError::Type { msg } => write!(f, "type error: {msg}"),
            AxmlError::Eval { msg, at } => write!(f, "evaluation error: {msg} (at `{at}`)"),
            AxmlError::Nrc { msg, at } => write!(f, "NRC evaluation error: {msg} (at `{at}`)"),
            AxmlError::Shredding { msg } => write!(f, "shredded evaluation error: {msg}"),
            AxmlError::Budget { resource, at } => match resource {
                BudgetKind::WallClock => {
                    write!(f, "evaluation exceeded its wall-clock deadline (at {at})")
                }
                BudgetKind::Memory => {
                    write!(f, "evaluation exceeded its memory budget (at `{at}`)")
                }
            },
            AxmlError::UnknownDocument { name, available } => {
                write!(f, "no document named {name:?} is loaded")?;
                if available.is_empty() {
                    write!(f, " (the engine holds no documents)")
                } else {
                    write!(f, " (loaded: {})", available.join(", "))
                }
            }
            AxmlError::UnsupportedRoute { route, construct } => {
                write!(
                    f,
                    "route {route} cannot evaluate this query: it uses {construct}, \
                     which has no §7 relational translation"
                )
            }
            AxmlError::EvaluatorDisagreement {
                semiring,
                route,
                compiled,
                interpreted,
            } => write!(
                f,
                "differential check failed in {semiring}: the {route} compiled plan produced\n  \
                 {compiled}\nbut its interpreter produced\n  {interpreted}"
            ),
            AxmlError::Edit { name, msg } => {
                write!(f, "edit of document {name:?} failed: {msg}")
            }
            AxmlError::EditConflict { name } => write!(
                f,
                "edit of document {name:?} conflicted with a concurrent replace; retry"
            ),
            AxmlError::RouteDisagreement {
                semiring,
                left_route,
                left,
                right_route,
                right,
            } => write!(
                f,
                "differential check failed in {semiring}: {left_route} produced\n  {left}\nbut {right_route} produced\n  {right}"
            ),
        }
    }
}

impl std::error::Error for AxmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_resolves_lines_and_columns() {
        let src = "for $x in $S\nreturn ($x";
        let span = SourceSpan::from_offset(src, src.len());
        assert_eq!(span.line, 2);
        assert_eq!(span.column, 11);
        assert_eq!(span.line_text, "return ($x");
        let rendered = span.to_string();
        assert!(rendered.contains("2:11"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn span_clamps_past_the_end() {
        let span = SourceSpan::from_offset("ab", 99);
        assert_eq!((span.line, span.column), (1, 3));
    }

    #[test]
    fn unknown_document_lists_loaded_names() {
        let e = AxmlError::UnknownDocument {
            name: "T".into(),
            available: vec!["S".into()],
        };
        let s = e.to_string();
        assert!(s.contains("\"T\"") && s.contains("loaded: S"), "{s}");
    }
}
