//! [`EvalCursor`]: pull-based streaming consumption of a query result.
//!
//! [`crate::PreparedQuery::eval_stream`] returns one of these instead
//! of a materialized [`AxmlResult`]. The cursor is a plain
//! [`Iterator`] over [`StreamItem`]s — the top-level
//! `(tree, annotation)` pieces of a set-shaped result in document
//! order, or a single scalar item — produced by a detached evaluation
//! thread and handed over a **bounded** channel
//! ([`STREAM_BUFFER_PIECES`] pieces of slack). Backpressure is
//! therefore real: a consumer that stops pulling stops the producer
//! within one buffer's worth of pieces, and a consumer that *drops*
//! the cursor closes the channel, which the producer observes as
//! [`axml_uxml::SinkClosed`] at its next emission and unwinds
//! cleanly.
//!
//! The streamed pieces are **identical** — same trees, same
//! annotations, same order — to the pieces of the materialized
//! result ([`crate::AxmlResult::pieces`]); only the latency profile
//! differs. Routes and modes that cannot produce pieces incrementally
//! (the shredded and differential routes, `ProvenanceFirst`
//! specialization) materialize first and then cursor over the result,
//! so every combination supports the same consumption API.

use crate::error::AxmlError;
use crate::options::SemiringKind;
use crate::result::{AxmlResult, ResultPiece};
use axml_semiring::{Nat, NatPoly, PosBool, Prob, Semiring, Trio, Tropical, Why};
use axml_uxml::{Forest, ResultSink, SinkClosed, Tree, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// How many pieces the streaming channel buffers between the producer
/// thread and the consuming [`EvalCursor`]. Small enough that a stalled
/// consumer stalls the producer promptly (bounding memory held in
/// flight), large enough to absorb bursty production.
pub const STREAM_BUFFER_PIECES: usize = 32;

/// One item pulled from an [`EvalCursor`].
#[derive(Clone, Debug, PartialEq)]
pub enum StreamItem {
    /// One top-level `(tree, annotation)` piece of a set-shaped
    /// result, in document order.
    Piece(ResultPiece),
    /// The whole result, when it is a scalar (a bare label or a single
    /// unannotated tree) that does not decompose into pieces. Always
    /// the only item of its cursor.
    Scalar(AxmlResult),
}

enum Source {
    /// A live producer thread feeding the bounded channel.
    Live(Receiver<Result<StreamItem, AxmlError>>),
    /// A result that was materialized up front, cursored for API
    /// uniformity.
    Ready(std::vec::IntoIter<StreamItem>),
}

/// A pull iterator over the pieces of one evaluation's result. See the
/// module docs for the production model, and
/// [`crate::PreparedQuery::eval_stream`] for how to obtain one.
///
/// Yields `Result` items: evaluation errors (including tripped
/// [`crate::EvalOptions::memory_budget`]s and deadlines, as
/// [`AxmlError::Budget`]) arrive in-band as the final item. After an
/// error the cursor is exhausted — an error is never followed by more
/// pieces, so a consumer can treat the stream as
/// pieces-then-maybe-error.
pub struct EvalCursor {
    source: Source,
    /// Pieces emitted by the producer so far (monotone; for a `Ready`
    /// cursor, the total count up front). Lets tests pin *laziness* —
    /// pull one piece, assert the producer has not run ahead of the
    /// channel slack — without timing assumptions.
    produced: Arc<AtomicUsize>,
    kind: SemiringKind,
    failed: bool,
}

impl std::fmt::Debug for EvalCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCursor")
            .field("kind", &self.kind)
            .field("produced", &self.produced_so_far())
            .field("live", &matches!(self.source, Source::Live(_)))
            .finish()
    }
}

impl EvalCursor {
    /// A cursor fed by a live producer thread.
    pub(crate) fn live(
        rx: Receiver<Result<StreamItem, AxmlError>>,
        produced: Arc<AtomicUsize>,
        kind: SemiringKind,
    ) -> Self {
        EvalCursor {
            source: Source::Live(rx),
            produced,
            kind,
            failed: false,
        }
    }

    /// A cursor over an already-materialized result (the fallback for
    /// routes/modes without incremental production).
    pub(crate) fn ready(out: AxmlResult) -> Self {
        let kind = out.kind();
        let items: Vec<StreamItem> = match out.pieces() {
            Some(pieces) => pieces
                .iter()
                .map(|p| StreamItem::Piece(p.to_piece()))
                .collect(),
            None => vec![StreamItem::Scalar(out)],
        };
        EvalCursor {
            produced: Arc::new(AtomicUsize::new(items.len())),
            source: Source::Ready(items.into_iter()),
            kind,
            failed: false,
        }
    }

    /// The semiring the streamed pieces are annotated in.
    pub fn kind(&self) -> SemiringKind {
        self.kind
    }

    /// How many pieces the producer has emitted so far — *pushed*, not
    /// pulled: at most [`STREAM_BUFFER_PIECES`] + 1 ahead of what the
    /// consumer has seen. Monotone; safe to poll while iterating.
    pub fn produced_so_far(&self) -> usize {
        self.produced.load(Ordering::Relaxed)
    }

    /// Drain the cursor into the materialized [`AxmlResult`] it is a
    /// stream of. Collecting a cursor and evaluating materialized
    /// produce equal results (differentially tested across semirings
    /// and routes); an in-band error is returned as `Err`, exactly as
    /// the materialized evaluation would have surfaced it.
    pub fn collect_result(mut self) -> Result<AxmlResult, AxmlError> {
        let mut pieces = Vec::new();
        for item in &mut self {
            match item? {
                StreamItem::Scalar(r) => return Ok(r),
                StreamItem::Piece(p) => pieces.push(p),
            }
        }
        Ok(rebuild(self.kind, pieces))
    }
}

impl Iterator for EvalCursor {
    type Item = Result<StreamItem, AxmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match &mut self.source {
            Source::Live(rx) => match rx.recv() {
                Ok(Ok(item)) => Some(Ok(item)),
                Ok(Err(e)) => {
                    self.failed = true;
                    Some(Err(e))
                }
                // Channel closed: the producer finished (or was
                // already done when we dropped interest).
                Err(_) => None,
            },
            Source::Ready(items) => items.next().map(Ok),
        }
    }
}

/// Reassemble a set-shaped result from its streamed pieces. Pieces are
/// distinct and nonzero by construction (they came out of a K-set), so
/// insertion rebuilds the exact forest.
fn rebuild(kind: SemiringKind, pieces: Vec<ResultPiece>) -> AxmlResult {
    fn forest<K: Semiring>(
        pieces: Vec<ResultPiece>,
        get: fn(ResultPiece) -> (Tree<K>, K),
    ) -> Value<K> {
        let mut f = Forest::new();
        for p in pieces {
            let (t, k) = get(p);
            f.insert(t, k);
        }
        Value::Set(f)
    }
    macro_rules! arms {
        ($($variant:ident, $k:ty;)*) => {
            match kind {
                $(SemiringKind::$variant => AxmlResult::$variant(forest::<$k>(pieces, |p| {
                    match p {
                        ResultPiece::$variant(t, k) => (t, k),
                        other => unreachable!(
                            "cursor of kind {} yielded a {} piece",
                            SemiringKind::$variant,
                            other.kind()
                        ),
                    }
                }))),*
            }
        };
    }
    arms!(
        Nat, Nat;
        PosBool, PosBool;
        Tropical, Tropical;
        NatPoly, NatPoly;
        Why, Why;
        Trio, Trio;
        Prob, Prob;
    )
}

/// The producer side: a [`ResultSink`] that clones each piece into the
/// bounded channel. `send` blocks when the buffer is full (that *is*
/// the backpressure) and fails when the consumer dropped the cursor,
/// which we surface as [`SinkClosed`] so the evaluator unwinds.
pub(crate) struct ChannelSink<'a, K: Semiring> {
    tx: &'a SyncSender<Result<StreamItem, AxmlError>>,
    produced: &'a AtomicUsize,
    wrap: fn(Tree<K>, K) -> ResultPiece,
}

impl<'a, K: Semiring> ChannelSink<'a, K> {
    pub(crate) fn new(
        tx: &'a SyncSender<Result<StreamItem, AxmlError>>,
        produced: &'a AtomicUsize,
        wrap: fn(Tree<K>, K) -> ResultPiece,
    ) -> Self {
        ChannelSink { tx, produced, wrap }
    }
}

impl<K: Semiring> ResultSink<K> for ChannelSink<'_, K> {
    fn piece(&mut self, tree: &Tree<K>, ann: &K) -> Result<(), SinkClosed> {
        // Count before the (possibly blocking) send so the counter
        // reflects what the producer has *reached*, not what the
        // consumer has accepted.
        self.produced.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Ok(StreamItem::Piece((self.wrap)(
                tree.clone(),
                ann.clone(),
            ))))
            .map_err(|_| SinkClosed)
    }
}
