//! The workspace's no-serde JSON writer, plus the canonical JSON
//! rendering of query results.
//!
//! The build environment has no `serde`, so everything that emits JSON
//! — the criterion-shim summaries consumed by `bench_regression`, the
//! checked-in `BENCH_*.json` baselines, the CLI's `--format json`
//! query output, and the `axml-server` HTTP responses — goes through
//! this one small writer instead of growing per-call-site string
//! plumbing. (It lived in `axml_bench::json` until the server needed
//! it; the bench crate re-exports this module for compatibility.)
//!
//! The result-rendering half ([`result_json`], [`result_header`],
//! [`result_pieces`]) is the single source of truth for the
//! `--format json` shape: the CLI prints [`result_json`] whole, the
//! server streams [`result_header`] + [`result_pieces`] + `}`
//! incrementally, and because both compose the same pieces the bytes
//! are identical either way.

use crate::options::EvalOptions;
use crate::result::AxmlResult;
use axml_semiring::Semiring;
use axml_uxml::{Forest, Tree, Value};
use std::fmt::Write as _;

/// Escape `s` per JSON string rules (quotes, backslashes, control
/// characters; non-ASCII passes through — JSON is UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Append the scheduler-counter object for one pool snapshot. The
/// single source of truth for the `scheduler` stats shape: the
/// server's `GET /stats` (its own pool) and the CLI's
/// `query --stats` (the global pool) both emit exactly these keys.
pub fn scheduler_json(j: &mut Json, s: &axml_pool::PoolStats) {
    j.begin_obj();
    j.key("workers");
    j.int(s.workers as u64);
    j.key("lanes");
    j.int(s.lanes as u64);
    j.key("queued_cheap");
    j.int(s.queued_cheap as u64);
    j.key("queued_normal");
    j.int(s.queued_normal as u64);
    j.key("queued_expensive");
    j.int(s.queued_expensive as u64);
    j.key("queued_deques");
    j.int(s.queued_deques as u64);
    j.key("executed_owned");
    j.int(s.owned);
    j.key("executed_helped");
    j.int(s.helped);
    j.key("executed_stolen");
    j.int(s.stolen);
    j.key("executed_injected");
    j.int(s.injected);
    j.key("max_queue_residency_ns");
    j.int(s.max_queue_residency_ns);
    j.end_obj();
}

/// An incremental builder for one JSON value — objects, arrays and
/// scalars, with commas managed automatically. No reflection, no
/// intermediate DOM: values stream into one `String`.
///
/// ```
/// use axml::json::Json;
/// let mut j = Json::new();
/// j.begin_obj();
/// j.key("id");
/// j.str("eval/depth=8");
/// j.key("mean_ns");
/// j.num(75_312.5);
/// j.end_obj();
/// assert_eq!(j.finish(), r#"{"id":"eval/depth=8","mean_ns":75312.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct Json {
    buf: String,
    /// Whether the next emission at the current nesting level needs a
    /// leading comma (one flag per open container).
    need_comma: Vec<bool>,
}

impl Json {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Emit an object key. Must be followed by exactly one value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\":", escape(k));
        // The value after a key is not a fresh element of the object.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Emit a string value.
    pub fn str(&mut self, s: &str) {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\"", escape(s));
    }

    /// Emit a numeric value (finite; NaN/∞ become `null`, which JSON
    /// requires).
    pub fn num(&mut self, n: f64) {
        self.pre_value();
        if n.is_finite() {
            let _ = write!(self.buf, "{n}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Emit an integer value.
    pub fn int(&mut self, n: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{n}");
    }

    /// Emit a boolean value.
    pub fn bool(&mut self, b: bool) {
        self.pre_value();
        self.buf.push_str(if b { "true" } else { "false" });
    }

    /// The finished JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// A value rendered as a JSON tree: annotations as strings in the
/// semiring's syntax (omitted when `1`), children in the byte-stable
/// document order the text printer uses.
pub fn value_json<K: Semiring + std::fmt::Display>(j: &mut Json, v: &Value<K>) {
    match v {
        Value::Label(l) => {
            j.begin_obj();
            j.key("label");
            j.str(l.name());
            j.end_obj();
        }
        Value::Tree(t) => tree_json(j, t, None),
        Value::Set(f) => forest_json(j, f),
    }
}

/// A forest as a JSON array of trees (document order).
pub fn forest_json<K: Semiring + std::fmt::Display>(j: &mut Json, f: &Forest<K>) {
    j.begin_arr();
    for (t, k) in f.iter_document() {
        tree_json(j, t, Some(k));
    }
    j.end_arr();
}

/// One tree as a JSON object; `ann` is its annotation in the parent
/// (omitted from the output when it is the semiring's `1`).
pub fn tree_json<K: Semiring + std::fmt::Display>(j: &mut Json, t: &Tree<K>, ann: Option<&K>) {
    j.begin_obj();
    j.key("label");
    j.str(t.label().name());
    if let Some(k) = ann {
        if !k.is_one() {
            j.key("annotation");
            j.str(&k.to_string());
        }
    }
    if !t.is_leaf() {
        j.key("children");
        j.begin_arr();
        for (c, k) in t.children_document() {
            tree_json(j, c, Some(k));
        }
        j.end_arr();
    }
    j.end_obj();
}

/// The `result` value of one [`AxmlResult`], dispatched over its
/// runtime semiring, appended to an open builder.
pub fn result_value_json(j: &mut Json, out: &AxmlResult) {
    match out {
        AxmlResult::Nat(v) => value_json(j, v),
        AxmlResult::PosBool(v) => value_json(j, v),
        AxmlResult::Tropical(v) => value_json(j, v),
        AxmlResult::NatPoly(v) => value_json(j, v),
        AxmlResult::Why(v) => value_json(j, v),
        AxmlResult::Trio(v) => value_json(j, v),
        AxmlResult::Prob(v) => value_json(j, v),
    }
}

/// The opening of the result object, up to and including the
/// `"result":` key — everything known before any result bytes:
/// `{"query":…,"semiring":…,"route":…,"mode":…,"result":`.
///
/// Streaming writers (the server) emit this first, then the pieces of
/// [`result_pieces`], then the closing `}`.
pub fn result_header(query: &str, opts: &EvalOptions) -> String {
    let mut j = Json::new();
    j.begin_obj();
    j.key("query");
    j.str(query);
    j.key("semiring");
    j.str(opts.semiring.name());
    j.key("route");
    j.str(opts.route.name());
    j.key("mode");
    j.str(opts.mode.name());
    j.key("result");
    j.finish()
}

/// The `result` field of one evaluation, cut into independently
/// writable pieces for streaming.
pub enum ResultPieces {
    /// A K-set: stream as a JSON array, one piece per
    /// `(tree, annotation)` pair, in document order.
    Set(Vec<String>),
    /// A scalar (bare label or a single unannotated tree): one piece.
    Scalar(String),
}

/// Cut the `result` field into streamable pieces (see
/// [`ResultPieces`]). [`result_json`] concatenates exactly these, so a
/// streaming writer that flushes them one at a time produces the same
/// bytes as the one-shot rendering.
pub fn result_pieces(out: &AxmlResult) -> ResultPieces {
    match out.pieces() {
        Some(pieces) => ResultPieces::Set(pieces.iter().map(|p| p.json()).collect()),
        None => {
            let mut j = Json::new();
            result_value_json(&mut j, out);
            ResultPieces::Scalar(j.finish())
        }
    }
}

/// Render a query result as one JSON object (the CLI's
/// `--format json` shape and the server's `/eval` response body):
/// request echo plus the value as a structured tree.
pub fn result_json(query: &str, opts: &EvalOptions, out: &AxmlResult) -> String {
    let mut s = result_header(query, opts);
    match result_pieces(out) {
        ResultPieces::Set(items) => {
            s.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(item);
            }
            s.push(']');
        }
        ResultPieces::Scalar(v) => s.push_str(&v),
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EvalOptions, SemiringKind};

    #[test]
    fn escapes_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hé"), "\"hé\"");
    }

    #[test]
    fn nested_structures_comma_correctly() {
        let mut j = Json::new();
        j.begin_arr();
        for i in 0..2 {
            j.begin_obj();
            j.key("i");
            j.int(i);
            j.key("kids");
            j.begin_arr();
            j.str("a");
            j.str("b");
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        assert_eq!(
            j.finish(),
            r#"[{"i":0,"kids":["a","b"]},{"i":1,"kids":["a","b"]}]"#
        );
    }

    #[test]
    fn non_finite_numbers_are_null() {
        let mut j = Json::new();
        j.begin_arr();
        j.num(1.5);
        j.num(f64::NAN);
        j.end_arr();
        assert_eq!(j.finish(), "[1.5,null]");
    }

    #[test]
    fn streamed_pieces_concatenate_to_the_one_shot_rendering() {
        let engine = Engine::new();
        engine.load_document("S", "<a {z}> b {x} c </a>").unwrap();
        for kind in SemiringKind::ALL {
            let opts = EvalOptions::new().semiring(kind);
            let out = engine.run("$S/*", opts).unwrap();
            let whole = result_json("$S/*", &opts, &out);
            let mut streamed = result_header("$S/*", &opts);
            match result_pieces(&out) {
                ResultPieces::Set(items) => {
                    streamed.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            streamed.push(',');
                        }
                        streamed.push_str(item);
                    }
                    streamed.push(']');
                }
                ResultPieces::Scalar(v) => streamed.push_str(&v),
            }
            streamed.push('}');
            assert_eq!(whole, streamed, "{kind}");
        }
    }
}
