//! Runtime evaluation options: which semiring, which route, which
//! mode.
//!
//! The rest of the workspace is statically generic over `K: Semiring`;
//! these enums are the runtime face of that genericity. `Engine`
//! dispatches each [`SemiringKind`] to the corresponding monomorphized
//! evaluator, so selecting a semiring per request costs one `match`.

use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

pub use axml_pool::{Lane, Parallelism};

/// The semirings selectable at runtime.
///
/// Documents are stored once as ℕ\[X\] (provenance-polynomial) values —
/// the *universal* annotation per §2 of the paper — and pushed into the
/// requested semiring through the canonical homomorphism:
///
/// | kind | semiring | homomorphism from ℕ\[X\] |
/// |------|----------|--------------------------|
/// | `Nat` | (ℕ, +, ·) bag semantics | every variable ↦ 1 |
/// | `PosBool` | positive boolean expressions | x ↦ x (polynomial read as a DNF) |
/// | `Tropical` | (ℕ∪{∞}, min, +) cost | every variable ↦ cost 0 |
/// | `NatPoly` | ℕ\[X\] itself | identity |
/// | `Why` | why-provenance (witness bases) | x ↦ {{x}} |
/// | `Trio` | lineage with multiplicity | drop exponents, keep counts |
/// | `Prob` | (\[0,1\], max, ·) Viterbi | every variable ↦ 1.0 |
///
/// For data-dependent valuations (event probabilities, per-token
/// costs), evaluate in `NatPoly` and specialize the symbolic answer
/// with [`axml_semiring::Valuation`] — Corollary 1 guarantees the two
/// orders agree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SemiringKind {
    /// ℕ — multiplicities / bag semantics.
    Nat,
    /// Positive boolean expressions — incomplete data (c-tables).
    PosBool,
    /// (ℕ ∪ {∞}, min, +) — cheapest-derivation cost.
    Tropical,
    /// ℕ\[X\] provenance polynomials (the default; universal).
    #[default]
    NatPoly,
    /// Why-provenance: witness bases.
    Why,
    /// Trio-style lineage: bags of witness sets.
    Trio,
    /// (\[0,1\], max, ·) — most-likely-derivation probability.
    Prob,
}

impl SemiringKind {
    /// All selectable kinds, in declaration order.
    pub const ALL: [SemiringKind; 7] = [
        SemiringKind::Nat,
        SemiringKind::PosBool,
        SemiringKind::Tropical,
        SemiringKind::NatPoly,
        SemiringKind::Why,
        SemiringKind::Trio,
        SemiringKind::Prob,
    ];

    /// The lowercase name (`nat`, `posbool`, …) accepted by [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            SemiringKind::Nat => "nat",
            SemiringKind::PosBool => "posbool",
            SemiringKind::Tropical => "tropical",
            SemiringKind::NatPoly => "natpoly",
            SemiringKind::Why => "why",
            SemiringKind::Trio => "trio",
            SemiringKind::Prob => "prob",
        }
    }
}

impl fmt::Display for SemiringKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SemiringKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SemiringKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<_> = SemiringKind::ALL.iter().map(|k| k.name()).collect();
                format!(
                    "unknown semiring {s:?} (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// Which evaluation pipeline answers the query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Route {
    /// The direct big-step evaluator over K-UXML (`axml-core::eval`).
    #[default]
    Direct,
    /// The §6.3 compilation semantics: the prepared `NRC_K + srt` term
    /// (already normalized by the Prop 5 axioms) evaluated by
    /// `axml-nrc`.
    ViaNrc,
    /// The §7 relational route: shred to an edge K-relation, run the
    /// semi-naive Datalog translation ψ, decode. Queries in the §7
    /// XPath fragment — navigation chains, step composition, union,
    /// branching predicates and label tests over one input — have a
    /// relational translation; anything else reports
    /// [`crate::AxmlError::UnsupportedRoute`] naming the construct.
    Shredded,
    /// Run `Direct` *and* `ViaNrc` (and `Shredded` too when the query
    /// is in the §7 fragment), assert they agree, and return the
    /// result — the workspace's differential tests as a user-facing
    /// debugging tool. For `Direct` and `ViaNrc` this checks **both
    /// evaluators of each route**: the compiled slot plan against the
    /// tree-walking reference interpreter
    /// ([`crate::AxmlError::EvaluatorDisagreement`] on divergence),
    /// then the routes against each other
    /// ([`crate::AxmlError::RouteDisagreement`]).
    Differential,
}

impl Route {
    /// The lowercase name accepted by [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Route::Direct => "direct",
            Route::ViaNrc => "via-nrc",
            Route::Shredded => "shredded",
            Route::Differential => "differential",
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Route {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        [
            Route::Direct,
            Route::ViaNrc,
            Route::Shredded,
            Route::Differential,
        ]
        .into_iter()
        .find(|r| r.name() == s)
        .ok_or_else(|| {
            format!("unknown route {s:?} (expected direct, via-nrc, shredded or differential)")
        })
    }
}

/// How the requested semiring is reached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Specialize inputs and query into the target semiring first,
    /// then evaluate there (cheapest per call: annotations are small).
    #[default]
    InSemiring,
    /// Evaluate once over ℕ\[X\] and push the *result* through the
    /// homomorphism — Prop 2 / Corollary 1 as an API feature. One
    /// symbolic evaluation can serve every [`SemiringKind`]; the two
    /// modes agree by Theorem 1 (differentially tested).
    ProvenanceFirst,
}

impl EvalMode {
    /// The kebab-case name (`in-semiring` / `provenance-first`) used by
    /// the JSON result shape and the server's `mode` parameter.
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::InSemiring => "in-semiring",
            EvalMode::ProvenanceFirst => "provenance-first",
        }
    }
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvalMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        [EvalMode::InSemiring, EvalMode::ProvenanceFirst]
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown mode {s:?} (expected in-semiring or provenance-first)"))
    }
}

/// Per-call evaluation options for [`crate::PreparedQuery::eval`].
///
/// ```
/// use axml::{EvalOptions, Route, SemiringKind};
/// let opts = EvalOptions::new()
///     .semiring(SemiringKind::Nat)
///     .route(Route::ViaNrc)
///     .provenance_first();
/// assert_eq!(opts.semiring, SemiringKind::Nat);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct EvalOptions {
    /// Target semiring (default: `NatPoly`).
    pub semiring: SemiringKind,
    /// Evaluation route (default: `Direct`).
    pub route: Route,
    /// Specialize-then-evaluate, or evaluate-then-specialize.
    pub mode: EvalMode,
    /// Intra-query parallelism (default: sequential — the exact
    /// pre-parallelism code path). With a non-sequential value the
    /// evaluation fans out onto the global worker pool: descendant
    /// sweeps over large documents chunk across subtrees, semi-naive
    /// Datalog rounds partition their joins, and `Route::Differential`
    /// runs its evaluation legs concurrently. Results are identical
    /// either way (differentially tested).
    pub parallelism: Parallelism,
    /// Wall-clock deadline for this evaluation (default: none). The
    /// deadline is checked at coarse boundaries — once when each
    /// evaluation route starts (every differential leg counts as a
    /// route start) and once per semi-naive Datalog round on the
    /// shredded route — and trips as [`crate::AxmlError::Budget`].
    /// It bounds scheduling unfairness, not individual instructions:
    /// a single enormous join still runs to completion.
    pub deadline: Option<Instant>,
    /// Memory budget for this evaluation, in logical tree nodes
    /// (default: none). One counter is shared across every leg and
    /// round of the evaluation: set-producing plan ops charge their
    /// output's node count, fixpoint rounds charge the round's derived
    /// tuples, and streamed pieces charge as they are emitted.
    /// Exceeding the budget trips as [`crate::AxmlError::Budget`] with
    /// [`crate::BudgetKind::Memory`] at the next boundary — like the
    /// deadline, it bounds unfairness, not individual operations, and
    /// intermediate sets count toward it (the budget tracks what the
    /// evaluation *produces*, which can exceed the final result size).
    pub memory_budget: Option<usize>,
    /// Scheduling lane hint for this evaluation's pool work (default:
    /// none — inherit the surrounding scope's lane, or
    /// [`Lane::Normal`]). With `Some(lane)`, every task the evaluation
    /// spawns — descendant-sweep chunks, Datalog round partitions,
    /// differential legs — is queued in that lane class of the pool's
    /// injector, and threads waiting on this evaluation's scopes only
    /// ever help with its own work (scope affinity; see the
    /// `axml-pool` crate docs). Purely a scheduling hint: results are
    /// byte-identical in every lane, and the sequential path ignores
    /// it entirely.
    pub lane: Option<Lane>,
}

impl EvalOptions {
    /// The defaults: provenance polynomials, direct route, sequential.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the target semiring.
    pub fn semiring(mut self, k: SemiringKind) -> Self {
        self.semiring = k;
        self
    }

    /// Select the evaluation route.
    pub fn route(mut self, r: Route) -> Self {
        self.route = r;
        self
    }

    /// Evaluate symbolically in ℕ\[X\] and specialize the result
    /// (see [`EvalMode::ProvenanceFirst`]).
    pub fn provenance_first(mut self) -> Self {
        self.mode = EvalMode::ProvenanceFirst;
        self
    }

    /// Set the intra-query parallelism (see [`Parallelism`]).
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Shorthand: fan this evaluation out across up to `n` parallel
    /// work streams (`0` = size to the global pool).
    pub fn parallel(self, n: usize) -> Self {
        self.parallelism(Parallelism::threads(n))
    }

    /// Set an absolute wall-clock deadline (see
    /// [`EvalOptions::deadline`]).
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Shorthand: a deadline `budget` from now. A budget too large to
    /// represent as an `Instant` means "no deadline".
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.deadline = Instant::now().checked_add(budget);
        self
    }

    /// Cap the logical tree nodes this evaluation may produce (see
    /// [`EvalOptions::memory_budget`]).
    pub fn memory_budget(mut self, nodes: usize) -> Self {
        self.memory_budget = Some(nodes);
        self
    }

    /// Queue this evaluation's pool work in `lane` (see
    /// [`EvalOptions::lane`]).
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = Some(lane);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in SemiringKind::ALL {
            assert_eq!(k.name().parse::<SemiringKind>(), Ok(k));
        }
        assert!("frobnitz".parse::<SemiringKind>().is_err());
    }

    #[test]
    fn route_names_roundtrip() {
        for r in [
            Route::Direct,
            Route::ViaNrc,
            Route::Shredded,
            Route::Differential,
        ] {
            assert_eq!(r.name().parse::<Route>(), Ok(r));
        }
        assert!("sideways".parse::<Route>().is_err());
    }

    #[test]
    fn mode_names_roundtrip() {
        for m in [EvalMode::InSemiring, EvalMode::ProvenanceFirst] {
            assert_eq!(m.name().parse::<EvalMode>(), Ok(m));
        }
        assert!("psychic".parse::<EvalMode>().is_err());
    }

    #[test]
    fn deadline_builders() {
        assert_eq!(EvalOptions::new().deadline, None);
        let at = Instant::now();
        assert_eq!(EvalOptions::new().deadline(at).deadline, Some(at));
        let o = EvalOptions::new().timeout(Duration::from_secs(3600));
        assert!(o.deadline.is_some_and(|d| d > at));
        // An unrepresentable budget degrades to "no deadline".
        assert_eq!(EvalOptions::new().timeout(Duration::MAX).deadline, None);
    }

    #[test]
    fn builder_sets_fields() {
        let o = EvalOptions::new()
            .semiring(SemiringKind::Why)
            .route(Route::Differential)
            .provenance_first()
            .lane(Lane::Cheap);
        assert_eq!(o.semiring, SemiringKind::Why);
        assert_eq!(o.route, Route::Differential);
        assert_eq!(o.mode, EvalMode::ProvenanceFirst);
        assert_eq!(o.lane, Some(Lane::Cheap));
        assert_eq!(EvalOptions::new().lane, None);
    }
}
