//! [`PreparedQuery`]: parse + elaborate + compile once, evaluate many
//! times.
//!
//! `compile` runs the whole front half of the pipeline — surface
//! parse, elaboration to the typed core, compilation to `NRC_K + srt`,
//! normalization by the Prop 5 axioms, **lowering both routes to
//! slot-resolved execution plans**, free-variable analysis, and
//! step-chain extraction for the relational route — over ℕ\[X\], the
//! universal semiring. Per-kind copies of the evaluation artifacts
//! (interpreter terms *and* compiled plans) are produced on first use
//! through the canonical homomorphisms and cached (`OnceLock`), so
//! steady-state `eval` does no per-call translation work in any
//! semiring: `Route::Direct` and `Route::ViaNrc` run the compiled
//! plans, and `Route::Differential` additionally replays the
//! tree-walking interpreters and asserts agreement.

use crate::dispatch::{Artifacts, KindCaches, KindDispatch};
use crate::engine::Engine;
use crate::error::AxmlError;
use crate::options::{EvalMode, EvalOptions, Route, SemiringKind};
use crate::result::AxmlResult;
use axml_core::ast::SurfaceExpr;
use axml_core::eval::{eval_core, QueryEnv};
use axml_core::path::{extract_path, Ineligible, PathQuery};
use axml_core::{elaborate, parse_query};
use axml_pool::ExecCtx;
use axml_semiring::{FnHom, Nat, NatPoly, PosBool, Prob, Semiring, Trio, Tropical, Why};
use axml_uxml::{hom::map_value, Forest, Value};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

struct PreparedInner {
    source: String,
    free_vars: Vec<String>,
    /// The symbolic artifacts — the source of truth every other kind
    /// is derived from.
    poly: Artifacts<NatPoly>,
    /// Lazily specialized per-kind artifacts.
    caches: KindCaches,
    /// `Ok((input var, path))` when the query is inside the §7 XPath
    /// fragment the relational route can evaluate (navigation chains,
    /// composition, union, branching predicates, label tests);
    /// `Err` names the first construct outside it.
    path: Result<(String, PathQuery), Ineligible>,
}

/// A compiled query, cheap to clone and safe to share across threads.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<PreparedInner>,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("source", &self.inner.source)
            .field("free_vars", &self.inner.free_vars)
            .field("shreddable", &self.inner.path.is_ok())
            .finish()
    }
}

impl PreparedQuery {
    pub(crate) fn compile(src: &str) -> Result<Self, AxmlError> {
        let surface = parse_query::<NatPoly>(src).map_err(|e| AxmlError::query_parse(src, e))?;
        let core = elaborate(&surface)?;
        let path = extract_path(&core);
        let free_vars = free_vars(&surface);
        Ok(PreparedQuery {
            inner: Arc::new(PreparedInner {
                source: src.to_owned(),
                free_vars,
                poly: Artifacts::from_core(core),
                caches: KindCaches::default(),
                path,
            }),
        })
    }

    /// The query text this was prepared from.
    pub fn source(&self) -> &str {
        &self.inner.source
    }

    /// The free variables, i.e. the document names `eval` will bind,
    /// sorted.
    pub fn free_vars(&self) -> &[String] {
        &self.inner.free_vars
    }

    /// Whether the relational (`Route::Shredded`) route applies: the
    /// query is inside the §7 XPath fragment — navigation chains,
    /// step composition, union, branching predicates and label tests
    /// over one input document.
    pub fn is_shreddable(&self) -> bool {
        self.inner.path.is_ok()
    }

    /// Former name of [`Self::is_shreddable`], kept because the route
    /// originally covered only single-input step chains.
    pub fn is_step_chain(&self) -> bool {
        self.is_shreddable()
    }

    /// Why `Route::Shredded` does not apply — the first construct
    /// outside the §7 fragment — or `None` when it does.
    pub fn shred_ineligibility(&self) -> Option<&str> {
        self.inner.path.as_ref().err().map(|e| e.construct.as_str())
    }

    /// Rendering of the elaborated core query.
    pub fn core_display(&self) -> String {
        self.inner.poly.core.to_string()
    }

    /// Rendering of the compiled, axiom-normalized NRC term.
    pub fn nrc_display(&self) -> String {
        self.inner.poly.nrc.to_string()
    }

    /// Evaluate against the engine's documents: every free variable
    /// `$X` binds the document loaded as `"X"`.
    pub fn eval(&self, engine: &Engine, opts: EvalOptions) -> Result<AxmlResult, AxmlError> {
        self.eval_bound(engine, opts, &[])
    }

    /// Like [`eval`](Self::eval), with query-variable → document-name
    /// aliases: `("S", "inventory_v2")` binds `$S` to the document
    /// loaded as `"inventory_v2"`. Variables not aliased bind their
    /// own name.
    pub fn eval_bound(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
    ) -> Result<AxmlResult, AxmlError> {
        self.eval_bound_on(engine, opts, aliases, None)
    }

    /// [`eval_bound`](Self::eval_bound) with an explicit pool for the
    /// intra-query parallelism (`None` = the global pool). The batch
    /// APIs pass their scheduling pool through here, so an entry's
    /// `EvalOptions::parallel(n)` fans out on the same pool the batch
    /// runs on — a tenant pinned to a dedicated pool never borrows
    /// global workers. Servers with their own worker pool call this
    /// directly so per-request parallelism stays on their pool.
    pub fn eval_bound_on(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
        pool: Option<&axml_pool::Pool>,
    ) -> Result<AxmlResult, AxmlError> {
        // Resolve the per-call parallelism once: `None` keeps every
        // layer on its exact sequential code path.
        let ctx_slot;
        let ctx: Option<&ExecCtx<'_>> = if opts.parallelism.is_sequential() {
            None
        } else {
            ctx_slot = match pool {
                Some(p) => ExecCtx::new(p, opts.parallelism),
                None => ExecCtx::global(opts.parallelism),
            };
            Some(&ctx_slot)
        };
        match opts.mode {
            EvalMode::ProvenanceFirst => {
                let sym = self.eval_poly(engine, opts, aliases, ctx)?;
                Ok(match opts.semiring {
                    SemiringKind::NatPoly => AxmlResult::NatPoly(sym),
                    SemiringKind::Nat => specialize_result::<Nat>(&sym),
                    SemiringKind::PosBool => specialize_result::<PosBool>(&sym),
                    SemiringKind::Tropical => specialize_result::<Tropical>(&sym),
                    SemiringKind::Why => specialize_result::<Why>(&sym),
                    SemiringKind::Trio => specialize_result::<Trio>(&sym),
                    SemiringKind::Prob => specialize_result::<Prob>(&sym),
                })
            }
            EvalMode::InSemiring => match opts.semiring {
                SemiringKind::NatPoly => self
                    .eval_poly(engine, opts, aliases, ctx)
                    .map(AxmlResult::NatPoly),
                SemiringKind::Nat => self.eval_in::<Nat>(engine, opts, aliases, ctx),
                SemiringKind::PosBool => self.eval_in::<PosBool>(engine, opts, aliases, ctx),
                SemiringKind::Tropical => self.eval_in::<Tropical>(engine, opts, aliases, ctx),
                SemiringKind::Why => self.eval_in::<Why>(engine, opts, aliases, ctx),
                SemiringKind::Trio => self.eval_in::<Trio>(engine, opts, aliases, ctx),
                SemiringKind::Prob => self.eval_in::<Prob>(engine, opts, aliases, ctx),
            },
        }
    }

    /// Evaluate in ℕ\[X\] (no specialization on either side).
    fn eval_poly(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
        ctx: Option<&ExecCtx<'_>>,
    ) -> Result<Value<NatPoly>, AxmlError> {
        let inputs = self.bind_inputs(engine, aliases, |_, d| d.poly.clone())?;
        eval_route(
            &self.inner.poly,
            &self.inner.path,
            &inputs,
            opts.route,
            SemiringKind::NatPoly,
            ctx,
            opts.deadline,
        )
    }

    /// Evaluate natively in `S`, specializing (and caching) the
    /// artifacts and documents on first use.
    fn eval_in<S: KindDispatch>(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
        ctx: Option<&ExecCtx<'_>>,
    ) -> Result<AxmlResult, AxmlError> {
        let arts =
            S::artifact_cache(&self.inner.caches).get_or_init(|| self.inner.poly.specialize::<S>());
        let inputs = self.bind_inputs(engine, aliases, |e, d| e.specialized::<S>(d))?;
        eval_route(
            arts,
            &self.inner.path,
            &inputs,
            opts.route,
            S::KIND,
            ctx,
            opts.deadline,
        )
        .map(S::wrap)
    }

    /// Resolve every free variable to a document, applying aliases.
    fn bind_inputs<K: Semiring>(
        &self,
        engine: &Engine,
        aliases: &[(&str, &str)],
        project: impl Fn(&Engine, &Arc<crate::engine::StoredDoc>) -> Arc<Forest<K>>,
    ) -> Result<BoundInputs<K>, AxmlError> {
        self.inner
            .free_vars
            .iter()
            .map(|var| {
                let doc_name = aliases
                    .iter()
                    .find(|(v, _)| v == var)
                    .map(|(_, d)| *d)
                    .unwrap_or(var);
                let stored = engine.stored_or_err(doc_name)?;
                Ok((var.clone(), project(engine, &stored)))
            })
            .collect()
    }
}

/// `(query variable, document)` bindings resolved for one evaluation.
type BoundInputs<K> = Vec<(String, Arc<Forest<K>>)>;

/// A deadline check, placed at route starts (each differential leg is
/// a route start) — fixpoint rounds check inside `axml-relational`.
fn check_deadline(deadline: Option<Instant>) -> Result<(), AxmlError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(AxmlError::Budget {
            at: "route start".into(),
        }),
        _ => Ok(()),
    }
}

/// Evaluate prepared artifacts over bound inputs along one route.
///
/// `Direct` and `ViaNrc` run the slot-resolved **compiled plans**;
/// the tree-walking interpreters survive as the differential
/// reference: `Differential` evaluates compiled *and* interpreted on
/// both routes (plus the relational route when the query is in the §7
/// fragment) and asserts agreement.
#[allow(clippy::too_many_arguments)]
fn eval_route<K: Semiring>(
    arts: &Artifacts<K>,
    path: &Result<(String, PathQuery), Ineligible>,
    inputs: &[(String, Arc<Forest<K>>)],
    route: Route,
    kind: SemiringKind,
    ctx: Option<&ExecCtx<'_>>,
    deadline: Option<Instant>,
) -> Result<Value<K>, AxmlError> {
    check_deadline(deadline)?;
    match route {
        Route::Direct => eval_direct(arts, inputs, ctx),
        Route::ViaNrc => eval_nrc(arts, inputs, ctx),
        Route::Shredded => eval_shredded(path, inputs, route, ctx, deadline),
        Route::Differential => {
            // Up to five independent evaluation legs. With a
            // non-sequential context they run concurrently on the
            // pool (each leg also keeps its own inner parallelism);
            // either way the legs and comparisons are checked in the
            // same order, so outcomes — including which disagreement
            // is reported first — are identical.
            type Leg<K> = Option<Result<Value<K>, AxmlError>>;
            type Legs<K> = (Leg<K>, Leg<K>, Leg<K>, Leg<K>, Leg<K>);
            let (direct, direct_interp, nrc, nrc_interp, shredded) = match ctx {
                Some(c) => {
                    let (mut l1, mut l2, mut l3, mut l4, mut l5): Legs<K> =
                        (None, None, None, None, None);
                    let gate = || check_deadline(deadline);
                    c.pool.scope(|s| {
                        s.spawn(|| l1 = Some(gate().and_then(|()| eval_direct(arts, inputs, ctx))));
                        s.spawn(|| {
                            l2 = Some(gate().and_then(|()| eval_direct_interpreted(arts, inputs)))
                        });
                        s.spawn(|| l3 = Some(gate().and_then(|()| eval_nrc(arts, inputs, ctx))));
                        s.spawn(|| {
                            l4 = Some(gate().and_then(|()| eval_nrc_interpreted(arts, inputs)))
                        });
                        if path.is_ok() {
                            s.spawn(|| {
                                l5 = Some(eval_shredded(path, inputs, route, ctx, deadline))
                            });
                        }
                    });
                    (
                        l1.expect("leg ran")?,
                        l2.expect("leg ran")?,
                        l3.expect("leg ran")?,
                        l4.expect("leg ran")?,
                        l5.transpose()?,
                    )
                }
                None => {
                    let direct = eval_direct(arts, inputs, ctx)?;
                    check_deadline(deadline)?;
                    let direct_interp = eval_direct_interpreted(arts, inputs)?;
                    check_deadline(deadline)?;
                    let nrc = eval_nrc(arts, inputs, ctx)?;
                    check_deadline(deadline)?;
                    let nrc_interp = eval_nrc_interpreted(arts, inputs)?;
                    let shredded = if path.is_ok() {
                        Some(eval_shredded(path, inputs, route, ctx, deadline)?)
                    } else {
                        None
                    };
                    (direct, direct_interp, nrc, nrc_interp, shredded)
                }
            };
            if direct != direct_interp {
                return Err(evaluator_disagreement(
                    kind,
                    Route::Direct,
                    &direct,
                    &direct_interp,
                ));
            }
            if nrc != nrc_interp {
                return Err(evaluator_disagreement(
                    kind,
                    Route::ViaNrc,
                    &nrc,
                    &nrc_interp,
                ));
            }
            if direct != nrc {
                return Err(disagreement(
                    kind,
                    Route::Direct,
                    &direct,
                    Route::ViaNrc,
                    &nrc,
                ));
            }
            if let Some(shredded) = shredded {
                if direct != shredded {
                    return Err(disagreement(
                        kind,
                        Route::Direct,
                        &direct,
                        Route::Shredded,
                        &shredded,
                    ));
                }
            }
            Ok(direct)
        }
    }
}

fn disagreement<K: Semiring>(
    semiring: SemiringKind,
    left_route: Route,
    left: &Value<K>,
    right_route: Route,
    right: &Value<K>,
) -> AxmlError {
    AxmlError::RouteDisagreement {
        semiring,
        left_route,
        left: left.to_string(),
        right_route,
        right: right.to_string(),
    }
}

fn evaluator_disagreement<K: Semiring>(
    semiring: SemiringKind,
    route: Route,
    compiled: &Value<K>,
    interpreted: &Value<K>,
) -> AxmlError {
    AxmlError::EvaluatorDisagreement {
        semiring,
        route,
        compiled: compiled.to_string(),
        interpreted: interpreted.to_string(),
    }
}

/// The direct route: the slot-resolved compiled plan.
fn eval_direct<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &[(String, Arc<Forest<K>>)],
    ctx: Option<&ExecCtx<'_>>,
) -> Result<Value<K>, AxmlError> {
    // The plan needs owned Values; this clone is shallow — a Forest is
    // a map over Arc'd trees, so only the top-level roots (usually
    // one) and their annotations are copied, never the document body.
    let bound: Vec<(&str, Value<K>)> = inputs
        .iter()
        .map(|(n, f)| (n.as_str(), Value::Set((**f).clone())))
        .collect();
    Ok(arts.core_plan.eval_ctx(&bound, ctx)?)
}

/// The direct route's tree-walking interpreter — the differential
/// reference for [`eval_direct`].
fn eval_direct_interpreted<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &[(String, Arc<Forest<K>>)],
) -> Result<Value<K>, AxmlError> {
    let mut env = QueryEnv::from_bindings(
        inputs
            .iter()
            .map(|(n, f)| (n.clone(), Value::Set((**f).clone()))),
    );
    Ok(eval_core(&arts.core, &mut env)?)
}

/// The NRC route: the slot-resolved compiled plan (fused label
/// tests/descendant sweeps, iterative `srt`).
fn eval_nrc<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &[(String, Arc<Forest<K>>)],
    ctx: Option<&ExecCtx<'_>>,
) -> Result<Value<K>, AxmlError> {
    let bound: Vec<(&str, &Forest<K>)> = inputs.iter().map(|(n, f)| (n.as_str(), &**f)).collect();
    let out = arts.nrc_plan.eval_with_forests_ctx(&bound, ctx)?;
    out.to_uxml().ok_or_else(|| AxmlError::Nrc {
        msg: "query produced a non-UXML complex value".into(),
        at: arts.nrc.to_string(),
    })
}

/// The NRC route's Fig 8 interpreter — the differential reference for
/// [`eval_nrc`].
fn eval_nrc_interpreted<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &[(String, Arc<Forest<K>>)],
) -> Result<Value<K>, AxmlError> {
    let mut env = axml_nrc::Env::from_bindings(
        inputs
            .iter()
            .map(|(n, f)| (n.clone(), axml_nrc::CValue::from_forest(f))),
    );
    let out = axml_nrc::eval(&arts.nrc, &mut env)?;
    out.to_uxml().ok_or_else(|| AxmlError::Nrc {
        msg: "query produced a non-UXML complex value".into(),
        at: arts.nrc.to_string(),
    })
}

fn eval_shredded<K: Semiring>(
    path: &Result<(String, PathQuery), Ineligible>,
    inputs: &[(String, Arc<Forest<K>>)],
    route: Route,
    ctx: Option<&ExecCtx<'_>>,
    deadline: Option<Instant>,
) -> Result<Value<K>, AxmlError> {
    check_deadline(deadline)?;
    let (var, p) = match path {
        Ok(x) => x,
        Err(why) => {
            return Err(AxmlError::UnsupportedRoute {
                route,
                construct: why.construct.clone(),
            })
        }
    };
    let Some((_, forest)) = inputs.iter().find(|(n, _)| n == var) else {
        return Err(AxmlError::UnknownDocument {
            name: var.clone(),
            available: inputs.iter().map(|(n, _)| n.clone()).collect(),
        });
    };
    let out = axml_relational::eval_path_via_shredding_deadline_ctx(forest, p, ctx, deadline)?;
    Ok(Value::Set(out))
}

/// Free variables of a surface query, in sorted order.
fn free_vars<K: Semiring>(e: &SurfaceExpr<K>) -> Vec<String> {
    fn walk<K: Semiring>(e: &SurfaceExpr<K>, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match e {
            SurfaceExpr::LabelLit(_) | SurfaceExpr::Empty => {}
            SurfaceExpr::Var(x) => {
                if !bound.iter().any(|b| b == x) {
                    out.insert(x.clone());
                }
            }
            SurfaceExpr::Paren(a) | SurfaceExpr::Name(a) | SurfaceExpr::Annot(_, a) => {
                walk(a, bound, out)
            }
            SurfaceExpr::Path(a, _) => walk(a, bound, out),
            SurfaceExpr::Seq(a, b) => {
                walk(a, bound, out);
                walk(b, bound, out);
            }
            SurfaceExpr::For {
                binders,
                where_eq,
                body,
            } => {
                let depth = bound.len();
                for (v, src) in binders {
                    walk(src, bound, out);
                    bound.push(v.clone());
                }
                if let Some((l, r)) = where_eq {
                    walk(l, bound, out);
                    walk(r, bound, out);
                }
                walk(body, bound, out);
                bound.truncate(depth);
            }
            SurfaceExpr::Let { bindings, body } => {
                let depth = bound.len();
                for (v, def) in bindings {
                    walk(def, bound, out);
                    bound.push(v.clone());
                }
                walk(body, bound, out);
                bound.truncate(depth);
            }
            SurfaceExpr::If { l, r, then, els } => {
                walk(l, bound, out);
                walk(r, bound, out);
                walk(then, bound, out);
                walk(els, bound, out);
            }
            SurfaceExpr::Element { name, content } => {
                if let axml_core::ast::ElementName::Dynamic(n) = name {
                    walk(n, bound, out);
                }
                walk(content, bound, out);
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(e, &mut Vec::new(), &mut out);
    out.into_iter().collect()
}

/// Push a symbolic result through the canonical homomorphism into `S`.
fn specialize_result<S: KindDispatch>(sym: &Value<NatPoly>) -> AxmlResult {
    S::wrap(map_value(&FnHom::new(S::from_poly), sym))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surf(src: &str) -> SurfaceExpr<NatPoly> {
        parse_query(src).unwrap()
    }

    #[test]
    fn free_vars_respect_binders_and_shadowing() {
        let q = surf("for $x in $S return for $y in ($x)/child::* return ($y, $T)");
        assert_eq!(free_vars(&q), ["S", "T"]);
        let q2 = surf("let $S := $R return $S");
        assert_eq!(free_vars(&q2), ["R"]);
        let q3 = surf("for $a in $R, $b in ($a)/* where name($a) = name($c) return ($b)");
        assert_eq!(free_vars(&q3), ["R", "c"]);
    }

    #[test]
    fn fragment_queries_are_recognized() {
        let chain = elaborate(&surf("$S/a//b/self::c")).unwrap();
        let (var, path) = extract_path(&chain).expect("is a chain");
        assert_eq!(var, "S");
        assert_eq!(path.step_count(), 4); // child::* seed + 3 steps

        // newly eligible: unions, composition, branching predicates
        for q in [
            "($S//a, $S/b)",
            "for $x in $S//a return ($x)/c",
            "for $x in $S//a return for $y in ($x)/b return ($x)",
        ] {
            let core = elaborate(&surf(q)).unwrap();
            assert!(extract_path(&core).is_ok(), "{q} should be eligible");
        }

        let not_chain = elaborate(&surf("element r { $S/a }")).unwrap();
        let why = extract_path(&not_chain).unwrap_err();
        assert!(why.construct.contains("element constructor"), "{why}");
    }
}
