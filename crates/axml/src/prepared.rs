//! [`PreparedQuery`]: parse + elaborate + compile once, evaluate many
//! times.
//!
//! `compile` runs the whole front half of the pipeline — surface
//! parse, elaboration to the typed core, compilation to `NRC_K + srt`,
//! normalization by the Prop 5 axioms, **lowering both routes to
//! slot-resolved execution plans**, free-variable analysis, and
//! step-chain extraction for the relational route — over ℕ\[X\], the
//! universal semiring. Per-kind copies of the evaluation artifacts
//! (interpreter terms *and* compiled plans) are produced on first use
//! through the canonical homomorphisms and cached (`OnceLock`), so
//! steady-state `eval` does no per-call translation work in any
//! semiring: `Route::Direct` and `Route::ViaNrc` run the compiled
//! plans, and `Route::Differential` additionally replays the
//! tree-walking interpreters and asserts agreement.

use crate::cursor::{ChannelSink, EvalCursor, StreamItem, STREAM_BUFFER_PIECES};
use crate::dispatch::{Artifacts, KindCaches, KindDispatch};
use crate::engine::{Engine, StoredDoc};
use crate::error::{AxmlError, BudgetKind};
use crate::options::{EvalMode, EvalOptions, Route, SemiringKind};
use crate::result::{AxmlResult, ResultPiece};
use axml_core::ast::SurfaceExpr;
use axml_core::eval::{eval_core, QueryEnv};
use axml_core::path::{extract_path, Ineligible, PathQuery};
use axml_core::{elaborate, parse_query};
use axml_pool::ExecCtx;
use axml_semiring::{FnHom, Nat, NatPoly, PosBool, Prob, Semiring, Trio, Tropical, Why};
use axml_uxml::{hom::map_value, Forest, NodeBudget, StreamError, Streamed, Tree, Value};
use std::collections::BTreeSet;
use std::sync::atomic::AtomicUsize;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct PreparedInner {
    source: String,
    free_vars: Vec<String>,
    /// The symbolic artifacts — the source of truth every other kind
    /// is derived from.
    poly: Artifacts<NatPoly>,
    /// Lazily specialized per-kind artifacts.
    caches: KindCaches,
    /// `Ok((input var, path))` when the query is inside the §7 XPath
    /// fragment the relational route can evaluate (navigation chains,
    /// composition, union, branching predicates, label tests);
    /// `Err` names the first construct outside it.
    path: Result<(String, PathQuery), Ineligible>,
}

/// A compiled query, cheap to clone and safe to share across threads.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<PreparedInner>,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("source", &self.inner.source)
            .field("free_vars", &self.inner.free_vars)
            .field("shreddable", &self.inner.path.is_ok())
            .finish()
    }
}

/// Monomorphize `$e` at the semiring type `$S` selected by a runtime
/// [`SemiringKind`] — the one place the 7-way kind dispatch lives.
macro_rules! with_kind {
    ($kind:expr, $S:ident => $e:expr) => {
        match $kind {
            SemiringKind::Nat => {
                type $S = Nat;
                $e
            }
            SemiringKind::PosBool => {
                type $S = PosBool;
                $e
            }
            SemiringKind::Tropical => {
                type $S = Tropical;
                $e
            }
            SemiringKind::NatPoly => {
                type $S = NatPoly;
                $e
            }
            SemiringKind::Why => {
                type $S = Why;
                $e
            }
            SemiringKind::Trio => {
                type $S = Trio;
                $e
            }
            SemiringKind::Prob => {
                type $S = Prob;
                $e
            }
        }
    };
}

/// The hooks one semiring kind needs to participate in evaluation:
/// where its compiled artifacts live, how a stored document projects
/// into it, how its values wrap into the kind-tagged result types.
/// ℕ\[X\] implements it directly (its artifacts *are* the source of
/// truth); the six specialized kinds implement it through their
/// [`KindDispatch`] caches. Together with [`with_kind!`] this is what
/// lets `eval_with` and `eval_stream` share one generic body instead
/// of seven hand-written match arms each.
pub(crate) trait EvalKind: Semiring {
    /// The runtime tag of this kind.
    const KIND: SemiringKind;
    /// This kind's evaluation artifacts (specializing and caching on
    /// first use where applicable).
    fn artifacts(inner: &PreparedInner) -> &Artifacts<Self>;
    /// A stored document projected into this kind (cached).
    fn project_doc(engine: &Engine, doc: &Arc<StoredDoc>) -> Arc<Forest<Self>>;
    /// One ℕ\[X\] annotation pushed through the canonical
    /// homomorphism into this kind (the value-level map the
    /// incremental layer uses on ±Δ facts).
    fn from_poly_val(p: &NatPoly) -> Self;
    /// Push a symbolic (ℕ\[X\]) result through the canonical
    /// homomorphism into this kind.
    fn specialize_value(sym: &Value<NatPoly>) -> Value<Self>;
    /// Tag a value of this kind as an [`AxmlResult`].
    fn wrap_value(v: Value<Self>) -> AxmlResult;
    /// Tag one streamed piece of this kind as a [`ResultPiece`].
    fn piece(t: Tree<Self>, k: Self) -> ResultPiece;
}

impl EvalKind for NatPoly {
    const KIND: SemiringKind = SemiringKind::NatPoly;
    fn artifacts(inner: &PreparedInner) -> &Artifacts<NatPoly> {
        &inner.poly
    }
    fn project_doc(_engine: &Engine, doc: &Arc<StoredDoc>) -> Arc<Forest<NatPoly>> {
        doc.poly.clone()
    }
    fn from_poly_val(p: &NatPoly) -> NatPoly {
        p.clone()
    }
    fn specialize_value(sym: &Value<NatPoly>) -> Value<NatPoly> {
        sym.clone()
    }
    fn wrap_value(v: Value<NatPoly>) -> AxmlResult {
        AxmlResult::NatPoly(v)
    }
    fn piece(t: Tree<NatPoly>, k: NatPoly) -> ResultPiece {
        ResultPiece::NatPoly(t, k)
    }
}

macro_rules! eval_kind_via_dispatch {
    ($($k:ty => $variant:ident),* $(,)?) => {
        $(impl EvalKind for $k {
            const KIND: SemiringKind = SemiringKind::$variant;
            fn artifacts(inner: &PreparedInner) -> &Artifacts<Self> {
                <$k as KindDispatch>::artifact_cache(&inner.caches)
                    .get_or_init(|| inner.poly.specialize::<$k>())
            }
            fn project_doc(engine: &Engine, doc: &Arc<StoredDoc>) -> Arc<Forest<Self>> {
                engine.specialized::<$k>(doc)
            }
            fn from_poly_val(p: &NatPoly) -> Self {
                <$k as KindDispatch>::from_poly(p)
            }
            fn specialize_value(sym: &Value<NatPoly>) -> Value<Self> {
                map_value(&FnHom::new(<$k as KindDispatch>::from_poly), sym)
            }
            fn wrap_value(v: Value<Self>) -> AxmlResult {
                AxmlResult::$variant(v)
            }
            fn piece(t: Tree<Self>, k: Self) -> ResultPiece {
                ResultPiece::$variant(t, k)
            }
        })*
    };
}
eval_kind_via_dispatch!(
    Nat => Nat,
    PosBool => PosBool,
    Tropical => Tropical,
    Why => Why,
    Trio => Trio,
    Prob => Prob,
);

impl PreparedQuery {
    pub(crate) fn compile(src: &str) -> Result<Self, AxmlError> {
        let surface = parse_query::<NatPoly>(src).map_err(|e| AxmlError::query_parse(src, e))?;
        let core = elaborate(&surface)?;
        let path = extract_path(&core);
        let free_vars = free_vars(&surface);
        Ok(PreparedQuery {
            inner: Arc::new(PreparedInner {
                source: src.to_owned(),
                free_vars,
                poly: Artifacts::from_core(core),
                caches: KindCaches::default(),
                path,
            }),
        })
    }

    /// The query text this was prepared from.
    pub fn source(&self) -> &str {
        &self.inner.source
    }

    /// The free variables, i.e. the document names `eval` will bind,
    /// sorted.
    pub fn free_vars(&self) -> &[String] {
        &self.inner.free_vars
    }

    /// Whether the relational (`Route::Shredded`) route applies: the
    /// query is inside the §7 XPath fragment — navigation chains,
    /// step composition, union, branching predicates and label tests
    /// over one input document.
    pub fn is_shreddable(&self) -> bool {
        self.inner.path.is_ok()
    }

    /// Former name of [`Self::is_shreddable`], kept because the route
    /// originally covered only single-input step chains.
    pub fn is_step_chain(&self) -> bool {
        self.is_shreddable()
    }

    /// Why `Route::Shredded` does not apply — the first construct
    /// outside the §7 fragment — or `None` when it does.
    pub fn shred_ineligibility(&self) -> Option<&str> {
        self.inner.path.as_ref().err().map(|e| e.construct.as_str())
    }

    /// Rendering of the elaborated core query.
    pub fn core_display(&self) -> String {
        self.inner.poly.core.to_string()
    }

    /// Rendering of the compiled, axiom-normalized NRC term.
    pub fn nrc_display(&self) -> String {
        self.inner.poly.nrc.to_string()
    }

    /// Evaluate against the engine's documents: every free variable
    /// `$X` binds the document loaded as `"X"`. Thin wrapper over
    /// [`eval_with`](Self::eval_with) with no aliases and the global
    /// pool.
    pub fn eval(&self, engine: &Engine, opts: EvalOptions) -> Result<AxmlResult, AxmlError> {
        self.eval_with(engine, opts, &[], None)
    }

    /// Like [`eval`](Self::eval), with query-variable → document-name
    /// aliases: `("S", "inventory_v2")` binds `$S` to the document
    /// loaded as `"inventory_v2"`. Variables not aliased bind their
    /// own name. Thin wrapper over [`eval_with`](Self::eval_with).
    pub fn eval_bound(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
    ) -> Result<AxmlResult, AxmlError> {
        self.eval_with(engine, opts, aliases, None)
    }

    /// [`eval_bound`](Self::eval_bound) with an explicit pool — kept
    /// as a named alias of [`eval_with`](Self::eval_with) for callers
    /// reading "bound + on pool" at the call site.
    pub fn eval_bound_on(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
        pool: Option<&axml_pool::Pool>,
    ) -> Result<AxmlResult, AxmlError> {
        self.eval_with(engine, opts, aliases, pool)
    }

    /// The one evaluation path everything else wraps: evaluate with
    /// aliases applied and intra-query parallelism scheduled on
    /// `pool` (`None` = the global pool).
    ///
    /// Every limit in `opts` is armed here — the wall-clock deadline
    /// and the [`EvalOptions::memory_budget`] (one fresh
    /// [`NodeBudget`] counter per call, shared across every leg and
    /// fixpoint round of the chosen route) — and every route reads its
    /// documents through the same binding/projection step, so `eval`,
    /// `eval_bound`, the batch APIs and the streaming API cannot
    /// drift apart in behavior.
    ///
    /// The batch APIs pass their scheduling pool through here, so an
    /// entry's `EvalOptions::parallel(n)` fans out on the same pool
    /// the batch runs on — a tenant pinned to a dedicated pool never
    /// borrows global workers. Servers with their own worker pool
    /// call this directly so per-request parallelism stays on their
    /// pool.
    pub fn eval_with(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
        pool: Option<&axml_pool::Pool>,
    ) -> Result<AxmlResult, AxmlError> {
        // Resolve the per-call parallelism once: `None` keeps every
        // layer on its exact sequential code path.
        let ctx_slot;
        let ctx: Option<&ExecCtx<'_>> = if opts.parallelism.is_sequential() {
            None
        } else {
            ctx_slot = match pool {
                Some(p) => ExecCtx::new(p, opts.parallelism),
                None => ExecCtx::global(opts.parallelism),
            };
            Some(&ctx_slot)
        };
        let budget = opts.memory_budget.map(NodeBudget::new);
        let limits = Limits {
            deadline: opts.deadline,
            budget: budget.as_ref(),
        };
        // A lane hint classifies every scope this evaluation opens on
        // the pool (thread-inherited, so nested fan-out stays in the
        // lane); it never changes what is computed.
        let run = || match opts.mode {
            EvalMode::ProvenanceFirst => {
                let sym = self.value_in::<NatPoly>(engine, aliases, opts.route, ctx, limits)?;
                if opts.semiring == SemiringKind::NatPoly {
                    return Ok(AxmlResult::NatPoly(sym));
                }
                Ok(with_kind!(opts.semiring, S => {
                    S::wrap_value(S::specialize_value(&sym))
                }))
            }
            EvalMode::InSemiring => with_kind!(opts.semiring, S => {
                self.value_in::<S>(engine, aliases, opts.route, ctx, limits)
                    .map(S::wrap_value)
            }),
        };
        match opts.lane {
            Some(lane) => axml_pool::with_lane(lane, run),
            None => run(),
        }
    }

    /// Evaluate to a streaming cursor: top-level pieces of a
    /// set-shaped result become available **as they are produced**,
    /// before the evaluation has finished. See [`EvalCursor`] for the
    /// consumption model.
    ///
    /// Collecting the cursor ([`EvalCursor::collect_result`]) gives a
    /// result equal to [`eval`](Self::eval) with the same options —
    /// same pieces, same document order, same errors — so streaming is
    /// purely a latency choice. `InSemiring` evaluations on the
    /// `Direct` and `ViaNrc` routes run on a detached producer thread
    /// and emit incrementally (streamable root shapes emit each piece
    /// the moment it is final; others materialize inside the producer
    /// and then emit); the `Shredded` and `Differential` routes and
    /// `ProvenanceFirst` mode — where a result is only meaningful
    /// whole — materialize synchronously and cursor over the result.
    ///
    /// Binding errors (unknown documents, parse-stage leftovers)
    /// surface synchronously from this call; evaluation errors —
    /// including tripped deadlines and memory budgets — arrive
    /// in-band as the cursor's final item.
    pub fn eval_stream(&self, engine: &Engine, opts: EvalOptions) -> Result<EvalCursor, AxmlError> {
        self.eval_stream_bound(engine, opts, &[])
    }

    /// [`eval_stream`](Self::eval_stream) with query-variable →
    /// document-name aliases (the streaming analogue of
    /// [`eval_bound`](Self::eval_bound)).
    pub fn eval_stream_bound(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
    ) -> Result<EvalCursor, AxmlError> {
        self.eval_stream_with(engine, opts, aliases, None)
    }

    /// [`eval_stream_bound`](Self::eval_stream_bound) with an explicit
    /// scheduling pool for the *materializing* combinations (the
    /// streaming analogue of [`eval_with`](Self::eval_with)). The
    /// incremental combinations run on a detached producer thread that
    /// cannot borrow a caller's pool, so they always schedule
    /// intra-query parallelism on the global pool.
    pub fn eval_stream_with(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
        pool: Option<&axml_pool::Pool>,
    ) -> Result<EvalCursor, AxmlError> {
        // Piece-wise specialization is unsound for `ProvenanceFirst`
        // (the homomorphism can merge previously-distinct trees), and
        // the shredded/differential routes only have whole-result
        // semantics, so those combinations materialize-then-cursor.
        let incremental = opts.mode == EvalMode::InSemiring
            && matches!(opts.route, Route::Direct | Route::ViaNrc);
        if !incremental {
            let out = self.eval_with(engine, opts, aliases, pool)?;
            return Ok(EvalCursor::ready(out));
        }
        with_kind!(opts.semiring, S => self.stream_in::<S>(engine, opts, aliases))
    }

    /// Spawn the detached producer for an incremental stream in `S`.
    fn stream_in<S: EvalKind>(
        &self,
        engine: &Engine,
        opts: EvalOptions,
        aliases: &[(&str, &str)],
    ) -> Result<EvalCursor, AxmlError> {
        // Bind before spawning: unknown-document errors stay
        // synchronous (a server maps them to a status line *before*
        // any body bytes).
        let inputs = self.bind_inputs(engine, aliases, S::project_doc)?;
        let me = self.clone();
        let (tx, rx) = sync_channel(STREAM_BUFFER_PIECES);
        let produced = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&produced);
        std::thread::Builder::new()
            .name("axml-eval-stream".into())
            .spawn(move || produce::<S>(&me, opts, &inputs, &tx, &counter))
            .expect("spawn streaming producer thread");
        Ok(EvalCursor::live(rx, produced, opts.semiring))
    }

    /// Evaluate to a `Value` natively in `S`, resolving artifacts and
    /// documents through the kind's [`EvalKind`] hooks (specialized
    /// and cached on first use for every kind but ℕ\[X\] itself).
    fn value_in<S: EvalKind>(
        &self,
        engine: &Engine,
        aliases: &[(&str, &str)],
        route: Route,
        ctx: Option<&ExecCtx<'_>>,
        limits: Limits<'_>,
    ) -> Result<Value<S>, AxmlError> {
        let arts = S::artifacts(&self.inner);
        let inputs = self.bind_inputs(engine, aliases, S::project_doc)?;
        eval_route(
            arts,
            &self.inner.path,
            &inputs,
            route,
            ctx,
            limits,
            engine,
            &self.inner.source,
        )
    }

    /// Resolve every free variable to a document, applying aliases.
    fn bind_inputs<K: Semiring>(
        &self,
        engine: &Engine,
        aliases: &[(&str, &str)],
        project: impl Fn(&Engine, &Arc<crate::engine::StoredDoc>) -> Arc<Forest<K>>,
    ) -> Result<BoundInputs<K>, AxmlError> {
        self.inner
            .free_vars
            .iter()
            .map(|var| {
                let doc_name = aliases
                    .iter()
                    .find(|(v, _)| v == var)
                    .map(|(_, d)| *d)
                    .unwrap_or(var);
                let stored = engine.stored_or_err(doc_name)?;
                Ok(BoundInput {
                    forest: project(engine, &stored),
                    doc: stored,
                    name: var.clone(),
                })
            })
            .collect()
    }
}

/// One `(query variable, document)` binding resolved for one
/// evaluation: the kind-projected forest plus the stored-document
/// snapshot it was projected from (the incremental layer reads the
/// snapshot's version and per-document state through it).
pub(crate) struct BoundInput<K: Semiring> {
    name: String,
    forest: Arc<Forest<K>>,
    doc: Arc<StoredDoc>,
}

/// The bindings resolved for one evaluation.
type BoundInputs<K> = Vec<BoundInput<K>>;

/// The armed per-call resource limits, threaded together through the
/// routes: the wall-clock deadline (checked at route starts and
/// fixpoint rounds) and the memory budget (charged at set-producing
/// op boundaries). One `NodeBudget` counter serves the whole call —
/// all differential legs, all fixpoint rounds — so the budget bounds
/// the *evaluation*, not any single leg.
#[derive(Clone, Copy)]
struct Limits<'a> {
    deadline: Option<Instant>,
    budget: Option<&'a NodeBudget>,
}

/// A deadline check, placed at route starts (each differential leg is
/// a route start) — fixpoint rounds check inside `axml-relational`.
fn check_deadline(deadline: Option<Instant>) -> Result<(), AxmlError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(AxmlError::Budget {
            resource: BudgetKind::WallClock,
            at: "route start".into(),
        }),
        _ => Ok(()),
    }
}

/// The detached producer behind one [`EvalCursor`]: evaluate through
/// the streaming plan entry points, pushing each final piece into the
/// bounded channel. Runs on its own thread, so intra-query
/// parallelism fans out on the **global** pool (a detached producer
/// cannot borrow a caller's pool). Errors are sent in-band; a closed
/// channel (the consumer dropped the cursor) just ends the thread.
fn produce<S: EvalKind>(
    me: &PreparedQuery,
    opts: EvalOptions,
    inputs: &BoundInputs<S>,
    tx: &SyncSender<Result<StreamItem, AxmlError>>,
    produced: &AtomicUsize,
) {
    let budget = opts.memory_budget.map(NodeBudget::new);
    let ctx_slot;
    let ctx: Option<&ExecCtx<'_>> = if opts.parallelism.is_sequential() {
        None
    } else {
        ctx_slot = ExecCtx::global(opts.parallelism);
        Some(&ctx_slot)
    };
    if let Err(e) = check_deadline(opts.deadline) {
        let _ = tx.send(Err(e));
        return;
    }
    let arts = S::artifacts(&me.inner);
    let mut sink = ChannelSink::new(tx, produced, S::piece);
    // The lane hint must be re-armed here: it is thread-local and the
    // producer is a fresh thread, not the request handler's.
    let mut run = || match opts.route {
        Route::Direct => {
            let bound: Vec<(&str, Value<S>)> = inputs
                .iter()
                .map(|b| (b.name.as_str(), Value::Set((*b.forest).clone())))
                .collect();
            arts.core_plan
                .eval_stream_ctx(&bound, ctx, budget.as_ref(), &mut sink)
                .map_err(stream_err)
        }
        Route::ViaNrc => {
            let bound: Vec<(&str, &Forest<S>)> = inputs
                .iter()
                .map(|b| (b.name.as_str(), &*b.forest))
                .collect();
            arts.nrc_plan
                .eval_stream_with_forests_ctx(&bound, ctx, budget.as_ref(), &mut sink)
                .map_err(stream_err)
        }
        Route::Shredded | Route::Differential => {
            unreachable!("non-incremental routes materialize in eval_stream_bound")
        }
    };
    let outcome = match opts.lane {
        Some(lane) => axml_pool::with_lane(lane, run),
        None => run(),
    };
    match outcome {
        // A finished set: dropping `tx` closes the channel, which the
        // cursor reads as end-of-stream.
        Ok(Streamed::Set) => {}
        Ok(Streamed::Scalar(v)) => {
            let _ = tx.send(Ok(StreamItem::Scalar(S::wrap_value(v))));
        }
        // The consumer lost interest; nobody is listening.
        Err(StreamError::Closed) => {}
        Err(StreamError::Eval(e)) => {
            let _ = tx.send(Err(e));
        }
    }
}

/// Map a plan-layer stream error into the facade error, preserving
/// the closed-channel case.
fn stream_err<E: Into<AxmlError>>(e: StreamError<E>) -> StreamError<AxmlError> {
    match e {
        StreamError::Eval(e) => StreamError::Eval(e.into()),
        StreamError::Closed => StreamError::Closed,
    }
}

/// Evaluate prepared artifacts over bound inputs along one route.
///
/// `Direct` and `ViaNrc` run the slot-resolved **compiled plans**;
/// the tree-walking interpreters survive as the differential
/// reference: `Differential` evaluates compiled *and* interpreted on
/// both routes (plus the relational route when the query is in the §7
/// fragment) and asserts agreement.
///
/// On **edited** documents (version > 0) the §7-fragment routes
/// engage the incremental layer: `Direct`/`ViaNrc` serve from the
/// subtree-fingerprint memo ([`crate::incr::eval_path_memoized`]) and
/// `Shredded` propagates deltas through the retained Datalog fixpoint
/// ([`crate::incr::eval_shredded_incr`]); `Differential` additionally
/// runs the memoized evaluator as a sixth leg and asserts it agrees
/// with the compiled direct plan. Never-edited documents take exactly
/// the pre-incrementality code paths.
#[allow(clippy::too_many_arguments)]
fn eval_route<S: EvalKind>(
    arts: &Artifacts<S>,
    path: &Result<(String, PathQuery), Ineligible>,
    inputs: &BoundInputs<S>,
    route: Route,
    ctx: Option<&ExecCtx<'_>>,
    limits: Limits<'_>,
    engine: &Engine,
    key: &str,
) -> Result<Value<S>, AxmlError> {
    let kind = S::KIND;
    check_deadline(limits.deadline)?;
    match route {
        Route::Direct | Route::ViaNrc => {
            if let Some(out) = try_memoized(path, inputs, engine, limits, key) {
                return out;
            }
            if route == Route::Direct {
                eval_direct(arts, inputs, ctx, limits)
            } else {
                eval_nrc(arts, inputs, ctx, limits)
            }
        }
        Route::Shredded => eval_shredded(path, inputs, route, ctx, limits, engine, key),
        Route::Differential => {
            // Up to five independent evaluation legs. With a
            // non-sequential context they run concurrently on the
            // pool (each leg also keeps its own inner parallelism);
            // either way the legs and comparisons are checked in the
            // same order, so outcomes — including which disagreement
            // is reported first — are identical.
            type Leg<S> = Option<Result<Value<S>, AxmlError>>;
            type Legs<S> = (Leg<S>, Leg<S>, Leg<S>, Leg<S>, Leg<S>);
            let (direct, direct_interp, nrc, nrc_interp, shredded) = match ctx {
                Some(c) => {
                    let (mut l1, mut l2, mut l3, mut l4, mut l5): Legs<S> =
                        (None, None, None, None, None);
                    let gate = || check_deadline(limits.deadline);
                    c.pool.scope(|s| {
                        s.spawn(|| {
                            l1 = Some(gate().and_then(|()| eval_direct(arts, inputs, ctx, limits)))
                        });
                        s.spawn(|| {
                            l2 = Some(gate().and_then(|()| eval_direct_interpreted(arts, inputs)))
                        });
                        s.spawn(|| {
                            l3 = Some(gate().and_then(|()| eval_nrc(arts, inputs, ctx, limits)))
                        });
                        s.spawn(|| {
                            l4 = Some(gate().and_then(|()| eval_nrc_interpreted(arts, inputs)))
                        });
                        if path.is_ok() {
                            s.spawn(|| {
                                l5 = Some(eval_shredded(
                                    path, inputs, route, ctx, limits, engine, key,
                                ))
                            });
                        }
                    });
                    (
                        l1.expect("leg ran")?,
                        l2.expect("leg ran")?,
                        l3.expect("leg ran")?,
                        l4.expect("leg ran")?,
                        l5.transpose()?,
                    )
                }
                None => {
                    let direct = eval_direct(arts, inputs, ctx, limits)?;
                    check_deadline(limits.deadline)?;
                    let direct_interp = eval_direct_interpreted(arts, inputs)?;
                    check_deadline(limits.deadline)?;
                    let nrc = eval_nrc(arts, inputs, ctx, limits)?;
                    check_deadline(limits.deadline)?;
                    let nrc_interp = eval_nrc_interpreted(arts, inputs)?;
                    let shredded = if path.is_ok() {
                        Some(eval_shredded(
                            path, inputs, route, ctx, limits, engine, key,
                        )?)
                    } else {
                        None
                    };
                    (direct, direct_interp, nrc, nrc_interp, shredded)
                }
            };
            if direct != direct_interp {
                return Err(evaluator_disagreement(
                    kind,
                    Route::Direct,
                    &direct,
                    &direct_interp,
                ));
            }
            if nrc != nrc_interp {
                return Err(evaluator_disagreement(
                    kind,
                    Route::ViaNrc,
                    &nrc,
                    &nrc_interp,
                ));
            }
            if direct != nrc {
                return Err(disagreement(
                    kind,
                    Route::Direct,
                    &direct,
                    Route::ViaNrc,
                    &nrc,
                ));
            }
            if let Some(shredded) = shredded {
                if direct != shredded {
                    return Err(disagreement(
                        kind,
                        Route::Direct,
                        &direct,
                        Route::Shredded,
                        &shredded,
                    ));
                }
            }
            // Sixth leg: when an edited document engages the
            // fingerprint memo, re-derive the result through it and
            // assert agreement with the compiled direct plan — the
            // incremental evaluator is differentially checked like
            // every other one.
            if let Some(memoized) = try_memoized(path, inputs, engine, limits, key) {
                let memoized = memoized?;
                if direct != memoized {
                    return Err(evaluator_disagreement(
                        kind,
                        Route::Direct,
                        &direct,
                        &memoized,
                    ));
                }
            }
            Ok(direct)
        }
    }
}

fn disagreement<K: Semiring>(
    semiring: SemiringKind,
    left_route: Route,
    left: &Value<K>,
    right_route: Route,
    right: &Value<K>,
) -> AxmlError {
    AxmlError::RouteDisagreement {
        semiring,
        left_route,
        left: left.to_string(),
        right_route,
        right: right.to_string(),
    }
}

fn evaluator_disagreement<K: Semiring>(
    semiring: SemiringKind,
    route: Route,
    compiled: &Value<K>,
    interpreted: &Value<K>,
) -> AxmlError {
    AxmlError::EvaluatorDisagreement {
        semiring,
        route,
        compiled: compiled.to_string(),
        interpreted: interpreted.to_string(),
    }
}

/// Fingerprint-memoized evaluation for the direct/NRC routes, engaged
/// only on §7-fragment queries over an **edited** document whose
/// snapshot is current. `None` = not engaged; the caller runs its
/// compiled plan (counted as a fallback when the document was edited).
fn try_memoized<S: EvalKind>(
    path: &Result<(String, PathQuery), Ineligible>,
    inputs: &BoundInputs<S>,
    engine: &Engine,
    limits: Limits<'_>,
    key: &str,
) -> Option<Result<Value<S>, AxmlError>> {
    let Ok((var, p)) = path else { return None };
    let b = inputs.iter().find(|b| &b.name == var)?;
    if b.doc.version == 0 {
        return None;
    }
    let out = crate::incr::eval_path_memoized::<S>(
        &b.doc,
        &b.forest,
        key,
        p,
        limits.deadline,
        limits.budget,
        engine.incr_counters(),
    );
    if out.is_none() {
        engine.incr_counters().note_fallback();
    }
    out.map(|r| r.map(Value::Set))
}

/// The direct route: the slot-resolved compiled plan.
fn eval_direct<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &BoundInputs<K>,
    ctx: Option<&ExecCtx<'_>>,
    limits: Limits<'_>,
) -> Result<Value<K>, AxmlError> {
    // The plan needs owned Values; this clone is shallow — a Forest is
    // a map over Arc'd trees, so only the top-level roots (usually
    // one) and their annotations are copied, never the document body.
    let bound: Vec<(&str, Value<K>)> = inputs
        .iter()
        .map(|b| (b.name.as_str(), Value::Set((*b.forest).clone())))
        .collect();
    Ok(arts.core_plan.eval_ctx_limits(&bound, ctx, limits.budget)?)
}

/// The direct route's tree-walking interpreter — the differential
/// reference for [`eval_direct`].
fn eval_direct_interpreted<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &BoundInputs<K>,
) -> Result<Value<K>, AxmlError> {
    let mut env = QueryEnv::from_bindings(
        inputs
            .iter()
            .map(|b| (b.name.clone(), Value::Set((*b.forest).clone()))),
    );
    Ok(eval_core(&arts.core, &mut env)?)
}

/// The NRC route: the slot-resolved compiled plan (fused label
/// tests/descendant sweeps, iterative `srt`).
fn eval_nrc<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &BoundInputs<K>,
    ctx: Option<&ExecCtx<'_>>,
    limits: Limits<'_>,
) -> Result<Value<K>, AxmlError> {
    let bound: Vec<(&str, &Forest<K>)> = inputs
        .iter()
        .map(|b| (b.name.as_str(), &*b.forest))
        .collect();
    let out = arts
        .nrc_plan
        .eval_with_forests_limits_ctx(&bound, ctx, limits.budget)?;
    out.to_uxml().ok_or_else(|| AxmlError::Nrc {
        msg: "query produced a non-UXML complex value".into(),
        at: arts.nrc.to_string(),
    })
}

/// The NRC route's Fig 8 interpreter — the differential reference for
/// [`eval_nrc`].
fn eval_nrc_interpreted<K: Semiring>(
    arts: &Artifacts<K>,
    inputs: &BoundInputs<K>,
) -> Result<Value<K>, AxmlError> {
    let mut env = axml_nrc::Env::from_bindings(
        inputs
            .iter()
            .map(|b| (b.name.clone(), axml_nrc::CValue::from_forest(&b.forest))),
    );
    let out = axml_nrc::eval(&arts.nrc, &mut env)?;
    out.to_uxml().ok_or_else(|| AxmlError::Nrc {
        msg: "query produced a non-UXML complex value".into(),
        at: arts.nrc.to_string(),
    })
}

#[allow(clippy::too_many_arguments)]
fn eval_shredded<S: EvalKind>(
    path: &Result<(String, PathQuery), Ineligible>,
    inputs: &BoundInputs<S>,
    route: Route,
    ctx: Option<&ExecCtx<'_>>,
    limits: Limits<'_>,
    engine: &Engine,
    key: &str,
) -> Result<Value<S>, AxmlError> {
    check_deadline(limits.deadline)?;
    let (var, p) = match path {
        Ok(x) => x,
        Err(why) => {
            return Err(AxmlError::UnsupportedRoute {
                route,
                construct: why.construct.clone(),
            })
        }
    };
    let Some(b) = inputs.iter().find(|b| &b.name == var) else {
        return Err(AxmlError::UnknownDocument {
            name: var.clone(),
            available: inputs.iter().map(|b| b.name.clone()).collect(),
        });
    };
    // Delta propagation: on an edited, current snapshot, solve from
    // the retained fixpoint instead of re-shredding the document.
    if b.doc.version > 0 {
        match crate::incr::eval_shredded_incr::<S>(
            &b.doc,
            p,
            key,
            ctx,
            limits.deadline,
            limits.budget,
            engine.incr_counters(),
        ) {
            Some(out) => return out.map(Value::Set),
            None => engine.incr_counters().note_fallback(),
        }
    }
    let out = axml_relational::eval_path_via_shredding_limits_ctx(
        &b.forest,
        p,
        ctx,
        limits.deadline,
        limits.budget,
    )?;
    Ok(Value::Set(out))
}

/// Free variables of a surface query, in sorted order.
fn free_vars<K: Semiring>(e: &SurfaceExpr<K>) -> Vec<String> {
    fn walk<K: Semiring>(e: &SurfaceExpr<K>, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match e {
            SurfaceExpr::LabelLit(_) | SurfaceExpr::Empty => {}
            SurfaceExpr::Var(x) => {
                if !bound.iter().any(|b| b == x) {
                    out.insert(x.clone());
                }
            }
            SurfaceExpr::Paren(a) | SurfaceExpr::Name(a) | SurfaceExpr::Annot(_, a) => {
                walk(a, bound, out)
            }
            SurfaceExpr::Path(a, _) => walk(a, bound, out),
            SurfaceExpr::Seq(a, b) => {
                walk(a, bound, out);
                walk(b, bound, out);
            }
            SurfaceExpr::For {
                binders,
                where_eq,
                body,
            } => {
                let depth = bound.len();
                for (v, src) in binders {
                    walk(src, bound, out);
                    bound.push(v.clone());
                }
                if let Some((l, r)) = where_eq {
                    walk(l, bound, out);
                    walk(r, bound, out);
                }
                walk(body, bound, out);
                bound.truncate(depth);
            }
            SurfaceExpr::Let { bindings, body } => {
                let depth = bound.len();
                for (v, def) in bindings {
                    walk(def, bound, out);
                    bound.push(v.clone());
                }
                walk(body, bound, out);
                bound.truncate(depth);
            }
            SurfaceExpr::If { l, r, then, els } => {
                walk(l, bound, out);
                walk(r, bound, out);
                walk(then, bound, out);
                walk(els, bound, out);
            }
            SurfaceExpr::Element { name, content } => {
                if let axml_core::ast::ElementName::Dynamic(n) = name {
                    walk(n, bound, out);
                }
                walk(content, bound, out);
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(e, &mut Vec::new(), &mut out);
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surf(src: &str) -> SurfaceExpr<NatPoly> {
        parse_query(src).unwrap()
    }

    #[test]
    fn free_vars_respect_binders_and_shadowing() {
        let q = surf("for $x in $S return for $y in ($x)/child::* return ($y, $T)");
        assert_eq!(free_vars(&q), ["S", "T"]);
        let q2 = surf("let $S := $R return $S");
        assert_eq!(free_vars(&q2), ["R"]);
        let q3 = surf("for $a in $R, $b in ($a)/* where name($a) = name($c) return ($b)");
        assert_eq!(free_vars(&q3), ["R", "c"]);
    }

    #[test]
    fn fragment_queries_are_recognized() {
        let chain = elaborate(&surf("$S/a//b/self::c")).unwrap();
        let (var, path) = extract_path(&chain).expect("is a chain");
        assert_eq!(var, "S");
        assert_eq!(path.step_count(), 4); // child::* seed + 3 steps

        // newly eligible: unions, composition, branching predicates
        for q in [
            "($S//a, $S/b)",
            "for $x in $S//a return ($x)/c",
            "for $x in $S//a return for $y in ($x)/b return ($x)",
        ] {
            let core = elaborate(&surf(q)).unwrap();
            assert!(extract_path(&core).is_ok(), "{q} should be eligible");
        }

        let not_chain = elaborate(&surf("element r { $S/a }")).unwrap();
        let why = extract_path(&not_chain).unwrap_err();
        assert!(why.construct.contains("element constructor"), "{why}");
    }
}
