//! # axml — the engine facade for annotated-XML query evaluation
//!
//! One front door for the whole workspace: parse documents **once**,
//! compile queries **once**, then evaluate any number of times with the
//! semiring and the evaluation route chosen **per call** — the
//! "one annotated evaluation, many interpretations" shape that
//! Prop. 2 / Corollary 1 of Foster, Green & Tannen (PODS 2008) make
//! sound.
//!
//! ```text
//!                ┌───────────────── Engine ─────────────────┐
//!  xml text ──▶  │ load_document: parse once → ℕ[X] forest  │
//!                │         (Arc-shared, per-kind caches)    │
//!                └──────────────────┬───────────────────────┘
//!                                   │ bind $X ↦ document "X"
//!  query text ─▶ prepare ──────────▶│◀────────── EvalOptions
//!   parse → elaborate → compile     │    SemiringKind × Route × EvalMode
//!   (once, symbolically in ℕ[X])    ▼
//!                          PreparedQuery::eval
//!                   ┌───────────┼─────────────┬──────────────┐
//!                   ▼           ▼             ▼              ▼
//!                Direct      ViaNrc        Shredded      Differential
//!             (compiled    (compiled     (§7: shred →   (2–3 routes ×
//!              slot plan;   NRC_K + srt   Datalog →      compiled+interp,
//!              K-UXML)      slot plan)    decode)        assert agreement)
//!                   └───────────┴─────────────┴──────────────┘
//!                                   │
//!                                   ▼
//!                    AxmlResult (value in the chosen semiring)
//! ```
//!
//! Two ways to reach a semiring (`EvalMode`): specialize inputs first
//! and evaluate natively (`InSemiring`), or evaluate once over ℕ\[X\]
//! and push the *result* through the homomorphism
//! (`ProvenanceFirst`) — Theorem 1 says they agree, and
//! `Route::Differential` will check it on demand.
//!
//! ## The direct route
//!
//! ```
//! use axml::{Engine, EvalOptions, SemiringKind};
//!
//! let engine = Engine::new();
//! // Figure 1 of the paper; annotations are ℕ[X] provenance tokens.
//! engine
//!     .load_document("S", "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>")
//!     .unwrap();
//!
//! // Compiled once; evaluated twice, in two different semirings.
//! let grandchildren = engine
//!     .prepare("element p { for $t in $S return for $x in ($t)/child::* return ($x)/child::* }")
//!     .unwrap();
//!
//! let sym = grandchildren.eval(&engine, EvalOptions::new()).unwrap();
//! assert!(sym.to_string().contains("x2*y2*z + x1*y1*z"));
//!
//! let bags = grandchildren
//!     .eval(&engine, EvalOptions::new().semiring(SemiringKind::Nat))
//!     .unwrap();
//! assert_eq!(bags.to_string(), "<p> d {2} e </p>");
//! ```
//!
//! ## The compilation route (`NRC_K + srt`)
//!
//! ```
//! use axml::{Engine, EvalOptions, Route};
//!
//! let engine = Engine::new();
//! engine.load_document("S", "<r> a {x} a {y} </r>").unwrap();
//! let q = engine.prepare("$S/*").unwrap();
//!
//! // §6.3: elaborate → compile to NRC_K+srt → evaluate there.
//! let via_nrc = q
//!     .eval(&engine, EvalOptions::new().route(Route::ViaNrc))
//!     .unwrap();
//! assert_eq!(via_nrc.to_string(), "(a {y + x})");
//! ```
//!
//! ## The relational route (§7 shredding)
//!
//! ```
//! use axml::{Engine, EvalOptions, Route};
//!
//! let engine = Engine::new();
//! engine
//!     .load_document("T", "<a> <b {x1}> c {y3} </b> c {y1} </a>")
//!     .unwrap();
//!
//! // Queries in the §7 XPath fragment — navigation chains, step
//! // composition, union, branching predicates, label tests — have a
//! // relational translation: shred to an edge K-relation, run the
//! // (semi-naive) Datalog program, decode.
//! let q = engine.prepare("$T//c").unwrap();
//! assert!(q.is_shreddable());
//! let shredded = q
//!     .eval(&engine, EvalOptions::new().route(Route::Shredded))
//!     .unwrap();
//! assert_eq!(shredded.to_string(), "(c {y1 + x1*y3})");
//!
//! // Outside the fragment the route reports *which* construct has no
//! // relational translation (`AxmlError::UnsupportedRoute`).
//! let not_shreddable = engine.prepare("element r { $T//c }").unwrap();
//! assert!(not_shreddable.shred_ineligibility().unwrap().contains("element constructor"));
//! ```
//!
//! ## The differential route (debugging tool)
//!
//! ```
//! use axml::{Engine, EvalOptions, Route, SemiringKind};
//!
//! let engine = Engine::new();
//! engine.load_document("S", "<a> b {w} b {w} </a>").unwrap();
//!
//! // Evaluate by several independent semantics and assert they agree
//! // (Route::Shredded joins in because this is a step chain); any
//! // disagreement surfaces as AxmlError::RouteDisagreement.
//! let q = engine.prepare("$S/b").unwrap();
//! let out = q
//!     .eval(
//!         &engine,
//!         EvalOptions::new()
//!             .route(Route::Differential)
//!             .semiring(SemiringKind::Trio),
//!     )
//!     .unwrap();
//! assert_eq!(out.kind(), SemiringKind::Trio);
//! ```
//!
//! ## Parallelism
//!
//! Evaluation is embarrassingly parallel along three axes, and the
//! facade exposes all three (scheduling onto [`axml_pool::Pool`] — a
//! std-only scoped worker pool; no crates.io dependencies):
//!
//! 1. **Across queries** — [`Engine::eval_batch`] takes a slice of
//!    `(&PreparedQuery, EvalOptions)` entries and returns one
//!    `Result` per entry, in order; a failing entry never poisons the
//!    batch. [`Engine::eval_batch_on`] pins an explicit pool.
//! 2. **Across documents** — [`Engine::eval_many_docs`] fans one
//!    prepared query over many named documents (every free variable
//!    binds the same document per entry).
//! 3. **Inside one query** — `EvalOptions::parallel(n)` (or
//!    [`EvalOptions::parallelism`]) turns on intra-query fan-out:
//!    descendant sweeps over large documents chunk across top-level
//!    subtrees, the relational route's semi-naive Datalog rounds
//!    partition their joins, and `Route::Differential` runs its 2–3
//!    evaluation legs concurrently.
//!
//! The default is [`Parallelism::sequential`] everywhere: a
//! single-threaded caller executes exactly the pre-parallelism code
//! paths. Parallel and sequential evaluation are differentially
//! tested to be **identical** — same values, same rendered text, same
//! errors (the K-set merge operators are commutative/associative, so
//! chunked accumulation cannot reorder observable results).
//!
//! ```
//! use axml::{Engine, EvalOptions, SemiringKind};
//! let engine = Engine::new();
//! engine.load_document("S", "<a> b {x} b {y} </a>").unwrap();
//! let q = engine.prepare("$S/b").unwrap();
//! let batch = [
//!     (&q, EvalOptions::new()),
//!     (&q, EvalOptions::new().semiring(SemiringKind::Nat).parallel(4)),
//! ];
//! let results = engine.eval_batch(&batch);
//! assert_eq!(results[0].as_ref().unwrap().to_string(), "(b {y + x})");
//! assert_eq!(results[1].as_ref().unwrap().to_string(), "(b {2})");
//! ```
//!
//! ## Streaming and budgets
//!
//! [`PreparedQuery::eval_stream`] evaluates to an [`EvalCursor`]: a
//! pull iterator over the top-level `(tree, annotation)` pieces of a
//! set-shaped result (scalar results arrive as one item). On the
//! incremental combinations — `InSemiring` mode on the `Direct` or
//! `ViaNrc` route — a detached producer thread pushes pieces through a
//! bounded channel ([`STREAM_BUFFER_PIECES`]) as the evaluation
//! produces them: root shapes whose pieces are provably final on
//! emission (self-axis filters, child steps over a singleton source,
//! bare inputs) stream truly lazily, and the producer never runs more
//! than one buffer ahead of the consumer; dropping the cursor cancels
//! it. Every other combination materializes and then cursors, so
//! collecting a stream is **always** equal to the one-shot
//! [`PreparedQuery::eval`] — same pieces, same document order, same
//! errors (property-tested across all 7 semirings × 4 routes × both
//! modes). [`AxmlResult::pieces`] gives the same piece view of an
//! already-materialized result without matching its 7 variants.
//!
//! Per-call limits live on [`EvalOptions`]: `deadline`/`timeout`
//! (wall-clock, PR 7) and [`EvalOptions::memory_budget`] (a cap on
//! evaluation-allocated tree nodes, charged at op and fixpoint-round
//! boundaries on every route, one shared counter across parallel legs
//! and streaming producers). Tripping either is a typed
//! [`AxmlError::Budget`] whose [`BudgetKind`] distinguishes wall-clock
//! from memory — never a panic and never a truncated-but-`Ok` result;
//! on a live stream the trip arrives in-band as the cursor's final
//! item. The HTTP server maps the two to 504 and 507, streams `/eval`
//! chunks straight off this cursor (first byte before the evaluation
//! finishes), and windows the piece stream with `limit`/`offset`; the
//! CLI's `query --stream` prints pieces as they surface,
//! byte-identical to its one-shot `--format json` output.
//!
//! ## Incrementality under document churn
//!
//! [`Engine::edit_document`] applies an [`edit::EditScript`] of
//! subtree ops (splice / relabel / insert / delete / reannotate,
//! addressed by child-index paths) to a loaded document. The edit is
//! threaded through the hash-consing arena — only the new spine is
//! interned; untouched siblings re-share — and records a ±Δ over the
//! document's shredded edge facts. Evaluations of an edited document
//! then take per-route incremental paths:
//!
//! - **Shredded route (delta propagation).** For a filter-free path
//!   query, the engine keeps the query's last Datalog fixpoint. On
//!   re-evaluation it prunes every IDB tuple that mentions a retired
//!   node id (recursively, through Skolem arguments) and resumes the
//!   semi-naive iteration from the Δ-added facts alone. This is exact
//!   because edits allocate **fresh node ids** (an added fact can
//!   never resurrect a retired id) and the ψ translation of
//!   filter-free queries retains every body variable in each head, so
//!   the pruned IDB *is* the fixpoint of the program over the pruned
//!   EDB. The decoded result forest is maintained alongside the
//!   fixpoint (`axml_relational::ResultCache`), patched by the same
//!   ±Δ id sets — so past the fixed per-call costs an edit pays O(Δ),
//!   not another gc + decode over the whole result encoding.
//!   Queries **with filters** skip the IDB resume (a filter head
//!   drops variables, so pruning is not exact) but still reuse the
//!   incrementally-maintained edge relation, skipping the re-shred.
//! - **Direct / via-NRC routes (fingerprint memoization).** Path
//!   evaluation consults a per-`(document × query × semiring)` memo
//!   keyed on the subtree's `(size, hash)` structural fingerprint —
//!   the same value identity the arena hash-conses on. A memo entry
//!   keys on the subtree **value**, never its position, so entries
//!   stay valid across arbitrary edits with no invalidation protocol:
//!   after an edit only the fresh spine misses.
//!
//! Soundness is continuously cross-checked: `Route::Differential`
//! runs the memoized evaluator as an extra leg and asserts
//! byte-identical agreement with the stateless ones, and the `churn`
//! property suite drives random edit scripts comparing an edited
//! engine against a from-scratch engine across all 7 semirings × 4
//! routes × both modes. Replacing a document (`load_document` over an
//! existing name) atomically drops every piece of derived state and
//! resets the edit lineage. [`Engine::storage_stats`] reports the
//! [`IncrStats`] counters (edits applied, spine nodes interned,
//! Δ facts, memo hits/misses, incremental vs fallback evaluations).
//!
//! Under the hood the document store is **sharded**
//! ([`STORE_SHARDS`] independently-locked maps keyed by name hash), so
//! concurrent load/remove/eval traffic on different documents never
//! serializes on one lock, and the per-(document × semiring)
//! specialization caches are read through shared locks with no
//! steady-state writers. With [`Engine::with_doc_cache_cap`] those
//! caches are a true LRU: reads refresh recency, and eviction passes
//! purge entries for removed documents so the bookkeeping stays
//! bounded under document churn.
//!
//! The statically-generic layers stay public (`axml-core`,
//! `axml-nrc`, `axml-relational`, …) for compile-time-`K` callers;
//! this crate is the runtime face the examples, the CLI and future
//! server front ends build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cursor;
mod dispatch;
pub mod edit;
mod engine;
mod error;
mod incr;
pub mod json;
mod options;
mod prepared;
mod registry;
mod result;

pub use axml_pool::{global_stats as scheduler_stats, Lane, Pool, PoolStats};
pub use cursor::{EvalCursor, StreamItem, STREAM_BUFFER_PIECES};
pub use edit::{EditOp, EditScript};
pub use engine::{EditStats, Engine, StorageStats, STORE_SHARDS};
pub use error::{AxmlError, BudgetKind, SourceSpan};
pub use incr::IncrStats;
pub use options::{EvalMode, EvalOptions, Parallelism, Route, SemiringKind};
pub use prepared::PreparedQuery;
pub use registry::{query_handle, QueryRegistry, DEFAULT_CAPACITY as REGISTRY_DEFAULT_CAPACITY};
pub use result::{AxmlResult, ResultPiece, ResultPieceRef};

/// Commonly used items.
pub mod prelude {
    pub use crate::{
        AxmlError, AxmlResult, BudgetKind, Engine, EvalCursor, EvalMode, EvalOptions, Parallelism,
        Pool, PreparedQuery, QueryRegistry, Route, SemiringKind, StreamItem,
    };
}
