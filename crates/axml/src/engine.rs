//! The [`Engine`]: a named store of parsed documents plus the
//! `prepare` entry point.
//!
//! Documents are parsed **once**, into ℕ\[X\] — the universal
//! annotation semiring — and shared via `Arc`. When a query asks for a
//! different [`SemiringKind`], the engine pushes the document through
//! the canonical homomorphism the first time and caches the
//! specialized copy, so steady-state evaluation never re-parses or
//! re-specializes anything.

use crate::dispatch::{DocCaches, KindDispatch};
use crate::error::AxmlError;
use crate::options::{EvalOptions, SemiringKind};
use crate::prepared::PreparedQuery;
use crate::result::AxmlResult;
use axml_semiring::{FnHom, NatPoly};
use axml_uxml::{hom::map_forest, parse_forest, Forest};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, Weak};

/// One stored document: the symbolic original plus per-kind
/// specializations, filled lazily (and evictable — see
/// [`Engine::with_doc_cache_cap`]).
#[derive(Debug)]
pub(crate) struct StoredDoc {
    pub poly: Arc<Forest<NatPoly>>,
    pub kinds: DocCaches,
}

impl StoredDoc {
    fn new(poly: Forest<NatPoly>) -> Arc<Self> {
        Arc::new(StoredDoc {
            poly: Arc::new(poly),
            kinds: DocCaches::default(),
        })
    }
}

/// The facade's entry point: a document store and a query compiler.
///
/// All methods take `&self`; the store is internally synchronized, so
/// one `Engine` can be shared across threads (`Engine: Send + Sync`)
/// and serve concurrent `eval` calls on the same prepared queries.
///
/// ```
/// use axml::{Engine, EvalOptions};
/// let engine = Engine::new();
/// engine.load_document("S", "<a> b {2*x} </a>").unwrap();
/// let q = engine.prepare("$S/b").unwrap();
/// let out = q.eval(&engine, EvalOptions::new()).unwrap();
/// assert_eq!(out.to_string(), "(b {2*x})");
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    docs: RwLock<BTreeMap<String, Arc<StoredDoc>>>,
    /// Optional cap on the number of per-kind document
    /// specializations held across the whole store; `None` = unbounded
    /// (every specialization is kept forever, the pre-cap behavior).
    doc_cache_cap: Option<usize>,
    /// Fill order of `(document, kind)` specializations, for
    /// oldest-first eviction when the cap is exceeded. `Weak` so a
    /// replaced/removed document neither leaks nor is kept alive by
    /// its queue entries.
    spec_queue: Mutex<VecDeque<(Weak<StoredDoc>, SemiringKind)>>,
}

type DocMap = BTreeMap<String, Arc<StoredDoc>>;

impl Engine {
    /// An engine with an empty document store and no cap on the
    /// per-kind document caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine whose per-kind document caches are size-capped:
    /// at most `cap` specialized document copies (one copy =
    /// one document × one [`SemiringKind`]) are held at a time, evicted
    /// oldest-first. The symbolic ℕ\[X\] originals are never evicted —
    /// they are the source of truth — and an evicted specialization is
    /// transparently recomputed on next use, so the cap trades CPU for
    /// memory on servers holding many large documents across many
    /// semirings. A cap of 0 disables specialization caching entirely.
    pub fn with_doc_cache_cap(cap: usize) -> Self {
        Engine {
            doc_cache_cap: Some(cap),
            ..Self::default()
        }
    }

    /// The configured specialization-cache cap, if any.
    pub fn doc_cache_cap(&self) -> Option<usize> {
        self.doc_cache_cap
    }

    /// Which semirings currently hold a cached specialization of the
    /// named document (introspection; `NatPoly` is the always-present
    /// symbolic original and is not listed).
    pub fn cached_specializations(&self, name: &str) -> Vec<SemiringKind> {
        self.stored(name)
            .map(|d| d.kinds.filled())
            .unwrap_or_default()
    }

    /// The document specialized to `S`, computing, caching and
    /// (when capped) registering it for oldest-first eviction.
    pub(crate) fn specialized<S: KindDispatch>(&self, doc: &Arc<StoredDoc>) -> Arc<Forest<S>> {
        let slot = S::doc_cache(&doc.kinds);
        if let Some(f) = slot.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
            return f.clone();
        }
        let fresh = Arc::new(map_forest(&FnHom::new(S::from_poly), &doc.poly));
        {
            let mut w = slot.write().unwrap_or_else(|e| e.into_inner());
            if let Some(existing) = w.as_ref() {
                // Another thread won the race; keep its copy (and its
                // queue entry).
                return existing.clone();
            }
            *w = Some(fresh.clone());
        }
        self.note_specialization(doc, S::KIND);
        fresh
    }

    fn note_specialization(&self, doc: &Arc<StoredDoc>, kind: SemiringKind) {
        let Some(cap) = self.doc_cache_cap else {
            return;
        };
        let mut q = self.spec_queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back((Arc::downgrade(doc), kind));
        if q.len() > cap {
            // Entries for replaced/removed documents are already gone
            // from the store; drop them first so they don't occupy cap
            // slots and force a *live* specialization out prematurely.
            q.retain(|(w, _)| w.strong_count() > 0);
        }
        while q.len() > cap {
            let Some((weak, k)) = q.pop_front() else {
                break;
            };
            if let Some(d) = weak.upgrade() {
                d.kinds.clear(k);
            }
        }
    }

    // The store holds only fully-constructed `Arc`s, so a panic while
    // holding the lock cannot leave it in a torn state — recover from
    // poisoning instead of propagating the panic.
    fn read_docs(&self) -> RwLockReadGuard<'_, DocMap> {
        self.docs.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_docs(&self) -> RwLockWriteGuard<'_, DocMap> {
        self.docs.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Parse `xml` (the annotated document syntax, annotations read as
    /// ℕ\[X\] polynomials) and store it under `name`. The name is also
    /// the query variable the document binds: loading under `"S"`
    /// makes `$S` resolvable. Re-loading a name replaces the document
    /// (already-running evaluations keep their `Arc` snapshot).
    pub fn load_document(&self, name: &str, xml: &str) -> Result<(), AxmlError> {
        let forest =
            parse_forest::<NatPoly>(xml).map_err(|e| AxmlError::document_parse(name, xml, e))?;
        self.insert_forest(name, forest);
        Ok(())
    }

    /// Store an already-built symbolic forest under `name`.
    pub fn insert_forest(&self, name: &str, forest: Forest<NatPoly>) {
        self.write_docs()
            .insert(name.to_owned(), StoredDoc::new(forest));
    }

    /// Remove a document; returns whether it was present.
    pub fn remove_document(&self, name: &str) -> bool {
        self.write_docs().remove(name).is_some()
    }

    /// The stored symbolic document, if loaded.
    pub fn document(&self, name: &str) -> Option<Arc<Forest<NatPoly>>> {
        self.stored(name).map(|d| d.poly.clone())
    }

    /// Names of all loaded documents, sorted.
    pub fn document_names(&self) -> Vec<String> {
        self.read_docs().keys().cloned().collect()
    }

    pub(crate) fn stored(&self, name: &str) -> Option<Arc<StoredDoc>> {
        self.read_docs().get(name).cloned()
    }

    pub(crate) fn stored_or_err(&self, name: &str) -> Result<Arc<StoredDoc>, AxmlError> {
        self.stored(name).ok_or_else(|| AxmlError::UnknownDocument {
            name: name.to_owned(),
            available: self.document_names(),
        })
    }

    /// Parse, elaborate, and compile `query_src` exactly once. The
    /// returned [`PreparedQuery`] can be evaluated any number of
    /// times, in any [`crate::SemiringKind`] and over any
    /// [`crate::Route`], paying only evaluation cost per call.
    pub fn prepare(&self, query_src: &str) -> Result<PreparedQuery, AxmlError> {
        PreparedQuery::compile(query_src)
    }

    /// One-shot convenience: `prepare` + `eval`. Prefer holding a
    /// [`PreparedQuery`] when the same query runs more than once.
    pub fn run(&self, query_src: &str, opts: EvalOptions) -> Result<AxmlResult, AxmlError> {
        self.prepare(query_src)?.eval(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_replaces_and_removes() {
        let e = Engine::new();
        e.load_document("S", "a {x}").unwrap();
        e.load_document("S", "b {y}").unwrap();
        assert_eq!(e.document_names(), ["S"]);
        let doc = e.document("S").unwrap();
        assert_eq!(doc.len(), 1);
        assert!(e.remove_document("S"));
        assert!(!e.remove_document("S"));
        assert!(e.document("S").is_none());
    }

    #[test]
    fn bad_document_reports_name_and_span() {
        let e = Engine::new();
        let err = e.load_document("bad", "<a> <b </a>").unwrap_err();
        let AxmlError::DocumentParse { name, span, .. } = &err else {
            panic!("expected DocumentParse, got {err:?}");
        };
        assert_eq!(name, "bad");
        assert_eq!(span.line, 1);
    }
}
