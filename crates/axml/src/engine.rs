//! The [`Engine`]: a named store of parsed documents plus the
//! `prepare` entry point and the batch scheduling APIs.
//!
//! Documents are parsed **once**, into ℕ\[X\] — the universal
//! annotation semiring — and shared via `Arc`. When a query asks for a
//! different [`SemiringKind`], the engine pushes the document through
//! the canonical homomorphism the first time and caches the
//! specialized copy, so steady-state evaluation never re-parses or
//! re-specializes anything.
//!
//! # Concurrency
//!
//! The store is **sharded**: document names hash onto
//! [`STORE_SHARDS`] independently-locked maps, so concurrent
//! `load_document`/`remove_document`/`eval` traffic on different
//! documents never serializes on one lock (the pre-PR-5 single
//! `RwLock<BTreeMap>` did). Lookups take one shard's read lock for a
//! `BTreeMap::get` + `Arc` clone; evaluation itself runs entirely on
//! the cloned `Arc`s, lock-free. Specialization caches are per-document
//! `RwLock` slots — readers share the lock and in steady state there
//! are no writers.
//!
//! [`Engine::eval_batch`] and [`Engine::eval_many_docs`] schedule
//! independent evaluations onto an [`axml_pool::Pool`] — the
//! throughput face of the paper's Prop. 2 observation that annotated
//! evaluation is embarrassingly parallel across queries and documents.

use crate::dispatch::{DocCaches, KindArenas, KindDispatch};
use crate::edit::EditScript;
use crate::error::AxmlError;
use crate::incr::{DocIncr, IncrCounters, IncrStats};
use crate::options::{EvalOptions, SemiringKind};
use crate::prepared::PreparedQuery;
use crate::result::AxmlResult;
use axml_pool::PoolStats;
use axml_semiring::{FnHom, NatPoly};
use axml_uxml::{arena::intern_forest_mapped, parse_forest, Forest};
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

/// Number of independently-locked document-store shards. A fixed
/// power of two: enough that 8–16 threads hammering different
/// documents rarely collide, small enough that whole-store scans
/// (`document_names`) stay trivial.
pub const STORE_SHARDS: usize = 16;

/// One stored document: the symbolic original plus per-kind
/// specializations, filled lazily (and evictable — see
/// [`Engine::with_doc_cache_cap`]).
#[derive(Debug)]
pub(crate) struct StoredDoc {
    pub poly: Arc<Forest<NatPoly>>,
    pub kinds: DocCaches,
    /// Edit version: 0 for a freshly loaded document, bumped by each
    /// [`Engine::edit_document`]. A replace via `load_document` resets
    /// to 0 (with a fresh `incr`), so incremental state never leaks
    /// across replaces.
    pub version: u64,
    /// The incremental state shared by every version of this document
    /// lineage (see [`DocIncr`]). Evaluations engage it only when
    /// `version == incr.version` — an in-flight snapshot taken before
    /// an edit falls back to the stateless routes.
    pub incr: Arc<Mutex<DocIncr>>,
}

impl StoredDoc {
    fn new(poly: Forest<NatPoly>) -> Arc<Self> {
        Arc::new(StoredDoc {
            poly: Arc::new(poly),
            kinds: DocCaches::default(),
            version: 0,
            incr: Arc::new(Mutex::new(DocIncr::default())),
        })
    }
}

/// One entry in the eviction queue: which `(document, kind)`
/// specialization was filled, and the LRU clock reading at enqueue
/// time (compared against the slot's live stamp to detect touches).
#[derive(Debug)]
struct SpecEntry {
    doc: Weak<StoredDoc>,
    kind: SemiringKind,
    stamp: u64,
}

type DocMap = BTreeMap<String, Arc<StoredDoc>>;

/// The facade's entry point: a document store and a query compiler.
///
/// All methods take `&self`; the store is internally synchronized
/// (sharded — see the module docs), so one `Engine` can be shared
/// across threads (`Engine: Send + Sync`) and serve concurrent `eval`
/// calls on the same prepared queries.
///
/// ```
/// use axml::{Engine, EvalOptions};
/// let engine = Engine::new();
/// engine.load_document("S", "<a> b {2*x} </a>").unwrap();
/// let q = engine.prepare("$S/b").unwrap();
/// let out = q.eval(&engine, EvalOptions::new()).unwrap();
/// assert_eq!(out.to_string(), "(b {2*x})");
/// ```
#[derive(Debug)]
pub struct Engine {
    shards: [RwLock<DocMap>; STORE_SHARDS],
    /// Optional cap on the number of per-kind document
    /// specializations held across the whole store; `None` = unbounded
    /// (every specialization is kept forever, the pre-cap behavior).
    doc_cache_cap: Option<usize>,
    /// LRU order of `(document, kind)` specializations: least recently
    /// used at the front. Touches don't reorder the queue (that would
    /// cost O(n) per read) — they bump the slot's atomic stamp, and
    /// eviction passes re-queue any front entry whose slot was read
    /// since it was enqueued. `Weak` so a replaced/removed document
    /// neither leaks nor is kept alive by its queue entries; dead
    /// entries are purged on every eviction pass.
    spec_queue: Mutex<VecDeque<SpecEntry>>,
    /// The LRU clock: bumped on every cache read/fill when a cap is
    /// configured.
    clock: AtomicU64,
    /// Per-kind hash-consing arenas (see [`KindArenas`]): every stored
    /// document and every cached specialization is interned here, so
    /// structurally identical subtrees are stored once across the
    /// whole store and the forests the evaluators see are maximally
    /// `Arc`-shared.
    arenas: KindArenas,
    /// Monotonic counters of the incremental layer (edits, ±Δ facts,
    /// memo hits/misses) — surfaced via [`Engine::storage_stats`].
    counters: IncrCounters,
}

/// Storage statistics of an engine's document store: how many nodes
/// the loaded documents contain *logically* versus how many distinct
/// subtrees the hash-consing arena actually stores. On corpora with
/// repeated substructure (within or across documents)
/// `distinct_subtrees` is sub-linear in `logical_nodes` — the
/// content-addressing win, tracked by the bench-regression gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Total node count of all loaded documents, counted by value
    /// occurrences (the sum of the documents' `|v|`).
    pub logical_nodes: usize,
    /// Distinct subtrees interned in the symbolic ℕ\[X\] arena over
    /// the whole lifetime of the engine (arenas never shrink).
    pub distinct_subtrees: usize,
    /// Stored child edges in the arena's DAG (the columnar footprint).
    pub child_edges: usize,
    /// Counters of the incremental edit/re-evaluation layer: edits
    /// applied, spine nodes interned per edit, ±Δ fact volumes, memo
    /// hits/misses, incremental evals vs stateless fallbacks.
    pub incr: IncrStats,
    /// Scheduling counters of the **global** worker pool (queue depths
    /// per lane class, owned/helped/stolen/injected executions, max
    /// queue residency). All-zero until some evaluation has actually
    /// used the global pool — reading stats never spawns it. Servers
    /// running evaluations on their own pool report that pool's
    /// counters on `GET /stats` instead.
    pub scheduler: PoolStats,
}

/// What one [`Engine::edit_document`] call did: the published
/// version, and how much work the incremental machinery actually
/// performed (spine re-interning and ±Δ edge facts — the quantities
/// that stay small when the edit is small).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditStats {
    /// The document version this edit published (1 for the first
    /// edit after a load).
    pub version: u64,
    /// Ops in the applied script.
    pub ops_applied: usize,
    /// New nodes interned into the symbolic arena by this edit — the
    /// spine cost; every other subtree of the edited document was
    /// re-shared.
    pub spine_nodes_interned: usize,
    /// Edge facts retired from φ(doc) by this edit.
    pub facts_retired: u64,
    /// Edge facts added to φ(doc) by this edit.
    pub facts_added: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            shards: std::array::from_fn(|_| RwLock::new(DocMap::new())),
            doc_cache_cap: None,
            spec_queue: Mutex::new(VecDeque::new()),
            clock: AtomicU64::new(0),
            arenas: KindArenas::default(),
            counters: IncrCounters::default(),
        }
    }
}

impl Engine {
    /// An engine with an empty document store and no cap on the
    /// per-kind document caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine whose per-kind document caches are size-capped:
    /// at most `cap` specialized document copies (one copy =
    /// one document × one [`SemiringKind`]) are held at a time, evicted
    /// **least-recently-used** first (every cache read refreshes an
    /// entry's recency). The symbolic ℕ\[X\] originals are never
    /// evicted — they are the source of truth — and an evicted
    /// specialization is transparently recomputed on next use, so the
    /// cap trades CPU for memory on servers holding many large
    /// documents across many semirings. A cap of 0 disables
    /// specialization caching entirely.
    pub fn with_doc_cache_cap(cap: usize) -> Self {
        Engine {
            doc_cache_cap: Some(cap),
            ..Self::default()
        }
    }

    /// The configured specialization-cache cap, if any.
    pub fn doc_cache_cap(&self) -> Option<usize> {
        self.doc_cache_cap
    }

    /// Which semirings currently hold a cached specialization of the
    /// named document (introspection; `NatPoly` is the always-present
    /// symbolic original and is not listed).
    pub fn cached_specializations(&self, name: &str) -> Vec<SemiringKind> {
        self.stored(name)
            .map(|d| d.kinds.filled())
            .unwrap_or_default()
    }

    /// The next LRU clock reading — or 0 (= "don't stamp") on an
    /// uncapped engine, keeping the shared fetch-add cache line out of
    /// the uncapped read path entirely (recency only matters when
    /// eviction exists to consume it).
    fn tick(&self) -> u64 {
        if self.doc_cache_cap.is_none() {
            return 0;
        }
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The document specialized to `S`, computing, caching and
    /// (when capped) registering it for LRU eviction. Cache reads
    /// touch the slot's recency stamp.
    pub(crate) fn specialized<S: KindDispatch>(&self, doc: &Arc<StoredDoc>) -> Arc<Forest<S>> {
        let slot = S::doc_cache(&doc.kinds);
        if let Some(f) = slot.get(self.tick()) {
            return f;
        }
        // Specialize through this kind's hash-consing arena: the hom
        // image is interned per *distinct* subtree (pointer-memoized
        // over the document's value DAG) instead of re-expanded per
        // occurrence, and identical subtrees across documents land on
        // the same canonical handles. The arena lock is held only for
        // this interning — never during evaluation.
        let fresh = Arc::new({
            let mut arena = S::kind_arena(&self.arenas)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let roots = intern_forest_mapped(&mut arena, &FnHom::new(S::from_poly), &doc.poly);
            arena.canonical_forest(&roots)
        });
        if let Err(existing) = slot.fill(fresh.clone(), self.tick()) {
            // Another thread won the race; keep its copy (and its
            // queue entry).
            return existing;
        }
        self.note_specialization(doc, S::KIND);
        fresh
    }

    /// Register a freshly-filled specialization and run an eviction
    /// pass if the cap is exceeded. The pass walks from the LRU end:
    /// dead entries (document replaced/removed) are dropped outright —
    /// this is what keeps the queue from growing without bound under
    /// document churn — and entries whose slot was touched since they
    /// were queued are re-queued at their true recency instead of
    /// evicted.
    fn note_specialization(&self, doc: &Arc<StoredDoc>, kind: SemiringKind) {
        let Some(cap) = self.doc_cache_cap else {
            return;
        };
        let mut q = self.spec_queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(SpecEntry {
            doc: Arc::downgrade(doc),
            kind,
            stamp: doc.kinds.last_used(kind),
        });
        if q.len() > cap {
            // Purge entries whose documents are gone so they neither
            // occupy cap slots (forcing a live specialization out
            // prematurely) nor accumulate as the store churns.
            q.retain(|e| e.doc.strong_count() > 0);
        }
        // Each re-queue is bounded so concurrent readers hammering the
        // stamps cannot starve the eviction loop.
        let mut budget = 2 * q.len() + 2;
        while q.len() > cap && budget > 0 {
            budget -= 1;
            let Some(entry) = q.pop_front() else {
                break;
            };
            let Some(d) = entry.doc.upgrade() else {
                continue; // died since the retain: drop it
            };
            let live = d.kinds.last_used(entry.kind);
            if live > entry.stamp && budget > 0 {
                // Read since enqueued: second chance at its real
                // recency (classic lazy-LRU reinsertion).
                q.push_back(SpecEntry {
                    doc: entry.doc,
                    kind: entry.kind,
                    stamp: live,
                });
            } else {
                d.kinds.clear(entry.kind);
            }
        }
    }

    fn shard(&self, name: &str) -> &RwLock<DocMap> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % STORE_SHARDS]
    }

    /// Parse `xml` (the annotated document syntax, annotations read as
    /// ℕ\[X\] polynomials) and store it under `name`. The name is also
    /// the query variable the document binds: loading under `"S"`
    /// makes `$S` resolvable. Re-loading a name replaces the document
    /// (already-running evaluations keep their `Arc` snapshot).
    pub fn load_document(&self, name: &str, xml: &str) -> Result<(), AxmlError> {
        let forest =
            parse_forest::<NatPoly>(xml).map_err(|e| AxmlError::document_parse(name, xml, e))?;
        self.insert_forest(name, forest);
        Ok(())
    }

    /// Store an already-built symbolic forest under `name`. The forest
    /// is interned into the engine's hash-consing arena first: subtrees
    /// already stored by *any* loaded document are shared (stored
    /// once), and the document the evaluators see is the canonical,
    /// maximally `Arc`-shared form of the same value.
    pub fn insert_forest(&self, name: &str, forest: Forest<NatPoly>) {
        let canonical = {
            let mut arena = self.arenas.poly.lock().unwrap_or_else(|e| e.into_inner());
            let roots = arena.intern_forest(&forest);
            arena.canonical_forest(&roots)
        };
        // The store holds only fully-constructed `Arc`s, so a panic
        // while holding a shard lock cannot leave it in a torn state —
        // recover from poisoning instead of propagating the panic.
        self.shard(name)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_owned(), StoredDoc::new(canonical));
    }

    /// Storage statistics: logical node count of the loaded documents
    /// versus distinct subtrees in the symbolic arena (see
    /// [`StorageStats`]).
    pub fn storage_stats(&self) -> StorageStats {
        let logical_nodes = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .map(|d| d.poly.size())
                    .collect::<Vec<_>>()
            })
            .sum();
        let arena = self.arenas.poly.lock().unwrap_or_else(|e| e.into_inner());
        StorageStats {
            logical_nodes,
            distinct_subtrees: arena.len(),
            child_edges: arena.child_edge_count(),
            incr: self.counters.snapshot(),
            scheduler: axml_pool::global_stats(),
        }
    }

    pub(crate) fn incr_counters(&self) -> &IncrCounters {
        &self.counters
    }

    /// Apply an [`EditScript`] to the named document **in place**:
    /// the edited forest is re-interned through the hash-consing
    /// arena (only the spine of changed ancestors allocates new
    /// nodes), the document's incremental state absorbs the ±Δ edge
    /// facts, and the new version is published atomically. In-flight
    /// evaluations keep their pre-edit `Arc` snapshot; subsequent
    /// evaluations on the §7-fragment routes reuse retained fixpoints
    /// and subtree-fingerprint memos instead of starting from
    /// scratch.
    ///
    /// Errors: [`AxmlError::Edit`] when the script fails to apply
    /// (bad path, malformed op), [`AxmlError::EditConflict`] when a
    /// concurrent `load_document`/`remove_document` replaced the
    /// document mid-edit (the edit is *not* applied — retry against
    /// the new contents), [`AxmlError::UnknownDocument`] when the
    /// name is not loaded. Concurrent `edit_document` calls on the
    /// same document serialize; each sees the other's result.
    pub fn edit_document(&self, name: &str, script: &EditScript) -> Result<EditStats, AxmlError> {
        let snapshot = self.stored_or_err(name)?;
        let incr_arc = Arc::clone(&snapshot.incr);
        let mut incr = incr_arc.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the incr lock: another edit of the same
        // lineage also holds this lock, so after this check the only
        // way the stored entry can change is a replace/remove (which
        // installs a *different* incr) — caught again at publish.
        match self.stored(name) {
            Some(cur) if Arc::ptr_eq(&cur, &snapshot) => {}
            _ => {
                return Err(AxmlError::EditConflict {
                    name: name.to_owned(),
                })
            }
        }
        let edited =
            crate::edit::apply_script(&snapshot.poly, script).map_err(|msg| AxmlError::Edit {
                name: name.to_owned(),
                msg,
            })?;
        let (canonical, spine_nodes_interned) = {
            let mut arena = self.arenas.poly.lock().unwrap_or_else(|e| e.into_inner());
            let before = arena.len();
            let roots = arena.intern_forest(&edited);
            let canonical = Arc::new(arena.canonical_forest(&roots));
            (canonical, arena.len() - before)
        };
        let (facts_retired, facts_added) = incr.apply_edit(&snapshot.poly, &canonical);
        let version = incr.version;
        let new_doc = Arc::new(StoredDoc {
            poly: canonical,
            kinds: DocCaches::default(),
            version,
            incr: Arc::clone(&incr_arc),
        });
        {
            let mut shard = self.shard(name).write().unwrap_or_else(|e| e.into_inner());
            match shard.get(name) {
                Some(cur) if Arc::ptr_eq(cur, &snapshot) => {
                    shard.insert(name.to_owned(), new_doc);
                }
                // Replaced/removed since the re-check: the bumped incr
                // belongs to an orphaned lineage, which no live
                // document references — harmless.
                _ => {
                    return Err(AxmlError::EditConflict {
                        name: name.to_owned(),
                    })
                }
            }
        }
        self.counters.edits_applied.fetch_add(1, Ordering::Relaxed);
        self.counters
            .spine_nodes_interned
            .fetch_add(spine_nodes_interned as u64, Ordering::Relaxed);
        self.counters
            .delta_facts_retired
            .fetch_add(facts_retired, Ordering::Relaxed);
        self.counters
            .delta_facts_added
            .fetch_add(facts_added, Ordering::Relaxed);
        Ok(EditStats {
            version,
            ops_applied: script.ops.len(),
            spine_nodes_interned,
            facts_retired,
            facts_added,
        })
    }

    /// Parse the line-based edit-script text format (see
    /// [`EditScript::parse`]) and apply it via
    /// [`Engine::edit_document`] — the entry point the HTTP `PATCH`
    /// endpoint and the CLI `edit` subcommand share.
    pub fn edit_document_text(&self, name: &str, script: &str) -> Result<EditStats, AxmlError> {
        let script = EditScript::parse(script).map_err(|msg| AxmlError::Edit {
            name: name.to_owned(),
            msg,
        })?;
        self.edit_document(name, &script)
    }

    /// Remove a document; returns whether it was present.
    pub fn remove_document(&self, name: &str) -> bool {
        self.shard(name)
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some()
    }

    /// The stored symbolic document, if loaded.
    pub fn document(&self, name: &str) -> Option<Arc<Forest<NatPoly>>> {
        self.stored(name).map(|d| d.poly.clone())
    }

    /// Names of all loaded documents, sorted.
    pub fn document_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names
    }

    pub(crate) fn stored(&self, name: &str) -> Option<Arc<StoredDoc>> {
        self.shard(name)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    pub(crate) fn stored_or_err(&self, name: &str) -> Result<Arc<StoredDoc>, AxmlError> {
        self.stored(name).ok_or_else(|| AxmlError::UnknownDocument {
            name: name.to_owned(),
            available: self.document_names(),
        })
    }

    /// Parse, elaborate, and compile `query_src` exactly once. The
    /// returned [`PreparedQuery`] can be evaluated any number of
    /// times, in any [`crate::SemiringKind`] and over any
    /// [`crate::Route`], paying only evaluation cost per call.
    pub fn prepare(&self, query_src: &str) -> Result<PreparedQuery, AxmlError> {
        PreparedQuery::compile(query_src)
    }

    /// One-shot convenience: `prepare` + `eval`. Prefer holding a
    /// [`PreparedQuery`] when the same query runs more than once.
    pub fn run(&self, query_src: &str, opts: EvalOptions) -> Result<AxmlResult, AxmlError> {
        self.prepare(query_src)?.eval(self, opts)
    }

    /// Evaluate a batch of prepared queries on the global worker pool,
    /// returning one result per entry **in order**. Errors are
    /// per-entry: one failing evaluation never poisons the batch.
    ///
    /// This is the multi-query throughput entry point: each entry is
    /// an independent evaluation over `Arc`-shared documents, so a
    /// batch of `n` queries scales with the pool's worker count
    /// (Prop. 2's "evaluate once, specialize everywhere" design makes
    /// the entries share all cached artifacts contention-free).
    pub fn eval_batch(
        &self,
        entries: &[(&PreparedQuery, EvalOptions)],
    ) -> Vec<Result<AxmlResult, AxmlError>> {
        self.eval_batch_on(axml_pool::global(), entries)
    }

    /// [`Engine::eval_batch`] on an explicit pool (benchmarks pin the
    /// worker count this way; servers can isolate tenants).
    pub fn eval_batch_on(
        &self,
        pool: &axml_pool::Pool,
        entries: &[(&PreparedQuery, EvalOptions)],
    ) -> Vec<Result<AxmlResult, AxmlError>> {
        // Entries' intra-query parallelism fans out on the same pool
        // the batch is scheduled on — an isolated pool stays isolated.
        fan_out(pool, entries, |(q, o)| {
            q.eval_with(self, *o, &[], Some(pool))
        })
    }

    /// Evaluate one prepared query over many documents on the global
    /// worker pool: entry `i` binds **every** free variable of `query`
    /// to the document named `docs[i]` (the common shape — one `$S` —
    /// queries one document per entry). Results come back in `docs`
    /// order; errors are per-entry.
    pub fn eval_many_docs(
        &self,
        query: &PreparedQuery,
        docs: &[&str],
        opts: EvalOptions,
    ) -> Vec<Result<AxmlResult, AxmlError>> {
        self.eval_many_docs_on(axml_pool::global(), query, docs, opts)
    }

    /// [`Engine::eval_many_docs`] on an explicit pool.
    pub fn eval_many_docs_on(
        &self,
        pool: &axml_pool::Pool,
        query: &PreparedQuery,
        docs: &[&str],
        opts: EvalOptions,
    ) -> Vec<Result<AxmlResult, AxmlError>> {
        fan_out(pool, docs, |doc| {
            let aliases: Vec<(&str, &str)> = query
                .free_vars()
                .iter()
                .map(|v| (v.as_str(), *doc))
                .collect();
            query.eval_with(self, opts, &aliases, Some(pool))
        })
    }
}

/// The shared fan-out core of the batch APIs: one evaluation per item,
/// scheduled on `pool`, results **in item order**, with trivial
/// batches (0–1 items) skipping the pool entirely so a single entry
/// runs exactly the sequential code path.
fn fan_out<T: Sync, R: Send>(
    pool: &axml_pool::Pool,
    items: &[T],
    eval_one: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if items.len() <= 1 {
        return items.iter().map(&eval_one).collect();
    }
    pool.map_slice(items, |_, item| eval_one(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_replaces_and_removes() {
        let e = Engine::new();
        e.load_document("S", "a {x}").unwrap();
        e.load_document("S", "b {y}").unwrap();
        assert_eq!(e.document_names(), ["S"]);
        let doc = e.document("S").unwrap();
        assert_eq!(doc.len(), 1);
        assert!(e.remove_document("S"));
        assert!(!e.remove_document("S"));
        assert!(e.document("S").is_none());
    }

    #[test]
    fn bad_document_reports_name_and_span() {
        let e = Engine::new();
        let err = e.load_document("bad", "<a> <b </a>").unwrap_err();
        let AxmlError::DocumentParse { name, span, .. } = &err else {
            panic!("expected DocumentParse, got {err:?}");
        };
        assert_eq!(name, "bad");
        assert_eq!(span.line, 1);
    }

    #[test]
    fn names_are_sorted_across_shards() {
        let e = Engine::new();
        // Enough names that every shard almost surely holds some.
        for i in (0..64).rev() {
            e.insert_forest(&format!("doc{i:02}"), Forest::new());
        }
        let names = e.document_names();
        assert_eq!(names.len(), 64);
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
    }
}
