//! Subtree edit scripts — the churn API of the incremental layer.
//!
//! An [`EditScript`] is an ordered list of [`EditOp`]s, each
//! addressing a node (or a parent, for inserts) by a **document-order
//! child-index path**: `/0/2` is "third child of the first top-level
//! entry", `/` (the empty path) is the top level itself. Paths are
//! resolved against the document *as it stands when the op runs*, so
//! later ops see the effect of earlier ones.
//!
//! Ops:
//!
//! - `splice PATH FOREST` — replace the addressed subtree with the
//!   (single-entry) parsed forest, keeping the target's existing
//!   annotation. Use `reannotate` to change the annotation too.
//! - `relabel PATH LABEL` — rename the addressed node, children and
//!   annotation untouched.
//! - `insert PARENT-PATH FOREST` — add the (single-entry) parsed
//!   forest as a new child of the addressed parent; the payload's own
//!   annotation is used (`1` if none is written). If a value-identical
//!   sibling already exists the annotations **merge by `+`** — that is
//!   the unordered-forest semantics of the paper, not a quirk.
//! - `delete PATH` — remove the addressed subtree entirely.
//! - `reannotate PATH ANN` — replace the addressed entry's annotation
//!   with the parsed ℕ\[X\] polynomial.
//!
//! Application rebuilds only the **spine** — the path of ancestors
//! from the edited node to its root; untouched sibling subtrees are
//! shared by clone (`Tree` is cheaply clonable and hash-consing in
//! `TreeArena` re-interns only the new spine nodes).
//!
//! The text format (one op per line, `#` comments allowed) is what
//! `PATCH /documents/{name}` and the CLI `edit` subcommand accept:
//!
//! ```text
//! splice /0/2 <new {x}> leaf {y} </new>
//! relabel /1 renamed
//! insert / <top {2}/>
//! delete /0/0
//! reannotate /0 x+2
//! ```

use axml_semiring::{NatPoly, Semiring};
use axml_uxml::{parse_forest, Forest, Label, Tree};

/// One edit operation. Paths are vectors of document-order child
/// indices (empty = the top-level forest).
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Replace the subtree at `path` with `tree`, keeping the
    /// existing annotation of the replaced entry.
    Splice {
        /// Document-order child-index path to the target entry.
        path: Vec<usize>,
        /// Replacement subtree (its own annotation is ignored).
        tree: Tree<NatPoly>,
    },
    /// Rename the node at `path`; children and annotation untouched.
    Relabel {
        /// Path to the target entry.
        path: Vec<usize>,
        /// The new label.
        label: Label,
    },
    /// Add `tree` (with annotation `ann`) as a child of the entry at
    /// `path` (empty path = top level). Value-identical siblings
    /// merge annotations by `+`.
    Insert {
        /// Path to the **parent** under which to insert.
        path: Vec<usize>,
        /// The new subtree.
        tree: Tree<NatPoly>,
        /// Its annotation.
        ann: NatPoly,
    },
    /// Remove the subtree at `path`.
    Delete {
        /// Path to the target entry.
        path: Vec<usize>,
    },
    /// Replace the annotation of the entry at `path` with `ann`.
    Reannotate {
        /// Path to the target entry.
        path: Vec<usize>,
        /// The new annotation.
        ann: NatPoly,
    },
}

/// An ordered list of [`EditOp`]s applied atomically by
/// [`crate::Engine::edit_document`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EditScript {
    /// The ops, in application order.
    pub ops: Vec<EditOp>,
}

impl EditScript {
    /// An empty script (a no-op edit; still bumps the version).
    pub fn new() -> Self {
        EditScript::default()
    }

    /// Parse the line-based text format (see module docs). Blank
    /// lines and `#`-comments are skipped.
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut ops = Vec::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            ops.push(parse_op(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(EditScript { ops })
    }
}

fn parse_path(s: &str) -> Result<Vec<usize>, String> {
    if !s.starts_with('/') {
        return Err(format!("path must start with '/', got {s:?}"));
    }
    s.split('/')
        .skip(1)
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            seg.parse::<usize>()
                .map_err(|_| format!("bad path segment {seg:?} in {s:?}"))
        })
        .collect()
}

/// Parse a payload that must be exactly one forest entry.
fn parse_entry(payload: &str) -> Result<(Tree<NatPoly>, NatPoly), String> {
    let f = parse_forest::<NatPoly>(payload).map_err(|e| format!("payload: {}", e.msg))?;
    let entries = f.iter_document();
    match entries.as_slice() {
        [(t, k)] => Ok(((*t).clone(), (*k).clone())),
        [] => Err("payload is empty — expected one subtree".into()),
        _ => Err(format!(
            "payload has {} top-level entries — expected exactly one",
            entries.len()
        )),
    }
}

fn parse_op(line: &str) -> Result<EditOp, String> {
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let rest = rest.trim();
    let (path_str, payload) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let payload = payload.trim();
    if path_str.is_empty() {
        return Err(format!("op {verb:?} is missing its path"));
    }
    let path = parse_path(path_str)?;
    match verb {
        "splice" => {
            let (tree, _) = parse_entry(payload)?;
            Ok(EditOp::Splice { path, tree })
        }
        "relabel" => {
            if payload.is_empty() || payload.contains(char::is_whitespace) {
                return Err(format!("relabel needs a single label, got {payload:?}"));
            }
            Ok(EditOp::Relabel {
                path,
                label: Label::new(payload),
            })
        }
        "insert" => {
            let (tree, ann) = parse_entry(payload)?;
            Ok(EditOp::Insert { path, tree, ann })
        }
        "delete" => {
            if !payload.is_empty() {
                return Err(format!("delete takes no payload, got {payload:?}"));
            }
            Ok(EditOp::Delete { path })
        }
        "reannotate" => {
            use axml_uxml::ParseAnnotation;
            let ann = NatPoly::parse_annotation(payload).map_err(|e| format!("annotation: {e}"))?;
            Ok(EditOp::Reannotate { path, ann })
        }
        other => Err(format!(
            "unknown op {other:?} (expected splice/relabel/insert/delete/reannotate)"
        )),
    }
}

/// Apply a script to a forest, producing the edited forest. Each op
/// rebuilds only the spine above its target; everything else is
/// shared. Errors name the failing op and path.
pub fn apply_script(doc: &Forest<NatPoly>, script: &EditScript) -> Result<Forest<NatPoly>, String> {
    let mut cur = doc.clone();
    for (i, op) in script.ops.iter().enumerate() {
        cur = apply_op(&cur, op).map_err(|e| format!("op {} ({}): {e}", i + 1, op_name(op)))?;
    }
    Ok(cur)
}

fn op_name(op: &EditOp) -> &'static str {
    match op {
        EditOp::Splice { .. } => "splice",
        EditOp::Relabel { .. } => "relabel",
        EditOp::Insert { .. } => "insert",
        EditOp::Delete { .. } => "delete",
        EditOp::Reannotate { .. } => "reannotate",
    }
}

fn apply_op(doc: &Forest<NatPoly>, op: &EditOp) -> Result<Forest<NatPoly>, String> {
    match op {
        EditOp::Splice { path, tree } => rewrite_at(doc, path, |old_t, old_k| {
            let _ = old_t;
            Some((tree.clone(), old_k))
        }),
        EditOp::Relabel { path, label } => rewrite_at(doc, path, |old_t, old_k| {
            Some((Tree::new(*label, old_t.children().clone()), old_k))
        }),
        EditOp::Insert { path, tree, ann } => insert_at(doc, path, tree, ann),
        EditOp::Delete { path } => rewrite_at(doc, path, |_, _| None),
        EditOp::Reannotate { path, ann } => {
            if ann.is_zero() {
                // A zero annotation is the same as deletion in a
                // K-forest; make that explicit rather than silently
                // dropping the entry.
                return Err("annotation is 0 — use delete instead".into());
            }
            rewrite_at(doc, path, |old_t, _| Some((old_t, ann.clone())))
        }
    }
}

/// Replace (or drop, when `f` returns `None`) the entry addressed by
/// `path`, rebuilding the spine of ancestors. `f` receives the old
/// subtree and its annotation.
fn rewrite_at(
    doc: &Forest<NatPoly>,
    path: &[usize],
    f: impl FnOnce(Tree<NatPoly>, NatPoly) -> Option<(Tree<NatPoly>, NatPoly)>,
) -> Result<Forest<NatPoly>, String> {
    let Some((&idx, rest)) = path.split_first() else {
        return Err("path addresses the whole forest — ops target one entry".into());
    };
    let entries = doc.iter_document();
    let Some((target, ann)) = entries.get(idx).map(|(t, k)| ((*t).clone(), (*k).clone())) else {
        return Err(format!(
            "index {idx} out of range (forest has {} entries)",
            entries.len()
        ));
    };
    let replacement: Option<(Tree<NatPoly>, NatPoly)> = if rest.is_empty() {
        f(target, ann)
    } else {
        let kids = rewrite_at(target.children(), rest, f)?;
        Some((Tree::new(target.label(), kids), ann))
    };
    // Rebuild the level: all entries except idx, plus the replacement.
    // from_pairs merges a replacement that became value-identical to a
    // sibling — the correct unordered-forest semantics.
    let mut pairs: Vec<(Tree<NatPoly>, NatPoly)> = Vec::with_capacity(entries.len());
    for (j, (t, k)) in entries.iter().enumerate() {
        if j == idx {
            if let Some((nt, nk)) = &replacement {
                pairs.push((nt.clone(), nk.clone()));
            }
        } else {
            pairs.push(((*t).clone(), (*k).clone()));
        }
    }
    Ok(Forest::from_pairs(pairs))
}

/// Insert `tree{ann}` as a child of the entry addressed by `path`
/// (empty path = top level).
fn insert_at(
    doc: &Forest<NatPoly>,
    path: &[usize],
    tree: &Tree<NatPoly>,
    ann: &NatPoly,
) -> Result<Forest<NatPoly>, String> {
    if ann.is_zero() {
        return Err("inserted annotation is 0 — the entry would not exist".into());
    }
    if path.is_empty() {
        let mut out = doc.clone();
        out.insert(tree.clone(), ann.clone());
        return Ok(out);
    }
    rewrite_at(doc, path, |old_t, old_k| {
        let mut kids = old_t.children().clone();
        kids.insert(tree.clone(), ann.clone());
        Some((Tree::new(old_t.label(), kids), old_k))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Forest<NatPoly> {
        parse_forest::<NatPoly>("<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>")
            .unwrap()
    }

    #[test]
    fn splice_keeps_annotation_and_shares_siblings() {
        let d = doc();
        let script = EditScript::parse("splice /0/1 <q> r </q>").unwrap();
        let out = apply_script(&d, &script).unwrap();
        // The spliced entry kept the old <c> annotation x2.
        let expected =
            parse_forest::<NatPoly>("<a {z}> <b {x1}> d {y1} </b> <q {x2}> r </q> </a>").unwrap();
        assert_eq!(out, expected);
        // The untouched sibling <b> subtree survives unchanged.
        let old_b = d.iter_document()[0].0.children().iter_document()[0]
            .0
            .clone();
        let new_b = out.iter_document()[0].0.children().iter_document()[0]
            .0
            .clone();
        assert_eq!(old_b, new_b);
    }

    #[test]
    fn relabel_delete_insert_reannotate() {
        let d = doc();
        let script = EditScript::parse(
            "# a comment\n\
             relabel /0 root\n\
             delete /0/0\n\
             insert /0 f {7}\n\
             reannotate /0 z+1",
        )
        .unwrap();
        let out = apply_script(&d, &script).unwrap();
        let expected =
            parse_forest::<NatPoly>("<root {z+1}> <c {x2}> d {y2} e {y3} </c> f {7} </root>")
                .unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn insert_merges_value_identical_sibling() {
        let d = parse_forest::<NatPoly>("a {2}").unwrap();
        let script = EditScript::parse("insert / a {3}").unwrap();
        let out = apply_script(&d, &script).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out, parse_forest::<NatPoly>("a {5}").unwrap());
    }

    #[test]
    fn errors_name_the_op_and_path() {
        let d = doc();
        let bad = EditScript::parse("delete /9").unwrap();
        let e = apply_script(&d, &bad).unwrap_err();
        assert!(e.contains("op 1 (delete)"), "{e}");
        assert!(e.contains("out of range"), "{e}");
        assert!(EditScript::parse("frobnicate /0").is_err());
        assert!(EditScript::parse("splice /0 <a/> <b/>").is_err());
        assert!(EditScript::parse("reannotate /0 0")
            .map(|s| apply_script(&d, &s))
            .unwrap()
            .is_err());
    }

    #[test]
    fn later_ops_see_earlier_effects() {
        let d = parse_forest::<NatPoly>("<a> b </a>").unwrap();
        let script = EditScript::parse("insert /0 c\ndelete /0/0").unwrap();
        // After the insert, /0's children are [b, c] in document
        // order; /0/0 deletes whichever sorts first. Either way one
        // child remains.
        let out = apply_script(&d, &script).unwrap();
        assert_eq!(out.iter_document()[0].0.children().len(), 1);
    }
}
