//! Per-document incremental state: the machinery behind
//! [`crate::Engine::edit_document`]'s delta propagation.
//!
//! # Incrementality
//!
//! Each stored document carries one [`DocIncr`] behind a `Mutex`,
//! shared by every version of the document produced by edits (a full
//! replace via `load_document` installs a *fresh* one, so stale state
//! can never leak across replaces). It holds:
//!
//! - a [`ShadowDoc`] — the id-stable mirror of the current version's
//!   edge relation φ(doc). `sync` against an edited forest matches
//!   surviving subtrees (keeping their ids), adopts relabeled nodes,
//!   shreds genuinely-new subtrees with fresh ids, and returns the
//!   ±Δ as an [`OwnedDelta`];
//! - a bounded **delta log** (`(version, Δ)` pairs) so per-kind and
//!   per-query state lagging several versions behind can catch up by
//!   folding the net delta instead of rebuilding;
//! - per-[`SemiringKind`] state ([`KindIncr`]): the maintained edge
//!   K-relation, retained Datalog IDB fixpoints per query, and the
//!   fingerprint memo tables ([`PathMemo`]) of the direct/NRC routes.
//!
//! # Soundness
//!
//! *Shredded route (tier A — filter-free path queries).* The ψ
//! programs for filter-free queries keep every body node variable in
//! their heads, and the shadow assigns **fresh ids per edit** — a
//! retired id is never reused. Hence any IDB fact whose derivation
//! uses a retired EDB fact mentions a retired id (recursively through
//! Skolem arguments), and conversely every fact free of retired ids
//! has all its derivations inside the retained EDB. Pruning the
//! retained IDB by the net retired-id set therefore yields *exactly*
//! the fixpoint over the retained edges — annotations included — and
//! [`eval_datalog_idb_resume`] restarts semi-naive iteration from the
//! added facts alone. Queries **with** filters drop the qualifier's
//! node variables at projection, so pruning is not exact for them:
//! they re-solve from scratch over the incrementally-maintained edge
//! relation (tier B — still skipping the re-shred).
//!
//! *Direct/NRC routes.* [`PathMemo`] keys every cache entry on the
//! subtree **value** (whose hash is the precomputed `(size, hash)`
//! fingerprint), never on identity or position — so entries persist
//! across edits with *no invalidation step* and remain sound by
//! construction: an edited subtree is a different value and simply
//! misses. Memoized evaluation is pure caching of
//! `axml_core::eval_path`, which the differential route's sixth leg
//! re-verifies against the compiled direct plan on demand.
//!
//! *Engagement guard.* All incremental paths engage only when the
//! evaluated snapshot is the incr state's current version
//! (`doc.version == DocIncr::version`). An in-flight evaluation
//! holding a pre-edit `Arc` snapshot falls back to the stateless
//! route over its own snapshot — it can never observe a torn or
//! future document.

use crate::engine::StoredDoc;
use crate::error::AxmlError;
use crate::options::SemiringKind;
use crate::prepared::EvalKind;
use axml_core::path::PathQuery;
use axml_core::{eval_path_memo, PathMemo};
use axml_pool::ExecCtx;
use axml_relational::datalog::{
    eval_datalog_idb_limits_ctx, eval_datalog_idb_resume, DEFAULT_MAX_ITERS,
};
use axml_relational::shred::{decode, edge_schema, garbage_collect, path_to_datalog};
use axml_relational::{
    added_facts_relation, tuple_mentions, AddedFact, Database, KRelation, OwnedDelta, ResultCache,
    ShadowDoc,
};
use axml_semiring::{FnHom, NatPoly, Semiring};
use axml_uxml::{Forest, NodeBudget};
use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Most recent deltas kept for catch-up; state lagging further behind
/// rebuilds from the shadow instead.
const MAX_LOG: usize = 64;
/// Retained IDB fixpoints per `(document, kind)`.
const MAX_QUERY_STATES: usize = 8;
/// Path memo tables per `(document, kind)`.
const MAX_MEMOS: usize = 8;

/// Monotonic counters for the incremental layer, surfaced through
/// [`crate::StorageStats`] (and the server's `GET /stats`).
#[derive(Debug, Default)]
pub(crate) struct IncrCounters {
    pub edits_applied: AtomicU64,
    pub spine_nodes_interned: AtomicU64,
    pub delta_facts_retired: AtomicU64,
    pub delta_facts_added: AtomicU64,
    pub memo_hits: AtomicU64,
    pub memo_misses: AtomicU64,
    pub incremental_evals: AtomicU64,
    pub full_fallbacks: AtomicU64,
}

impl IncrCounters {
    /// Count an eval on an edited document that could not engage an
    /// incremental path (stale snapshot or evicted state).
    pub fn note_fallback(&self) {
        self.full_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> IncrStats {
        IncrStats {
            edits_applied: self.edits_applied.load(Ordering::Relaxed),
            spine_nodes_interned: self.spine_nodes_interned.load(Ordering::Relaxed),
            delta_facts_retired: self.delta_facts_retired.load(Ordering::Relaxed),
            delta_facts_added: self.delta_facts_added.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            incremental_evals: self.incremental_evals.load(Ordering::Relaxed),
            full_fallbacks: self.full_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the engine's incremental-evaluation counters
/// (monotonic over the engine's lifetime; part of
/// [`crate::StorageStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrStats {
    /// Successful [`crate::Engine::edit_document`] calls.
    pub edits_applied: u64,
    /// New arena nodes interned by edits — the spine cost; the rest of
    /// each edited document was re-shared from the arena.
    pub spine_nodes_interned: u64,
    /// Edge facts retired across all edits (the −Δ side).
    pub delta_facts_retired: u64,
    /// Edge facts added across all edits (the +Δ side).
    pub delta_facts_added: u64,
    /// Subtree-fingerprint memo hits on the direct/NRC routes.
    pub memo_hits: u64,
    /// Subtree-fingerprint memo misses on the direct/NRC routes.
    pub memo_misses: u64,
    /// Evaluations served by an incremental path (memoized path eval
    /// or Datalog delta propagation).
    pub incremental_evals: u64,
    /// Evaluations on edited documents that fell back to the
    /// stateless route (snapshot behind the incr state, or state
    /// evicted).
    pub full_fallbacks: u64,
}

/// Per-document incremental state; see the module docs.
#[derive(Debug, Default)]
pub(crate) struct DocIncr {
    /// Version of the document this state mirrors. 0 = never edited.
    pub version: u64,
    shadow: Option<ShadowDoc<NatPoly>>,
    /// Contiguous recent deltas: entry `(v, Δ)` transforms version
    /// `v-1` into `v`; the back entry is always `self.version`.
    log: VecDeque<(u64, OwnedDelta<NatPoly>)>,
    /// Per-kind state, keyed by runtime tag, stored type-erased (one
    /// concrete [`KindIncr<S>`] per kind).
    kinds: HashMap<SemiringKind, Box<dyn Any + Send>>,
}

/// The per-semiring slice of a document's incremental state.
struct KindIncr<S: Semiring> {
    /// `Some(v)` when the maintained `E` relation is φ(doc at version
    /// v); `None` before first use.
    e_version: Option<u64>,
    /// The database the shredded solves run over; its `E` relation is
    /// maintained in place across edits (holding it here means
    /// evaluation never clones the edge relation).
    db: Database<S>,
    queries: HashMap<String, QueryState<S>>,
    memos: HashMap<String, PathMemo<S>>,
}

/// A retained Datalog fixpoint for one query over one document, plus
/// the decoded result forest maintained alongside it — re-evaluating
/// the same query at the same version is a cache assemble, and a
/// resume patches the forest in O(Δ) instead of re-running
/// `garbage_collect` + `decode` over the whole `E2` fixpoint.
struct QueryState<S: Semiring> {
    version: u64,
    idb: BTreeMap<String, KRelation<S>>,
    cache: ResultCache<S>,
}

impl DocIncr {
    /// Record one applied edit: lazily build the shadow from the
    /// pre-edit document, sync it against the post-edit one, bump the
    /// version and log the delta. Returns `(facts_retired,
    /// facts_added)`.
    pub fn apply_edit(&mut self, old: &Forest<NatPoly>, new: &Forest<NatPoly>) -> (u64, u64) {
        if self.shadow.is_none() {
            self.shadow = Some(ShadowDoc::from_forest(old));
        }
        let delta = self.shadow.as_mut().expect("just built").sync(new);
        let counts = (delta.retired.len() as u64, delta.added.len() as u64);
        self.version += 1;
        self.log.push_back((self.version, delta));
        while self.log.len() > MAX_LOG {
            self.log.pop_front();
        }
        counts
    }
}

/// Whether the log holds every delta in `(from, current]` — i.e.
/// state at version `from` can catch up by folding log entries.
fn covered(log: &VecDeque<(u64, OwnedDelta<NatPoly>)>, from: u64, current: u64) -> bool {
    if from == current {
        return true;
    }
    log.front().map(|(v, _)| *v <= from + 1).unwrap_or(false)
}

/// The net retired-id set and net added facts (mapped into `S`) over
/// the log span `(from, current]`. Added facts later retired within
/// the span are dropped — sound because ids are fresh per edit, so an
/// add's ids can never collide with a retirement from an *earlier*
/// delta.
fn net_delta<S: EvalKind>(
    log: &VecDeque<(u64, OwnedDelta<NatPoly>)>,
    from: u64,
) -> (HashSet<u64>, Vec<(AddedFact, S)>) {
    let hom = FnHom::new(S::from_poly_val);
    let mut retired = HashSet::new();
    let mut added: Vec<(AddedFact, S)> = Vec::new();
    for (v, delta) in log {
        if *v <= from {
            continue;
        }
        retired.extend(delta.retired.iter().copied());
        let mapped = delta.map_annotations(&hom);
        added.extend(mapped.added);
    }
    added.retain(|(f, _)| !retired.contains(&f.pid) && !retired.contains(&f.nid));
    (retired, added)
}

/// Type-erased accessor for a kind's slice of the state.
fn kind_mut<S: EvalKind>(
    kinds: &mut HashMap<SemiringKind, Box<dyn Any + Send>>,
) -> &mut KindIncr<S> {
    kinds
        .entry(S::KIND)
        .or_insert_with(|| {
            Box::new(KindIncr::<S> {
                e_version: None,
                db: Database::new().with("E", KRelation::new(edge_schema())),
                queries: HashMap::new(),
                memos: HashMap::new(),
            })
        })
        .downcast_mut::<KindIncr<S>>()
        .expect("kind state downcasts to its own kind")
}

/// Incremental shredded evaluation. `None` = not engaged (never
/// edited, or this snapshot is behind the incr state) — the caller
/// runs the stateless route on its snapshot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_shredded_incr<S: EvalKind>(
    doc: &Arc<StoredDoc>,
    p: &PathQuery,
    key: &str,
    ctx: Option<&ExecCtx<'_>>,
    deadline: Option<Instant>,
    budget: Option<&NodeBudget>,
    counters: &IncrCounters,
) -> Option<Result<Forest<S>, AxmlError>> {
    if doc.version == 0 {
        return None;
    }
    let mut incr = doc.incr.lock().unwrap_or_else(|e| e.into_inner());
    let DocIncr {
        version,
        shadow,
        log,
        kinds,
    } = &mut *incr;
    if *version != doc.version {
        return None;
    }
    let shadow = shadow.as_ref()?;
    let kind = kind_mut::<S>(kinds);

    // 0. Pure hit: the query was already solved at exactly this
    //    version — the cached result forest is the answer.
    if let Some(state) = kind.queries.get(key) {
        if state.version == *version {
            let out = state.cache.assemble();
            if let Some(b) = budget {
                if b.charge(out.size()).is_err() {
                    return Some(Err(AxmlError::Budget {
                        resource: crate::error::BudgetKind::Memory,
                        at: "cached shredded result".into(),
                    }));
                }
            }
            counters.incremental_evals.fetch_add(1, Ordering::Relaxed);
            return Some(Ok(out));
        }
    }

    // 1. Bring the maintained edge relation up to this version, in
    //    place inside the solve database.
    let edges = kind.db.get_mut("E").expect("E relation present");
    match kind.e_version {
        Some(v) if v == *version => {}
        Some(v) if covered(log, v, *version) => {
            let hom = FnHom::new(S::from_poly_val);
            for (dv, delta) in log.iter() {
                if *dv > v {
                    delta.map_annotations(&hom).apply_to_edges_in_place(edges);
                }
            }
            kind.e_version = Some(*version);
        }
        _ => {
            *edges = shadow.edges_mapped(&FnHom::new(S::from_poly_val));
            kind.e_version = Some(*version);
        }
    }

    // 2. Solve. Tier B (filters): full solve over the maintained
    //    edges, then gc + decode as the stateless pipeline does.
    let db = &kind.db;
    let prog = path_to_datalog(p);
    if p.has_filter() {
        let solved: Result<BTreeMap<String, KRelation<S>>, _> =
            eval_datalog_idb_limits_ctx(&prog, db, DEFAULT_MAX_ITERS, ctx, deadline, budget);
        let mut idb = match solved {
            Ok(idb) => idb,
            Err(e) => return Some(Err(e.into())),
        };
        let raw = idb
            .remove("E2")
            .unwrap_or_else(|| KRelation::new(edge_schema()));
        let clean = garbage_collect(&raw);
        counters.incremental_evals.fetch_add(1, Ordering::Relaxed);
        return Some(decode(&clean).ok_or_else(|| AxmlError::Shredding {
            msg: "shredded result is not forest-shaped".into(),
        }));
    }

    // Tier A (filter-free). Resume from the retained IDB when the log
    // covers the gap: prune retired tuples *in place*, hand the pruned
    // fixpoint to the solver by move, and patch the cached result
    // forest with the edit's id delta. Everything here is O(Δ) except
    // one filtered scan of `E2` inside `apply_delta`.
    let resumed = match kind.queries.remove(key) {
        Some(mut state) if covered(log, state.version, *version) => {
            let (retired, added) = net_delta::<S>(log, state.version);
            for r in state.idb.values_mut() {
                r.retain(|t, _| !tuple_mentions(t, &retired));
            }
            let pruned = std::mem::take(&mut state.idb);
            match eval_datalog_idb_resume(
                &prog,
                db,
                "E",
                &added_facts_relation(&added),
                pruned,
                DEFAULT_MAX_ITERS,
                ctx,
                deadline,
                budget,
            ) {
                Ok(idb) => {
                    state.idb = idb;
                    let fresh: HashSet<u64> = added.iter().map(|(f, _)| f.nid).collect();
                    let touched: HashSet<u64> = added.iter().map(|(f, _)| f.pid).collect();
                    Some((state, retired, fresh, touched))
                }
                Err(e) => return Some(Err(e.into())),
            }
        }
        // Never solved here, or the log no longer covers the gap (the
        // stale state was just dropped): full solve below.
        _ => None,
    };
    let (mut state, delta) = match resumed {
        Some((state, retired, fresh, touched)) => (state, Some((retired, fresh, touched))),
        None => {
            let idb = match eval_datalog_idb_limits_ctx(
                &prog,
                db,
                DEFAULT_MAX_ITERS,
                ctx,
                deadline,
                budget,
            ) {
                Ok(idb) => idb,
                Err(e) => return Some(Err(e.into())),
            };
            (
                QueryState {
                    version: 0,
                    idb,
                    cache: ResultCache::new(),
                },
                None,
            )
        }
    };
    state.version = *version;

    // 3. Produce the result from the maintained cache — patch on
    //    resume, rebuild (fused gc + decode) otherwise or whenever the
    //    delta steps outside the tier-A id model.
    let empty = KRelation::new(edge_schema());
    let forest = {
        let raw = state.idb.get("E2").unwrap_or(&empty);
        match &delta {
            Some((retired, fresh, touched)) => state
                .cache
                .apply_delta(raw, retired, fresh, touched)
                .or_else(|| state.cache.rebuild(raw)),
            None => state.cache.rebuild(raw),
        }
    };

    if !kind.queries.contains_key(key) && kind.queries.len() >= MAX_QUERY_STATES {
        // Evict the most-stale retained fixpoint.
        if let Some(oldest) = kind
            .queries
            .iter()
            .min_by_key(|(_, s)| s.version)
            .map(|(k, _)| k.clone())
        {
            kind.queries.remove(&oldest);
        }
    }
    kind.queries.insert(key.to_owned(), state);
    counters.incremental_evals.fetch_add(1, Ordering::Relaxed);
    Some(forest.ok_or_else(|| AxmlError::Shredding {
        msg: "shredded result is not forest-shaped".into(),
    }))
}

/// Fingerprint-memoized path evaluation for the direct/NRC routes.
/// `None` = not engaged; the caller runs its compiled plan.
pub(crate) fn eval_path_memoized<S: EvalKind>(
    doc: &Arc<StoredDoc>,
    forest: &Forest<S>,
    key: &str,
    p: &PathQuery,
    deadline: Option<Instant>,
    budget: Option<&NodeBudget>,
    counters: &IncrCounters,
) -> Option<Result<Forest<S>, AxmlError>> {
    if doc.version == 0 {
        return None;
    }
    if let Some(d) = deadline {
        if Instant::now() >= d {
            return Some(Err(AxmlError::Budget {
                resource: crate::error::BudgetKind::WallClock,
                at: "route start".into(),
            }));
        }
    }
    let mut incr = doc.incr.lock().unwrap_or_else(|e| e.into_inner());
    if incr.version != doc.version {
        return None;
    }
    let kind = kind_mut::<S>(&mut incr.kinds);
    if !kind.memos.contains_key(key) && kind.memos.len() >= MAX_MEMOS {
        if let Some(evict) = kind.memos.keys().next().cloned() {
            kind.memos.remove(&evict);
        }
    }
    let memo = kind.memos.entry(key.to_owned()).or_default();
    let (h0, m0) = (memo.hits, memo.misses);
    let out = eval_path_memo(forest, p, memo);
    counters
        .memo_hits
        .fetch_add(memo.hits - h0, Ordering::Relaxed);
    counters
        .memo_misses
        .fetch_add(memo.misses - m0, Ordering::Relaxed);
    counters.incremental_evals.fetch_add(1, Ordering::Relaxed);
    if let Some(b) = budget {
        // The memo table holds intermediates beyond the result; charge
        // the result like any other set-producing op boundary.
        if b.charge(out.size()).is_err() {
            return Some(Err(AxmlError::Budget {
                resource: crate::error::BudgetKind::Memory,
                at: "memoized path evaluation".into(),
            }));
        }
    }
    Some(Ok(out))
}
