//! [`AxmlResult`]: one result type across the runtime-selected
//! semirings.
//!
//! The statically-typed layer returns `Value<K>` for a compile-time
//! `K`; the facade returns this enum, tagged by the [`SemiringKind`]
//! that was requested. Accessors give back the typed value so callers
//! that know their kind lose nothing.

use crate::json::Json;
use crate::options::SemiringKind;
use axml_semiring::{Nat, NatPoly, PosBool, Prob, Trio, Tropical, Why};
use axml_uxml::{Tree, Value};
use std::fmt;

/// A query result in the semiring selected at call time.
#[derive(Clone, Debug, PartialEq)]
pub enum AxmlResult {
    /// Result under bag semantics.
    Nat(Value<Nat>),
    /// Result with positive-boolean (c-table) annotations.
    PosBool(Value<PosBool>),
    /// Result with cheapest-derivation costs.
    Tropical(Value<Tropical>),
    /// Result with provenance polynomials (symbolic — can be
    /// specialized to any other kind afterwards).
    NatPoly(Value<NatPoly>),
    /// Result with why-provenance witness bases.
    Why(Value<Why>),
    /// Result with Trio-style lineage.
    Trio(Value<Trio>),
    /// Result with most-likely-derivation probabilities.
    Prob(Value<Prob>),
}

macro_rules! accessor {
    ($(#[$doc:meta])* $name:ident, $variant:ident, $k:ty) => {
        $(#[$doc])*
        pub fn $name(&self) -> Option<&Value<$k>> {
            match self {
                AxmlResult::$variant(v) => Some(v),
                _ => None,
            }
        }
    };
}

impl AxmlResult {
    /// Which semiring this result is annotated in.
    pub fn kind(&self) -> SemiringKind {
        match self {
            AxmlResult::Nat(_) => SemiringKind::Nat,
            AxmlResult::PosBool(_) => SemiringKind::PosBool,
            AxmlResult::Tropical(_) => SemiringKind::Tropical,
            AxmlResult::NatPoly(_) => SemiringKind::NatPoly,
            AxmlResult::Why(_) => SemiringKind::Why,
            AxmlResult::Trio(_) => SemiringKind::Trio,
            AxmlResult::Prob(_) => SemiringKind::Prob,
        }
    }

    accessor!(
        /// The ℕ-annotated value, if this is a `Nat` result.
        as_nat,
        Nat,
        Nat
    );
    accessor!(
        /// The PosBool-annotated value, if this is a `PosBool` result.
        as_posbool,
        PosBool,
        PosBool
    );
    accessor!(
        /// The cost-annotated value, if this is a `Tropical` result.
        as_tropical,
        Tropical,
        Tropical
    );
    accessor!(
        /// The symbolic (ℕ\[X\]) value, if this is a `NatPoly` result.
        as_natpoly,
        NatPoly,
        NatPoly
    );
    accessor!(
        /// The why-provenance value, if this is a `Why` result.
        as_why,
        Why,
        Why
    );
    accessor!(
        /// The lineage value, if this is a `Trio` result.
        as_trio,
        Trio,
        Trio
    );
    accessor!(
        /// The probability-annotated value, if this is a `Prob` result.
        as_prob,
        Prob,
        Prob
    );

    /// The top-level `(tree, annotation)` pieces of a set-shaped
    /// result, in document order, without matching the seven variants
    /// by hand. `None` when the result is a scalar (a bare label or a
    /// single tree) that does not decompose into pieces.
    ///
    /// These are exactly the pieces a streaming evaluation
    /// ([`crate::PreparedQuery::eval_stream`]) yields, in the same
    /// order; `crate::json` renders both from the same accessors, so
    /// streamed and one-shot output are byte-identical.
    pub fn pieces(&self) -> Option<Vec<ResultPieceRef<'_>>> {
        macro_rules! arms {
            ($($variant:ident),*) => {
                match self {
                    $(AxmlResult::$variant(v) => match v {
                        Value::Set(f) => Some(
                            f.iter_document()
                                .into_iter()
                                .map(|(t, k)| ResultPieceRef::$variant(t, k))
                                .collect(),
                        ),
                        _ => None,
                    }),*
                }
            };
        }
        arms!(Nat, PosBool, Tropical, NatPoly, Why, Trio, Prob)
    }
}

/// A borrowed top-level `(tree, annotation)` piece of a set-shaped
/// [`AxmlResult`], kind-tagged like the result itself. Produced by
/// [`AxmlResult::pieces`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ResultPieceRef<'a> {
    /// A piece of a `Nat` result.
    Nat(&'a Tree<Nat>, &'a Nat),
    /// A piece of a `PosBool` result.
    PosBool(&'a Tree<PosBool>, &'a PosBool),
    /// A piece of a `Tropical` result.
    Tropical(&'a Tree<Tropical>, &'a Tropical),
    /// A piece of a `NatPoly` result.
    NatPoly(&'a Tree<NatPoly>, &'a NatPoly),
    /// A piece of a `Why` result.
    Why(&'a Tree<Why>, &'a Why),
    /// A piece of a `Trio` result.
    Trio(&'a Tree<Trio>, &'a Trio),
    /// A piece of a `Prob` result.
    Prob(&'a Tree<Prob>, &'a Prob),
}

macro_rules! for_each_piece {
    ($self:expr, $t:ident, $k:ident => $e:expr) => {
        match $self {
            Self::Nat($t, $k) => $e,
            Self::PosBool($t, $k) => $e,
            Self::Tropical($t, $k) => $e,
            Self::NatPoly($t, $k) => $e,
            Self::Why($t, $k) => $e,
            Self::Trio($t, $k) => $e,
            Self::Prob($t, $k) => $e,
        }
    };
}

impl ResultPieceRef<'_> {
    /// Which semiring this piece is annotated in.
    pub fn kind(&self) -> SemiringKind {
        match self {
            Self::Nat(..) => SemiringKind::Nat,
            Self::PosBool(..) => SemiringKind::PosBool,
            Self::Tropical(..) => SemiringKind::Tropical,
            Self::NatPoly(..) => SemiringKind::NatPoly,
            Self::Why(..) => SemiringKind::Why,
            Self::Trio(..) => SemiringKind::Trio,
            Self::Prob(..) => SemiringKind::Prob,
        }
    }

    /// The piece's label name.
    pub fn label(&self) -> &str {
        for_each_piece!(self, t, _k => t.label().name())
    }

    /// The piece's annotation, rendered in the semiring's syntax.
    pub fn annotation(&self) -> String {
        for_each_piece!(self, _t, k => k.to_string())
    }

    /// Append this piece's canonical JSON rendering (the element shape
    /// of the `result` array in `--format json` output) to a builder.
    pub fn write_json(&self, j: &mut Json) {
        for_each_piece!(self, t, k => crate::json::tree_json(j, t, Some(k)))
    }

    /// This piece's canonical JSON rendering as a string.
    pub fn json(&self) -> String {
        let mut j = Json::new();
        self.write_json(&mut j);
        j.finish()
    }

    /// An owned copy of this piece (for handing across threads).
    // The macro instantiates over every semiring; the `Copy` ones
    // trip clone_on_copy even though the clone is required for the
    // non-`Copy` ones.
    #[allow(clippy::clone_on_copy)]
    pub fn to_piece(&self) -> ResultPiece {
        for_each_piece!(self, t, k => ((*t).clone(), (*k).clone()).into())
    }
}

/// An owned top-level `(tree, annotation)` piece, kind-tagged like
/// [`AxmlResult`] — the element type of [`crate::EvalCursor`].
#[derive(Clone, Debug, PartialEq)]
pub enum ResultPiece {
    /// A piece of a `Nat` result.
    Nat(Tree<Nat>, Nat),
    /// A piece of a `PosBool` result.
    PosBool(Tree<PosBool>, PosBool),
    /// A piece of a `Tropical` result.
    Tropical(Tree<Tropical>, Tropical),
    /// A piece of a `NatPoly` result.
    NatPoly(Tree<NatPoly>, NatPoly),
    /// A piece of a `Why` result.
    Why(Tree<Why>, Why),
    /// A piece of a `Trio` result.
    Trio(Tree<Trio>, Trio),
    /// A piece of a `Prob` result.
    Prob(Tree<Prob>, Prob),
}

macro_rules! piece_from {
    ($($variant:ident, $k:ty;)*) => {
        $(impl From<(Tree<$k>, $k)> for ResultPiece {
            fn from((t, k): (Tree<$k>, $k)) -> Self {
                ResultPiece::$variant(t, k)
            }
        })*
    };
}
piece_from!(
    Nat, Nat;
    PosBool, PosBool;
    Tropical, Tropical;
    NatPoly, NatPoly;
    Why, Why;
    Trio, Trio;
    Prob, Prob;
);

impl ResultPiece {
    /// Which semiring this piece is annotated in.
    pub fn kind(&self) -> SemiringKind {
        self.as_ref().kind()
    }

    /// A borrowed view of this piece (label/annotation/JSON accessors).
    pub fn as_ref(&self) -> ResultPieceRef<'_> {
        match self {
            ResultPiece::Nat(t, k) => ResultPieceRef::Nat(t, k),
            ResultPiece::PosBool(t, k) => ResultPieceRef::PosBool(t, k),
            ResultPiece::Tropical(t, k) => ResultPieceRef::Tropical(t, k),
            ResultPiece::NatPoly(t, k) => ResultPieceRef::NatPoly(t, k),
            ResultPiece::Why(t, k) => ResultPieceRef::Why(t, k),
            ResultPiece::Trio(t, k) => ResultPieceRef::Trio(t, k),
            ResultPiece::Prob(t, k) => ResultPieceRef::Prob(t, k),
        }
    }

    /// This piece's canonical JSON rendering (see
    /// [`ResultPieceRef::json`]).
    pub fn json(&self) -> String {
        self.as_ref().json()
    }
}

impl fmt::Display for AxmlResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxmlResult::Nat(v) => v.fmt(f),
            AxmlResult::PosBool(v) => v.fmt(f),
            AxmlResult::Tropical(v) => v.fmt(f),
            AxmlResult::NatPoly(v) => v.fmt(f),
            AxmlResult::Why(v) => v.fmt(f),
            AxmlResult::Trio(v) => v.fmt(f),
            AxmlResult::Prob(v) => v.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_uxml::Forest;

    #[test]
    fn kind_and_accessors_agree() {
        let r = AxmlResult::Nat(Value::Set(Forest::new()));
        assert_eq!(r.kind(), SemiringKind::Nat);
        assert!(r.as_nat().is_some());
        assert!(r.as_natpoly().is_none());
    }
}
