//! [`AxmlResult`]: one result type across the runtime-selected
//! semirings.
//!
//! The statically-typed layer returns `Value<K>` for a compile-time
//! `K`; the facade returns this enum, tagged by the [`SemiringKind`]
//! that was requested. Accessors give back the typed value so callers
//! that know their kind lose nothing.

use crate::options::SemiringKind;
use axml_semiring::{Nat, NatPoly, PosBool, Prob, Trio, Tropical, Why};
use axml_uxml::Value;
use std::fmt;

/// A query result in the semiring selected at call time.
#[derive(Clone, Debug, PartialEq)]
pub enum AxmlResult {
    /// Result under bag semantics.
    Nat(Value<Nat>),
    /// Result with positive-boolean (c-table) annotations.
    PosBool(Value<PosBool>),
    /// Result with cheapest-derivation costs.
    Tropical(Value<Tropical>),
    /// Result with provenance polynomials (symbolic — can be
    /// specialized to any other kind afterwards).
    NatPoly(Value<NatPoly>),
    /// Result with why-provenance witness bases.
    Why(Value<Why>),
    /// Result with Trio-style lineage.
    Trio(Value<Trio>),
    /// Result with most-likely-derivation probabilities.
    Prob(Value<Prob>),
}

macro_rules! accessor {
    ($(#[$doc:meta])* $name:ident, $variant:ident, $k:ty) => {
        $(#[$doc])*
        pub fn $name(&self) -> Option<&Value<$k>> {
            match self {
                AxmlResult::$variant(v) => Some(v),
                _ => None,
            }
        }
    };
}

impl AxmlResult {
    /// Which semiring this result is annotated in.
    pub fn kind(&self) -> SemiringKind {
        match self {
            AxmlResult::Nat(_) => SemiringKind::Nat,
            AxmlResult::PosBool(_) => SemiringKind::PosBool,
            AxmlResult::Tropical(_) => SemiringKind::Tropical,
            AxmlResult::NatPoly(_) => SemiringKind::NatPoly,
            AxmlResult::Why(_) => SemiringKind::Why,
            AxmlResult::Trio(_) => SemiringKind::Trio,
            AxmlResult::Prob(_) => SemiringKind::Prob,
        }
    }

    accessor!(
        /// The ℕ-annotated value, if this is a `Nat` result.
        as_nat,
        Nat,
        Nat
    );
    accessor!(
        /// The PosBool-annotated value, if this is a `PosBool` result.
        as_posbool,
        PosBool,
        PosBool
    );
    accessor!(
        /// The cost-annotated value, if this is a `Tropical` result.
        as_tropical,
        Tropical,
        Tropical
    );
    accessor!(
        /// The symbolic (ℕ\[X\]) value, if this is a `NatPoly` result.
        as_natpoly,
        NatPoly,
        NatPoly
    );
    accessor!(
        /// The why-provenance value, if this is a `Why` result.
        as_why,
        Why,
        Why
    );
    accessor!(
        /// The lineage value, if this is a `Trio` result.
        as_trio,
        Trio,
        Trio
    );
    accessor!(
        /// The probability-annotated value, if this is a `Prob` result.
        as_prob,
        Prob,
        Prob
    );
}

impl fmt::Display for AxmlResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxmlResult::Nat(v) => v.fmt(f),
            AxmlResult::PosBool(v) => v.fmt(f),
            AxmlResult::Tropical(v) => v.fmt(f),
            AxmlResult::NatPoly(v) => v.fmt(f),
            AxmlResult::Why(v) => v.fmt(f),
            AxmlResult::Trio(v) => v.fmt(f),
            AxmlResult::Prob(v) => v.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_uxml::Forest;

    #[test]
    fn kind_and_accessors_agree() {
        let r = AxmlResult::Nat(Value::Set(Forest::new()));
        assert_eq!(r.kind(), SemiringKind::Nat);
        assert!(r.as_nat().is_some());
        assert!(r.as_natpoly().is_none());
    }
}
