//! Runtime → static dispatch: the bridge between [`SemiringKind`]
//! values and the workspace's compile-time `K: Semiring` generics.
//!
//! Each selectable kind implements [`KindDispatch`]: the canonical
//! homomorphism out of ℕ\[X\] (documents and prepared queries are
//! stored symbolically, once), plus the per-kind cache slots on
//! prepared queries and stored documents. The facade monomorphizes one
//! evaluator per kind; choosing a semiring at runtime is a `match`
//! followed by `OnceLock` reads.

use crate::options::SemiringKind;
use axml_core::{compile_optimized, CompiledQuery, Query};
use axml_nrc::CompiledExpr;
use axml_semiring::trio::collapse::{natpoly_to_posbool, natpoly_to_trio, natpoly_to_why};
use axml_semiring::{FnHom, Nat, NatPoly, PosBool, Prob, Semiring, Trio, Tropical, Valuation, Why};
use axml_uxml::{Forest, TreeArena};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Everything `prepare` produces for one semiring: the typed core
/// query and the normalized `NRC_K + srt` term (kept as the
/// differential reference interpretations), plus the slot-resolved
/// execution plans the `Direct` and `ViaNrc` routes actually run.
pub(crate) struct Artifacts<K: Semiring> {
    pub core: Query<K>,
    pub nrc: axml_nrc::Expr<K>,
    /// Compiled plan for the direct route (numeric frame slots).
    pub core_plan: CompiledQuery<K>,
    /// Compiled plan for the NRC route (slots + fused label tests,
    /// kids-flattening and descendant sweeps; iterative `srt`).
    pub nrc_plan: CompiledExpr<K>,
}

impl<K: Semiring> Artifacts<K> {
    /// Build all four artifacts from an elaborated core query.
    pub fn from_core(core: Query<K>) -> Self {
        let nrc = compile_optimized(&core);
        let core_plan = CompiledQuery::compile(&core);
        let nrc_plan = CompiledExpr::compile(&nrc);
        Artifacts {
            core,
            nrc,
            core_plan,
            nrc_plan,
        }
    }
}

impl Artifacts<NatPoly> {
    /// Push the ℕ\[X\] artifacts through a homomorphism and recompile
    /// the plans (plan lowering is linear in the term). The query is
    /// small (annotations occur only under `annot`), so this is cheap;
    /// it still runs at most once per kind per prepared query.
    pub fn specialize<S: KindDispatch>(&self) -> Artifacts<S> {
        let h = FnHom::new(S::from_poly);
        let core = axml_core::hom::map_query(&h, &self.core);
        let nrc = axml_nrc::hom::map_expr(&h, &self.nrc);
        let core_plan = CompiledQuery::compile(&core);
        let nrc_plan = CompiledExpr::compile(&nrc);
        Artifacts {
            core,
            nrc,
            core_plan,
            nrc_plan,
        }
    }
}

/// Per-kind artifact cache on a prepared query. `NatPoly` is not here:
/// the symbolic artifacts are stored eagerly as the source of truth.
#[derive(Default)]
pub(crate) struct KindCaches {
    pub nat: OnceLock<Artifacts<Nat>>,
    pub posbool: OnceLock<Artifacts<PosBool>>,
    pub tropical: OnceLock<Artifacts<Tropical>>,
    pub why: OnceLock<Artifacts<Why>>,
    pub trio: OnceLock<Artifacts<Trio>>,
    pub prob: OnceLock<Artifacts<Prob>>,
}

/// One evictable per-kind document slot: the cached specialization
/// plus its last-read stamp on the engine's LRU clock.
/// `RwLock<Option<…>>` instead of `OnceLock` so the engine's
/// size-capped eviction policy can clear it; correctness never depends
/// on a slot staying filled (an evicted specialization is simply
/// recomputed on next use). Readers take the shared side of the lock
/// and bump the atomic stamp — no exclusive locking on the hot path.
#[derive(Debug)]
pub(crate) struct DocSlot<S: Semiring> {
    val: RwLock<Option<Arc<Forest<S>>>>,
    /// Engine-clock value of the most recent read (LRU touch); 0 =
    /// never read. Relaxed ordering suffices: the stamp only steers
    /// the eviction heuristic, never correctness.
    last_used: AtomicU64,
}

// Manual impl: `derive(Default)` would wrongly require `S: Default`
// (the slot starts empty regardless of `S`).
impl<S: Semiring> Default for DocSlot<S> {
    fn default() -> Self {
        DocSlot {
            val: RwLock::new(None),
            last_used: AtomicU64::new(0),
        }
    }
}

impl<S: Semiring> DocSlot<S> {
    /// The cached specialization, touching the LRU stamp.
    /// `stamp == 0` means "no LRU in play" (uncapped engine): skip the
    /// store so uncapped readers share no written cache line.
    pub fn get(&self, stamp: u64) -> Option<Arc<Forest<S>>> {
        let v = self.val.read().unwrap_or_else(|e| e.into_inner()).clone();
        if stamp != 0 && v.is_some() {
            self.last_used.store(stamp, Ordering::Relaxed);
        }
        v
    }

    /// Fill an empty slot. If another thread won the race, returns its
    /// copy instead (the caller must then *not* enqueue an eviction
    /// entry — the winner already did).
    pub fn fill(&self, fresh: Arc<Forest<S>>, stamp: u64) -> Result<(), Arc<Forest<S>>> {
        let mut w = self.val.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = w.as_ref() {
            return Err(existing.clone());
        }
        *w = Some(fresh);
        self.last_used.store(stamp, Ordering::Relaxed);
        Ok(())
    }

    pub fn last_used(&self) -> u64 {
        self.last_used.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        *self.val.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn is_filled(&self) -> bool {
        self.val.read().unwrap_or_else(|e| e.into_inner()).is_some()
    }
}

/// Per-kind specialized copies of a loaded document, filled on first
/// use by each kind and shared by every query thereafter (until the
/// engine's document-cache cap, if any, evicts them oldest-first).
#[derive(Debug, Default)]
pub(crate) struct DocCaches {
    pub nat: DocSlot<Nat>,
    pub posbool: DocSlot<PosBool>,
    pub tropical: DocSlot<Tropical>,
    pub why: DocSlot<Why>,
    pub trio: DocSlot<Trio>,
    pub prob: DocSlot<Prob>,
}

impl DocCaches {
    /// Drop the cached specialization for `kind`, if any. `NatPoly`
    /// has no slot — the symbolic document is the source of truth and
    /// is never evicted.
    pub fn clear(&self, kind: SemiringKind) {
        match kind {
            SemiringKind::Nat => self.nat.clear(),
            SemiringKind::PosBool => self.posbool.clear(),
            SemiringKind::Tropical => self.tropical.clear(),
            SemiringKind::Why => self.why.clear(),
            SemiringKind::Trio => self.trio.clear(),
            SemiringKind::Prob => self.prob.clear(),
            SemiringKind::NatPoly => {}
        }
    }

    /// The LRU stamp of `kind`'s slot (0 for `NatPoly`, which is
    /// never evicted and so never raced for recency).
    pub fn last_used(&self, kind: SemiringKind) -> u64 {
        match kind {
            SemiringKind::Nat => self.nat.last_used(),
            SemiringKind::PosBool => self.posbool.last_used(),
            SemiringKind::Tropical => self.tropical.last_used(),
            SemiringKind::Why => self.why.last_used(),
            SemiringKind::Trio => self.trio.last_used(),
            SemiringKind::Prob => self.prob.last_used(),
            SemiringKind::NatPoly => 0,
        }
    }

    /// The kinds currently holding a cached specialization (for
    /// introspection and the eviction tests). Driven by
    /// [`SemiringKind::ALL`] through an exhaustive match, so a new
    /// kind cannot be silently exempted.
    pub fn filled(&self) -> Vec<SemiringKind> {
        SemiringKind::ALL
            .into_iter()
            .filter(|kind| match kind {
                SemiringKind::Nat => self.nat.is_filled(),
                SemiringKind::PosBool => self.posbool.is_filled(),
                SemiringKind::Tropical => self.tropical.is_filled(),
                SemiringKind::Why => self.why.is_filled(),
                SemiringKind::Trio => self.trio.is_filled(),
                SemiringKind::Prob => self.prob.is_filled(),
                SemiringKind::NatPoly => false,
            })
            .collect()
    }
}

/// The engine's hash-consing arenas: one columnar [`TreeArena`] per
/// kind, shared across **all** documents in the store, so structurally
/// identical subtrees — within one document or between documents — are
/// interned once and every stored forest is built over canonical
/// `Arc` handles (equal subtrees are pointer-equal). The `Mutex` is
/// held only while loading or specializing a document; evaluation
/// never touches an arena (it runs on the canonical handles).
///
/// **Arenas only grow** — removing a document does not un-intern its
/// subtrees (they stay available for future sharing), so
/// [`StorageStats`](crate::StorageStats)' `distinct_subtrees` and
/// `child_edges` rise monotonically and long-lived processes with
/// heavy load/remove churn over disjoint content accumulate arena
/// memory proportional to everything ever loaded. Front ends exposing
/// document removal (the HTTP server) document this operationally;
/// reference-counted or epoch-based compaction is an open ROADMAP
/// item if churn-heavy deployments materialize.
#[derive(Debug, Default)]
pub(crate) struct KindArenas {
    pub poly: Mutex<TreeArena<NatPoly>>,
    pub nat: Mutex<TreeArena<Nat>>,
    pub posbool: Mutex<TreeArena<PosBool>>,
    pub tropical: Mutex<TreeArena<Tropical>>,
    pub why: Mutex<TreeArena<Why>>,
    pub trio: Mutex<TreeArena<Trio>>,
    pub prob: Mutex<TreeArena<Prob>>,
}

/// A runtime-selectable semiring: the canonical homomorphism from
/// ℕ\[X\] plus the cache slots and result constructor for this kind.
pub(crate) trait KindDispatch: Semiring {
    /// The runtime tag.
    const KIND: SemiringKind;
    /// The canonical homomorphism ℕ\[X\] → Self (see
    /// [`SemiringKind`]'s table).
    fn from_poly(p: &NatPoly) -> Self;
    /// This kind's artifact slot on a prepared query.
    fn artifact_cache(c: &KindCaches) -> &OnceLock<Artifacts<Self>>;
    /// This kind's document slot on a stored document.
    fn doc_cache(d: &DocCaches) -> &DocSlot<Self>;
    /// This kind's hash-consing arena on the engine.
    fn kind_arena(a: &KindArenas) -> &Mutex<TreeArena<Self>>;
}

macro_rules! dispatch_kind {
    ($k:ty, $kind:expr, $slot:ident, $from:expr) => {
        impl KindDispatch for $k {
            const KIND: SemiringKind = $kind;
            fn from_poly(p: &NatPoly) -> Self {
                ($from)(p)
            }
            fn artifact_cache(c: &KindCaches) -> &OnceLock<Artifacts<Self>> {
                &c.$slot
            }
            fn doc_cache(d: &DocCaches) -> &DocSlot<Self> {
                &d.$slot
            }
            fn kind_arena(a: &KindArenas) -> &Mutex<TreeArena<Self>> {
                &a.$slot
            }
        }
    };
}

dispatch_kind!(Nat, SemiringKind::Nat, nat, |p: &NatPoly| {
    p.eval(&Valuation::<Nat>::new())
});
dispatch_kind!(PosBool, SemiringKind::PosBool, posbool, natpoly_to_posbool);
dispatch_kind!(Tropical, SemiringKind::Tropical, tropical, |p: &NatPoly| p
    .eval(&Valuation::<Tropical>::new()));
dispatch_kind!(Why, SemiringKind::Why, why, natpoly_to_why);
dispatch_kind!(Trio, SemiringKind::Trio, trio, natpoly_to_trio);
dispatch_kind!(Prob, SemiringKind::Prob, prob, |p: &NatPoly| p
    .eval(&Valuation::<Prob>::new()));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_homs_preserve_units() {
        // The dispatch homomorphisms must map 0 ↦ 0 and 1 ↦ 1 — the
        // full hom laws are property-tested in `axml-semiring`.
        fn check<S: KindDispatch>() {
            assert_eq!(S::from_poly(&NatPoly::zero()), S::zero());
            assert_eq!(S::from_poly(&NatPoly::one()), S::one());
        }
        check::<Nat>();
        check::<PosBool>();
        check::<Tropical>();
        check::<Why>();
        check::<Trio>();
        check::<Prob>();
    }

    #[test]
    fn nat_hom_counts_derivations() {
        let p: NatPoly = "x*y + 2*z".parse().unwrap();
        assert_eq!(Nat::from_poly(&p), Nat(3));
    }
}
