//! Property tests for the K-UXML data model: set-semantics invariants,
//! homomorphism lifting, and parser/printer agreement on random data.

use axml_semiring::{dup_elim, FnHom, Nat, NatPoly, Semiring, SemiringHom, Valuation, Var};
use axml_uxml::hom::{map_forest, specialize_forest};
use axml_uxml::{parse_forest, Forest, Tree};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["ua", "ub", "uc", "ud"];
const VARS: [&str; 3] = ["uv1", "uv2", "uv3"];

fn arb_annotation() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        3 => proptest::sample::select(&VARS[..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..3).prop_map(NatPoly::from),
        1 => (proptest::sample::select(&VARS[..]), proptest::sample::select(&VARS[..]))
            .prop_map(|(a, b)| NatPoly::var_named(a).times(&NatPoly::var_named(b))),
    ]
}

fn arb_tree(depth: u32) -> BoxedStrategy<Tree<NatPoly>> {
    if depth == 0 {
        proptest::sample::select(&LABELS[..])
            .prop_map(Tree::leaf)
            .boxed()
    } else {
        (
            proptest::sample::select(&LABELS[..]),
            proptest::collection::vec((arb_tree(depth - 1), arb_annotation()), 0..3),
        )
            .prop_map(|(l, kids)| Tree::new(l, Forest::from_pairs(kids)))
            .boxed()
    }
}

fn arb_forest() -> impl Strategy<Value = Forest<NatPoly>> {
    proptest::collection::vec((arb_tree(3), arb_annotation()), 0..4).prop_map(Forest::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forest union is commutative, associative, with the empty forest
    /// as unit (the K-semimodule structure of the data model).
    #[test]
    fn forest_union_laws(a in arb_forest(), b in arb_forest(), c in arb_forest()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&Forest::new()), a.clone());
    }

    /// Scalar multiplication distributes over union and composes.
    #[test]
    fn forest_scalar_laws(a in arb_forest(), b in arb_forest(),
                          k1 in arb_annotation(), k2 in arb_annotation()) {
        prop_assert_eq!(
            a.union(&b).scalar_mul(&k1),
            a.scalar_mul(&k1).union(&b.scalar_mul(&k1))
        );
        prop_assert_eq!(
            a.scalar_mul(&k1).scalar_mul(&k2),
            a.scalar_mul(&k2.times(&k1))
        );
        prop_assert_eq!(a.scalar_mul(&NatPoly::one()), a.clone());
        prop_assert_eq!(a.scalar_mul(&NatPoly::zero()), Forest::new());
    }

    /// bind is linear: bind over a union = union of binds, and scalars
    /// factor out — exactly what `for`-iteration needs.
    #[test]
    fn forest_bind_linearity(a in arb_forest(), b in arb_forest(), k in arb_annotation()) {
        let f = |t: &Tree<NatPoly>| t.children().clone();
        prop_assert_eq!(
            a.union(&b).bind(f),
            a.bind(f).union(&b.bind(f))
        );
        prop_assert_eq!(
            a.scalar_mul(&k).bind(f),
            a.bind(f).scalar_mul(&k)
        );
    }

    /// Lifted homomorphisms preserve union and scalar structure
    /// (the value half of Theorem 1).
    #[test]
    fn hom_lifting_is_structural(a in arb_forest(), b in arb_forest(),
                                 k in arb_annotation(), bits in 0u8..8) {
        let val = Valuation::<bool>::from_pairs(
            VARS.iter()
                .enumerate()
                .map(|(i, n)| (Var::new(n), bits & (1 << i) != 0)),
        );
        let h = FnHom::new(move |p: &NatPoly| p.eval(&val));
        prop_assert_eq!(
            map_forest(&h, &a.union(&b)),
            map_forest(&h, &a).union(&map_forest(&h, &b))
        );
        prop_assert_eq!(
            map_forest(&h, &a.scalar_mul(&k)),
            map_forest(&h, &a).scalar_mul(&h.apply(&k))
        );
    }

    /// Composition of homomorphisms = homomorphism of the composition:
    /// specializing ℕ\[X\] → ℕ → 𝔹 equals ℕ\[X\] → 𝔹 directly.
    #[test]
    fn hom_composition(a in arb_forest(), vals in proptest::collection::vec(0u64..3, 3)) {
        let nat_val = Valuation::<Nat>::from_pairs(
            VARS.iter()
                .zip(vals.iter())
                .map(|(n, &v)| (Var::new(n), Nat::from(v))),
        );
        let bool_val = Valuation::<bool>::from_pairs(
            VARS.iter()
                .zip(vals.iter())
                .map(|(n, &v)| (Var::new(n), v != 0)),
        );
        let via_nat = map_forest(
            &FnHom::new(dup_elim),
            &specialize_forest(&a, &nat_val),
        );
        let direct = specialize_forest(&a, &bool_val);
        prop_assert_eq!(via_nat, direct);
    }

    /// Structural size/depth behave sanely under construction.
    #[test]
    fn size_depth_invariants(t in arb_tree(3)) {
        prop_assert!(t.size() >= 1);
        prop_assert!(t.depth() >= 1);
        prop_assert!(t.depth() <= t.size());
        let child_sizes: usize = t.children().iter().map(|(c, _)| c.size()).sum();
        prop_assert_eq!(t.size(), 1 + child_sizes);
    }

    /// print → parse identity on arbitrary forests (document body form).
    #[test]
    fn document_text_roundtrip(f in arb_forest()) {
        let text = axml_uxml::print::to_document_string(&f);
        let back = parse_forest::<NatPoly>(&text).expect("round-trip parses");
        prop_assert_eq!(back, f);
    }

    /// Specialization to ℕ (all 1) preserves support when no annotation
    /// evaluates to zero.
    #[test]
    fn all_ones_specialization_preserves_shape(f in arb_forest()) {
        let spec: Forest<Nat> = specialize_forest(&f, &Valuation::new());
        // every distinct tree maps somewhere; counts can only merge
        prop_assert!(spec.len() <= f.len());
        let total_nodes_before = f.size();
        let total_nodes_after = spec.size();
        prop_assert!(total_nodes_after <= total_nodes_before);
    }
}
