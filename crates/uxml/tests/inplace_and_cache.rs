//! Property tests for the forest-level in-place operations and the
//! cached per-node metadata:
//!
//! - `Forest::union_with` / `scalar_mul_in_place` / `extend_scaled`
//!   agree with their functional counterparts;
//! - the cached `Tree::size` equals a recomputation from scratch;
//! - the fingerprint-leading `Ord` is consistent with `Eq`, and the
//!   document-order comparator is too;
//! - structurally equal trees built separately share fingerprints.

use axml_semiring::{NatPoly, Semiring};
use axml_uxml::{Forest, Tree};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["ia", "ib", "ic", "id"];
const VARS: [&str; 3] = ["iv1", "iv2", "iv3"];

fn arb_annotation() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        3 => proptest::sample::select(&VARS[..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..3).prop_map(NatPoly::from),
    ]
}

fn arb_tree(depth: u32) -> BoxedStrategy<Tree<NatPoly>> {
    if depth == 0 {
        proptest::sample::select(&LABELS[..])
            .prop_map(Tree::leaf)
            .boxed()
    } else {
        (
            proptest::sample::select(&LABELS[..]),
            proptest::collection::vec((arb_tree(depth - 1), arb_annotation()), 0..3),
        )
            .prop_map(|(l, kids)| Tree::new(l, Forest::from_pairs(kids)))
            .boxed()
    }
}

fn arb_forest() -> impl Strategy<Value = Forest<NatPoly>> {
    proptest::collection::vec((arb_tree(3), arb_annotation()), 0..4).prop_map(Forest::from_pairs)
}

/// Recompute the node count without the cache.
fn slow_size(t: &Tree<NatPoly>) -> usize {
    1 + t
        .children()
        .iter()
        .map(|(c, _)| slow_size(c))
        .sum::<usize>()
}

/// Rebuild a structurally identical tree from fresh allocations.
fn rebuild(t: &Tree<NatPoly>) -> Tree<NatPoly> {
    Tree::new(
        t.label(),
        Forest::from_pairs(t.children().iter().map(|(c, k)| (rebuild(c), k.clone()))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn forest_inplace_ops_agree(a in arb_forest(), b in arb_forest(), k in arb_annotation()) {
        let functional = a.union(&b);
        let mut in_place = a.clone();
        in_place.union_with(b.clone());
        prop_assert_eq!(&in_place, &functional);

        let functional = a.scalar_mul(&k);
        let mut in_place = a.clone();
        in_place.scalar_mul_in_place(&k);
        prop_assert_eq!(&in_place, &functional);

        let functional = a.union(&b.scalar_mul(&k));
        let mut in_place = a.clone();
        in_place.extend_scaled(b.clone(), &k);
        prop_assert_eq!(&in_place, &functional);
    }

    #[test]
    fn cached_size_matches_recomputation(t in arb_tree(3)) {
        prop_assert_eq!(t.size(), slow_size(&t));
    }

    #[test]
    fn rebuilt_trees_share_fingerprint_and_compare_equal(t in arb_tree(3)) {
        let u = rebuild(&t);
        prop_assert_eq!(&t, &u);
        prop_assert_eq!(t.structural_hash(), u.structural_hash());
        prop_assert_eq!(t.cmp(&u), std::cmp::Ordering::Equal);
        prop_assert_eq!(t.cmp_document(&u), std::cmp::Ordering::Equal);
    }

    #[test]
    fn orderings_are_consistent_with_equality(a in arb_tree(2), b in arb_tree(2)) {
        prop_assert_eq!(a.cmp(&b) == std::cmp::Ordering::Equal, a == b);
        prop_assert_eq!(a.cmp_document(&b) == std::cmp::Ordering::Equal, a == b);
        // antisymmetry of both orders
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        prop_assert_eq!(a.cmp_document(&b), b.cmp_document(&a).reverse());
    }

    /// Document order is what printing uses: equal forests print
    /// identically even when built in different orders.
    #[test]
    fn printing_is_insertion_order_independent(pairs in proptest::collection::vec((arb_tree(2), arb_annotation()), 0..4)) {
        let forward = Forest::from_pairs(pairs.clone());
        let reversed = Forest::from_pairs(pairs.into_iter().rev());
        prop_assert_eq!(forward.to_string(), reversed.to_string());
    }
}
