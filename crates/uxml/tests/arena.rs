//! Arena (hash-consed columnar) storage vs the `Arc` representation:
//! adversarial fingerprint collisions, round-trip equality, and
//! sweep-kernel parity across all seven runtime semirings.

use axml_semiring::trio::collapse::{natpoly_to_posbool, natpoly_to_trio, natpoly_to_why};
use axml_semiring::{FnHom, Nat, NatPoly, PosBool, Prob, Semiring, Trio, Tropical, Valuation, Why};
use axml_uxml::arena::intern_forest_mapped;
use axml_uxml::hom::map_forest;
use axml_uxml::{parse_forest, weighted_descendant_closure, Forest, Tree, TreeArena};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Adversarial: forced (size, hash) collisions must not conflate
// ---------------------------------------------------------------------

/// Two structurally different subtrees interned under the *same*
/// forced `(size, hash)` dedup key must come out as distinct nodes:
/// the dedup table is a hint, structural verify is the authority.
#[test]
fn forced_fingerprint_collision_is_not_conflated() {
    // Same label, same child count, same size — only the child labels
    // (and one annotation) differ, so every cheap pre-check agrees.
    let t1 = parse_forest::<NatPoly>("<a> b {x} c </a>")
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone();
    let t2 = parse_forest::<NatPoly>("<a> b {y} d </a>")
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone();
    assert_ne!(t1, t2);
    assert_eq!(t1.size(), t2.size());

    let forced_key = (t1.size(), 0xdead_beef_u64);
    let mut arena = TreeArena::<NatPoly>::new();
    let id1 = arena.intern_tree_with_key(&t1, forced_key);
    let id2 = arena.intern_tree_with_key(&t2, forced_key);
    assert_ne!(id1, id2, "colliding keys must still verify structurally");
    assert_eq!(*arena.tree(id1), t1);
    assert_eq!(*arena.tree(id2), t2);

    // Re-interning the same values under the colliding key dedups onto
    // the existing nodes — the verify accepts genuine equality.
    assert_eq!(arena.intern_tree_with_key(&t1, forced_key), id1);
    assert_eq!(arena.intern_tree_with_key(&t2, forced_key), id2);
}

/// The honest interning path also probes by `(size, hash)`: seed the
/// bucket of `t2`'s *real* key with a different tree, then intern `t2`
/// normally — the stale candidate must be rejected by verify.
#[test]
fn honest_intern_rejects_colliding_candidate() {
    let t1 = parse_forest::<NatPoly>("<a> b c </a>")
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone();
    let t2 = parse_forest::<NatPoly>("<a> b d </a>")
        .unwrap()
        .trees()
        .next()
        .unwrap()
        .clone();
    let real_key_of_t2 = (t2.size(), t2.structural_hash());
    let mut arena = TreeArena::<NatPoly>::new();
    let id1 = arena.intern_tree_with_key(&t1, real_key_of_t2);
    let id2 = arena.intern_tree(&t2);
    assert_ne!(id1, id2);
    assert_eq!(*arena.tree(id1), t1);
    assert_eq!(*arena.tree(id2), t2);
    assert_eq!(arena.lookup(&t2), Some(id2));
}

// ---------------------------------------------------------------------
// Round-trip + sweep parity across all 7 runtime semirings
// ---------------------------------------------------------------------

const LABELS: [&str; 4] = ["aa", "ab", "ac", "ad"];
const VARS: [&str; 3] = ["av1", "av2", "av3"];

fn arb_annotation() -> impl Strategy<Value = NatPoly> {
    prop_oneof![
        3 => proptest::sample::select(&VARS[..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..3).prop_map(NatPoly::from),
        1 => (proptest::sample::select(&VARS[..]), proptest::sample::select(&VARS[..]))
            .prop_map(|(a, b)| NatPoly::var_named(a).times(&NatPoly::var_named(b))),
    ]
}

fn arb_tree(depth: u32) -> BoxedStrategy<Tree<NatPoly>> {
    if depth == 0 {
        proptest::sample::select(&LABELS[..])
            .prop_map(Tree::leaf)
            .boxed()
    } else {
        (
            proptest::sample::select(&LABELS[..]),
            proptest::collection::vec((arb_tree(depth - 1), arb_annotation()), 0..3),
        )
            .prop_map(|(l, kids)| Tree::new(l, Forest::from_pairs(kids)))
            .boxed()
    }
}

fn arb_forest() -> impl Strategy<Value = Forest<NatPoly>> {
    proptest::collection::vec((arb_tree(3), arb_annotation()), 0..4).prop_map(Forest::from_pairs)
}

/// For one target semiring: the recursive `Arc`-side hom lifting is
/// the reference; the arena must (a) round-trip the reference forest
/// unchanged, (b) reach the same forest by hom-fused interning, and
/// (c) agree on the descendant sweep three ways — per-occurrence
/// `for_each_descendant`, the value-level DAG closure, and the arena's
/// dense id scan.
fn check_kind<S: Semiring>(f: &Forest<NatPoly>, hom: impl Fn(&NatPoly) -> S) {
    let h = FnHom::new(hom);
    let reference: Forest<S> = map_forest(&h, f);

    // (a) arena ↔ Arc round-trip.
    let mut arena = TreeArena::<S>::new();
    let roots = arena.intern_forest(&reference);
    assert_eq!(arena.canonical_forest(&roots), reference);

    // (b) hom-fused interning == recursive lifting.
    let mut fused = TreeArena::<S>::new();
    let fused_roots = intern_forest_mapped(&mut fused, &h, f);
    assert_eq!(fused.canonical_forest(&fused_roots), reference);

    // (c) sweep parity.
    let mut occurrence = Forest::new();
    for (t, k) in reference.iter() {
        t.for_each_descendant(k.clone(), |node, kn| occurrence.insert(node.clone(), kn));
    }
    let closure = Forest::from_distinct_pairs(weighted_descendant_closure(
        reference.iter().map(|(t, k)| (t.clone(), k.clone())),
    ));
    assert_eq!(
        closure, occurrence,
        "value-level closure != occurrence sweep"
    );
    assert_eq!(
        arena.descendant_forest(&roots),
        occurrence,
        "arena scan != occurrence sweep"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arena_roundtrip_and_sweeps_all_semirings(f in arb_forest()) {
        check_kind::<NatPoly>(&f, Clone::clone);
        check_kind::<Nat>(&f, |p| p.eval(&Valuation::<Nat>::new()));
        check_kind::<PosBool>(&f, natpoly_to_posbool);
        check_kind::<Tropical>(&f, |p| p.eval(&Valuation::<Tropical>::new()));
        check_kind::<Why>(&f, natpoly_to_why);
        check_kind::<Trio>(&f, natpoly_to_trio);
        check_kind::<Prob>(&f, |p| p.eval(&Valuation::<Prob>::new()));
    }

    /// Interning is content-addressed: every distinct subtree of the
    /// input occupies exactly one arena node, and re-interning the
    /// same forest adds nothing.
    #[test]
    fn interning_is_idempotent_and_deduplicating(f in arb_forest()) {
        let mut arena = TreeArena::<NatPoly>::new();
        let roots = arena.intern_forest(&f);
        let nodes_after_first = arena.len();
        let roots2 = arena.intern_forest(&f);
        prop_assert_eq!(&roots, &roots2, "same value, same ids");
        prop_assert_eq!(arena.len(), nodes_after_first, "re-interning adds nothing");
        // Distinct-subtree count never exceeds the occurrence count.
        let logical: usize = f.size();
        prop_assert!(arena.len() <= logical);
        // Every interned subtree is findable by value.
        for (id, _) in &roots {
            let t = arena.tree(*id).clone();
            prop_assert_eq!(arena.lookup(&t), Some(*id));
        }
    }
}
