//! print → parse identity for forests, trees and values, over `Nat`,
//! `PosBool` and `NatPoly` annotations.
//!
//! The document printer (`axml_uxml::print`) elides `1` annotations
//! and prints in document order; the parser accepts exactly that
//! output (including `PosBool`'s `true`/`false`/`x | y&z` DNF forms),
//! so `parse_forest(to_document_string(f)) == f` must hold for any
//! forest.

use axml_semiring::{Nat, NatPoly, PosBool, Semiring, Var};
use axml_uxml::print::to_document_string;
use axml_uxml::{parse_forest, parse_value, Forest, ParseAnnotation, Tree, Value};
use proptest::prelude::*;

const LABELS: [&str; 5] = ["alpha", "beta", "g-x", "d_1", "e.ext"];

fn arb_tree<K: Semiring>(ann: BoxedStrategy<K>, depth: u32) -> BoxedStrategy<Tree<K>> {
    if depth == 0 {
        return proptest::sample::select(&LABELS[..])
            .prop_map(Tree::leaf)
            .boxed();
    }
    (
        proptest::sample::select(&LABELS[..]),
        proptest::collection::vec((arb_tree(ann.clone(), depth - 1), ann), 0..3),
    )
        .prop_map(|(l, kids)| Tree::new(l, Forest::from_pairs(kids)))
        .boxed()
}

fn arb_forest<K: Semiring>(ann: BoxedStrategy<K>, depth: u32) -> BoxedStrategy<Forest<K>> {
    proptest::collection::vec((arb_tree(ann.clone(), depth), ann), 0..4)
        .prop_map(Forest::from_pairs)
        .boxed()
}

// Nonzero annotations only: a zero-annotated tree is *absent* from a
// K-set, so it cannot appear on the printed side in the first place.
fn arb_nat() -> BoxedStrategy<Nat> {
    (1u64..9).prop_map(|n| Nat(n as u128)).boxed()
}

fn arb_natpoly() -> BoxedStrategy<NatPoly> {
    prop_oneof![
        2 => proptest::sample::select(&["da", "db", "dc"][..]).prop_map(NatPoly::var_named),
        1 => Just(NatPoly::one()),
        1 => (1u64..4).prop_map(NatPoly::from),
        1 => proptest::sample::select(&["da", "db"][..])
            .prop_map(|v| NatPoly::var_named(v).times(&NatPoly::var_named("dc"))
                .plus(&NatPoly::from(2u64))),
    ]
    .boxed()
}

fn arb_posbool() -> BoxedStrategy<PosBool> {
    let v = |n: &str| PosBool::var(Var::new(n));
    prop_oneof![
        Just(PosBool::one()),
        Just(v("u")),
        Just(v("w")),
        Just(v("u").times(&v("w"))),
        Just(v("u").plus(&v("w"))),
        Just(v("u").plus(&v("w").times(&v("z")))),
    ]
    .boxed()
}

fn assert_roundtrip<K: ParseAnnotation>(f: &Forest<K>) {
    let printed = to_document_string(f);
    let reparsed = parse_forest::<K>(&printed)
        .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
    assert_eq!(&reparsed, f, "printed: {printed}");
    // Value round-trip: top-level values print/parse as sets.
    let v = Value::Set(f.clone());
    let reparsed_v = parse_value::<K>(&printed)
        .unwrap_or_else(|e| panic!("value reparse of {printed:?} failed: {e}"));
    assert_eq!(reparsed_v, v);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn forest_roundtrip_nat(f in arb_forest(arb_nat(), 3)) {
        assert_roundtrip(&f);
    }

    #[test]
    fn forest_roundtrip_natpoly(f in arb_forest(arb_natpoly(), 3)) {
        assert_roundtrip(&f);
    }

    #[test]
    fn forest_roundtrip_posbool(f in arb_forest(arb_posbool(), 3)) {
        assert_roundtrip(&f);
    }
}

#[test]
fn posbool_printed_forms_reparse() {
    // The printer's PosBool forms: elided (1 = true), DNF, false.
    let u = PosBool::var(Var::new("u"));
    let w = PosBool::var(Var::new("w"));
    let f: Forest<PosBool> = Forest::from_pairs([
        (Tree::leaf("a"), u.plus(&w.times(&u))),
        (Tree::leaf("b"), PosBool::one()),
        (Tree::leaf("c"), u.clone()),
    ]);
    assert_roundtrip(&f);
    // explicit true/false/DNF annotation text
    let g = parse_forest::<PosBool>("a {true} b {u & w | z} c {false}").unwrap();
    assert_eq!(g.get(&Tree::leaf("a")), PosBool::one());
    assert_eq!(
        g.get(&Tree::leaf("b")),
        u.times(&w).plus(&PosBool::var(Var::new("z")))
    );
    assert!(
        !g.contains(&Tree::leaf("c")),
        "false-annotated items are absent"
    );
    // legacy polynomial syntax still accepted
    let h = parse_forest::<PosBool>("a {u*w + z}").unwrap();
    assert_eq!(h, parse_forest::<PosBool>("a {u&w | z}").unwrap());
    // true/false are constants inside clauses too, never variables:
    // x | false = x,  x & true = x,  x & false | z = z
    assert_eq!(
        parse_forest::<PosBool>("a {u | false}").unwrap(),
        parse_forest::<PosBool>("a {u}").unwrap()
    );
    assert_eq!(
        parse_forest::<PosBool>("a {u & true}").unwrap(),
        parse_forest::<PosBool>("a {u}").unwrap()
    );
    assert_eq!(
        parse_forest::<PosBool>("a {u & false | z}").unwrap(),
        parse_forest::<PosBool>("a {z}").unwrap()
    );
    // malformed DNF is an error, not a panic
    assert!(parse_forest::<PosBool>("a {u & | w}").is_err());
    assert!(parse_forest::<PosBool>("a {|}").is_err());
}
