//! Parsing annotated documents.
//!
//! The grammar mirrors the paper's document style (§3) extended with
//! `{…}` annotations:
//!
//! ```text
//! forest  := item*
//! item    := '<' NAME annot? '>' forest '</' NAME? '>'     element
//!          | '<' NAME annot? '/>'                          empty element
//!          | NAME annot?                                   leaf shorthand
//! annot   := '{' <semiring-specific text> '}'
//! NAME    := [A-Za-z_][A-Za-z0-9_.-]* | '"' ... '"'
//! ```
//!
//! Whitespace separates items; a comma between items is also accepted
//! (the forest printer emits `", "`, making print→parse the identity).
//! Closing tags may be anonymous (`</>`, as in the paper's figures) or
//! must match the opening tag. A missing annotation means the neutral
//! element `1 ∈ K`.
//!
//! The annotation text between `{` and `}` is handed to the target
//! semiring via [`ParseAnnotation`]: ℕ\[X\] accepts polynomial
//! expressions (making this parser the entry point for provenance-
//! annotated documents), `bool` accepts `true/false`, [`Nat`] decimal
//! integers, and [`Clearance`] the letters `P/C/S/T/0`.

use crate::label::Label;
use crate::tree::{Forest, Tree, Value};
use axml_semiring::{Clearance, Nat, NatPoly, PosBool, Semiring, Var};
use std::fmt;

/// Semirings whose annotations can appear in document text.
pub trait ParseAnnotation: Semiring {
    /// Parse one annotation from the text between `{` and `}`.
    fn parse_annotation(text: &str) -> Result<Self, String>;
}

impl ParseAnnotation for NatPoly {
    fn parse_annotation(text: &str) -> Result<Self, String> {
        text.parse().map_err(|e| format!("{e}"))
    }
}

impl ParseAnnotation for bool {
    fn parse_annotation(text: &str) -> Result<Self, String> {
        match text.trim() {
            "true" | "1" => Ok(true),
            "false" | "0" => Ok(false),
            other => Err(format!("expected boolean annotation, got {other:?}")),
        }
    }
}

impl ParseAnnotation for Nat {
    fn parse_annotation(text: &str) -> Result<Self, String> {
        text.trim()
            .parse::<u128>()
            .map(Nat)
            .map_err(|e| format!("expected natural-number annotation: {e}"))
    }
}

impl ParseAnnotation for Clearance {
    fn parse_annotation(text: &str) -> Result<Self, String> {
        text.parse()
    }
}

/// Product annotations parse as `(left, right)` with each side in its
/// component's syntax, e.g. `(2, S)` for ℕ × Clearance. The split is at
/// the top-level comma (components may themselves be products).
impl<K1: ParseAnnotation, K2: ParseAnnotation> ParseAnnotation for axml_semiring::Product<K1, K2> {
    fn parse_annotation(text: &str) -> Result<Self, String> {
        let t = text.trim();
        let inner = t
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .ok_or_else(|| format!("expected (left, right) product annotation, got {t:?}"))?;
        let mut depth = 0usize;
        let mut split = None;
        for (i, c) in inner.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    split = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let split = split.ok_or("product annotation needs a top-level comma")?;
        let a = K1::parse_annotation(&inner[..split])?;
        let b = K2::parse_annotation(&inner[split + 1..])?;
        Ok(axml_semiring::Product::new(a, b))
    }
}

impl ParseAnnotation for PosBool {
    /// Accepts PosBool's own printed syntax — `true`, `false`, and
    /// DNF like `x | y&z` — as well as the ℕ\[X\] polynomial grammar
    /// collapsed through the ℕ\[X\] → PosBool homomorphism (`+` reads
    /// as ∨, `*` as ∧), so print → parse is the identity and figure
    /// input stays convenient. (`true`/`false` are therefore not
    /// usable as variable names.)
    fn parse_annotation(text: &str) -> Result<Self, String> {
        let t = text.trim();
        match t {
            "true" => return Ok(PosBool::one()),
            "false" => return Ok(PosBool::zero()),
            _ => {}
        }
        if t.contains('|') || t.contains('&') {
            let mut dnf = PosBool::zero();
            for clause in t.split('|') {
                let mut conj = PosBool::one();
                for v in clause.split('&') {
                    let v = v.trim();
                    // `true`/`false` are constants inside clauses too,
                    // not variable names (see the doc comment above):
                    // `x & true` = x, `x & false` kills the clause.
                    match v {
                        "true" => continue,
                        "false" => {
                            conj = PosBool::zero();
                            continue;
                        }
                        _ => {}
                    }
                    if v.is_empty()
                        || !v
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                        || !v
                            .chars()
                            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
                    {
                        return Err(format!("expected a variable in DNF clause, got {v:?}"));
                    }
                    conj = conj.times(&PosBool::var(Var::new(v)));
                }
                dnf = dnf.plus(&conj);
            }
            return Ok(dnf);
        }
        let p: NatPoly = t.parse().map_err(|e| format!("{e}"))?;
        Ok(axml_semiring::trio::collapse::natpoly_to_posbool(&p))
    }
}

/// A parse error with byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UXML parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole document as a K-set of trees (the paper's top-level
/// "source" values are sets).
///
/// ```
/// use axml_uxml::parse_forest;
/// use axml_semiring::NatPoly;
/// let f = parse_forest::<NatPoly>(
///     "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
/// ).unwrap();
/// assert_eq!(f.len(), 1);
/// ```
pub fn parse_forest<K: ParseAnnotation>(src: &str) -> Result<Forest<K>, ParseError> {
    let mut p = Parser::new(src);
    let forest = p.parse_forest()?;
    p.skip_ws();
    if let Some((i, c)) = p.peek() {
        return Err(ParseError {
            msg: format!("unexpected character {c:?} after document"),
            offset: i,
        });
    }
    Ok(forest)
}

/// Parse a single tree; the input must contain exactly one item, whose
/// top-level annotation (if any) must be `1` (trees are only annotated
/// as members of sets — §3).
pub fn parse_tree<K: ParseAnnotation>(src: &str) -> Result<Tree<K>, ParseError> {
    let f = parse_forest::<K>(src)?;
    let mut it = f.iter();
    match (it.next(), it.next()) {
        (Some((t, k)), None) if k.is_one() => Ok(t.clone()),
        (Some(_), None) => Err(ParseError {
            msg: "a bare tree cannot carry an annotation (wrap it in a set)".into(),
            offset: 0,
        }),
        _ => Err(ParseError {
            msg: "expected exactly one tree".into(),
            offset: 0,
        }),
    }
}

/// Parse a value: a forest (default), or convenience forms for a single
/// tree. Provided for API symmetry with [`Value`].
pub fn parse_value<K: ParseAnnotation>(src: &str) -> Result<Value<K>, ParseError> {
    parse_forest::<K>(src).map(Value::Set)
}

struct Parser<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    depth: usize,
}

/// Maximum element nesting depth. The parser is recursive-descent, so
/// without a cap a pathological `<a> <a> <a> …` document would
/// overflow the stack and abort the process instead of returning a
/// `ParseError`. 512 comfortably covers any realistic document (the
/// workspace's own robustness tests use depth 300) while staying
/// within even a 2 MiB test-thread stack in debug builds, where each
/// nesting level costs several sizable frames.
const MAX_DEPTH: usize = 512;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            chars: src.char_indices().peekable(),
            depth: 0,
        }
    }

    fn peek(&mut self) -> Option<(usize, char)> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        self.chars.next()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some((_, c)) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn err(&mut self, msg: impl Into<String>) -> ParseError {
        let offset = self.peek().map_or(self.src.len(), |(i, _)| i);
        ParseError {
            msg: msg.into(),
            offset,
        }
    }

    fn parse_forest<K: ParseAnnotation>(&mut self) -> Result<Forest<K>, ParseError> {
        let mut forest = Forest::new();
        let mut first = true;
        loop {
            self.skip_ws();
            // optional comma separators between items
            if !first {
                if let Some((_, ',')) = self.peek() {
                    self.bump();
                    self.skip_ws();
                }
            }
            first = false;
            match self.peek() {
                None => return Ok(forest),
                Some((_, '<')) => {
                    // stop at a closing tag; the caller consumes it
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if matches!(ahead.peek(), Some(&(_, '/'))) {
                        return Ok(forest);
                    }
                    let (t, k) = self.parse_element::<K>()?;
                    forest.insert(t, k);
                }
                Some((_, c)) if is_name_start(c) || c == '"' => {
                    let label = self.parse_name()?;
                    let k = self.parse_optional_annot::<K>()?;
                    forest.insert(Tree::leaf(label), k);
                }
                Some((i, c)) => {
                    return Err(ParseError {
                        msg: format!("unexpected character {c:?}"),
                        offset: i,
                    })
                }
            }
        }
    }

    fn parse_element<K: ParseAnnotation>(&mut self) -> Result<(Tree<K>, K), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("element nesting exceeds {MAX_DEPTH} levels")));
        }
        let out = self.parse_element_inner::<K>();
        self.depth -= 1;
        out
    }

    fn parse_element_inner<K: ParseAnnotation>(&mut self) -> Result<(Tree<K>, K), ParseError> {
        // consume '<'
        self.bump();
        let label = self.parse_name()?;
        let k = self.parse_optional_annot::<K>()?;
        self.skip_ws();
        match self.peek() {
            Some((_, '/')) => {
                // self-closing <a/>
                self.bump();
                match self.bump() {
                    Some((_, '>')) => Ok((Tree::leaf(label), k)),
                    _ => Err(self.err("expected '>' after '/'")),
                }
            }
            Some((_, '>')) => {
                self.bump();
                let children = self.parse_forest::<K>()?;
                self.expect_close(label)?;
                Ok((Tree::new(label, children), k))
            }
            _ => Err(self.err("expected '>' or '/>' in opening tag")),
        }
    }

    fn expect_close(&mut self, open: Label) -> Result<(), ParseError> {
        self.skip_ws();
        match (self.bump(), self.bump()) {
            (Some((_, '<')), Some((_, '/'))) => {}
            _ => return Err(self.err(format!("expected closing tag for <{open}>"))),
        }
        self.skip_ws();
        // anonymous close `</>` or named close `</a>`
        if matches!(self.peek(), Some((_, '>'))) {
            self.bump();
            return Ok(());
        }
        let name = self.parse_name()?;
        if name != open {
            return Err(self.err(format!(
                "mismatched closing tag: expected </{open}>, found </{name}>"
            )));
        }
        self.skip_ws();
        match self.bump() {
            Some((_, '>')) => Ok(()),
            _ => Err(self.err("expected '>' in closing tag")),
        }
    }

    fn parse_name(&mut self) -> Result<Label, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some((start, '"')) => {
                self.bump();
                let mut end = start + 1;
                loop {
                    match self.bump() {
                        Some((i, '"')) => {
                            return Ok(Label::new(&self.src[start + 1..i]));
                        }
                        Some((i, c)) => end = i + c.len_utf8(),
                        None => {
                            return Err(ParseError {
                                msg: "unterminated quoted name".into(),
                                offset: end,
                            })
                        }
                    }
                }
            }
            Some((start, c)) if is_name_start(c) => {
                let mut end = start;
                while let Some((i, c)) = self.peek() {
                    if is_name_continue(c) {
                        end = i + c.len_utf8();
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Label::new(&self.src[start..end]))
            }
            _ => Err(self.err("expected a name")),
        }
    }

    fn parse_optional_annot<K: ParseAnnotation>(&mut self) -> Result<K, ParseError> {
        self.skip_ws();
        if !matches!(self.peek(), Some((_, '{'))) {
            return Ok(K::one());
        }
        let (open, _) = self.bump().expect("peeked '{'");
        let mut depth = 1usize;
        let mut end = open + 1;
        loop {
            match self.bump() {
                Some((i, '{')) => {
                    depth += 1;
                    end = i;
                }
                Some((i, '}')) => {
                    depth -= 1;
                    if depth == 0 {
                        let text = &self.src[open + 1..i];
                        return K::parse_annotation(text).map_err(|msg| ParseError {
                            msg,
                            offset: open + 1,
                        });
                    }
                    end = i;
                }
                Some((i, _)) => end = i,
                None => {
                    return Err(ParseError {
                        msg: "unterminated annotation".into(),
                        offset: end,
                    })
                }
            }
        }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_continue(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '-')
}

/// Convenience: intern a variable per label-like name (used by tests
/// and examples that build valuations for parsed documents).
pub fn var(name: &str) -> Var {
    Var::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{leaf, tree};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    #[test]
    fn fig1_source_parses() {
        let f = parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>",
        )
        .unwrap();
        let expected = Forest::singleton(
            tree(
                "a",
                [
                    (tree("b", [(leaf("d"), np("y1"))]), np("x1")),
                    (
                        tree("c", [(leaf("d"), np("y2")), (leaf("e"), np("y3"))]),
                        np("x2"),
                    ),
                ],
            ),
            np("z"),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn roundtrip_through_display() {
        let src = "<a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>";
        let f = parse_forest::<NatPoly>(src).unwrap();
        let printed = f.to_string();
        // strip the surrounding parens of forest display
        let inner = &printed[1..printed.len() - 1];
        let f2 = parse_forest::<NatPoly>(inner).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn anonymous_closing_tags() {
        let f = parse_forest::<Nat>("<a> <b> c </> </>").unwrap();
        let expected = Forest::unit(tree("a", [(tree("b", [(leaf("c"), Nat(1))]), Nat(1))]));
        assert_eq!(f, expected);
    }

    #[test]
    fn self_closing_and_quoted_names() {
        let f = parse_forest::<Nat>(r#"<a {2}/> "weird name" {3}"#).unwrap();
        assert_eq!(f.get(&leaf("a")), Nat(2));
        assert_eq!(f.get(&leaf("weird name")), Nat(3));
    }

    #[test]
    fn duplicate_items_merge() {
        let f = parse_forest::<Nat>("d {2} d {3}").unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(&leaf("d")), Nat(5));
    }

    #[test]
    fn zero_annotations_vanish() {
        let f = parse_forest::<Nat>("d {0} e").unwrap();
        assert_eq!(f.len(), 1);
        assert!(f.contains(&leaf("e")));
    }

    #[test]
    fn boolean_and_clearance_annotations() {
        let f = parse_forest::<bool>("a {true} b {false} c").unwrap();
        assert_eq!(f.len(), 2);
        let g = parse_forest::<Clearance>("a {S} b {P} c {0}").unwrap();
        assert_eq!(g.get(&leaf("a")), Clearance::S);
        assert_eq!(g.get(&leaf("b")), Clearance::P);
        assert!(!g.contains(&leaf("c")));
    }

    #[test]
    fn posbool_annotations_via_polynomial_grammar() {
        let f = parse_forest::<PosBool>("a {x + x*y} b").unwrap();
        // x + x·y minimizes to x
        assert_eq!(f.get(&leaf("a")), PosBool::var_named("x"));
    }

    #[test]
    fn parse_tree_wrapper() {
        let t = parse_tree::<Nat>("<a> b </a>").unwrap();
        assert_eq!(t.label().name(), "a");
        assert!(parse_tree::<Nat>("a b").is_err(), "two items");
        assert!(parse_tree::<Nat>("a {2}").is_err(), "annotated bare tree");
    }

    #[test]
    fn error_positions() {
        let e = parse_forest::<Nat>("<a> b").unwrap_err();
        assert!(e.msg.contains("closing tag"), "{e}");
        let e = parse_forest::<Nat>("<a></b>").unwrap_err();
        assert!(e.msg.contains("mismatched"), "{e}");
        let e = parse_forest::<Nat>("a } b").unwrap_err();
        assert!(e.msg.contains("unexpected character"), "{e}");
        let e = parse_forest::<Nat>("a {nope}").unwrap_err();
        assert!(e.msg.contains("natural-number"), "{e}");
        let e = parse_forest::<Nat>("a {2").unwrap_err();
        assert!(e.msg.contains("unterminated"), "{e}");
    }

    #[test]
    fn nested_braces_in_annotations() {
        // PosBool via polynomial text has no braces, but the lexer must
        // still balance them for future semirings.
        let e = parse_forest::<Nat>("a {{2}}").unwrap_err();
        assert!(e.msg.contains("natural-number"), "{e}");
    }

    #[test]
    fn product_annotations() {
        use axml_semiring::Product;
        type K = Product<Nat, Clearance>;
        let f = parse_forest::<K>("a {(2, S)} b").unwrap();
        assert_eq!(f.get(&leaf("a")), Product::new(Nat(2), Clearance::S));
        assert_eq!(f.get(&leaf("b")), Product::new(Nat(1), Clearance::P));
        // nested products split at the top-level comma
        type K3 = Product<Nat, Product<bool, Clearance>>;
        let g = parse_forest::<K3>("x {(3, (true, T))}").unwrap();
        assert_eq!(
            g.get(&leaf("x")),
            Product::new(Nat(3), Product::new(true, Clearance::T))
        );
        assert!(parse_forest::<K>("a {2}").is_err());
        assert!(parse_forest::<K>("a {(2)}").is_err());
    }

    #[test]
    fn empty_document_is_empty_forest() {
        assert!(parse_forest::<Nat>("").unwrap().is_empty());
        assert!(parse_forest::<Nat>("   \n ").unwrap().is_empty());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep = "<a> ".repeat(200_000);
        let e = parse_forest::<Nat>(&deep).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        // annotation parenthesis bombs are also caught (NatPoly cap)
        let bomb = format!("a {{{}x{}}}", "(".repeat(100_000), ")".repeat(100_000));
        let e2 = parse_forest::<NatPoly>(&bomb).unwrap_err();
        assert!(e2.msg.contains("nesting"), "{e2}");
    }

    #[test]
    fn deep_but_reasonable_documents_parse() {
        let depth = 500;
        let doc = format!("{}c{}", "<a> ".repeat(depth), " </a>".repeat(depth));
        let f = parse_forest::<Nat>(&doc).unwrap();
        assert_eq!(f.len(), 1);
    }
}
