//! Lifting semiring homomorphisms over K-UXML values (§6.4).
//!
//! A homomorphism `h : K₁ → K₂` lifts to a transformation `H` from
//! K₁-UXML to K₂-UXML by applying `h` to every annotation in every
//! K-set, recursively. Because K-sets prune zeros, subtrees whose
//! annotation maps to `0` *disappear* — e.g. specializing Fig 4's
//! source under `x1 ↦ 0` (𝔹: `false`) removes the whole `b` branch,
//! exactly as §5's possible-worlds semantics requires.
//!
//! Corollary 1 (tested in `tests/theorems.rs`): for any K₁-UXQuery `p`
//! and K₁-UXML `v`, `H(p(v)) = H(p)(H(v))`.

use crate::tree::{Forest, Tree, Value};
use axml_semiring::{NatPoly, Semiring, SemiringHom, Valuation};

/// Apply `h` to every annotation of a tree (the children's sets,
/// recursively; the tree itself carries no annotation).
pub fn map_tree<K1, K2, H>(h: &H, t: &Tree<K1>) -> Tree<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    Tree::new(t.label(), map_forest(h, t.children()))
}

/// Apply `h` to every annotation of a forest. Trees that become
/// identified after the transformation have their annotations summed;
/// trees whose annotation maps to `0` vanish.
pub fn map_forest<K1, K2, H>(h: &H, f: &Forest<K1>) -> Forest<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    Forest::from_pairs(f.iter().map(|(t, k)| (map_tree(h, t), h.apply(k))))
}

/// Apply `h` to every annotation of a value.
pub fn map_value<K1, K2, H>(h: &H, v: &Value<K1>) -> Value<K2>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    match v {
        Value::Label(l) => Value::Label(*l),
        Value::Tree(t) => Value::Tree(map_tree(h, t)),
        Value::Set(f) => Value::Set(map_forest(h, f)),
    }
}

/// Specialize an ℕ\[X\]-annotated forest under a valuation — the
/// universality route: parse once with provenance tokens, instantiate
/// into any semiring (§2, §5).
pub fn specialize_forest<K: Semiring>(f: &Forest<NatPoly>, val: &Valuation<K>) -> Forest<K> {
    struct EvalHom<'a, K: Semiring>(&'a Valuation<K>);
    impl<K: Semiring> SemiringHom<NatPoly, K> for EvalHom<'_, K> {
        fn apply(&self, p: &NatPoly) -> K {
            p.eval(self.0)
        }
    }
    map_forest(&EvalHom(val), f)
}

/// Specialize an ℕ\[X\]-annotated tree under a valuation.
pub fn specialize_tree<K: Semiring>(t: &Tree<NatPoly>, val: &Valuation<K>) -> Tree<K> {
    struct EvalHom<'a, K: Semiring>(&'a Valuation<K>);
    impl<K: Semiring> SemiringHom<NatPoly, K> for EvalHom<'_, K> {
        fn apply(&self, p: &NatPoly) -> K {
            p.eval(self.0)
        }
    }
    map_tree(&EvalHom(val), t)
}

/// *Partial* specialization within ℕ\[X\]: substitute polynomials for
/// some variables, leaving the others symbolic. (Contrast with
/// [`specialize_forest`], whose valuation sends unbound variables to
/// `1` — the right tool when leaving ℕ\[X\]; this one is the right tool
/// for, e.g., §7's "with x1 := 0".)
pub fn substitute_forest(
    f: &Forest<NatPoly>,
    subst: &std::collections::BTreeMap<axml_semiring::Var, NatPoly>,
) -> Forest<NatPoly> {
    struct SubstHom<'a>(&'a std::collections::BTreeMap<axml_semiring::Var, NatPoly>);
    impl SemiringHom<NatPoly, NatPoly> for SubstHom<'_> {
        fn apply(&self, p: &NatPoly) -> NatPoly {
            p.substitute(self.0)
        }
    }
    map_forest(&SubstHom(subst), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_forest;
    use axml_semiring::{dup_elim, FnHom, Nat, Var};

    #[test]
    fn zero_mapped_subtrees_vanish() {
        // Fig 4 source with x1 ↦ false: the whole b-branch disappears.
        let f = parse_forest::<NatPoly>(
            "<a> <b {x1}> <a> c {y3} d </a> </b> <c {y1}> <d> <a> c {y2} b {x2} </a> </d> </c> </a>",
        )
        .unwrap();
        let val = Valuation::<bool>::from_pairs([(Var::new("x1"), false)]);
        let spec = specialize_forest(&f, &val);
        // The top-level b child of a must be gone; only the c-branch
        // remains (b still occurs deep inside it, via x2 ↦ true).
        let top = spec.trees().next().unwrap();
        assert_eq!(top.children().len(), 1);
        assert_eq!(top.children().trees().next().unwrap().label().name(), "c");
    }

    #[test]
    fn identified_trees_merge_annotations() {
        // Distinct trees b{z1}, b{z2} become identical when z1,z2 ↦ 1
        // and their annotations (x1, x2) must then sum.
        let f = parse_forest::<NatPoly>("<t {x1}> b {z1} </t> <t {x2}> b {z2} </t>").unwrap();
        assert_eq!(f.len(), 2);
        let val =
            Valuation::<Nat>::from_pairs([(Var::new("x1"), Nat(2)), (Var::new("x2"), Nat(3))]);
        let spec = specialize_forest(&f, &val);
        assert_eq!(spec.len(), 1, "trees identified after specialization");
        let (_, k) = spec.iter().next().unwrap();
        assert_eq!(*k, Nat(5));
    }

    #[test]
    fn dup_elim_lifts_bags_to_sets() {
        let f = parse_forest::<Nat>("a {3} b {0} c").unwrap();
        let h = FnHom::new(dup_elim);
        let b = map_forest(&h, &f);
        assert_eq!(b.len(), 2);
        assert!(b.get(&crate::tree::leaf("a")));
        assert!(b.get(&crate::tree::leaf("c")));
    }

    #[test]
    fn map_value_covers_all_variants() {
        let h = FnHom::new(dup_elim);
        let l = Value::<Nat>::Label(crate::label::Label::new("mv"));
        assert_eq!(
            map_value(&h, &l),
            Value::Label(crate::label::Label::new("mv"))
        );
        let t = Value::Tree(crate::tree::leaf::<Nat>("mt"));
        assert_eq!(map_value(&h, &t), Value::Tree(crate::tree::leaf("mt")));
    }

    #[test]
    fn specialize_tree_applies_inside() {
        let f = parse_forest::<NatPoly>("<r> a {q} </r>").unwrap();
        let t = f.trees().next().unwrap().clone();
        let val = Valuation::<Nat>::from_pairs([(Var::new("q"), Nat(4))]);
        let st = specialize_tree(&t, &val);
        assert_eq!(st.children().get(&crate::tree::leaf("a")), Nat(4));
    }
}
