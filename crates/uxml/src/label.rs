//! Interned element labels.
//!
//! Labels are the only atoms of the model: the paper "models atomic
//! values as the labels on trees having no children" (§3, footnote 3).
//! Like provenance variables, labels are interned process-globally so a
//! [`Label`] is a `Copy` 4-byte id with O(1) equality; ordering is by
//! *name* so all printed forests and map iterations are deterministic
//! regardless of interning order (tests run concurrently and share the
//! pool).

use std::cmp::Ordering;
use std::fmt;

/// An interned element label (tag name or atomic value).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

axml_semiring::define_intern_pool!();

impl Label {
    /// Intern a label by name.
    pub fn new(name: &str) -> Label {
        Label(intern_name(name))
    }

    /// The label's text.
    pub fn name(self) -> &'static str {
        interned_name(self.0)
    }

    /// The raw interned id (stable within a process; for debugging).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        self.name().cmp(other.name())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Label::new("item");
        let b = Label::new("item");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.name(), "item");
    }

    #[test]
    fn order_is_by_name() {
        let z = Label::new("zlabel_ord");
        let a = Label::new("alabel_ord");
        assert!(a < z);
        assert_eq!(a.cmp(&Label::new("alabel_ord")), Ordering::Equal);
    }

    #[test]
    fn display_and_from() {
        let l: Label = "B".into();
        assert_eq!(l.to_string(), "B");
        assert_eq!(format!("{l:?}"), "B");
    }
}
