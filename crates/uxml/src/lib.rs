//! K-annotated unordered XML (K-UXML), §3 of Foster, Green & Tannen,
//! *Annotated XML: Queries and Provenance* (PODS 2008).
//!
//! Fixing a commutative semiring `K`, the data model replaces the
//! sibling *lists* of standard XML with K-annotated *sets*:
//!
//! - a **value** is a label, a tree, or a K-set of trees;
//! - a **tree** is a label together with a finite (possibly empty)
//!   K-set of trees as its children;
//! - a **finite K-set of trees** is a function from trees to `K` such
//!   that all but finitely many trees map to `0`.
//!
//! With `K = 𝔹` this is plain unordered XML (UXML); with `K = ℕ` it is
//! unordered XML with repetitions; with `K = ℕ[X]` every subtree carries
//! a provenance polynomial.
//!
//! # Identity is by value
//!
//! A `K`-set is a *function from trees*: two structurally equal subtrees
//! under the same parent are the **same** element and their annotations
//! add. This is the source of the sums in the paper's figures (e.g. the
//! `z·x1·y1 + z·x2·y2` annotation in Figure 1 arises because the two
//! `d` leaves are one value). [`Tree`] therefore compares, orders and
//! hashes by value, with an `Arc` pointer fast path.
//!
//! # Performance: cached structural fingerprints
//!
//! Value identity makes every `BTreeMap<Tree, K>` operation compare
//! trees, so each `Arc`'d node caches a structural hash and its
//! subtree size at construction. `Tree`'s `Ord` leads with the cached
//! `(size, hash)` pair — map lookups resolve almost every comparison
//! in O(1) instead of an O(|v|) walk — and falls back to structure
//! only on fingerprint collisions, staying consistent with `Eq`.
//! User-facing orders (printing, DFS numbering in the shredder) use
//! [`Tree::cmp_document`] / [`tree::Forest::iter_document`], which
//! sort by label name and structure and are stable across processes.
//! Forests also carry the in-place accumulator ops
//! ([`tree::Forest::union_with`], [`tree::Forest::scalar_mul_in_place`],
//! [`tree::Forest::extend_scaled`]) that the evaluators use instead of
//! functional rebuilds.
//!
//! # Performance: arena storage and content-addressed sharing
//!
//! For *resident* documents (the `axml` engine's document store) the
//! pointer-tree representation is complemented by [`arena::TreeArena`],
//! a columnar arena: one flat row per **distinct** subtree (label,
//! fingerprint, size, child span), children as contiguous index ranges
//! in side arrays, and the canonical `Arc` handle in a parallel column.
//! Interning hash-conses on the same `(size, hash)` fingerprint `Ord`
//! leads with — equal subtrees get equal [`arena::NodeId`]s, within
//! *and across* documents, with a full structural verify on fingerprint
//! collisions so colliding subtrees are never conflated. Child ids are
//! always smaller than the parent's, so
//! [`arena::TreeArena::descendant_closure`] is one dense descending
//! scan over an id-indexed weight vector — the annotation-weighted
//! descendant sweep with no hashing and no heap. Rebuilding a forest
//! from canonical handles ([`arena::TreeArena::canonical_forest`])
//! maximizes `Arc` sharing, which the pointer-equality fast paths and
//! the pointer-keyed memo in [`arena::intern_forest_mapped`] (fused
//! semiring specialization) then exploit. The occurrence-level
//! counterpart for transient values is
//! [`tree::weighted_descendant_closure`], which deduplicates by value
//! on the fly and visits each distinct subtree once.
//!
//! # Parsing and printing
//!
//! [`parse::parse_forest`] reads a document-style syntax with optional
//! `{…}` annotations:
//!
//! ```text
//! <a {z}> <b {x1}> d {y1} </b> <c {x2}> d {y2} e {y3} </c> </a>
//! ```
//!
//! Annotations are parsed by the target semiring (via
//! [`parse::ParseAnnotation`]); for ℕ\[X\] any polynomial expression is
//! accepted, so a document parsed in ℕ\[X\] can be pushed into *any*
//! semiring with a valuation — the paper's universality recipe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod hom;
pub mod label;
pub mod parse;
pub mod print;
#[cfg(feature = "serde")]
mod serde_impl;
pub mod stream;
pub mod tree;

pub use arena::{NodeId, TreeArena};
pub use label::Label;
pub use parse::{parse_forest, parse_tree, parse_value, ParseAnnotation};
pub use stream::{
    BudgetExceeded, CollectSink, NodeBudget, ResultSink, SinkClosed, StreamError, Streamed,
};
pub use tree::{
    expand_sweep_seeds, leaf, tree, weighted_descendant_closure, Forest, SweepSeeds, Tree, Value,
};

// Thread-safety audit (PR 5): documents are `Arc`-shared across the
// worker pool and label interning is hit from every worker, so the
// whole data model must be `Send + Sync` — pinned at compile time here
// (the `Label` pool itself is a global `RwLock` of leaked strings; a
// future non-`Sync` cache field on `Tree` would fail this build).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Label>();
    assert_send_sync::<Tree<axml_semiring::NatPoly>>();
    assert_send_sync::<Forest<axml_semiring::NatPoly>>();
    assert_send_sync::<Value<axml_semiring::NatPoly>>();
};

/// Commonly used items.
pub mod prelude {
    pub use crate::label::Label;
    pub use crate::parse::{parse_forest, parse_tree, parse_value, ParseAnnotation};
    pub use crate::tree::{leaf, tree, Forest, Tree, Value};
}
