//! Trees, forests and values — the K-UXML data model (§3).

use crate::label::Label;
use axml_semiring::{KSet, Semiring};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// Display impls live in `print`; Debug delegates to Display so that
// test-assertion failures show document-style output.
macro_rules! fmt_via_display {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(self, f)
        }
    };
}

/// The node payload: a label, a K-set of child trees, and metadata
/// cached at construction.
///
/// `hash` is a structural fingerprint of the whole subtree and `size`
/// its node count; both are computed once in [`Tree::new`] (children
/// already carry theirs, so construction stays O(children)). They make
/// the [`Tree`] comparisons that every `BTreeMap<Tree, K>` operation
/// performs O(1) in the common case instead of O(|subtree|): `Ord`
/// leads with `(size, hash)` and only walks the structure on a
/// collision, and `Eq` rejects on the first fingerprint mismatch.
struct Node<K: Semiring> {
    hash: u64,
    size: usize,
    label: Label,
    children: Forest<K>,
    /// Children sorted in document order, computed lazily on first use
    /// (printing / DFS numbering) and then shared: sorting siblings
    /// with [`Tree::cmp_document`] would otherwise re-sort every
    /// node's children once per comparison. Not part of the value —
    /// excluded from `Eq`/`Ord`/`Hash`.
    doc_children: std::sync::OnceLock<DocChildren<K>>,
}

/// `(subtree, path-product)` pairs produced by [`Tree::descendant_split`].
pub type SweepSeeds<K> = Vec<(Tree<K>, K)>;

/// Cached document-ordered `(child, annotation)` pairs of one node.
type DocChildren<K> = Box<[(Tree<K>, K)]>;

/// A K-UXML tree: a label with a finite K-set of children.
///
/// `Tree` is a shared, immutable handle (`Arc` inside): cloning is O(1)
/// and equality/ordering/hashing are **by value** (two structurally
/// identical trees are equal even if separately built), with a pointer
/// fast path for the common case of comparing shared subtrees. Each
/// node caches a structural fingerprint and its subtree size at
/// construction, so comparisons are O(1) unless fingerprints collide;
/// see [`Tree::cmp_document`] for the cross-process-stable display
/// order.
///
/// Note (paper, §3): "a tree gets an annotation only as a member of a
/// K-set" — a `Tree` by itself carries no annotation; annotations live
/// in the [`Forest`] containing it.
pub struct Tree<K: Semiring>(Arc<Node<K>>);

/// A fast deterministic structural hasher (FNV-1a over 64-bit words);
/// used for the cached per-node fingerprints. Not a `std` hasher so the
/// fingerprint stays independent of any `RandomState` seeding.
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 ^= n;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
}

/// The structural fingerprint of a node, computed from its label and
/// its children's `(fingerprint, annotation)` pairs **in K-set order**.
/// [`Tree::new`] and the arena's hash-consing table
/// ([`crate::arena::TreeArena`]) must agree byte-for-byte on this, so
/// both call here.
pub(crate) fn node_fingerprint<'a, K, I>(label: Label, children: I) -> u64
where
    K: Semiring + 'a,
    I: IntoIterator<Item = (u64, &'a K)>,
{
    let mut h = Fnv::new();
    h.write_u64(u64::from(label.id()));
    for (child_hash, k) in children {
        h.write_u64(child_hash);
        k.hash(&mut h);
    }
    h.finish()
}

impl<K: Semiring> Tree<K> {
    /// Build a tree from a label and its children.
    pub fn new(label: impl Into<Label>, children: Forest<K>) -> Self {
        let label = label.into();
        let hash = node_fingerprint(label, children.iter().map(|(c, k)| (c.0.hash, k)));
        let size = 1 + children.iter().map(|(c, _)| c.0.size).sum::<usize>();
        Tree(Arc::new(Node {
            hash,
            size,
            label,
            children,
            doc_children: std::sync::OnceLock::new(),
        }))
    }

    /// A leaf: a label with no children (also how atomic values are
    /// modelled, per the paper's footnote 3).
    pub fn leaf(label: impl Into<Label>) -> Self {
        Tree::new(label, Forest::new())
    }

    /// The root label.
    pub fn label(&self) -> Label {
        self.0.label
    }

    /// The K-set of children.
    pub fn children(&self) -> &Forest<K> {
        &self.0.children
    }

    /// Is this a leaf (no children with nonzero annotation)?
    pub fn is_leaf(&self) -> bool {
        self.0.children.is_empty()
    }

    /// Number of nodes (distinct positions in the value; multiplicities
    /// in annotations do not multiply the count). This is the `|v|` of
    /// Prop 2's size bound. O(1): cached at construction.
    pub fn size(&self) -> usize {
        self.0.size
    }

    /// The cached structural fingerprint of this subtree. Two equal
    /// trees always have equal fingerprints; unequal trees collide only
    /// with hash probability. Stable within a process (annotation and
    /// label interning make it process-dependent).
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// The address of the shared node, as an opaque token: equal tokens
    /// imply equal trees (same `Arc`), unequal tokens imply nothing.
    /// Used as a memo key by walks over hash-consed documents — a
    /// canonical handle's token is stable for as long as someone holds
    /// the handle, so per-call memo tables keyed on it are sound.
    pub fn ptr_token(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// Document-order comparison: by label name, then subtree size,
    /// then lexicographically over the children in document order
    /// (annotations tie-break). This is the human-meaningful,
    /// cross-process-stable order used for printing and DFS numbering
    /// — in contrast to [`Ord`], which leads with the cached
    /// `(size, hash)` fingerprint so that collection operations avoid
    /// structural walks. Equal under this comparison iff the trees are
    /// equal. The cached-size tiebreak keeps the expensive recursive
    /// child sort off the path whenever same-label siblings differ in
    /// shape.
    pub fn cmp_document(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        self.label()
            .cmp(&other.label())
            .then_with(|| self.0.size.cmp(&other.0.size))
            .then_with(|| {
                let a = self.children_document();
                let b = other.children_document();
                for ((ta, ka), (tb, kb)) in a.iter().zip(b.iter()) {
                    match ta.cmp_document(tb).then_with(|| ka.cmp(kb)) {
                        Ordering::Equal => {}
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            })
    }

    /// The children in document order (see [`Tree::cmp_document`]),
    /// computed once per node and cached — printing, DFS numbering and
    /// sibling sorts all share the same slice.
    pub fn children_document(&self) -> &[(Tree<K>, K)] {
        self.0.doc_children.get_or_init(|| {
            let mut v: Vec<(Tree<K>, K)> = self
                .0
                .children
                .iter()
                .map(|(t, k)| (t.clone(), k.clone()))
                .collect();
            v.sort_by(|(ta, ka), (tb, kb)| ta.cmp_document(tb).then_with(|| ka.cmp(kb)));
            v.into_boxed_slice()
        })
    }

    /// Height of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .0
            .children
            .iter()
            .map(|(t, _)| t.depth())
            .max()
            .unwrap_or(0)
    }

    /// Visit every subtree of `self` (including `self`), each with
    /// `k0 ·` the product of annotations along the path from `self` —
    /// the paper's Fig 4 descendant semantics. Occurrences of equal
    /// subtrees are visited separately (sum them in the callback's
    /// accumulator). Driven on an explicit stack, so document depth
    /// costs heap, never Rust stack; this is the one sweep kernel the
    /// direct `descendant` step and the compiled NRC plan both use.
    pub fn for_each_descendant<F: FnMut(&Tree<K>, K)>(&self, k0: K, mut f: F) {
        let mut stack: Vec<(&Tree<K>, K)> = vec![(self, k0)];
        while let Some((node, k)) = stack.pop() {
            for (c, kc) in node.children().iter() {
                stack.push((c, if k.is_one() { kc.clone() } else { k.times(kc) }));
            }
            f(node, k);
        }
    }

    /// Split one descendant sweep into independent pieces for parallel
    /// execution: expand the frontier breadth-first — always splitting
    /// the largest remaining subtree — until at least `min_seeds`
    /// subtrees remain (or everything is a leaf). Returns
    /// `(emitted, seeds)`: nodes consumed by the expansion itself, and
    /// the frontier. Each entry carries `k0 ·` the annotation product
    /// along its path from `self`, so sweeping every seed with
    /// [`Tree::for_each_descendant`] and adding the emitted nodes
    /// visits exactly the multiset `self.for_each_descendant(k0, …)`
    /// would — the partition the chunked parallel sweeps in
    /// `axml-core` and `axml-nrc` fan out over.
    pub fn descendant_split(&self, k0: K, min_seeds: usize) -> (SweepSeeds<K>, SweepSeeds<K>) {
        expand_sweep_seeds(vec![(self.clone(), k0)], min_seeds)
    }
}

/// The Fig 4 descendant sweep over the **value-level DAG**: every
/// distinct subtree reachable from `seeds`, each with the sum over all
/// of its occurrences of `seed weight ·` the annotation product along
/// the path — the same multiset [`Tree::for_each_descendant`] visits
/// occurrence-by-occurrence, already merged.
///
/// The occurrence sweep costs O(occurrences), which is exponential in
/// depth on documents with value-level sharing (and hash-consed
/// documents share maximally by construction). This kernel instead
/// processes each distinct subtree **once**, in strictly decreasing
/// subtree-size order: every child is strictly smaller than its parent,
/// so when a subtree is popped, all paths into it have already been
/// accumulated, and its total weight can be pushed through to its
/// children in one step — O(distinct subtrees + distinct edges), with
/// O(1) hashing and comparison via the cached fingerprints.
///
/// Merging is keyed on the [`Tree`] **value** (structural `Eq`), never
/// on the raw fingerprint, so `(size, hash)` collisions between
/// distinct subtrees are kept apart. Output pairs are distinct and
/// nonzero, in decreasing subtree-size order — ready for
/// [`Forest::from_distinct_pairs`].
pub fn weighted_descendant_closure<K: Semiring>(
    seeds: impl IntoIterator<Item = (Tree<K>, K)>,
) -> Vec<(Tree<K>, K)> {
    use std::collections::hash_map::Entry;
    use std::collections::{BinaryHeap, HashMap};
    // `pending[t]` = weight accumulated so far for subtrees not yet
    // popped; the heap orders pending trees by `Ord`, whose leading key
    // is subtree size. Each tree is pushed exactly once (on its vacant
    // insert), so heap and map stay in sync.
    let mut pending: HashMap<Tree<K>, K> = HashMap::new();
    let mut heap: BinaryHeap<Tree<K>> = BinaryHeap::new();
    fn add<K: Semiring>(
        pending: &mut HashMap<Tree<K>, K>,
        heap: &mut BinaryHeap<Tree<K>>,
        t: Tree<K>,
        w: K,
    ) {
        match pending.entry(t) {
            Entry::Occupied(mut e) => {
                let merged = e.get().plus(&w);
                *e.get_mut() = merged;
            }
            Entry::Vacant(e) => {
                heap.push(e.key().clone());
                e.insert(w);
            }
        }
    }
    for (t, w) in seeds {
        add(&mut pending, &mut heap, t, w);
    }
    let mut out: Vec<(Tree<K>, K)> = Vec::with_capacity(pending.len());
    while let Some(t) = heap.pop() {
        // Always present: a tree re-enters `pending` only while a
        // strictly larger tree is still unpopped, and pops are
        // non-increasing in `Ord` (insertions during the loop are
        // children, strictly smaller than the current maximum).
        let Some(w) = pending.remove(&t) else {
            continue;
        };
        if w.is_zero() {
            continue; // zero weight: contributes nothing downward either
        }
        for (c, kc) in t.children().iter() {
            let wk = if w.is_one() { kc.clone() } else { w.times(kc) };
            add(&mut pending, &mut heap, c.clone(), wk);
        }
        out.push((t, w));
    }
    out
}

/// The frontier expansion behind [`Tree::descendant_split`], starting
/// from an arbitrary seed set (multi-root callers — forest-level
/// sweeps — seed one entry per root): repeatedly replace the largest
/// non-leaf seed by its children (path products multiplied through)
/// until at least `min_seeds` seeds remain or everything is a leaf.
/// Returns `(emitted, seeds)` — consumed nodes and the frontier —
/// which together partition the original seeds' descendant multiset.
///
/// The expansion is budgeted: after `4 · min_seeds` splits it stops
/// even if the frontier is still short. On skinny trees (chains, or
/// `min_seeds` larger than the tree) every split consumes one node
/// without widening the frontier, so an unbudgeted expansion would
/// sequentially emit the whole sweep — and pay a linear largest-seed
/// scan per node on top — before any parallel work began. The partition
/// property is unaffected; callers just get fewer seeds than requested.
pub fn expand_sweep_seeds<K: Semiring>(
    mut seeds: SweepSeeds<K>,
    min_seeds: usize,
) -> (SweepSeeds<K>, SweepSeeds<K>) {
    let mut emitted: SweepSeeds<K> = Vec::new();
    let budget = 4 * min_seeds.max(1);
    while seeds.len() < min_seeds && emitted.len() < budget {
        // Largest subtree first: splitting it rebalances the most.
        let Some(pos) = seeds
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| !t.is_leaf())
            .max_by_key(|(_, (t, _))| t.size())
            .map(|(i, _)| i)
        else {
            break; // all leaves: nothing left to split
        };
        let (node, k) = seeds.swap_remove(pos);
        for (c, kc) in node.children().iter() {
            let kk = if k.is_one() { kc.clone() } else { k.times(kc) };
            seeds.push((c.clone(), kk));
        }
        emitted.push((node, k));
    }
    (emitted, seeds)
}

impl<K: Semiring> Clone for Tree<K> {
    fn clone(&self) -> Self {
        Tree(Arc::clone(&self.0))
    }
}

impl<K: Semiring> PartialEq for Tree<K> {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        // Cheap rejection on the cached fingerprint before any walk.
        self.0.hash == other.0.hash
            && self.0.size == other.0.size
            && self.0.label == other.0.label
            && self.0.children == other.0.children
    }
}

impl<K: Semiring> Eq for Tree<K> {}

impl<K: Semiring> PartialOrd for Tree<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Semiring> Ord for Tree<K> {
    /// Total order with the cached `(size, hash)` fingerprint as the
    /// leading key: `BTreeMap<Tree, K>` lookups resolve almost every
    /// comparison in O(1) and only walk structure on fingerprint
    /// collisions. Consistent with [`PartialEq`] (the structural
    /// fallback decides collisions). Deterministic within a process;
    /// use [`Tree::cmp_document`] where cross-process order matters.
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        self.0
            .size
            .cmp(&other.0.size)
            .then_with(|| self.0.hash.cmp(&other.0.hash))
            .then_with(|| self.0.label.cmp(&other.0.label))
            .then_with(|| self.0.children.cmp(&other.0.children))
    }
}

impl<K: Semiring> Hash for Tree<K> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl<K: Semiring> fmt::Debug for Tree<K> {
    fmt_via_display!();
}

/// Shorthand for [`Tree::leaf`].
pub fn leaf<K: Semiring>(label: &str) -> Tree<K> {
    Tree::leaf(label)
}

/// Shorthand for [`Tree::new`] from `(subtree, annotation)` pairs.
pub fn tree<K: Semiring, I: IntoIterator<Item = (Tree<K>, K)>>(
    label: &str,
    children: I,
) -> Tree<K> {
    Tree::new(label, Forest::from_pairs(children))
}

/// A finite K-set of trees: the paper's "function from trees to K such
/// that all but finitely many trees map to 0".
///
/// Wraps [`KSet`] and inherits its invariant: zero-annotated trees are
/// never stored. Union adds annotations pointwise; structurally equal
/// trees merge.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Forest<K: Semiring>(KSet<Tree<K>, K>);

impl<K: Semiring> Default for Forest<K> {
    fn default() -> Self {
        Forest(KSet::new())
    }
}

impl<K: Semiring> Forest<K> {
    /// The empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton forest annotated `1` (the query `(p)` of §3).
    pub fn unit(tree: Tree<K>) -> Self {
        Forest(KSet::unit(tree))
    }

    /// A singleton forest with an explicit annotation.
    pub fn singleton(tree: Tree<K>, k: K) -> Self {
        Forest(KSet::singleton(tree, k))
    }

    /// Build from `(tree, annotation)` pairs; duplicates merge with `+`.
    pub fn from_pairs<I: IntoIterator<Item = (Tree<K>, K)>>(pairs: I) -> Self {
        Forest(KSet::from_pairs(pairs))
    }

    /// Build from trees, each annotated `1`.
    pub fn of_units<I: IntoIterator<Item = Tree<K>>>(trees: I) -> Self {
        Forest(KSet::from_pairs(trees.into_iter().map(|t| (t, K::one()))))
    }

    /// Build from pairs whose trees are already **distinct** (zeros are
    /// still pruned): bulk-builds the map instead of paying a tree
    /// insert per pair. The fast path for deduplicated producers like
    /// [`weighted_descendant_closure`]; see
    /// [`axml_semiring::KSet::from_distinct_pairs`] for the contract.
    pub fn from_distinct_pairs<I: IntoIterator<Item = (Tree<K>, K)>>(pairs: I) -> Self {
        Forest(KSet::from_distinct_pairs(pairs))
    }

    /// Add `k` to the annotation of `tree`.
    pub fn insert(&mut self, tree: Tree<K>, k: K) {
        self.0.insert(tree, k);
    }

    /// The annotation of `tree` (`0` if absent).
    pub fn get(&self, tree: &Tree<K>) -> K {
        self.0.get(tree)
    }

    /// Does `tree` occur with nonzero annotation?
    pub fn contains(&self, tree: &Tree<K>) -> bool {
        self.0.contains(tree)
    }

    /// Number of distinct trees.
    pub fn len(&self) -> usize {
        self.0.support_len()
    }

    /// Is the forest empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate `(tree, annotation)` pairs in tree order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tree<K>, &K)> + '_ {
        self.0.iter()
    }

    /// Iterate the distinct trees.
    pub fn trees(&self) -> impl Iterator<Item = &Tree<K>> + '_ {
        self.0.support()
    }

    /// Pointwise union (annotations add): the query `p1, p2`.
    pub fn union(&self, other: &Self) -> Self {
        Forest(self.0.union(&other.0))
    }

    /// Pointwise union in place, consuming `other`: `self += other`.
    /// Merges the smaller side into the larger; the accumulator pattern
    /// for `for`-loops (see [`axml_semiring::KSet::union_with`]).
    pub fn union_with(&mut self, other: Self) {
        self.0.union_with(other.0);
    }

    /// Scalar multiplication: the query `annot k p`.
    pub fn scalar_mul(&self, k: &K) -> Self {
        Forest(self.0.scalar_mul(k))
    }

    /// Scalar multiplication in place: `self = k · self`.
    pub fn scalar_mul_in_place(&mut self, k: &K) {
        self.0.scalar_mul_in_place(k);
    }

    /// Bulk insert of scaled members: `self += k · other`, consuming
    /// `other` — one `for`-iteration step with a reused accumulator.
    pub fn extend_scaled(&mut self, other: Self, k: &K) {
        self.0.extend_scaled(other.0, k);
    }

    /// Big-union over the forest: `∪(t ∈ self) f(t)`, multiplying each
    /// produced forest by the annotation of the tree it came from. This
    /// is the semantic engine of `for`-iteration (§3's examples).
    pub fn bind<F: FnMut(&Tree<K>) -> Forest<K>>(&self, mut f: F) -> Forest<K> {
        Forest(self.0.bind(|t| f(t).0))
    }

    /// The members in document order (label name, then structure): the
    /// deterministic, cross-process-stable order used for printing and
    /// DFS numbering. O(n log n) per call — meant for output paths, not
    /// hot loops.
    pub fn iter_document(&self) -> Vec<(&Tree<K>, &K)> {
        let mut v: Vec<(&Tree<K>, &K)> = self.0.iter().collect();
        v.sort_by(|(ta, ka), (tb, kb)| ta.cmp_document(tb).then_with(|| ka.cmp(kb)));
        v
    }

    /// Keep trees whose root label satisfies the predicate
    /// (annotations unchanged) — node tests of XPath steps.
    pub fn filter_label<F: FnMut(Label) -> bool>(&self, mut f: F) -> Self {
        Forest(self.0.filter(|t| f(t.label())))
    }

    /// The underlying K-set, by value (inverse of
    /// [`Forest::from_kset`]) — for handing forests to K-set-generic
    /// algorithms like `axml_semiring::par_union_all`.
    pub fn into_kset(self) -> KSet<Tree<K>, K> {
        self.0
    }

    /// Wrap a K-set of trees as a forest (inverse of
    /// [`Forest::into_kset`]).
    pub fn from_kset(set: KSet<Tree<K>, K>) -> Self {
        Forest(set)
    }

    /// Access the underlying [`KSet`].
    pub fn as_kset(&self) -> &KSet<Tree<K>, K> {
        &self.0
    }

    /// Total number of nodes across distinct member trees.
    pub fn size(&self) -> usize {
        self.iter().map(|(t, _)| t.size()).sum()
    }

    /// Maximum member depth.
    pub fn depth(&self) -> usize {
        self.iter().map(|(t, _)| t.depth()).max().unwrap_or(0)
    }
}

impl<K: Semiring> FromIterator<(Tree<K>, K)> for Forest<K> {
    fn from_iter<I: IntoIterator<Item = (Tree<K>, K)>>(iter: I) -> Self {
        Forest::from_pairs(iter)
    }
}

impl<K: Semiring> IntoIterator for Forest<K> {
    type Item = (Tree<K>, K);
    type IntoIter = <KSet<Tree<K>, K> as IntoIterator>::IntoIter;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<K: Semiring> fmt::Debug for Forest<K> {
    fmt_via_display!();
}

/// A K-UXML value: a label, a tree, or a K-set of trees (§3).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value<K: Semiring> {
    /// A label (atomic value).
    Label(Label),
    /// A single tree.
    Tree(Tree<K>),
    /// A K-set of trees.
    Set(Forest<K>),
}

impl<K: Semiring> Value<K> {
    /// The label, if this value is one.
    pub fn as_label(&self) -> Option<Label> {
        match self {
            Value::Label(l) => Some(*l),
            _ => None,
        }
    }

    /// The tree, if this value is one.
    pub fn as_tree(&self) -> Option<&Tree<K>> {
        match self {
            Value::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// The forest, if this value is one.
    pub fn as_set(&self) -> Option<&Forest<K>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to a forest: a tree becomes the singleton `{t ↦ 1}`.
    /// (The paper elides this coercion in examples like `$x/A`; §3.)
    pub fn coerce_set(&self) -> Option<Forest<K>> {
        match self {
            Value::Tree(t) => Some(Forest::unit(t.clone())),
            Value::Set(s) => Some(s.clone()),
            Value::Label(_) => None,
        }
    }
}

impl<K: Semiring> fmt::Debug for Value<K> {
    fmt_via_display!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_semiring::{Nat, NatPoly};

    fn np(s: &str) -> NatPoly {
        s.parse().unwrap()
    }

    #[test]
    fn descendant_split_partitions_the_sweep() {
        // An annotated, uneven tree: splitting must preserve the
        // path-product annotation of every visited node exactly.
        let f = crate::parse::parse_forest::<NatPoly>(
            "<a {z}> <b {x1}> d {y1} <e {w}> f {v} g </e> </b> <c {x2}> d {y2} </c> </a>",
        )
        .unwrap();
        let (root, k_root) = f.iter().next().unwrap();
        for min_seeds in [1, 2, 3, 5, 8, 100] {
            let mut expected = Forest::new();
            root.for_each_descendant(k_root.clone(), |t, k| expected.insert(t.clone(), k));
            let (emitted, seeds) = root.descendant_split(k_root.clone(), min_seeds);
            let mut got = Forest::new();
            for (t, k) in emitted {
                got.insert(t, k);
            }
            for (t, k) in seeds {
                t.for_each_descendant(k, |n, kn| got.insert(n.clone(), kn));
            }
            assert_eq!(got, expected, "min_seeds={min_seeds}");
        }
        // Leaf corner case: nothing to split.
        let (emitted, seeds) = leaf::<Nat>("x").descendant_split(Nat(3), 9);
        assert!(emitted.is_empty());
        assert_eq!(seeds.len(), 1);
    }

    #[test]
    fn sweep_split_budget_bounds_skinny_trees() {
        // A chain is the worst case: every split consumes one node and
        // never widens the frontier past 1, so with `min_seeds` larger
        // than the tree an unbudgeted expansion would sequentially
        // emit the entire sweep before any parallel work began.
        let mut t = leaf::<Nat>("end");
        for i in 0..200 {
            t = Tree::new(Label::new(&format!("n{i}")), Forest::unit(t));
        }
        let mut expected = Forest::new();
        t.for_each_descendant(Nat(1), |n, k| expected.insert(n.clone(), k));
        for min_seeds in [4, 16, 100_000] {
            let (emitted, seeds) = t.descendant_split(Nat(1), min_seeds);
            assert!(
                emitted.len() <= 4 * min_seeds,
                "budget exceeded: emitted {} for min_seeds={min_seeds}",
                emitted.len()
            );
            // The early stop never breaks the partition property.
            let mut got = Forest::new();
            for (n, k) in emitted {
                got.insert(n, k);
            }
            for (s, k) in seeds {
                s.for_each_descendant(k, |n, kn| got.insert(n.clone(), kn));
            }
            assert_eq!(got, expected, "partition broken at min_seeds={min_seeds}");
        }

        // `min_seeds` larger than a small bushy tree: expansion stops
        // once everything is a leaf, well within budget.
        let f = crate::parse::parse_forest::<Nat>("<a> b c </a> <d> e </d>").unwrap();
        let roots: SweepSeeds<Nat> = f.iter().map(|(t, k)| (t.clone(), *k)).collect();
        let (emitted, seeds) = expand_sweep_seeds(roots, 1000);
        assert_eq!(
            emitted.len(),
            2,
            "both roots split, then only leaves remain"
        );
        assert_eq!(seeds.len(), 3);
        assert!(seeds.iter().all(|(t, _)| t.is_leaf()));
    }

    #[test]
    fn value_equality_merges_duplicate_children() {
        // Two separately built "d" leaves are the same set element.
        let f = Forest::from_pairs([(leaf::<Nat>("d"), Nat(2)), (leaf::<Nat>("d"), Nat(3))]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(&leaf("d")), Nat(5));
    }

    #[test]
    fn zero_annotated_trees_are_absent() {
        let f = Forest::from_pairs([(leaf::<Nat>("a"), Nat(0))]);
        assert!(f.is_empty());
        assert!(!f.contains(&leaf("a")));
    }

    #[test]
    fn tree_equality_is_structural() {
        let t1 = tree::<Nat, _>("a", [(leaf("b"), Nat(1)), (leaf("c"), Nat(2))]);
        let t2 = tree::<Nat, _>("a", [(leaf("c"), Nat(2)), (leaf("b"), Nat(1))]);
        assert_eq!(t1, t2, "children are unordered");
        let t3 = tree::<Nat, _>("a", [(leaf("b"), Nat(1))]);
        assert_ne!(t1, t3);
    }

    #[test]
    fn annotations_distinguish_trees() {
        // Same shape, different *internal* annotation ⇒ different trees
        // (this is why Fig 6 has 8 tuples where Fig 5 has 6).
        let t1 = tree::<NatPoly, _>("t", [(leaf("b"), np("z1"))]);
        let t2 = tree::<NatPoly, _>("t", [(leaf("b"), np("z2"))]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let t = tree::<Nat, _>("a", [(leaf("b"), Nat(1))]);
        let u = t.clone();
        assert_eq!(t, u);
        assert_eq!(t.cmp(&u), std::cmp::Ordering::Equal);
    }

    #[test]
    fn size_and_depth() {
        let t = tree::<Nat, _>(
            "a",
            [
                (tree("b", [(leaf("d"), Nat(1))]), Nat(1)),
                (leaf("c"), Nat(1)),
            ],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(), 3);
        assert_eq!(leaf::<Nat>("x").size(), 1);
        assert_eq!(leaf::<Nat>("x").depth(), 1);
        assert!(leaf::<Nat>("x").is_leaf());
        assert!(!t.is_leaf());
    }

    #[test]
    fn forest_union_adds() {
        let f1 = Forest::from_pairs([(leaf::<Nat>("a"), Nat(1))]);
        let f2 = Forest::from_pairs([(leaf::<Nat>("a"), Nat(2)), (leaf("b"), Nat(1))]);
        let u = f1.union(&f2);
        assert_eq!(u.get(&leaf("a")), Nat(3));
        assert_eq!(u.get(&leaf("b")), Nat(1));
    }

    #[test]
    fn forest_bind_multiplies_annotations() {
        // ∪(t ∈ {b↦x1}) children(t): Fig 1's inner iteration shape.
        let b = tree::<NatPoly, _>("b", [(leaf("d"), np("y1"))]);
        let f = Forest::singleton(b, np("x1"));
        let kids = f.bind(|t| t.children().clone());
        assert_eq!(kids.get(&leaf("d")), np("x1*y1"));
    }

    #[test]
    fn filter_label() {
        let f = Forest::from_pairs([(leaf::<Nat>("a"), Nat(1)), (leaf::<Nat>("b"), Nat(2))]);
        let only_a = f.filter_label(|l| l.name() == "a");
        assert_eq!(only_a.len(), 1);
        assert!(only_a.contains(&leaf("a")));
    }

    #[test]
    fn value_coercions() {
        let t = leaf::<Nat>("a");
        let v = Value::Tree(t.clone());
        assert_eq!(v.coerce_set().unwrap(), Forest::unit(t.clone()));
        assert_eq!(v.as_tree(), Some(&t));
        assert!(v.as_label().is_none());
        let l = Value::<Nat>::Label(Label::new("x"));
        assert!(l.coerce_set().is_none());
        assert_eq!(l.as_label(), Some(Label::new("x")));
    }

    #[test]
    fn of_units_and_scalar_mul() {
        let f = Forest::<Nat>::of_units([leaf("a"), leaf("b"), leaf("a")]);
        assert_eq!(f.get(&leaf("a")), Nat(2));
        let doubled = f.scalar_mul(&Nat(2));
        assert_eq!(doubled.get(&leaf("a")), Nat(4));
        assert_eq!(doubled.get(&leaf("b")), Nat(2));
    }
}
