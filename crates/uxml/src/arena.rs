//! Arena/columnar storage for K-UXML trees with content-addressed
//! subtree sharing (hash-consing).
//!
//! [`Tree`] is a pointer-linked `Arc` structure: ideal for the value
//! semantics of §3, but descendant sweeps chase pointers and every
//! separately-built copy of a subtree occupies its own memory. A
//! [`TreeArena`] stores trees **columnar**: one flat `Vec` entry per
//! distinct subtree (label, cached `(size, hash)` fingerprint, and a
//! contiguous child *range*), with child ids and child annotations in
//! two parallel columns. Sweeps become linear scans over dense arrays,
//! and splitting a sweep for parallelism is range slicing instead of
//! frontier expansion.
//!
//! # Content addressing
//!
//! Interning **hash-conses**: structurally identical subtrees — within
//! one document or across every document interned into the same arena
//! — get the same [`NodeId`] and are stored once. The dedup table is
//! keyed on the same `(size, fingerprint)` pair [`Tree`]'s `Ord` leads
//! with, but a key hit is never trusted by itself: candidates are
//! verified structurally (label, child ids, child annotations), so two
//! distinct subtrees whose fingerprints collide get distinct ids. The
//! id-based verify is sound because children are interned first and
//! the dedup invariant already holds for them — child-id equality *is*
//! child-value equality.
//!
//! Every node also keeps a **canonical handle**: the one `Arc`-shared
//! [`Tree`] for its value, built from the canonical handles of its
//! children. Rebuilding a forest from canonical handles
//! ([`TreeArena::canonical_forest`]) therefore maximally `Arc`-shares
//! it — equal subtrees become pointer-equal — which is what lets the
//! value-level sweep kernels (`weighted_descendant_closure`) and the
//! per-node `doc_children` cache do their work once per distinct
//! subtree instead of once per occurrence, with no arena reference
//! threaded through evaluation.
//!
//! # Invariants
//!
//! - children are interned before their parent, so every child id is
//!   strictly smaller than its parent's id — a descending id scan is a
//!   topological order of the DAG ([`TreeArena::descendant_closure`]);
//! - child ranges are canonically ordered (the [`Tree`] `Ord` of the
//!   child values), deduplicated, and zero-annotation-free — the same
//!   invariant as [`Forest`];
//! - an arena only grows: content-addressed storage is append-only
//!   (removing a document from a store does not un-intern its
//!   subtrees; they remain available for future sharing).

use crate::label::Label;
use crate::tree::{node_fingerprint, Forest, Tree};
use axml_semiring::{Semiring, SemiringHom};
use std::collections::HashMap;

/// Index of one distinct subtree in a [`TreeArena`].
pub type NodeId = u32;

/// A columnar, hash-consing store of K-UXML subtrees. See the module
/// docs for the layout and invariants.
pub struct TreeArena<K: Semiring> {
    /// Root label of each node.
    labels: Vec<Label>,
    /// Structural fingerprint of each node (the [`Tree`] hash).
    hashes: Vec<u64>,
    /// Subtree node count of each node (occurrences, not multiplicity).
    sizes: Vec<usize>,
    /// `(start, len)` of each node's slice in the child columns.
    spans: Vec<(u32, u32)>,
    /// Child ids, contiguous per node, in canonical child order.
    child_ids: Vec<NodeId>,
    /// Child annotations, parallel to `child_ids`.
    child_anns: Vec<K>,
    /// The canonical `Arc` handle of each node's value.
    handles: Vec<Tree<K>>,
    /// `(size, fingerprint)` → candidate ids; collisions keep multiple
    /// candidates and are resolved by structural verify.
    dedup: HashMap<(usize, u64), Vec<NodeId>>,
    /// Canonical-handle pointer → id: O(1) re-interning of anything
    /// built from this arena's own handles. Sound to key on pointers
    /// because the arena owns every handle for its whole lifetime.
    known: HashMap<usize, NodeId>,
}

impl<K: Semiring> Default for TreeArena<K> {
    fn default() -> Self {
        TreeArena {
            labels: Vec::new(),
            hashes: Vec::new(),
            sizes: Vec::new(),
            spans: Vec::new(),
            child_ids: Vec::new(),
            child_anns: Vec::new(),
            handles: Vec::new(),
            dedup: HashMap::new(),
            known: HashMap::new(),
        }
    }
}

impl<K: Semiring> std::fmt::Debug for TreeArena<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeArena")
            .field("distinct_subtrees", &self.len())
            .field("child_edges", &self.child_edge_count())
            .finish()
    }
}

impl<K: Semiring> TreeArena<K> {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct subtrees stored.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total stored child edges (the DAG's edge count — with sharing,
    /// far below the sum of logical subtree sizes).
    pub fn child_edge_count(&self) -> usize {
        self.child_ids.len()
    }

    /// The root label of `id`.
    pub fn label(&self, id: NodeId) -> Label {
        self.labels[id as usize]
    }

    /// The logical node count of `id`'s subtree (occurrences, i.e. the
    /// `|v|` of Prop 2 — *not* the arena's storage cost).
    pub fn size(&self, id: NodeId) -> usize {
        self.sizes[id as usize]
    }

    /// The canonical `Arc` handle of `id`'s value.
    pub fn tree(&self, id: NodeId) -> &Tree<K> {
        &self.handles[id as usize]
    }

    /// The children of `id` as `(child id, annotation)` pairs, in
    /// canonical child order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = (NodeId, &K)> + '_ {
        let (start, len) = self.spans[id as usize];
        let range = start as usize..(start + len) as usize;
        self.child_ids[range.clone()]
            .iter()
            .copied()
            .zip(self.child_anns[range].iter())
    }

    /// The id of `t`'s value, if already interned: fingerprint probe
    /// first, then structural verify of every candidate — a colliding
    /// but unequal tree is never returned.
    pub fn lookup(&self, t: &Tree<K>) -> Option<NodeId> {
        if let Some(&id) = self.known.get(&t.ptr_token()) {
            return Some(id);
        }
        let key = (t.size(), t.structural_hash());
        self.dedup
            .get(&key)?
            .iter()
            .copied()
            .find(|&cand| self.handles[cand as usize] == *t)
    }

    /// Intern one node from already-interned children. `children` may
    /// be unsorted, may repeat ids and may carry zeros; it is
    /// canonicalized here (sorted by child value, duplicates merged
    /// with `+`, zeros dropped) so every construction path agrees on
    /// the stored form.
    pub fn intern_node(&mut self, label: Label, mut children: Vec<(NodeId, K)>) -> NodeId {
        children.retain(|(_, k)| !k.is_zero());
        children
            .sort_by(|(a, _), (b, _)| self.handles[*a as usize].cmp(&self.handles[*b as usize]));
        children.dedup_by(|cur, prev| {
            if cur.0 == prev.0 {
                prev.1 = prev.1.plus(&cur.1);
                true
            } else {
                false
            }
        });
        // Merging can reach zero in semirings with zero divisors
        // (products of semirings): prune again.
        children.retain(|(_, k)| !k.is_zero());
        let size = 1 + children
            .iter()
            .map(|(id, _)| self.sizes[*id as usize])
            .sum::<usize>();
        let hash = node_fingerprint(
            label,
            children
                .iter()
                .map(|(id, k)| (self.hashes[*id as usize], k)),
        );
        let id = self.intern_node_keyed(label, children, (size, hash));
        debug_assert_eq!(self.handles[id as usize].structural_hash(), hash);
        id
    }

    /// Dedup-or-insert under an explicit `(size, hash)` key. Factored
    /// out so tests can force key collisions; every non-test caller
    /// computes the key from the canonicalized children.
    fn intern_node_keyed(
        &mut self,
        label: Label,
        children: Vec<(NodeId, K)>,
        key: (usize, u64),
    ) -> NodeId {
        if let Some(cands) = self.dedup.get(&key) {
            for &cand in cands {
                if self.verify(cand, label, &children) {
                    return cand;
                }
            }
        }
        assert!(self.labels.len() < u32::MAX as usize, "arena id overflow");
        let id = self.labels.len() as NodeId;
        let start = u32::try_from(self.child_ids.len()).expect("child column overflow");
        let len = u32::try_from(children.len()).expect("child span overflow");
        let handle = Tree::new(
            label,
            Forest::from_distinct_pairs(
                children
                    .iter()
                    .map(|(cid, k)| (self.handles[*cid as usize].clone(), k.clone())),
            ),
        );
        self.labels.push(label);
        self.hashes.push(key.1);
        self.sizes.push(key.0);
        self.spans.push((start, len));
        for (cid, k) in children {
            self.child_ids.push(cid);
            self.child_anns.push(k);
        }
        self.known.insert(handle.ptr_token(), id);
        self.handles.push(handle);
        self.dedup.entry(key).or_default().push(id);
        id
    }

    /// Structural equality of a stored node against a canonicalized
    /// candidate: label, then the child id and annotation slices. Child
    /// ids compare values directly (dedup invariant), so the verify is
    /// O(children), never a subtree walk.
    fn verify(&self, cand: NodeId, label: Label, children: &[(NodeId, K)]) -> bool {
        if self.labels[cand as usize] != label {
            return false;
        }
        let (start, len) = self.spans[cand as usize];
        if len as usize != children.len() {
            return false;
        }
        let s = start as usize;
        let ids = &self.child_ids[s..s + len as usize];
        let anns = &self.child_anns[s..s + len as usize];
        children
            .iter()
            .enumerate()
            .all(|(i, (id, k))| ids[i] == *id && anns[i] == *k)
    }

    /// Intern a whole tree bottom-up (children first), on an explicit
    /// stack — document depth costs heap, never Rust stack. Subtrees
    /// already known to the arena (canonical handles, or value-equal
    /// structure) resolve to their existing ids; everything else is
    /// appended. O(|t|) node visits with O(children) hashing per node.
    pub fn intern_tree(&mut self, t: &Tree<K>) -> NodeId {
        let mut memo: HashMap<usize, NodeId> = HashMap::new();
        self.intern_tree_memo(t, &mut memo)
    }

    /// Intern every member of a forest; returns `(root id, annotation)`
    /// pairs in the forest's canonical order.
    pub fn intern_forest(&mut self, f: &Forest<K>) -> Vec<(NodeId, K)> {
        let mut memo: HashMap<usize, NodeId> = HashMap::new();
        f.iter()
            .map(|(t, k)| (self.intern_tree_memo(t, &mut memo), k.clone()))
            .collect()
    }

    /// `intern_tree` with a per-call pointer memo, so `Arc`-shared
    /// subtrees *of the input* are walked once. (Pointers of borrowed
    /// input trees are only stable for the duration of the call —
    /// hence per-call; the persistent `known` map holds only pointers
    /// the arena owns.)
    fn intern_tree_memo(&mut self, t: &Tree<K>, memo: &mut HashMap<usize, NodeId>) -> NodeId {
        struct Frame<K: Semiring> {
            tree: Tree<K>,
            kids: Vec<(Tree<K>, K)>,
            next: usize,
            ids: Vec<(NodeId, K)>,
        }
        fn frame<K: Semiring>(t: &Tree<K>) -> Frame<K> {
            Frame {
                tree: t.clone(),
                kids: t
                    .children()
                    .iter()
                    .map(|(c, k)| (c.clone(), k.clone()))
                    .collect(),
                next: 0,
                ids: Vec::with_capacity(t.children().len()),
            }
        }
        if let Some(id) = self.recall(t, memo) {
            return id;
        }
        let mut stack: Vec<Frame<K>> = vec![frame(t)];
        loop {
            enum Action<K: Semiring> {
                Recurse(Tree<K>),
                Complete,
            }
            let action = {
                let top = stack.last_mut().expect("intern stack never empty mid-loop");
                loop {
                    if top.next >= top.kids.len() {
                        break Action::Complete;
                    }
                    let child = top.kids[top.next].0.clone();
                    match self.recall(&child, memo) {
                        Some(id) => {
                            let k = top.kids[top.next].1.clone();
                            top.ids.push((id, k));
                            top.next += 1;
                        }
                        None => break Action::Recurse(child),
                    }
                }
            };
            match action {
                Action::Recurse(child) => stack.push(frame(&child)),
                Action::Complete => {
                    let done = stack.pop().expect("completing frame exists");
                    let id = self.intern_node(done.tree.label(), done.ids);
                    memo.insert(done.tree.ptr_token(), id);
                    match stack.last_mut() {
                        Some(parent) => {
                            let k = parent.kids[parent.next].1.clone();
                            parent.ids.push((id, k));
                            parent.next += 1;
                        }
                        None => return id,
                    }
                }
            }
        }
    }

    /// Pointer fast paths for [`TreeArena::intern_tree_memo`]: the
    /// arena's own handles, then this call's memo. (No value lookup
    /// here — `intern_node` dedups by value at the parent, and probing
    /// per subtree would double the hashing.)
    fn recall(&self, t: &Tree<K>, memo: &HashMap<usize, NodeId>) -> Option<NodeId> {
        let tok = t.ptr_token();
        self.known.get(&tok).or_else(|| memo.get(&tok)).copied()
    }

    /// Rebuild a forest over the canonical handles of interned roots:
    /// the maximally `Arc`-shared form of the value (see the module
    /// docs). Duplicate root ids merge with `+`.
    pub fn canonical_forest(&self, roots: &[(NodeId, K)]) -> Forest<K> {
        Forest::from_pairs(
            roots
                .iter()
                .map(|(id, k)| (self.handles[*id as usize].clone(), k.clone())),
        )
    }

    /// The Fig 4 descendant sweep as a **linear scan**: every distinct
    /// subtree reachable from `seeds`, with the sum over occurrences
    /// of the path-annotation products — the arena-native counterpart
    /// of [`crate::tree::weighted_descendant_closure`], in decreasing
    /// id order. Because every child id is smaller than its parent's,
    /// one dense descending pass over `[0, max seed id]` propagates
    /// each node's accumulated weight to its children exactly once;
    /// chunking the scanned range (or the returned slice) is how a
    /// caller splits the sweep, instead of frontier expansion.
    pub fn descendant_closure(&self, seeds: &[(NodeId, K)]) -> Vec<(NodeId, K)> {
        let Some(max) = seeds.iter().map(|(id, _)| *id).max() else {
            return Vec::new();
        };
        let mut weight: Vec<K> = vec![K::zero(); max as usize + 1];
        for (id, k) in seeds {
            let w = &mut weight[*id as usize];
            *w = if w.is_zero() { k.clone() } else { w.plus(k) };
        }
        let mut out: Vec<(NodeId, K)> = Vec::new();
        for id in (0..=max as usize).rev() {
            if weight[id].is_zero() {
                continue;
            }
            let w = std::mem::replace(&mut weight[id], K::zero());
            let (start, len) = self.spans[id];
            for j in start as usize..(start + len) as usize {
                let c = self.child_ids[j] as usize;
                let kc = &self.child_anns[j];
                let wk = if w.is_one() { kc.clone() } else { w.times(kc) };
                let slot = &mut weight[c];
                *slot = if slot.is_zero() { wk } else { slot.plus(&wk) };
            }
            out.push((id as NodeId, w));
        }
        out
    }

    /// [`TreeArena::descendant_closure`] materialized as a [`Forest`]
    /// over canonical handles.
    pub fn descendant_forest(&self, seeds: &[(NodeId, K)]) -> Forest<K> {
        Forest::from_distinct_pairs(
            self.descendant_closure(seeds)
                .into_iter()
                .map(|(id, k)| (self.handles[id as usize].clone(), k)),
        )
    }

    /// Test hook: intern `t`'s **root** node under a forced dedup key,
    /// children interned normally. Exercises the structural-verify path
    /// on `(size, hash)` collisions without having to construct a real
    /// fingerprint collision. Not for production use — a node stored
    /// under a wrong key is only findable under that key.
    #[doc(hidden)]
    pub fn intern_tree_with_key(&mut self, t: &Tree<K>, key: (usize, u64)) -> NodeId {
        let mut memo: HashMap<usize, NodeId> = HashMap::new();
        let mut children: Vec<(NodeId, K)> = Vec::with_capacity(t.children().len());
        for (c, k) in t.children().iter() {
            children.push((self.intern_tree_memo(c, &mut memo), k.clone()));
        }
        // Same canonicalization as `intern_node` (children of a
        // `Forest` are already sorted, distinct and nonzero, so this
        // is the identity here — kept for uniformity).
        self.intern_node_keyed(t.label(), children, key)
    }
}

/// Intern the image of a forest under a semiring homomorphism,
/// directly into a `K2` arena — the hom lifting of §6.4 fused with
/// hash-consing. Walks the value-level DAG once per **distinct** input
/// subtree (pointer-memoized per call), instead of once per occurrence
/// like the plain recursive [`crate::hom::map_forest`]; subtrees that
/// become identified after the hom merge their annotations, and
/// subtrees whose annotation maps to `0` vanish, exactly as the
/// recursive lifting does. Returns `(root id, annotation)` pairs with
/// zeros dropped (duplicate ids possible when roots become
/// identified; [`TreeArena::canonical_forest`] merges them).
pub fn intern_forest_mapped<K1, K2, H>(
    arena: &mut TreeArena<K2>,
    h: &H,
    f: &Forest<K1>,
) -> Vec<(NodeId, K2)>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHom<K1, K2>,
{
    struct Frame<'t, K1: Semiring, K2: Semiring> {
        tree: &'t Tree<K1>,
        kids: Vec<(&'t Tree<K1>, &'t K1)>,
        next: usize,
        ids: Vec<(NodeId, K2)>,
    }
    fn frame<K1: Semiring, K2: Semiring>(t: &Tree<K1>) -> Frame<'_, K1, K2> {
        Frame {
            tree: t,
            kids: t.children().iter().collect(),
            next: 0,
            ids: Vec::with_capacity(t.children().len()),
        }
    }
    fn map_tree<'t, K1, K2, H>(
        arena: &mut TreeArena<K2>,
        h: &H,
        t: &'t Tree<K1>,
        memo: &mut HashMap<usize, NodeId>,
    ) -> NodeId
    where
        K1: Semiring,
        K2: Semiring,
        H: SemiringHom<K1, K2>,
    {
        if let Some(&id) = memo.get(&t.ptr_token()) {
            return id;
        }
        let mut stack: Vec<Frame<'t, K1, K2>> = vec![frame(t)];
        loop {
            enum Action<'t, K1: Semiring> {
                Recurse(&'t Tree<K1>),
                Complete,
            }
            let action = {
                let top = stack.last_mut().expect("map stack never empty mid-loop");
                loop {
                    if top.next >= top.kids.len() {
                        break Action::Complete;
                    }
                    let (child, k1) = top.kids[top.next];
                    let k2 = h.apply(k1);
                    if k2.is_zero() {
                        // The image annotation is 0: the child vanishes
                        // (no need to intern its subtree at all).
                        top.next += 1;
                        continue;
                    }
                    match memo.get(&child.ptr_token()) {
                        Some(&id) => {
                            top.ids.push((id, k2));
                            top.next += 1;
                        }
                        None => break Action::Recurse(child),
                    }
                }
            };
            match action {
                Action::Recurse(child) => stack.push(frame(child)),
                Action::Complete => {
                    let done = stack.pop().expect("completing frame exists");
                    let id = arena.intern_node(done.tree.label(), done.ids);
                    memo.insert(done.tree.ptr_token(), id);
                    match stack.last_mut() {
                        Some(parent) => {
                            let k2 = h.apply(parent.kids[parent.next].1);
                            parent.ids.push((id, k2));
                            parent.next += 1;
                        }
                        None => return id,
                    }
                }
            }
        }
    }
    let mut memo: HashMap<usize, NodeId> = HashMap::new();
    let mut out = Vec::with_capacity(f.len());
    for (t, k1) in f.iter() {
        let k2 = h.apply(k1);
        if k2.is_zero() {
            continue;
        }
        out.push((map_tree(arena, h, t, &mut memo), k2));
    }
    out
}
